//! Shared helpers for the `avglocal` example binaries.
//!
//! The actual examples live in `src/bin/`:
//!
//! * `quickstart` — the paper's headline separation on one ring;
//! * `dynamic_network` — the Section 1 dynamic-update motivation;
//! * `parallel_scheduler` — the Section 1 parallel-simulation motivation;
//! * `lower_bound_adversary` — the Section 3 construction in action;
//! * `coloring_pipeline` — Cole–Vishkin, landmark and baseline colourings
//!   side by side.

#![forbid(unsafe_code)]

use avglocal::prelude::*;

/// Prints a one-line summary of a radius profile: `label: avg=…, max=…`.
pub fn print_profile(label: &str, profile: &RadiusProfile) {
    let pair = MeasurePair::of(profile);
    println!(
        "{label:<28} average radius = {:>8.3}   worst-case radius = {:>6}   (separation {:.1}x)",
        pair.average,
        profile.max(),
        pair.separation()
    );
}

/// The ring sizes used by the examples: powers of two in `[16, max]`.
#[must_use]
pub fn example_sizes(max: usize) -> Vec<usize> {
    (4..).map(|k| 1usize << k).take_while(|&n| n <= max).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_powers_of_two() {
        let sizes = example_sizes(256);
        assert_eq!(sizes, vec![16, 32, 64, 128, 256]);
        assert!(example_sizes(8).is_empty());
    }

    #[test]
    fn print_profile_does_not_panic() {
        let profile = RadiusProfile::new(vec![1, 2, 3]);
        print_profile("demo", &profile);
    }
}
