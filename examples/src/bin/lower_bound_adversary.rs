//! The Section 3 adversarial construction in action.
//!
//! Builds the paper's permutation π (concatenation of hard slices of radius
//! ½·log*(n/2)) for the landmark colouring and for the largest-ID algorithm,
//! and compares the resulting average radii against random identifiers and
//! against hill-climbing adversaries.
//!
//! Run with: `cargo run -p avglocal-examples --bin lower_bound_adversary`

#![forbid(unsafe_code)]

use avglocal::prelude::*;

fn main() -> Result<(), avglocal::CoreError> {
    let n = 256;
    println!("Adversarial identifier assignments on a ring of {n} nodes\n");

    let mut table = Table::new(
        "average radius under different identifier assignments",
        &["problem", "random ids", "section 3 construction", "hill climbing", "theory lower bound"],
    );

    for problem in [Problem::LandmarkColoring, Problem::LargestId] {
        let random = random_permutation_study(problem, n, 10, 1)?;
        let section3 = section3_assignment(problem, n)?;
        let adversarial = run_on_cycle(problem, n, &section3)?;
        let climbed = AdversarySearch::new(problem, Measure::NodeAveraged)
            .hill_climb(n, 2, 60, 7)
            .map(|r| r.objective)?;
        let bound = match problem {
            Problem::LargestId => 0.0,
            _ => theory::coloring_average_lower_bound(n),
        };
        table.push_row(vec![
            problem.to_string(),
            format!("{:.3}", random.average_radius.mean),
            format!("{:.3}", adversarial.average()),
            format!("{:.3}", climbed),
            format!("{:.1}", bound),
        ]);
    }

    println!("{table}");
    println!(
        "Reading: for colouring-type problems the adversary cannot push the average below\n\
         Ω(log* n) (Theorem 1) and cannot push Cole-Vishkin above its constant either; for\n\
         the largest-ID problem the adversary (monotone-ish arrangements) pushes the average\n\
         up to Θ(log n), the value predicted by the Section 2 recurrence."
    );
    Ok(())
}
