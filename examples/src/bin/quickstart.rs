//! Quickstart: the paper's headline result on a single ring.
//!
//! Runs the largest-ID algorithm on a 4096-node ring with random identifiers
//! and prints both measures: the classical worst case is `n/2`, the average
//! is logarithmic — an exponential separation. Then shows that 3-colouring
//! stays at a constant handful of rounds under both measures.
//!
//! Run with: `cargo run -p avglocal-examples --bin quickstart`

#![forbid(unsafe_code)]

use avglocal::prelude::*;
use avglocal_examples::print_profile;

fn main() -> Result<(), avglocal::CoreError> {
    let n = 4096;
    println!("avglocal quickstart — ring of {n} nodes, random identifiers (seed 2015)\n");
    let assignment = IdAssignment::Shuffled { seed: 2015 };

    println!("-- Section 2: the largest-ID problem --");
    let largest = run_on_cycle(Problem::LargestId, n, &assignment)?;
    print_profile("largest ID (ball-growing)", &largest);
    println!(
        "paper's prediction:          average ≈ Θ(log n) vs worst case n/2 = {}\n",
        theory::largest_id_worst_case(n)
    );

    println!("-- Section 3: 3-colouring the ring --");
    let coloring = run_on_cycle(Problem::ThreeColoring, n, &assignment)?;
    print_profile("3-colouring (Cole-Vishkin)", &coloring);
    println!(
        "paper's bounds:              Ω(log* n) = {} ≤ average ≤ {} (Cole-Vishkin, 64-bit ids)",
        theory::coloring_average_lower_bound(n),
        theory::cole_vishkin_upper_bound(64)
    );

    // The lazy baselines pay the full saturation radius at every node, so
    // their simulation cost is quadratic; a smaller ring makes the point.
    let small = 256;
    println!("\n-- Baselines with no average/worst-case gap (ring of {small} nodes) --");
    let baseline = run_on_cycle(Problem::FullInfoLargestId, small, &assignment)?;
    print_profile("largest ID (full info)", &baseline);
    let leader = run_on_cycle(Problem::KnowTheLeader, small, &assignment)?;
    print_profile("know the leader", &leader);

    Ok(())
}
