//! Parallel simulation: the paper's second motivating application.
//!
//! "In the context of parallel computations that simulate distributed
//! computations, we can take advantage of the fact that a job is finished
//! earlier to process another job, and then the average running time is the
//! relevant measure." Here every node's local computation is a job whose
//! duration is its radius `r(v)`; the jobs are list-scheduled on a fixed pool
//! of workers and the resulting makespan is compared across algorithms.
//!
//! Run with: `cargo run -p avglocal-examples --bin parallel_scheduler`

#![forbid(unsafe_code)]

use avglocal::prelude::*;

fn main() -> Result<(), avglocal::CoreError> {
    let n = 256;
    let workers = 16;
    let assignment = IdAssignment::Shuffled { seed: 99 };
    println!(
        "Simulating every node's local computation on {workers} workers (ring of {n} nodes)\n"
    );

    let mut table = Table::new(
        "parallel replay makespan",
        &["algorithm", "total work", "makespan", "lower bound", "avg radius", "max radius"],
    );

    for problem in [
        Problem::LargestId,
        Problem::FullInfoLargestId,
        Problem::ThreeColoring,
        Problem::LandmarkColoring,
        Problem::KnowTheLeader,
    ] {
        let profile = run_on_cycle(problem, n, &assignment)?;
        let outcome = schedule_radii(&profile, workers);
        table.push_row(vec![
            problem.to_string(),
            outcome.total_work.to_string(),
            outcome.makespan.to_string(),
            outcome.lower_bound.to_string(),
            format!("{:.2}", profile.average()),
            profile.max().to_string(),
        ]);
    }

    println!("{table}");
    println!(
        "Reading: the makespan tracks total work / workers ≈ n·(average radius)/{workers};\n\
         the ball-growing largest-ID algorithm and Cole-Vishkin finish long before the\n\
         full-information baselines even though their worst-case radii can be identical."
    );
    Ok(())
}
