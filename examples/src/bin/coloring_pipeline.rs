//! The colouring algorithms side by side, with full verification.
//!
//! Runs the Cole–Vishkin pipeline, the landmark 4-colouring and the
//! full-information baseline on the same rings, verifies every output, and
//! prints the radius profiles — the upper-bound side of the paper's
//! Section 3.
//!
//! Run with: `cargo run -p avglocal-examples --bin coloring_pipeline`

#![forbid(unsafe_code)]

use avglocal::algorithms::{landmarks, run_three_coloring, verify};
use avglocal::prelude::*;
use avglocal_examples::print_profile;

fn main() -> Result<(), avglocal::CoreError> {
    for n in [64usize, 1024, 16384] {
        let assignment = IdAssignment::Shuffled { seed: 3 };
        println!("== ring of {n} nodes ==");
        let graph = cycle_with_assignment(n, &assignment)?;

        // Cole–Vishkin: constant radius, 3 colours.
        let (colors, rounds) = run_three_coloring(&graph)?;
        assert!(verify::is_proper_coloring(&graph, &colors, 3));
        print_profile("Cole-Vishkin (3 colours)", &RadiusProfile::new(rounds));

        // Landmark colouring: variable radius, 4 colours.
        let landmark = run_on_cycle(Problem::LandmarkColoring, n, &assignment)?;
        print_profile("landmark (4 colours)", &landmark);

        // Full-information baseline: 3 colours, linear radius. Its simulation
        // cost is quadratic in n, so it is only run on the smaller rings.
        if n <= 256 {
            let baseline = run_on_cycle(Problem::FullInfoColoring, n, &assignment)?;
            print_profile("full information (3 col.)", &baseline);
        }

        println!(
            "landmark count: {} of {} nodes are local maxima; log*(n) = {}\n",
            landmarks(&graph).len(),
            n,
            theory::log_star_of(n)
        );
    }
    println!(
        "Reading: Cole-Vishkin keeps every node at a constant radius (the log* upper bound);\n\
         the landmark colouring is cheap on average but has a long tail; the full-information\n\
         baseline pays n/2 everywhere. Theorem 1 says no 3-colouring algorithm can push the\n\
         average below Ω(log* n)."
    );
    Ok(())
}
