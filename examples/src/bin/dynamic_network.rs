//! Dynamic networks: the paper's first motivating application.
//!
//! "The average time to update the labels of the graph after a change at a
//! random node can be estimated using the average measure." This example
//! makes that concrete: for each algorithm we compute the expected number of
//! nodes whose output must be recomputed when a uniformly random node's input
//! changes — a node `v` is affected iff the changed node lies inside `v`'s
//! radius-`r(v)` ball.
//!
//! Run with: `cargo run -p avglocal-examples --bin dynamic_network`

#![forbid(unsafe_code)]

use avglocal::prelude::*;

fn main() -> Result<(), avglocal::CoreError> {
    println!("Expected number of outputs invalidated by a change at a random node\n");
    let mut table = Table::new(
        "dynamic update cost (random identifiers, seed 7)",
        &["n", "largest ID", "3-colouring", "landmark colouring", "know the leader"],
    );

    for n in [64usize, 256, 1024, 4096] {
        let assignment = IdAssignment::Shuffled { seed: 7 };
        let mut cells = vec![n.to_string()];
        for problem in [Problem::LargestId, Problem::ThreeColoring, Problem::LandmarkColoring] {
            let profile = run_on_cycle(problem, n, &assignment)?;
            cells.push(format!("{:.1}", expected_invalidated_nodes(&profile)));
        }
        // The know-the-leader baseline pays the saturation radius at every
        // node (quadratic simulation cost), so it is only simulated on the
        // smaller rings; on larger ones the answer is simply n.
        if n <= 256 {
            let profile = run_on_cycle(Problem::KnowTheLeader, n, &assignment)?;
            cells.push(format!("{:.1}", expected_invalidated_nodes(&profile)));
        } else {
            cells.push(format!("{n}.0 (= n)"));
        }
        table.push_row(cells);
    }

    println!("{table}");
    println!(
        "Reading: algorithms with a small average radius (largest ID, colouring) localise\n\
         updates to a few nodes, while 'know the leader' invalidates the whole ring — the\n\
         update cost follows the paper's average measure, not the worst case."
    );
    Ok(())
}
