//! Integration-test package for the `avglocal` workspace.
//!
//! The actual tests live in `tests/` and exercise complete pipelines across
//! crates: graph generation → identifier assignment → LOCAL execution →
//! verification → measurement → theory comparison. This library target only
//! hosts small shared helpers.

use avglocal::prelude::*;

/// Builds the standard test instance: an `n`-cycle with identifiers shuffled
/// by `seed`.
///
/// # Panics
///
/// Panics if `n < 3` (the helper is for tests, which always use valid sizes).
#[must_use]
pub fn shuffled_ring(n: usize, seed: u64) -> Graph {
    cycle_with_assignment(n, &IdAssignment::Shuffled { seed })
        .expect("test rings always have at least 3 nodes")
}

/// The ring sizes used by the cross-crate tests: a mix of tiny, odd, even and
/// moderately large instances.
#[must_use]
pub fn test_sizes() -> Vec<usize> {
    vec![3, 4, 5, 8, 13, 16, 33, 64, 127]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffled_ring_has_unique_identifiers() {
        let g = shuffled_ring(17, 4);
        assert_eq!(g.node_count(), 17);
        assert!(g.has_unique_identifiers());
    }

    #[test]
    fn test_sizes_are_valid_cycle_sizes() {
        assert!(test_sizes().iter().all(|&n| n >= 3));
    }
}
