//! Integration-test package for the `avglocal` workspace.
//!
//! The actual tests live in `tests/` and exercise complete pipelines across
//! crates: graph generation → identifier assignment → LOCAL execution →
//! verification → measurement → theory comparison. This library target only
//! hosts small shared helpers.

#![forbid(unsafe_code)]

use avglocal::prelude::*;

/// Builds the standard test instance: an `n`-cycle with identifiers shuffled
/// by `seed`.
///
/// # Panics
///
/// Panics if `n < 3` (the helper is for tests, which always use valid sizes).
#[must_use]
pub fn shuffled_ring(n: usize, seed: u64) -> Graph {
    cycle_with_assignment(n, &IdAssignment::Shuffled { seed })
        .expect("test rings always have at least 3 nodes")
}

/// The ring sizes used by the cross-crate tests: a mix of tiny, odd, even and
/// moderately large instances.
#[must_use]
pub fn test_sizes() -> Vec<usize> {
    vec![3, 4, 5, 8, 13, 16, 33, 64, 127]
}

pub mod fuzz {
    //! The shared model-based fuzz driver.
    //!
    //! A byte buffer is decoded — totally, via [`proptest::arbitrary`] — into
    //! a program of graph-construction commands, which is executed in
    //! lockstep against the real [`Graph`]/[`CsrGraph`] stack and a
    //! deliberately naive adjacency-map model. Any divergence (accept/reject
    //! decisions, neighbour port order, identifiers, canonical component
    //! labels, or snapshot round-trips) is reported as an `Err` describing
    //! the mismatch. Both the property tests (`fuzz_builder_model.rs`) and
    //! the regression-corpus replayer (`fuzz_regressions.rs`) drive programs
    //! through this one interpreter.

    use std::collections::{HashMap, HashSet};

    use avglocal::graph::{CsrGraph, Graph, GraphError, Identifier, NodeId};
    use proptest::arbitrary::Unstructured;

    /// How the real stack classified an operation, reduced to a comparable tag.
    pub fn classify<T>(result: &Result<T, GraphError>) -> &'static str {
        match result {
            Ok(_) => "ok",
            Err(GraphError::NodeOutOfBounds { .. }) => "node out of bounds",
            Err(GraphError::SelfLoop { .. }) => "self loop",
            Err(GraphError::DuplicateEdge { .. }) => "duplicate edge",
            Err(GraphError::DuplicateIdentifier { .. }) => "duplicate identifier",
            Err(GraphError::InvalidGeneratorParameter { .. }) => "invalid parameter",
            Err(_) => "other",
        }
    }

    fn ensure(cond: bool, describe: impl FnOnce() -> String) -> Result<(), String> {
        if cond {
            Ok(())
        } else {
            Err(describe())
        }
    }

    /// The naive reference: a port-ordered adjacency map plus an edge set,
    /// mirroring the documented `Graph` semantics with none of its machinery.
    #[derive(Default)]
    struct Model {
        adjacency: Vec<Vec<usize>>,
        identifiers: Vec<u64>,
        edges: HashSet<(usize, usize)>,
    }

    impl Model {
        fn len(&self) -> usize {
            self.adjacency.len()
        }

        fn add_node(&mut self, identifier: u64) {
            self.adjacency.push(Vec::new());
            self.identifiers.push(identifier);
        }

        /// Predicts `Graph::add_edge`, matching its documented check order:
        /// bounds, self-loop, duplicate.
        fn add_edge(&mut self, u: usize, v: usize) -> &'static str {
            if u >= self.len() || v >= self.len() {
                return "node out of bounds";
            }
            if u == v {
                return "self loop";
            }
            if !self.edges.insert((u.min(v), u.max(v))) {
                return "duplicate edge";
            }
            self.adjacency[u].push(v);
            self.adjacency[v].push(u);
            "ok"
        }

        fn set_identifier(&mut self, node: usize, identifier: u64) -> &'static str {
            if node >= self.len() {
                return "node out of bounds";
            }
            self.identifiers[node] = identifier;
            "ok"
        }

        /// Canonical component labelling: components numbered in order of
        /// their smallest member, the invariant `ComponentLabels` documents.
        fn components(&self) -> (Vec<u32>, Vec<u32>) {
            let n = self.len();
            let mut labels = vec![u32::MAX; n];
            let mut sizes = Vec::new();
            for start in 0..n {
                if labels[start] != u32::MAX {
                    continue;
                }
                let label = u32::try_from(sizes.len()).expect("fuzz graphs are tiny");
                let mut queue = vec![start];
                labels[start] = label;
                let mut size = 0u32;
                while let Some(v) = queue.pop() {
                    size += 1;
                    for &w in &self.adjacency[v] {
                        if labels[w] == u32::MAX {
                            labels[w] = label;
                            queue.push(w);
                        }
                    }
                }
                sizes.push(size);
            }
            (labels, sizes)
        }
    }

    /// Freezes the real graph and checks every observable against the model,
    /// then round-trips the snapshot through the untrusted-input codec.
    fn check_frozen(graph: &Graph, model: &Model) -> Result<(), String> {
        let csr = graph.freeze();
        ensure(csr.node_count() == model.len(), || "node count diverged".to_string())?;
        ensure(csr.edge_count() == model.edges.len(), || "edge count diverged".to_string())?;
        for v in 0..model.len() {
            let got: Vec<usize> = csr.neighbors(v as u32).iter().map(|&w| w as usize).collect();
            ensure(got == model.adjacency[v], || {
                format!("port order of node {v} diverged: {got:?} vs {:?}", model.adjacency[v])
            })?;
            ensure(csr.identifier(v as u32) == Identifier::new(model.identifiers[v]), || {
                format!("identifier of node {v} diverged")
            })?;
        }
        let (labels, sizes) = model.components();
        ensure(csr.components().labels() == labels.as_slice(), || {
            format!("component labels diverged: {:?} vs {labels:?}", csr.components().labels())
        })?;
        ensure(csr.components().sizes() == sizes.as_slice(), || {
            format!("component sizes diverged: {:?} vs {sizes:?}", csr.components().sizes())
        })?;
        ensure(csr.components().count() == sizes.len(), || "component count diverged".to_string())?;

        let bytes = csr.to_bytes();
        let decoded = CsrGraph::from_bytes(&bytes)
            .map_err(|e| format!("own snapshot rejected by from_bytes: {e}"))?;
        ensure(decoded == csr, || "decoded snapshot differs from the original".to_string())?;
        ensure(decoded.components() == csr.components(), || {
            "decoded component labelling differs".to_string()
        })?;
        ensure(decoded.to_bytes() == bytes, || "re-encoding is not bit-identical".to_string())
    }

    /// Decodes `data` into a command program and runs it against both sides.
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence between the real stack
    /// and the model; `Ok(())` means the whole program agreed.
    pub fn run_program(data: &[u8]) -> Result<(), String> {
        let mut u = Unstructured::new(data);
        let mut graph = Graph::new();
        let mut model = Model::default();
        let mut steps = 0;
        while !u.is_empty() && steps < 96 {
            steps += 1;
            match u.byte() % 8 {
                // Adding nodes is the commonest operation; identifiers come
                // from a small alphabet so collisions actually happen.
                0..=2 => {
                    let identifier = u.int_in_range(0..64);
                    let id = graph.add_node(Identifier::new(identifier));
                    model.add_node(identifier);
                    ensure(id.index() == model.len() - 1, || "node ids diverged".to_string())?;
                }
                // Edge endpoints may overshoot the node count by up to two,
                // so bounds rejections are exercised alongside valid
                // insertions, self-loops and duplicates.
                3..=5 => {
                    let bound = model.len() + 2;
                    let a = u.choose_index(bound);
                    let b = if u.ratio(1, 4) { a } else { u.choose_index(bound) };
                    let got = graph.add_edge(NodeId::new(a), NodeId::new(b));
                    let want = model.add_edge(a, b);
                    ensure(classify(&got) == want, || {
                        format!("add_edge({a}, {b}): real {} vs model {want}", classify(&got))
                    })?;
                }
                6 => {
                    let node = u.choose_index(model.len() + 1);
                    let identifier = u.int_in_range(0..64);
                    let got = graph.set_identifier(NodeId::new(node), Identifier::new(identifier));
                    let want = model.set_identifier(node, identifier);
                    ensure(classify(&got) == want, || {
                        format!("set_identifier({node}): real {} vs model {want}", classify(&got))
                    })?;
                }
                _ => check_frozen(&graph, &model)?,
            }
            ensure(graph.node_count() == model.len(), || "node counts diverged".to_string())?;
            ensure(graph.edge_count() == model.edges.len(), || "edge counts diverged".to_string())?;
        }
        check_frozen(&graph, &model)
    }

    /// Predicts `GraphBuilder::build` from the same description, mirroring
    /// its documented validation order.
    pub fn predict_build(identifiers: &[u64], edges: &[(u64, u64)]) -> &'static str {
        let mut seen = HashSet::new();
        if !identifiers.iter().all(|id| seen.insert(*id)) {
            return "duplicate identifier";
        }
        let by_id: HashMap<u64, usize> =
            identifiers.iter().enumerate().map(|(i, id)| (*id, i)).collect();
        let mut edge_set = HashSet::new();
        for (a, b) in edges {
            let (Some(&u), Some(&v)) = (by_id.get(a), by_id.get(b)) else {
                return "invalid parameter";
            };
            if u == v {
                return "self loop";
            }
            if !edge_set.insert((u.min(v), u.max(v))) {
                return "duplicate edge";
            }
        }
        "ok"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffled_ring_has_unique_identifiers() {
        let g = shuffled_ring(17, 4);
        assert_eq!(g.node_count(), 17);
        assert!(g.has_unique_identifiers());
    }

    #[test]
    fn test_sizes_are_valid_cycle_sizes() {
        assert!(test_sizes().iter().all(|&n| n >= 3));
    }
}
