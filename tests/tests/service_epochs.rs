//! Property test for the service's epoch-publication semantics.
//!
//! The invariant: however queries interleave with generation swaps, every
//! completed answer is consistent with **exactly one** published generation
//! — the one stamped in its reply. A reply must never mix state from two
//! generations (an answer computed on the old snapshot stamped with the new
//! epoch, or vice versa), and the stamped epoch must be one the publisher
//! actually installed.
//!
//! Generations are shuffled cycles of one size with *distinct* identifier
//! tables, so any cross-generation contamination changes the largest-ID
//! output or its radius and is caught by the per-epoch sequential
//! reference. CI runs this file on both the `AVG_LOCAL_THREADS=1` and
//! `AVG_LOCAL_THREADS=4` legs.

use std::sync::Arc;

use avglocal::graph::{generators, CsrGraph, IdAssignment, NodeId};
use avglocal::runtime::examples::NaiveLargestId;
use avglocal::runtime::{BallExecution, BallExecutor, Knowledge};
use avglocal_service::{RadiusQueryService, ServiceConfig, TestClock};
use proptest::prelude::*;

/// A cycle on `n` nodes with a shuffled identifier table, frozen.
fn shuffled_cycle(n: usize, seed: u64) -> CsrGraph {
    let mut graph = generators::cycle(n).expect("cycles are valid");
    IdAssignment::Shuffled { seed }.apply(&mut graph).expect("shuffles are permutations");
    graph.freeze()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Readers race a publisher through `swaps` generation swaps; every
    /// reply must match the sequential reference of exactly the generation
    /// named by its epoch stamp.
    #[test]
    fn concurrent_replies_are_consistent_with_exactly_one_generation(
        n in 8usize..48,
        base_seed in 0u64..500,
        readers in 2usize..5,
        swaps in 1usize..4,
        latest_every in 2usize..5,
    ) {
        // Generation g serves as epoch g + 1; distinct seeds give every
        // generation its own identifier table.
        let generations: Vec<CsrGraph> = (0..=swaps as u64)
            .map(|g| shuffled_cycle(n, base_seed.wrapping_mul(31).wrapping_add(g)))
            .collect();
        let references: Vec<BallExecution<bool>> = generations
            .iter()
            .map(|csr| {
                BallExecutor::new()
                    .run_frozen_sequential(csr, &NaiveLargestId, Knowledge::none())
                    .expect("largest-ID terminates on cycles")
            })
            .collect();

        let service = RadiusQueryService::new(
            NaiveLargestId,
            Knowledge::none(),
            generations[0].clone(),
            Arc::new(TestClock::new()),
            ServiceConfig::default(),
        );

        let replies = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..readers)
                .map(|reader| {
                    let service = &service;
                    scope.spawn(move || {
                        let mut replies = Vec::new();
                        for q in 0..2 * n {
                            let node = NodeId::new((reader + q * readers) % n);
                            let result = if q % latest_every == 0 {
                                service.query_latest(node)
                            } else {
                                service.query(node)
                            };
                            match result {
                                Ok(reply) => replies.push((node, reply)),
                                Err(error) => panic!("unlimited-budget query failed: {error}"),
                            }
                        }
                        replies
                    })
                })
                .collect();
            // The publisher races the readers on this thread.
            for generation in &generations[1..] {
                service.publish_csr(generation.clone()).expect("valid candidates publish");
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("readers do not panic"))
                .collect::<Vec<_>>()
        });

        let final_epoch = service.current_epoch();
        prop_assert_eq!(final_epoch, swaps as u64 + 1);
        for (node, reply) in replies {
            prop_assert!(
                reply.epoch >= 1 && reply.epoch <= final_epoch,
                "reply stamped with never-published epoch {}", reply.epoch
            );
            let reference = &references[(reply.epoch - 1) as usize];
            prop_assert_eq!(
                &reply.output, reference.output(node),
                "output inconsistent with generation of epoch {}", reply.epoch
            );
            prop_assert_eq!(
                reply.radius, reference.radius(node),
                "radius inconsistent with generation of epoch {}", reply.epoch
            );
        }
    }

    /// A reader that pinned a generation keeps getting answers from it —
    /// bit-identically — after any number of swaps have replaced it.
    #[test]
    fn pinned_generations_survive_swaps_unchanged(
        n in 8usize..40,
        base_seed in 0u64..500,
        swaps in 1usize..5,
    ) {
        let first = shuffled_cycle(n, base_seed);
        let reference = BallExecutor::new()
            .run_frozen_sequential(&first, &NaiveLargestId, Knowledge::none())
            .expect("largest-ID terminates on cycles");
        let service = RadiusQueryService::new(
            NaiveLargestId,
            Knowledge::none(),
            first,
            Arc::new(TestClock::new()),
            ServiceConfig::default(),
        );

        let pinned = service.pin();
        for swap in 0..swaps as u64 {
            service
                .publish_csr(shuffled_cycle(n, base_seed ^ (swap + 1).wrapping_mul(0x9e37)))
                .expect("valid candidates publish");
        }
        prop_assert_eq!(pinned.epoch(), 1);
        prop_assert_eq!(service.current_epoch(), swaps as u64 + 1);

        // Probes through the pinned session still answer from generation 1.
        for v in 0..n {
            let node = NodeId::new(v);
            let (output, radius) = pinned
                .session()
                .run_node_with_cancel(node, &NaiveLargestId, Knowledge::none(), &mut |_| false)
                .expect("pinned probes complete");
            prop_assert_eq!(&output, reference.output(node));
            prop_assert_eq!(radius, reference.radius(node));
        }
    }
}
