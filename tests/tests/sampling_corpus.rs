//! Replays the seed-pinned sampling corpus in `tests/corpus/sampling/`.
//!
//! Each golden file records, for one committed (family, algorithm, plan,
//! seed) case, the drawn sample and every estimated measure as exact f64 bit
//! patterns. The replay re-draws and re-estimates from today's code and
//! compares the rendered text byte for byte, so neither the seeded draw
//! (Floyd sampling, stratum allocation, stream derivation) nor the estimator
//! arithmetic (means, finite-population half-widths, weighted quantiles) can
//! drift without the diff saying exactly which value moved and by how much.
//!
//! After a *deliberate* estimator change, regenerate the corpus with
//!
//! ```sh
//! cargo test -p avglocal-integration-tests --test sampling_corpus -- --ignored regenerate
//! ```
//!
//! and review the golden diffs like any other behavioural change.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use avglocal::algorithms::{KnowTheLeader, LargestId};
use avglocal::graph::CsrGraph;
use avglocal::prelude::*;
use avglocal::runtime::{BallAlgorithm, BallExecutor};
use avglocal::sampling::Estimate;
use avglocal::{hub_adversarial_assignment, SamplePlan};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus").join("sampling")
}

/// One committed corpus case. The name doubles as the golden file stem and
/// encodes family, algorithm, plan and base seed, so a directory listing
/// reads as the case matrix.
struct Case {
    name: String,
    csr: CsrGraph,
    radii: Vec<usize>,
    plan: SamplePlan,
    base_seed: u64,
}

fn radii_of<A>(csr: &CsrGraph, algo: &A) -> Vec<usize>
where
    A: BallAlgorithm + Sync,
    A::Output: Send,
{
    let run = BallExecutor::new()
        .run_frozen_sequential(csr, algo, Knowledge::none())
        .expect("corpus algorithms terminate on corpus families");
    (0..csr.node_count()).map(|v| run.radius(NodeId::new(v))).collect()
}

/// The committed case matrix: both radius-profile shapes the estimators must
/// keep handling (discrete-with-outliers largest-ID, spread know-the-leader)
/// across all three designs, plus one census case pinning the exact path.
fn cases() -> Vec<Case> {
    let mut ring = generators::cycle(96).expect("corpus ring is valid");
    IdAssignment::Shuffled { seed: 11 }.apply(&mut ring).expect("shuffle applies");
    let ring = ring.freeze();

    let mut hub = Topology::PreferentialAttachment { m: 1, seed: 13 }
        .build(96)
        .expect("corpus hub family is valid");
    let adversarial = hub_adversarial_assignment(&hub).expect("hub adversary applies");
    adversarial.apply(&mut hub).expect("assignment applies");
    let hub = hub.freeze();

    let mut grid = Topology::Grid.build(64).expect("corpus grid is valid");
    IdAssignment::Shuffled { seed: 17 }.apply(&mut grid).expect("shuffle applies");
    let grid = grid.freeze();

    let ring_radii = radii_of(&ring, &LargestId);
    let hub_radii = radii_of(&hub, &LargestId);
    let grid_radii = radii_of(&grid, &KnowTheLeader);

    let mut cases = Vec::new();
    for plan in [
        SamplePlan::Uniform { budget: 12 },
        SamplePlan::EdgeEndpoint { budget: 12 },
        SamplePlan::StratifiedByDegree { budget: 12 },
    ] {
        cases.push(Case {
            name: format!("ring96_largest_id_{}_b7", plan.key()),
            csr: ring.clone(),
            radii: ring_radii.clone(),
            plan,
            base_seed: 7,
        });
        cases.push(Case {
            name: format!("hub96_largest_id_{}_b7", plan.key()),
            csr: hub.clone(),
            radii: hub_radii.clone(),
            plan,
            base_seed: 7,
        });
    }
    cases.push(Case {
        name: format!("grid64_know_the_leader_{}_b7", SamplePlan::Uniform { budget: 8 }.key()),
        csr: grid.clone(),
        radii: grid_radii.clone(),
        plan: SamplePlan::Uniform { budget: 8 },
        base_seed: 7,
    });
    cases.push(Case {
        name: format!("ring96_largest_id_{}_census_b7", SamplePlan::Uniform { budget: 96 }.key()),
        csr: ring,
        radii: ring_radii,
        plan: SamplePlan::Uniform { budget: 96 },
        base_seed: 7,
    });
    cases
}

fn push_f64(out: &mut String, key: &str, value: f64) {
    writeln!(out, "{key} {:#018x} ~{value}", value.to_bits()).expect("writes to String succeed");
}

fn push_estimate(out: &mut String, key: &str, estimate: Option<Estimate>) {
    if let Some(estimate) = estimate {
        push_f64(out, key, estimate.value);
        push_f64(out, &format!("{key}_half_width_95"), estimate.half_width_95);
    }
}

/// Renders the draw and the full estimate of one case as the golden text.
fn render(case: &Case) -> String {
    let seed = case.plan.seed_for(case.base_seed, 0);
    let sample = case.plan.draw(&case.csr, seed);
    let measures = sample.estimate_against(&case.radii);

    let mut out = String::new();
    writeln!(out, "# golden sampling estimate for {}", case.name).expect("writes succeed");
    writeln!(out, "# regenerate: cargo test -p avglocal-integration-tests --test sampling_corpus -- --ignored regenerate")
        .expect("writes succeed");
    writeln!(out, "plan {}", case.plan.key()).expect("writes succeed");
    writeln!(out, "stream_seed {seed:#018x}").expect("writes succeed");
    writeln!(out, "census {}", measures.census).expect("writes succeed");
    writeln!(out, "probes {}", measures.probes).expect("writes succeed");
    let nodes: Vec<String> = sample.nodes().iter().map(|v| v.index().to_string()).collect();
    writeln!(out, "nodes {}", nodes.join(",")).expect("writes succeed");
    push_estimate(&mut out, "node_averaged", measures.node_averaged);
    push_estimate(&mut out, "edge_averaged", measures.edge_averaged);
    push_estimate(&mut out, "edge_averaged_mean", measures.edge_averaged_mean);
    if let Some(median) = measures.median() {
        push_f64(&mut out, "median", median);
    }
    for per_mille in [100u16, 900] {
        if let Some(quantile) = measures.quantile(per_mille) {
            push_f64(&mut out, &format!("quantile_{per_mille}"), quantile);
        }
    }
    out
}

#[test]
fn sampling_corpus_replays_bit_identically() {
    let dir = corpus_dir();
    let mut replayed = 0usize;
    for case in cases() {
        let path = dir.join(format!("{}.golden", case.name));
        let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "golden file {} missing ({e}); run the #[ignore]d regenerate test",
                path.display()
            )
        });
        assert_eq!(
            render(&case),
            golden,
            "{}: sampling estimate drifted from the golden file",
            case.name
        );
        replayed += 1;
    }
    // The case list and the directory must stay in sync in both directions:
    // a stale golden file for a removed case is as misleading as a missing one.
    let on_disk = fs::read_dir(&dir)
        .expect("sampling corpus directory exists")
        .filter(|entry| {
            entry
                .as_ref()
                .expect("corpus directory is readable")
                .path()
                .extension()
                .is_some_and(|ext| ext == "golden")
        })
        .count();
    assert_eq!(replayed, on_disk, "golden files on disk do not match the committed case list");
    assert!(replayed >= 8, "the corpus matrix shrank below the committed minimum");
}

/// Rewrites every golden file from today's code. `#[ignore]`d: only run
/// after a deliberate estimator change, and review the diffs.
#[test]
#[ignore = "regenerates the golden corpus; run explicitly after deliberate estimator changes"]
fn regenerate() {
    let dir = corpus_dir();
    fs::create_dir_all(&dir).expect("corpus directory is creatable");
    for case in cases() {
        let path = dir.join(format!("{}.golden", case.name));
        fs::write(&path, render(&case)).expect("golden files are writable");
    }
}
