//! Replays the regression corpus in `tests/corpus/` against today's code.
//!
//! Every input that ever mattered — hand-written adversarial cases and
//! distilled fuzz findings — is kept on disk and replayed here, so a decode
//! surface can never quietly regress on an input it already survived once.
//! Expectations are encoded in file names:
//!
//! * `corpus/snapshot/*_valid.bin` must decode and round-trip bit-identically;
//!   every other `.bin` must be rejected with `CorruptSnapshot` (no panics);
//! * `corpus/snapshot_files/*.snap` are whole files as a crash can leave
//!   them on disk (torn writes, zeroed pages, trailing garbage); read back
//!   through `CsrGraph::read_from_path`, `*_valid.snap` must round-trip
//!   bit-identically and everything else must be rejected with the typed
//!   `CorruptSnapshot` — never a panic, never an untyped error;
//! * `corpus/edge_list/*_valid.txt` must parse; `*_malformed_l<N>.txt` must
//!   fail with `MalformedLine` on line `N`; `*_invalid.txt` must fail with a
//!   builder-level error (the text itself is well-formed);
//! * `corpus/programs/*.bin` are byte programs for the shared model-based
//!   interpreter (`avglocal_integration_tests::fuzz::run_program`) and must
//!   complete with zero divergences.
//!
//! The binary snapshot cases are derived from the real codec; run the
//! `#[ignore]`d `regenerate_derived_corpus` test to rewrite them after a
//! deliberate format change.

use std::fs;
use std::path::{Path, PathBuf};

use avglocal::graph::io::from_edge_list;
use avglocal::graph::{generators, CsrGraph, GraphError};
use avglocal_integration_tests::fuzz::run_program;

fn corpus_dir(kind: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus").join(kind)
}

/// All corpus files of `kind` with the given extension, sorted for
/// deterministic replay order.
fn corpus_files(kind: &str, extension: &str) -> Vec<PathBuf> {
    let dir = corpus_dir(kind);
    let entries = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus directory {} missing: {e}", dir.display()));
    let mut files: Vec<PathBuf> = entries
        .map(|entry| entry.expect("corpus directory is readable").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == extension))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no .{extension} corpus files in {}", dir.display());
    files
}

fn stem(path: &Path) -> &str {
    path.file_stem().and_then(|s| s.to_str()).expect("corpus file names are UTF-8")
}

#[test]
fn snapshot_corpus_replays_clean() {
    for path in corpus_files("snapshot", "bin") {
        let name = stem(&path).to_string();
        let bytes = fs::read(&path).expect("corpus file is readable");
        match CsrGraph::from_bytes(&bytes) {
            Ok(decoded) => {
                assert!(name.ends_with("_valid"), "{name}: corrupt case unexpectedly accepted");
                assert_eq!(decoded.to_bytes(), bytes, "{name}: round-trip not bit-identical");
            }
            Err(GraphError::CorruptSnapshot { offset, reason }) => {
                assert!(
                    !name.ends_with("_valid"),
                    "{name}: valid case rejected at byte {offset}: {reason}"
                );
                assert!(offset <= bytes.len(), "{name}: error offset outside the input");
            }
            Err(other) => panic!("{name}: unexpected error variant: {other}"),
        }
    }
}

#[test]
fn snapshot_file_corpus_replays_clean() {
    for path in corpus_files("snapshot_files", "snap") {
        let name = stem(&path).to_string();
        let bytes = fs::read(&path).expect("corpus file is readable");
        match CsrGraph::read_from_path(&path) {
            Ok(decoded) => {
                assert!(name.ends_with("_valid"), "{name}: torn file unexpectedly accepted");
                assert_eq!(decoded.to_bytes(), bytes, "{name}: round-trip not bit-identical");
            }
            Err(GraphError::CorruptSnapshot { offset, reason }) => {
                assert!(
                    !name.ends_with("_valid"),
                    "{name}: valid file rejected at byte {offset}: {reason}"
                );
                assert!(offset <= bytes.len(), "{name}: error offset outside the file");
            }
            Err(other) => panic!("{name}: expected CorruptSnapshot, got: {other}"),
        }
    }
}

#[test]
fn edge_list_corpus_replays_clean() {
    for path in corpus_files("edge_list", "txt") {
        let name = stem(&path).to_string();
        let text = fs::read_to_string(&path).expect("corpus file is readable");
        let result = from_edge_list(&text);
        if name.ends_with("_valid") {
            let graph = result.unwrap_or_else(|e| panic!("{name}: valid case rejected: {e}"));
            assert!(graph.node_count() > 0, "{name}: valid case decoded to nothing");
        } else if let Some((_, line)) = name.rsplit_once("_malformed_l") {
            let expected: usize = line.parse().expect("file name encodes the expected line");
            match result {
                Err(GraphError::MalformedLine { line, .. }) => {
                    assert_eq!(line, expected, "{name}: wrong line reported");
                }
                other => panic!("{name}: expected MalformedLine on line {expected}, got {other:?}"),
            }
        } else {
            match result {
                Err(GraphError::MalformedLine { line, reason }) => {
                    panic!(
                        "{name}: structurally valid text reported MalformedLine {line}: {reason}"
                    )
                }
                Err(_) => {}
                Ok(_) => panic!("{name}: invalid case unexpectedly accepted"),
            }
        }
    }
}

#[test]
fn program_corpus_replays_with_zero_divergences() {
    for path in corpus_files("programs", "bin") {
        let bytes = fs::read(&path).expect("corpus file is readable");
        if let Err(divergence) = run_program(&bytes) {
            panic!("{}: {divergence}", stem(&path));
        }
    }
}

/// FNV-1a 64, mirroring the snapshot checksum so derived corrupt cases can be
/// re-checksummed (corruption *behind* a valid checksum exercises the
/// structural validators instead of the integrity check).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn fix_checksum(bytes: &mut [u8]) {
    let checksum = fnv1a(&bytes[20..]).to_le_bytes();
    bytes[12..20].copy_from_slice(&checksum);
}

/// Rewrites the derived snapshot corpus from the current codec. Run with
/// `cargo test --test fuzz_regressions -- --ignored regenerate` after a
/// deliberate format change; the hand-written text corpus is never touched.
#[test]
#[ignore = "writes the derived corpus files; run explicitly after format changes"]
fn regenerate_derived_corpus() {
    let dir = corpus_dir("snapshot");
    fs::create_dir_all(&dir).expect("corpus directory is writable");
    let ring = generators::cycle(6).unwrap().freeze();
    let base = ring.to_bytes();
    fs::write(dir.join("ring6_valid.bin"), &base).unwrap();

    let disconnected = avglocal::graph::GraphBuilder::new()
        .nodes([7, 3, 11, 5, 2])
        .edges([(7, 3), (5, 2)])
        .build()
        .unwrap()
        .freeze();
    fs::write(dir.join("disconnected5_valid.bin"), disconnected.to_bytes()).unwrap();
    fs::write(dir.join("empty_valid.bin"), avglocal::graph::Graph::new().freeze().to_bytes())
        .unwrap();

    fs::write(dir.join("truncated_header.bin"), &base[..30]).unwrap();
    fs::write(dir.join("truncated_body.bin"), &base[..base.len() - 5]).unwrap();

    let mut bad_magic = base.clone();
    bad_magic[..8].copy_from_slice(b"NOTASNAP");
    fs::write(dir.join("bad_magic.bin"), &bad_magic).unwrap();

    let mut bad_version = base.clone();
    bad_version[8..12].copy_from_slice(&99u32.to_le_bytes());
    fix_checksum(&mut bad_version);
    fs::write(dir.join("unsupported_version.bin"), &bad_version).unwrap();

    let mut bitflip = base.clone();
    bitflip[base.len() / 2] ^= 0x10;
    fs::write(dir.join("bitflip_unchecksummed.bin"), &bitflip).unwrap();

    let mut odd_edges = base.clone();
    odd_edges[28..36].copy_from_slice(&13u64.to_le_bytes());
    fix_checksum(&mut odd_edges);
    fs::write(dir.join("odd_edge_count.bin"), &odd_edges).unwrap();

    let mut huge_counts = base.clone();
    huge_counts[20..28].copy_from_slice(&u64::MAX.to_le_bytes());
    fix_checksum(&mut huge_counts);
    fs::write(dir.join("huge_node_count.bin"), &huge_counts).unwrap();

    // Node 0's first neighbour (node 1) rewritten to 3: 0 lists 3 but 3
    // does not list 0 — asymmetry behind a valid checksum.
    let targets_at = 44 + 4 * (ring.node_count() + 1);
    let mut asymmetric = base.clone();
    asymmetric[targets_at..targets_at + 4].copy_from_slice(&3u32.to_le_bytes());
    fix_checksum(&mut asymmetric);
    fs::write(dir.join("asymmetric_adjacency.bin"), &asymmetric).unwrap();

    let mut bad_labels = base.clone();
    let labels_at = targets_at + 4 * 2 * ring.edge_count();
    bad_labels[labels_at] ^= 1;
    fix_checksum(&mut bad_labels);
    fs::write(dir.join("wrong_component_label.bin"), &bad_labels).unwrap();

    // The on-disk torn-write corpus: whole files shaped like what a crash
    // can leave behind for `CsrGraph::read_from_path` (the atomic-rename
    // writer makes most of these unreachable in our own store, but recovery
    // must survive foreign or pre-hardening files too).
    let files = corpus_dir("snapshot_files");
    fs::create_dir_all(&files).expect("corpus directory is writable");
    let snap = generators::cycle(8).unwrap().freeze().to_bytes();
    fs::write(files.join("ring8_valid.snap"), &snap).unwrap();
    fs::write(files.join("crash_before_write_empty.snap"), b"").unwrap();
    fs::write(files.join("torn_after_one_byte.snap"), &snap[..1]).unwrap();
    fs::write(files.join("torn_mid_header.snap"), &snap[..16]).unwrap();
    fs::write(files.join("torn_half.snap"), &snap[..snap.len() / 2]).unwrap();
    fs::write(files.join("torn_tail.snap"), &snap[..snap.len() - 5]).unwrap();

    let mut padded = snap.clone();
    padded.extend_from_slice(&snap[..7]);
    fs::write(files.join("trailing_garbage.snap"), &padded).unwrap();

    // A page of zeros mid-file at full length — the classic torn sector.
    let mut zeroed = snap.clone();
    let from = zeroed.len() / 3;
    let to = (from + 64).min(zeroed.len());
    zeroed[from..to].fill(0);
    fs::write(files.join("zeroed_page.snap"), &zeroed).unwrap();
}
