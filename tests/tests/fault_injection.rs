//! Fault injection against the executors, through the pool's failpoints.
//!
//! The `rayon` compat pool exposes a test-only failpoint facility
//! (`rayon::failpoints`): a plan armed on the publishing thread makes worker
//! chunks panic and/or stall on a schedule. These tests drive real
//! [`FrozenExecutor`]/[`BallExecutor`] runs through injected panic storms and
//! delays to prove the robustness claims stated in the pool docs:
//!
//! * a panic storm never kills the process or wedges the pool;
//! * the panic (or typed error) re-thrown from a parallel run is the first
//!   one **in node order**, deterministically, however chunks interleave;
//! * a session remains fully usable — bit-identical results — after a
//!   poisoned run;
//! * a worker killed *outside* any job boundary (`failpoints::kill_workers`)
//!   is respawned by the pool supervisor and the pool keeps serving.
//!
//! CI runs this file under both `AVG_LOCAL_THREADS=1` (inline execution,
//! where injected panics propagate directly) and `AVG_LOCAL_THREADS=4` (the
//! work-stealing pool), so both execution paths face the same storms.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

use avglocal::prelude::*;
use avglocal::runtime::examples::NaiveLargestId;
use avglocal::runtime::{BallAlgorithm, LocalView, RuntimeError, Scheduling};
use avglocal_integration_tests::shuffled_ring;
use proptest::prelude::*;
use rayon::failpoints::{arm, disarm, Plan};

/// Refuses to decide whenever the centre carries a marked identifier — those
/// nodes saturate their component and report `NonTerminating`.
struct RefuseMarked {
    refuse: HashSet<u64>,
}

impl BallAlgorithm for RefuseMarked {
    type Output = u64;

    fn decide(&self, view: &LocalView, _knowledge: &Knowledge) -> Option<u64> {
        let id = view.center_identifier().value();
        if self.refuse.contains(&id) {
            None
        } else {
            Some(id)
        }
    }
}

/// Panics (on purpose) for every centre whose identifier is below the
/// threshold, naming the centre's (globally unique) identifier so payloads
/// are comparable across runs.
struct PanicBelow {
    threshold: u64,
}

impl BallAlgorithm for PanicBelow {
    type Output = u64;

    fn decide(&self, view: &LocalView, _knowledge: &Knowledge) -> Option<u64> {
        let id = view.center_identifier().value();
        assert!(id >= self.threshold, "deliberate panic at id {id}");
        Some(id)
    }
}

/// The message carried by a caught panic, whatever payload type it used.
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[test]
fn injected_panic_storms_leave_the_session_usable() {
    let graph = shuffled_ring(512, 9);
    let session = FrozenExecutor::new(&graph);
    let baseline = session.run(&NaiveLargestId, Knowledge::none()).unwrap();

    for round in 0..3 {
        // Every chunk claim panics: the entire run is one panic storm.
        arm(Plan::new().panic_every(1));
        let storm =
            catch_unwind(AssertUnwindSafe(|| session.run(&NaiveLargestId, Knowledge::none())));
        disarm();
        let payload = storm.expect_err("a full panic storm must surface as a panic");
        assert!(
            payload_message(payload.as_ref()).contains("injected failpoint panic"),
            "round {round}: unexpected payload"
        );

        // The poisoned session keeps answering, bit-identically.
        let after = session.run(&NaiveLargestId, Knowledge::none()).unwrap();
        assert_eq!(after.outputs(), baseline.outputs(), "round {round}");
        assert_eq!(after.radii(), baseline.radii(), "round {round}");
    }
}

#[test]
fn algorithm_panics_rethrow_the_first_node_in_order() {
    let graph = shuffled_ring(384, 21);
    let csr = graph.freeze();
    // Roughly a quarter of the nodes panic; the payload re-thrown must name
    // the first panicking node in *index* order (via its unique identifier),
    // not whichever worker happened to fail first.
    let threshold = 96;
    let expected_id = (0..graph.node_count())
        .map(|v| graph.identifier(NodeId::new(v)).value())
        .find(|&id| id < threshold)
        .expect("some node carries a small identifier");
    let algorithm = PanicBelow { threshold };

    for scheduling in [Scheduling::WorkStealing, Scheduling::StaticChunks] {
        let executor = BallExecutor::new().with_scheduling(scheduling);
        for round in 0..4 {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                executor.run_frozen(&csr, &algorithm, Knowledge::none())
            }));
            let payload = caught.expect_err("marked nodes must panic the run");
            assert_eq!(
                payload_message(payload.as_ref()),
                format!("deliberate panic at id {expected_id}"),
                "{scheduling:?}, round {round}"
            );
        }
    }
}

#[test]
fn first_typed_error_in_node_order_survives_delay_injection() {
    let graph = shuffled_ring(256, 5);
    let csr = graph.freeze();
    // Mark three identifiers scattered across the ring; the reported
    // `NonTerminating` node must be the smallest index among them.
    let marked: HashSet<u64> =
        [40, 170, 230].iter().map(|&v| graph.identifier(NodeId::new(v)).value()).collect();
    let algorithm = RefuseMarked { refuse: marked };

    let want = BallExecutor::new()
        .run_frozen_sequential(&csr, &algorithm, Knowledge::none())
        .expect_err("refusing nodes must error");
    assert_eq!(want, RuntimeError::NonTerminating { node: NodeId::new(40) });

    for scheduling in [Scheduling::WorkStealing, Scheduling::StaticChunks] {
        let executor = BallExecutor::new().with_scheduling(scheduling);
        for round in 0..4 {
            arm(Plan::new().delay_every(3, 80));
            let got = executor.run_frozen(&csr, &algorithm, Knowledge::none());
            disarm();
            let got = got.expect_err("refusing nodes must error");
            assert_eq!(got, want, "{scheduling:?}, round {round}");
        }
    }
}

#[test]
fn killed_workers_are_respawned_and_the_pool_keeps_serving() {
    // Inline execution has no worker threads to kill; the supervisor path
    // only exists on a real pool.
    if rayon::current_num_threads() < 2 {
        return;
    }
    let graph = shuffled_ring(256, 3);
    let session = FrozenExecutor::new(&graph);
    let baseline = session.run(&NaiveLargestId, Knowledge::none()).unwrap();

    let before = rayon::pool::worker_respawn_count();
    rayon::failpoints::kill_workers(2);

    // Keep submitting jobs until both kill tokens have been consumed (each
    // kills one worker at a job boundary) and the supervisor has respawned
    // the casualties. Every run that completes meanwhile must stay
    // bit-identical — a dying worker never corrupts or wedges a job.
    let mut rounds = 0usize;
    while rayon::pool::worker_respawn_count() < before + 2 {
        let run = session.run(&NaiveLargestId, Knowledge::none()).unwrap();
        assert_eq!(run.outputs(), baseline.outputs(), "round {rounds}");
        assert_eq!(run.radii(), baseline.radii(), "round {rounds}");
        rounds += 1;
        assert!(rounds < 500, "kill tokens never consumed after {rounds} runs");
    }

    // The fully respawned pool still serves, bit-identically.
    for round in 0..3 {
        let after = session.run(&NaiveLargestId, Knowledge::none()).unwrap();
        assert_eq!(after.outputs(), baseline.outputs(), "post-respawn round {round}");
        assert_eq!(after.radii(), baseline.radii(), "post-respawn round {round}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random delay plans perturb which worker claims which chunk when;
    /// outputs and radii must stay bit-identical to the sequential reference
    /// on both schedules.
    #[test]
    fn delayed_interleavings_stay_bit_identical_to_sequential(
        n in 8usize..160,
        seed in 0u64..64,
        every in 1u64..5,
        micros in 0u64..150,
    ) {
        let graph = shuffled_ring(n, seed);
        let csr = graph.freeze();
        let want = BallExecutor::new()
            .run_frozen_sequential(&csr, &NaiveLargestId, Knowledge::none())
            .unwrap();

        arm(Plan::new().delay_every(every, micros));
        let stealing = BallExecutor::new()
            .with_scheduling(Scheduling::WorkStealing)
            .run_frozen(&csr, &NaiveLargestId, Knowledge::none());
        let chunked = BallExecutor::new()
            .with_scheduling(Scheduling::StaticChunks)
            .run_frozen(&csr, &NaiveLargestId, Knowledge::none());
        disarm();

        let stealing = stealing.unwrap();
        let chunked = chunked.unwrap();
        prop_assert_eq!(stealing.outputs(), want.outputs());
        prop_assert_eq!(stealing.radii(), want.radii());
        prop_assert_eq!(chunked.outputs(), want.outputs());
        prop_assert_eq!(chunked.radii(), want.radii());
    }
}
