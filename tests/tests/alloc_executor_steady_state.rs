//! Extends the zero-allocation acceptance criterion to the work-stealing
//! executor path: once a [`avglocal::runtime::FrozenExecutor`] session has
//! warmed up (pool started, per-participant grower scratch parked), a full
//! `run` must allocate only a bounded handful of per-run buffers — output
//! vectors, job bookkeeping, state slots — **never anything per probe**.
//! With per-worker scratch reuse across stolen chunks, the allocation count
//! of a steady-state run is independent of the node count.
//!
//! The whole binary holds exactly this one test so the counting allocator
//! observes nothing but the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use avglocal::algorithms::LargestId;
use avglocal::prelude::*;
use avglocal::runtime::Knowledge;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates verbatim to `System`; the counter has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: forwards `layout` unchanged to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    // SAFETY: forwards the caller's `ptr`/`layout` pair, whose validity is
    // the caller's `dealloc` contract, unchanged to `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: forwards the caller's arguments, whose validity is the
    // caller's `realloc` contract, unchanged to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_run_frozen_allocations_are_bounded_per_run() {
    let n = 2048usize;
    let graph = cycle_with_assignment(n, &IdAssignment::Identity)
        .expect("a 2048-cycle is a valid instance");
    let session = FrozenExecutor::new(&graph);

    // Warm-up: starts the worker pool (thread stacks, injector) and parks
    // one fully grown scratch per participant in the session's pool.
    let warm = session.run(&LargestId, Knowledge::none()).expect("largest-ID terminates");
    assert_eq!(warm.node_count(), n);

    // Steady state: measure a handful of further runs. Each may allocate
    // per-run buffers (outputs, radii, the per-node result vector, the job's
    // state slots) but nothing proportional to the number of probes — the
    // per-participant scratch comes warm out of the session's pool and is
    // reused across every stolen chunk.
    const RUNS: u64 = 4;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..RUNS {
        let run = session.run(&LargestId, Knowledge::none()).expect("largest-ID terminates");
        assert_eq!(run.node_count(), n);
    }
    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;
    let per_run = allocations / RUNS;

    // `n` probes per run: a per-probe allocation would cost thousands here.
    // The observed steady state is < 10 per run single-threaded and grows
    // only with the pool size (state slots), never with `n`.
    let budget = 64;
    assert!(
        per_run < budget,
        "steady-state run_frozen must not allocate per probe: \
         {per_run} allocations per run over {n} nodes (budget {budget})"
    );
}
