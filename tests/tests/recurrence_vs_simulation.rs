//! E2 end-to-end: the Section 2 recurrence, OEIS A000788 and the simulator
//! agree about the worst-case total radius.

use avglocal::analysis::{a000788, recurrence};
use avglocal::prelude::*;

#[test]
fn recurrence_equals_a000788_for_a_wide_range() {
    let a = recurrence::segment_worst_totals(2048);
    for (n, &total) in a.iter().enumerate() {
        assert_eq!(total, a000788::total_bit_count(n as u64), "n={n}");
    }
}

#[test]
fn exhaustive_search_matches_theory_exactly() {
    // For every n we can afford to enumerate, the worst total radius over all
    // identifier permutations equals a(n-1) + floor(n/2).
    for n in 3..=7usize {
        let search = AdversarySearch::new(Problem::LargestId, Measure::Total);
        let result = search.exhaustive(n).unwrap();
        assert_eq!(result.objective as u64, theory::largest_id_worst_total(n), "n={n}");
    }
}

#[test]
fn simulated_totals_never_exceed_theory() {
    for n in [8usize, 16, 33, 64, 128] {
        for seed in 0..5u64 {
            let profile =
                run_on_cycle(Problem::LargestId, n, &IdAssignment::Shuffled { seed }).unwrap();
            assert!(
                (profile.total() as u64) <= theory::largest_id_worst_total(n),
                "n={n} seed={seed}"
            );
        }
    }
}

#[test]
fn worst_case_segment_assignment_realises_large_totals_on_the_cycle() {
    // Lay the recurrence's worst-case segment assignment around the cycle
    // (winner gets the largest identifier, the segment follows). The realised
    // total must reach at least the recurrence value — the constructive side
    // of the Θ(n log n) bound.
    for n in [16usize, 32, 64, 128] {
        let segment = recurrence::worst_case_segment_assignment(n - 1);
        // Position 0 is the winner (identifier n-1), positions 1..n hold the
        // segment's identifiers (values 0..n-1 from the recurrence).
        let mut arrangement: Vec<usize> = Vec::with_capacity(n);
        arrangement.push(n - 1);
        arrangement.extend(segment.iter().map(|&x| x as usize));
        let assignment = IdAssignment::from_vec(arrangement).unwrap();
        let profile = run_on_cycle(Problem::LargestId, n, &assignment).unwrap();
        let recurrence_total = a000788::total_bit_count(n as u64 - 1) + (n as u64) / 2;
        assert!(
            profile.total() as u64 >= recurrence_total.saturating_sub(n as u64),
            "n={n}: measured {} far below recurrence {}",
            profile.total(),
            recurrence_total
        );
        assert!(profile.total() as u64 <= recurrence_total);
    }
}

#[test]
fn hill_climbing_approaches_the_recurrence_value() {
    let n = 24usize;
    let search = AdversarySearch::new(Problem::LargestId, Measure::Total);
    let climbed = search.hill_climb(n, 3, 150, 9).unwrap();
    let theory_total = theory::largest_id_worst_total(n) as f64;
    assert!(
        climbed.objective >= 0.75 * theory_total,
        "hill climbing reached {} of theoretical {}",
        climbed.objective,
        theory_total
    );
}

#[test]
fn total_radius_grows_superlinearly_under_adversarial_assignments() {
    // The measured worst-ish totals (identity assignment is already Θ(n)) and
    // the theory bound should both grow faster than linear but slower than
    // quadratic.
    let n1 = 256usize;
    let n2 = 1024usize;
    let t1 = theory::largest_id_worst_total(n1) as f64;
    let t2 = theory::largest_id_worst_total(n2) as f64;
    let growth = t2 / t1;
    assert!(growth > 4.0 && growth < 8.0, "growth factor {growth}");
}
