//! The measure layer against brute-force recomputation.
//!
//! Every measure a sweep row reports (node-averaged, edge-averaged under
//! both endpoint weightings, worst case, total, median) must equal a
//! from-scratch recomputation that runs the same trials through the plain
//! `run_on_topology` entry point and folds the raw radius vectors by hand —
//! same summation order, so the comparison is exact, not approximate.
//! The per-component mode is checked the same way: aggregate and
//! per-component sets recomputed from the labelled radius vectors.

use avglocal::graph::{ComponentLabels, ComponentMode};
use avglocal::prelude::*;
use proptest::prelude::*;

/// Sizes for which every deterministic family (including the torus) has an
/// instance.
const UNIVERSAL_SIZES: [usize; 3] = [9, 16, 24];

fn supported_topologies(n: usize, seed: u64) -> Vec<Topology> {
    let mut all = Topology::DETERMINISTIC.to_vec();
    all.push(Topology::gnp_connected(n, seed));
    all
}

/// Brute-force edge-averaged measure straight from the definition.
fn brute_force_edge_averaged(graph: &Graph, radii: &[usize], use_max: bool) -> f64 {
    let mut sum = 0.0;
    let mut edges = 0usize;
    for (u, v) in graph.edges() {
        let (ru, rv) = (radii[u.index()], radii[v.index()]);
        sum += if use_max { ru.max(rv) as f64 } else { (ru + rv) as f64 / 2.0 };
        edges += 1;
    }
    if edges == 0 {
        0.0
    } else {
        sum / edges as f64
    }
}

/// Brute-force nearest-rank median.
fn brute_force_median(radii: &[usize]) -> f64 {
    if radii.is_empty() {
        return 0.0;
    }
    let mut sorted = radii.to_vec();
    sorted.sort_unstable();
    sorted[(500 * (sorted.len() - 1) + 500) / 1000] as f64
}

/// Recomputes a one-size sweep row from scratch: independent trial runs via
/// `run_on_topology`, measures folded by hand, aggregated in trial order.
fn brute_force_row(
    problem: Problem,
    topology: &Topology,
    n: usize,
    policy: &AssignmentPolicy,
    trials: usize,
) -> (f64, f64, f64, f64, f64, f64) {
    let mut worst = Vec::new();
    let mut averages = Vec::new();
    let mut totals = Vec::new();
    let mut edge_max = Vec::new();
    let mut edge_mean = Vec::new();
    let mut medians = Vec::new();
    for trial in 0..trials {
        let assignment = policy.assignment_for_trial(trial);
        let graph = topology_with_assignment(topology, n, &assignment).unwrap();
        let profile = run_on_topology(problem, topology, n, &assignment).unwrap();
        let radii = profile.radii();
        worst.push(profile.max() as f64);
        averages.push(profile.average());
        totals.push(profile.total() as f64);
        edge_max.push(brute_force_edge_averaged(&graph, radii, true));
        edge_mean.push(brute_force_edge_averaged(&graph, radii, false));
        medians.push(brute_force_median(radii));
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    (
        mean(&worst),
        mean(&averages),
        mean(&totals),
        mean(&edge_max),
        mean(&edge_mean),
        mean(&medians),
    )
}

#[test]
fn sweep_measures_equal_brute_force_on_every_family() {
    for &n in &UNIVERSAL_SIZES {
        for topology in supported_topologies(n, 5) {
            let policy = AssignmentPolicy::Random { base_seed: 3 };
            let trials = 3;
            let result = Sweep::on(Problem::LargestId, topology.clone(), vec![n])
                .with_policy(policy.clone())
                .with_trials(trials)
                .run()
                .unwrap();
            let row = &result.rows[0];
            let (worst, average, total, edge_max, edge_mean, median) =
                brute_force_row(Problem::LargestId, &topology, n, &policy, trials);
            assert_eq!(row.worst_case, worst, "{topology} n={n}");
            assert_eq!(row.average, average, "{topology} n={n}");
            assert_eq!(row.total, total, "{topology} n={n}");
            assert_eq!(row.edge_averaged, edge_max, "{topology} n={n}");
            assert_eq!(row.edge_averaged_mean, edge_mean, "{topology} n={n}");
            assert_eq!(row.median, median, "{topology} n={n}");
            assert_eq!(row.components, 1, "{topology} n={n}");
        }
    }
}

#[test]
fn round_based_problems_report_edge_measures_too() {
    // Cole–Vishkin goes through the round-based pipeline (no frozen
    // snapshot), so the measure layer folds over the Graph edge list.
    let policy = AssignmentPolicy::Random { base_seed: 7 };
    let result = Sweep::new(Problem::ThreeColoring, vec![24])
        .with_policy(policy.clone())
        .with_trials(2)
        .run()
        .unwrap();
    let row = &result.rows[0];
    let (worst, average, _, edge_max, edge_mean, median) =
        brute_force_row(Problem::ThreeColoring, &Topology::Cycle, 24, &policy, 2);
    assert_eq!(row.worst_case, worst);
    assert_eq!(row.average, average);
    assert_eq!(row.edge_averaged, edge_max);
    assert_eq!(row.edge_averaged_mean, edge_mean);
    assert_eq!(row.median, median);
}

#[test]
fn study_measures_equal_brute_force() {
    let n = 32;
    let samples = 5;
    let base_seed = 11;
    let study =
        random_permutation_study_on(Problem::LargestId, &Topology::Grid, n, samples, base_seed)
            .unwrap();
    let mut edge_max = Vec::new();
    let mut medians = Vec::new();
    for i in 0..samples {
        let assignment =
            IdAssignment::Shuffled { seed: avglocal::graph::derive_seed(base_seed, i as u64) };
        let graph = topology_with_assignment(&Topology::Grid, n, &assignment).unwrap();
        let profile = run_on_topology(Problem::LargestId, &Topology::Grid, n, &assignment).unwrap();
        edge_max.push(brute_force_edge_averaged(&graph, profile.radii(), true));
        medians.push(brute_force_median(profile.radii()));
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert_eq!(study.edge_averaged_radius.mean, mean(&edge_max));
    assert_eq!(study.median_radius.mean, mean(&medians));
}

#[test]
fn per_component_aggregates_recompose_from_the_components() {
    // Subcritical G(n, p): totals are additive over components, the worst
    // case is the max, and node/edge averages recompose from the
    // component-weighted sums.
    for seed in [2u64, 9, 21] {
        let n = 40;
        let topology = Topology::Gnp { p: 1.0 / n as f64, seed };
        let (profile, measures) = run_on_topology_per_component(
            Problem::LargestId,
            &topology,
            n,
            &IdAssignment::Shuffled { seed: 31 },
        )
        .unwrap();
        let agg = &measures.aggregate;
        assert_eq!(agg.nodes, n);
        let node_sum: usize = measures.per_component.iter().map(|m| m.nodes).sum();
        assert_eq!(node_sum, n);
        let total: f64 = measures.per_component.iter().map(|m| m.total).sum();
        assert_eq!(total, agg.total);
        let worst = measures.per_component.iter().map(|m| m.worst_case).fold(0.0, f64::max);
        assert_eq!(worst, agg.worst_case);
        let edge_sum: f64 =
            measures.per_component.iter().map(|m| m.edge_averaged * m.edges as f64).sum();
        if agg.edges > 0 {
            assert!((edge_sum / agg.edges as f64 - agg.edge_averaged).abs() < 1e-9);
        }
        // And the aggregate matches a direct recomputation on the labelled
        // instance.
        let mut graph = topology.build_for(n, ComponentMode::PerComponent).unwrap();
        IdAssignment::Shuffled { seed: 31 }.apply(&mut graph).unwrap();
        assert_eq!(agg.edge_averaged, brute_force_edge_averaged(&graph, profile.radii(), true));
        // Radii are scoped to components: no ball outgrows its component.
        let labels = ComponentLabels::of_graph(&graph);
        for v in graph.nodes() {
            let size = labels.sizes()[labels.label(v) as usize] as usize;
            assert!(profile.radius(v).unwrap() < size.max(1));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The regular-family sandwich: on cycles (2-regular) the edge-averaged
    /// (max-endpoint) measure is within [1, 2] x the node-averaged one, for
    /// every problem and identifier assignment.
    #[test]
    fn cycle_edge_average_is_sandwiched(n in 4usize..48, seed in 0u64..200) {
        let assignment = IdAssignment::Shuffled { seed };
        let graph = cycle_with_assignment(n, &assignment).unwrap();
        let profile = run_on_cycle(Problem::LargestId, n, &assignment).unwrap();
        let edge = brute_force_edge_averaged(&graph, profile.radii(), true);
        let node = profile.average();
        prop_assert!(edge >= node - 1e-12);
        prop_assert!(edge <= 2.0 * node + 1e-12);
    }

    /// Per-component sweeps are deterministic: same configuration, same
    /// rows, bit for bit — the labelling, the trial seeds and the aggregate
    /// order are all canonical.
    #[test]
    fn per_component_sweeps_are_deterministic(seed in 0u64..100) {
        let n = 32;
        let sweep = |s: u64| {
            Sweep::on(Problem::LargestId, Topology::Gnp { p: 1.0 / 32.0, seed: s }, vec![n])
                .with_policy(AssignmentPolicy::Random { base_seed: 1 })
                .with_trials(2)
                .with_component_mode(ComponentMode::PerComponent)
                .run()
                .unwrap()
        };
        prop_assert_eq!(sweep(seed), sweep(seed));
    }
}
