//! E3/E4 end-to-end: 3-colouring upper bound (Cole–Vishkin) and lower bound
//! (Theorem 1) under random and adversarial identifier assignments.

use avglocal::algorithms::{landmarks, verify};
use avglocal::prelude::*;
use avglocal_integration_tests::{shuffled_ring, test_sizes};

#[test]
fn cole_vishkin_is_correct_and_constant_across_sizes() {
    for n in test_sizes() {
        let g = shuffled_ring(n, 41);
        let orientation = avglocal::algorithms::RingOrientation::trace(&g).unwrap();
        let algo = avglocal::algorithms::ThreeColorRing::new(orientation);
        let run = SyncExecutor::new().run(&g, &algo, Knowledge::none()).unwrap();
        assert!(verify::is_proper_coloring(&g, &run.outputs(), 3), "n={n}");
        let profile = RadiusProfile::new(run.decision_rounds());
        assert_eq!(profile.max(), theory::cole_vishkin_upper_bound(64), "n={n}");
        assert_eq!(profile.average(), theory::cole_vishkin_upper_bound(64) as f64, "n={n}");
    }
}

#[test]
fn coloring_average_respects_the_lower_bound() {
    // Theorem 1: no 3-colouring algorithm has average radius below
    // ½·log*(n/2). Both our colouring algorithms must respect it under every
    // assignment we try.
    for n in [64usize, 256, 1024] {
        let bound = theory::coloring_average_lower_bound(n);
        // The identity assignment makes the landmark colouring linear-radius
        // (one single landmark), which is slow to simulate at n = 1024, so it
        // is only exercised on the smaller rings.
        let mut assignments =
            vec![IdAssignment::Shuffled { seed: 0 }, IdAssignment::Shuffled { seed: 99 }];
        if n <= 256 {
            assignments.push(IdAssignment::Identity);
        }
        for assignment in assignments {
            let cv = run_on_cycle(Problem::ThreeColoring, n, &assignment).unwrap();
            assert!(cv.average() >= bound, "CV at n={n}: {} < {bound}", cv.average());
            let lm = run_on_cycle(Problem::LandmarkColoring, n, &assignment).unwrap();
            assert!(lm.average() >= bound, "landmark at n={n}: {} < {bound}", lm.average());
        }
    }
}

#[test]
fn section3_construction_does_not_fall_below_the_bound() {
    for n in [64usize, 128] {
        for problem in [Problem::ThreeColoring, Problem::LandmarkColoring] {
            let assignment = section3_assignment(problem, n).unwrap();
            let profile = run_on_cycle(problem, n, &assignment).unwrap();
            assert!(
                profile.average() >= theory::coloring_average_lower_bound(n),
                "{problem} at n={n}"
            );
        }
    }
}

#[test]
fn landmark_coloring_is_proper_under_adversarial_assignments() {
    // The hardest case for the landmark colouring is a monotone identifier
    // sequence (a single landmark); validity must not depend on the
    // assignment.
    for n in [16usize, 64, 129] {
        for assignment in [
            IdAssignment::Identity,
            IdAssignment::Reversed,
            IdAssignment::Rotated { shift: 3 },
            IdAssignment::Shuffled { seed: 4 },
        ] {
            let graph = cycle_with_assignment(n, &assignment).unwrap();
            let profile = Problem::LandmarkColoring.run(&graph).unwrap();
            assert_eq!(profile.len(), n);
            let marks = landmarks(&graph);
            assert!(!marks.is_empty());
            if assignment == IdAssignment::Identity {
                assert_eq!(marks.len(), 1);
                // A single landmark forces a linear worst-case radius but the
                // average stays much smaller than n.
                assert!(profile.max() >= n / 2 - 2);
            }
        }
    }
}

#[test]
fn mis_pipeline_is_valid_and_fast_on_all_sizes() {
    for n in test_sizes() {
        let g = shuffled_ring(n, 17);
        let in_set = avglocal::algorithms::run_mis(&g).unwrap();
        assert!(verify::is_maximal_independent_set(&g, &in_set), "n={n}");
        let profile = Problem::Mis.run(&g).unwrap();
        // MIS decides within three rounds of the end of the colouring phase.
        assert!(profile.max() <= theory::cole_vishkin_upper_bound(64) + 3, "n={n}");
    }
}

#[test]
fn full_information_coloring_matches_greedy_baseline() {
    let g = shuffled_ring(48, 23);
    let profile = Problem::FullInfoColoring.run(&g).unwrap();
    assert_eq!(profile.max(), 24);
    assert_eq!(profile.average(), 24.0);
    let colors = avglocal::algorithms::baselines::greedy_coloring(&g);
    assert!(verify::is_proper_coloring(&g, &colors, 3));
}
