//! Determinism of the work-stealing executor.
//!
//! The persistent pool claims chunks dynamically, so which participant runs
//! which node — and in which order — varies from run to run. These tests pin
//! down the property the whole experiment harness relies on: outputs, radii
//! and error selection of `run_frozen` are **bit-identical** to a sequential
//! left-to-right run, on every topology family, under maximally skewed
//! (adversarial) identifier assignments, and across repeated runs.

use avglocal::algorithms::LargestId;
use avglocal::analysis::recurrence::clustered_adversarial_arrangement;
use avglocal::prelude::*;
use avglocal::runtime::{BallExecutor, Knowledge, Scheduling};
use proptest::prelude::*;

/// The scheduler-adversarial assignment from the skewed bench: the paper's
/// worst-case `a(p)` segment arrangement packed into one quarter of the
/// ring, ascending filler, global maximum adjacent to the block (shared
/// construction: [`clustered_adversarial_arrangement`]).
fn clustered_adversarial(n: usize) -> IdAssignment {
    let ids = clustered_adversarial_arrangement(n).iter().map(|&id| id as usize).collect();
    IdAssignment::from_vec(ids).expect("clustered adversarial ids form a permutation")
}

/// Every topology family at a size each of them accepts.
fn families() -> Vec<(Topology, usize)> {
    vec![
        (Topology::Cycle, 64),
        (Topology::Path, 64),
        (Topology::CompleteBinaryTree, 63),
        (Topology::Grid, 64),
        (Topology::Torus, 36),
        (Topology::gnp_connected(48, 7), 48),
    ]
}

/// Maximally skewed assignments for a family: identity (the winner pays
/// `Θ(diameter)` while everyone else pays 1 on the ring), reversed, and —
/// on the cycle — the clustered worst-case-block construction.
fn skewed_assignments(topology: &Topology, n: usize) -> Vec<IdAssignment> {
    let mut assignments = vec![IdAssignment::Identity, IdAssignment::Reversed];
    if topology.is_cycle() && n >= 8 {
        assignments.push(clustered_adversarial(n));
    }
    assignments
}

#[test]
fn stealing_matches_sequential_on_all_families_under_skew() {
    for (topology, n) in families() {
        for assignment in skewed_assignments(&topology, n) {
            let mut graph = topology.build(n).unwrap();
            assignment.apply(&mut graph).unwrap();
            let csr = graph.freeze();
            let reference = BallExecutor::new()
                .run_frozen_sequential(&csr, &LargestId, Knowledge::none())
                .unwrap();
            for scheduling in [Scheduling::WorkStealing, Scheduling::StaticChunks] {
                let run = BallExecutor::new()
                    .with_scheduling(scheduling)
                    .run_frozen(&csr, &LargestId, Knowledge::none())
                    .unwrap();
                assert_eq!(
                    run.outputs(),
                    reference.outputs(),
                    "{topology}, {assignment:?}, {scheduling:?}"
                );
                assert_eq!(
                    run.radii(),
                    reference.radii(),
                    "{topology}, {assignment:?}, {scheduling:?}"
                );
            }
        }
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    // Scheduling-dependent results would show up as run-to-run differences:
    // run the same frozen session several times and demand equality of every
    // output and radius, on the most skewed cycle workload we have.
    let n = 1024;
    let graph = cycle_with_assignment(n, &clustered_adversarial(n)).unwrap();
    let session = FrozenExecutor::new(&graph);
    let first = session.run(&LargestId, Knowledge::none()).unwrap();
    for round in 0..4 {
        let again = session.run(&LargestId, Knowledge::none()).unwrap();
        assert_eq!(first.outputs(), again.outputs(), "round {round}");
        assert_eq!(first.radii(), again.radii(), "round {round}");
    }
}

#[test]
fn sweep_results_are_repeatable_under_the_pool() {
    // The whole harness path: parallel trials, nested parallel node loops,
    // per-participant session reuse — two identical sweeps must agree on
    // every aggregate bit for bit.
    let sweep = Sweep::new(Problem::LargestId, vec![32, 64])
        .with_policy(AssignmentPolicy::Random { base_seed: 9 })
        .with_trials(8);
    let a = sweep.run().unwrap();
    let b = sweep.run().unwrap();
    assert_eq!(a, b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Work-stealing output equals the sequential reference for random
    /// sizes, seeds and families.
    #[test]
    fn stealing_matches_sequential_on_random_instances(
        k in 3usize..20,
        seed in 0u64..500,
        family in 0usize..5,
    ) {
        let (topology, n) = match family {
            0 => (Topology::Cycle, k * 3),
            1 => (Topology::Path, k * 3),
            2 => (Topology::CompleteBinaryTree, k * 3),
            3 => (Topology::Grid, k * 3),
            // Both torus dimensions must be at least 3.
            _ => (Topology::Torus, 3 * k.max(3)),
        };
        let mut graph = topology.build(n).unwrap();
        IdAssignment::Shuffled { seed }.apply(&mut graph).unwrap();
        let csr = graph.freeze();
        let reference = BallExecutor::new()
            .run_frozen_sequential(&csr, &LargestId, Knowledge::none())
            .unwrap();
        let stolen = BallExecutor::new()
            .run_frozen(&csr, &LargestId, Knowledge::none())
            .unwrap();
        prop_assert_eq!(stolen.outputs(), reference.outputs());
        prop_assert_eq!(stolen.radii(), reference.radii());
    }
}
