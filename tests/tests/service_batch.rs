//! Property tests for the batched, sharded query path of the radius-query
//! service.
//!
//! The central claim of `query_batch`: however the node set is sharded
//! across the persistent pool — WorkStealing or StaticChunks, any shard
//! size, either CI thread leg — every completed batch entry is
//! **bit-identical** to a sequential single `query` of the same node on the
//! same pinned generation. On top of that, the batch-specific contracts:
//! one admission slot per batch regardless of size, typed *partial* replies
//! when the shared deadline expires mid-batch, per-entry typed failures
//! that never disturb their neighbours, and the same `QueryOptions`
//! consistency semantics as single queries.

use std::sync::Arc;

use avglocal::graph::{generators, CsrGraph, GraphError, IdAssignment, NodeId};
use avglocal::runtime::examples::NaiveLargestId;
use avglocal::runtime::{Knowledge, RuntimeError, Scheduling};
use avglocal::AggregateQueries;
use avglocal_service::{
    BatchOutcome, Consistency, QueryOptions, QueryRequest, RadiusQueryService, ServiceConfig,
    ServiceError, TestClock,
};
use proptest::prelude::*;

/// A cycle on `n` nodes with a shuffled identifier table, frozen.
fn shuffled_cycle(n: usize, seed: u64) -> CsrGraph {
    let mut graph = generators::cycle(n).expect("cycles are valid");
    IdAssignment::Shuffled { seed }.apply(&mut graph).expect("shuffles are permutations");
    graph.freeze()
}

fn service_on(csr: CsrGraph, config: ServiceConfig) -> RadiusQueryService<NaiveLargestId> {
    RadiusQueryService::new(
        NaiveLargestId,
        Knowledge::none(),
        csr,
        Arc::new(TestClock::new()),
        config,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `query_batch` replies are bit-identical to a loop of single `query`
    /// calls on the same pinned generation, across both schedulings and a
    /// spread of shard sizes (1 = pure per-node dynamic scheduling, larger
    /// shards, and one shard covering the whole batch).
    #[test]
    fn batch_entries_are_bit_identical_to_single_queries(
        n in 8usize..64,
        seed in 0u64..500,
        batch_len in 1usize..80,
        shard in 1usize..100,
        work_stealing in 0u8..2,
    ) {
        let csr = shuffled_cycle(n, seed);
        let scheduling =
            if work_stealing == 1 { Scheduling::WorkStealing } else { Scheduling::StaticChunks };
        let config = ServiceConfig::builder()
            .batch_shard(shard)
            .batch_scheduling(scheduling)
            .build()
            .expect("positive tunables are valid");
        let service = service_on(csr, config);

        // A scripted node list with duplicates and arbitrary order.
        let nodes: Vec<NodeId> =
            (0..batch_len).map(|q| NodeId::new((q * 7 + seed as usize) % n)).collect();
        let reply = service
            .query_batch(&QueryRequest::nodes(nodes.clone(), QueryOptions::new()))
            .expect("unlimited-budget batches admit");

        prop_assert_eq!(reply.len(), nodes.len());
        prop_assert!(reply.is_complete(), "no deadline, no faults: every entry completes");
        prop_assert_eq!(reply.epoch(), 1);
        for (slot, node) in reply.outcomes().iter().zip(&nodes) {
            let single = service.query(*node).expect("single queries complete");
            match slot {
                BatchOutcome::Completed { output, radius } => {
                    prop_assert_eq!(output, &single.output, "{:?}", node);
                    prop_assert_eq!(*radius, single.radius, "{:?}", node);
                }
                other => prop_assert!(false, "expected completion, got {:?}", other),
            }
        }
    }

    /// A whole batch costs exactly one admission slot: a service whose
    /// bound would shed the same nodes as individual concurrent queries
    /// admits them as one batch, and the admission counters say so.
    #[test]
    fn a_batch_holds_one_admission_slot(n in 8usize..48, seed in 0u64..200) {
        let config = ServiceConfig::builder().max_in_flight(1).build().unwrap();
        let service = service_on(shuffled_cycle(n, seed), config);
        let reply = service
            .query_batch(&QueryRequest::all(QueryOptions::new()))
            .expect("one batch fits the single slot");
        prop_assert_eq!(reply.len(), n);
        prop_assert!(reply.is_complete());
        let stats = service.stats();
        prop_assert_eq!(stats.admitted, 1, "one slot for the whole batch");
        prop_assert_eq!(stats.batches, 1);
        prop_assert_eq!(stats.batch_entries, n as u64);
        prop_assert_eq!(stats.shed, 0);
    }

    /// An expired shared deadline yields a typed **partial** reply: with a
    /// zero budget on an autoticking clock every entry is cancelled at
    /// radius 0, deterministically, on every scheduling.
    #[test]
    fn expired_batch_deadline_is_a_typed_partial_reply(
        n in 8usize..48,
        seed in 0u64..200,
        work_stealing in 0u8..2,
    ) {
        let scheduling =
            if work_stealing == 1 { Scheduling::WorkStealing } else { Scheduling::StaticChunks };
        let config =
            ServiceConfig::builder().batch_scheduling(scheduling).build().unwrap();
        let service = RadiusQueryService::new(
            NaiveLargestId,
            Knowledge::none(),
            shuffled_cycle(n, seed),
            Arc::new(TestClock::with_autotick(1)),
            config,
        );
        let reply = service
            .query_batch(&QueryRequest::all(QueryOptions::new().with_deadline(0)))
            .expect("an expired deadline is a partial reply, not an admission failure");
        prop_assert_eq!(reply.expired(), n);
        prop_assert_eq!(reply.completed(), 0);
        for outcome in reply.outcomes() {
            prop_assert!(
                matches!(outcome, BatchOutcome::Expired { radius: 0 }),
                "zero budget cancels before any growth, got {:?}", outcome
            );
        }
        // Folding the partial vector reports the same typed error a single
        // query would.
        prop_assert!(matches!(
            reply.radii(),
            Err(ServiceError::DeadlineExceeded { budget: 0, radius: 0 })
        ));
        prop_assert_eq!(service.stats().deadline_expired, n as u64);

        // A generous budget completes the identical request.
        let full = service
            .query_batch(&QueryRequest::all(QueryOptions::new()))
            .expect("unlimited-budget batches admit");
        prop_assert!(full.is_complete());
    }

    /// The aggregate endpoints agree with folding the sequential per-node
    /// answers by hand, on the same pinned generation.
    #[test]
    fn aggregates_fold_exactly_the_single_query_radii(n in 8usize..48, seed in 0u64..200) {
        let service = service_on(shuffled_cycle(n, seed), ServiceConfig::default());
        let radii: Vec<usize> = (0..n)
            .map(|v| service.query(NodeId::new(v)).expect("single queries complete").radius)
            .collect();

        let cdf = service.query_cdf(QueryOptions::new()).expect("aggregates admit");
        prop_assert_eq!(cdf.epoch, 1);
        prop_assert_eq!(&cdf.cdf, &avglocal::RadiusCdf::from_radii(&radii));

        let quantile = service.query_quantile(990, QueryOptions::new()).expect("aggregates admit");
        prop_assert_eq!(quantile.radius, cdf.cdf.quantile(990));

        let measures = service.query_measures(QueryOptions::new()).expect("aggregates admit");
        let profile = avglocal::RadiusProfile::new(radii);
        prop_assert_eq!(
            measures.measures,
            avglocal::MeasureSet::of_csr(&profile, service.pin().session().csr())
        );
    }

    /// The three historical entry points are exactly `query_with` under the
    /// corresponding `QueryOptions` — same replies, same epoch stamps.
    #[test]
    fn wrappers_are_equivalent_to_query_with(n in 8usize..48, seed in 0u64..200) {
        let service = service_on(shuffled_cycle(n, seed), ServiceConfig::default());
        for v in 0..n {
            let node = NodeId::new(v);
            let plain = service.query(node).unwrap();
            prop_assert_eq!(plain, service.query_with(node, QueryOptions::new()).unwrap());
            prop_assert_eq!(
                service.query_with_deadline(node, 1_000).unwrap(),
                service.query_with(node, QueryOptions::new().with_deadline(1_000)).unwrap()
            );
            prop_assert_eq!(
                service.query_latest(node).unwrap(),
                service
                    .query_with(
                        node,
                        QueryOptions::new()
                            .with_consistency(Consistency::Latest { retry_limit: 3 })
                    )
                    .unwrap()
            );
        }
    }
}

#[test]
fn out_of_bounds_entries_fail_typed_without_disturbing_neighbours() {
    let service = service_on(shuffled_cycle(12, 3), ServiceConfig::default());
    let nodes = vec![NodeId::new(2), NodeId::new(12), NodeId::new(5)];
    let reply = service.query_batch(&QueryRequest::nodes(nodes, QueryOptions::new())).unwrap();
    assert_eq!(reply.completed(), 2);
    assert!(matches!(
        &reply.outcomes()[1],
        BatchOutcome::Failed(RuntimeError::Graph(GraphError::NodeOutOfBounds {
            node_count: 12,
            ..
        }))
    ));
    assert!(reply.outcomes()[0].is_completed());
    assert!(reply.outcomes()[2].is_completed());
    // radii() surfaces the first failure in node order as the typed probe
    // error a single query would report.
    assert!(matches!(reply.radii(), Err(ServiceError::Probe(_))));
}

#[test]
fn batches_pin_one_epoch_and_latest_consistency_tracks_swaps() {
    let service = service_on(shuffled_cycle(24, 9), ServiceConfig::default());
    let before =
        service.query_batch(&QueryRequest::all(QueryOptions::new())).expect("batches admit");
    assert_eq!(before.epoch(), 1);

    service.publish_csr(shuffled_cycle(24, 10)).expect("valid candidates publish");

    // A pinned batch serves from the new current generation...
    let pinned =
        service.query_batch(&QueryRequest::all(QueryOptions::new())).expect("batches admit");
    assert_eq!(pinned.epoch(), 2);
    // ...and so does a latest-consistency batch (no concurrent swaps here,
    // so the first attempt is already current).
    let latest = service
        .query_batch(&QueryRequest::all(
            QueryOptions::new().with_consistency(Consistency::Latest { retry_limit: 2 }),
        ))
        .expect("batches admit");
    assert_eq!(latest.epoch(), 2);
    assert!(latest.is_complete());

    // The reply that pinned epoch 1 still folds against its own snapshot.
    assert_eq!(before.generation().epoch(), 1);
    assert_eq!(before.generation().node_count(), 24);
}

#[test]
fn builder_rejects_degenerate_batch_configs() {
    assert!(matches!(
        ServiceConfig::builder().batch_shard(0).build(),
        Err(avglocal_service::InvalidConfig::ZeroBatchShard)
    ));
    assert!(matches!(
        ServiceConfig::builder().max_in_flight(0).build(),
        Err(avglocal_service::InvalidConfig::ZeroMaxInFlight)
    ));
    assert!(matches!(
        ServiceConfig::builder().backoff_base(0).build(),
        Err(avglocal_service::InvalidConfig::ZeroBackoffBase)
    ));
}
