//! Verifies the acceptance criterion that the incremental [`BallGrower`]
//! performs **no heap allocation in the steady state**: once its scratch
//! buffers have warmed up on one full-component growth, re-centring and
//! re-growing (the per-node probe loop of the executor) must not allocate.
//!
//! The whole binary holds exactly this one test so the counting allocator
//! observes nothing but the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use avglocal::algorithms::LargestId;
use avglocal::graph::BallGrower;
use avglocal::prelude::*;
use avglocal::runtime::{BallAlgorithm, Knowledge, LocalView};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates verbatim to `System`; the counter has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: forwards `layout` unchanged to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    // SAFETY: forwards the caller's `ptr`/`layout` pair, whose validity is
    // the caller's `dealloc` contract, unchanged to `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: forwards the caller's arguments, whose validity is the
    // caller's `realloc` contract, unchanged to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn grower_steady_state_does_not_allocate() {
    let n = 512usize;
    let graph =
        cycle_with_assignment(n, &IdAssignment::Identity).expect("a 512-cycle is a valid instance");
    let csr = graph.freeze();
    let knowledge = Knowledge::none();

    // Warm-up: one full growth sizes every scratch buffer to its maximum
    // (the component has the same size from every centre).
    let mut grower = BallGrower::new(&csr, NodeId::new(0));
    while !grower.is_saturated() {
        grower.grow();
    }

    // Steady state: the exact probe loop the executor drives per node —
    // reset, consult the algorithm on the lazy view at each radius, grow.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut decisions = 0usize;
    for center in 0..n {
        grower.reset(NodeId::new(center));
        loop {
            let view = LocalView::from_grower(&grower);
            if let Some(_decision) = LargestId.decide(&view, &knowledge) {
                decisions += 1;
                break;
            }
            assert!(!view.is_saturated(), "largest-ID always decides on a saturated view");
            grower.grow();
        }
    }
    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;

    assert_eq!(decisions, n);
    assert_eq!(
        allocations, 0,
        "the incremental probe loop must not allocate in the steady state \
         ({allocations} allocations over {n} nodes)"
    );
}
