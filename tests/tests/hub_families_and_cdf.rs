//! The hub-weighted topology subsystem and the radius-CDF reporting layer,
//! tested through the whole stack.
//!
//! Two bundles of invariants:
//!
//! * **`RadiusCdf` invariants** on real sweep rows: the distribution is a
//!   genuine right-continuous ECDF (monotone, steps of `k / (trials * n)`,
//!   saturating at 1), its 500-per-mille point is bit-identical to the
//!   `Measure::Quantile { per_mille: 500 }` median column for single-trial
//!   rows, and merging per-trial distributions equals pooling the raw
//!   radius vectors.
//! * **Hub-family properties** across seeds: preferential attachment is
//!   deterministic per seed, realises `n` exactly, satisfies the handshake
//!   identity (degree sum = 2m) with the exact BA edge count, and stays
//!   connected; the power-law configuration model is deterministic, simple,
//!   and bounded by its degree sequence.

use avglocal::graph::{generators, traversal};
use avglocal::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Recomputes a sweep row's pooled distribution from scratch via the plain
/// per-trial entry point and compares bit for bit.
fn assert_row_cdf_matches_pooled_trials(topology: &Topology, n: usize, trials: usize, seed: u64) {
    let policy = AssignmentPolicy::Random { base_seed: seed };
    let result = Sweep::on(Problem::LargestId, topology.clone(), vec![n])
        .with_policy(policy.clone())
        .with_trials(trials)
        .run()
        .unwrap();
    let row = &result.rows[0];

    let mut pooled: Vec<usize> = Vec::new();
    let mut merged = RadiusCdf::empty();
    for trial in 0..trials {
        let profile =
            run_on_topology(Problem::LargestId, topology, n, &policy.assignment_for_trial(trial))
                .unwrap();
        merged.merge(&profile.cdf());
        pooled.extend_from_slice(profile.radii());
    }
    assert_eq!(row.cdf, RadiusCdf::from_radii(&pooled), "{topology} row vs pooled radii");
    assert_eq!(row.cdf, merged, "{topology} row vs merged per-trial CDFs");
}

/// Checks the ECDF axioms on one distribution with a known observation
/// count.
fn assert_cdf_invariants(cdf: &RadiusCdf, observations: u64) {
    assert_eq!(cdf.observations(), observations);
    let unit = 1.0 / observations as f64;
    let mut previous = 0.0;
    for r in 0..=cdf.max_radius() {
        let f = cdf.fraction_within(r);
        // Monotone, within [0, 1].
        assert!((0.0..=1.0 + 1e-12).contains(&f), "F({r}) = {f}");
        assert!(f >= previous - 1e-12, "F must be non-decreasing at {r}");
        // Right-continuous step function: F(r) = F(r-1) + count(r)/total,
        // i.e. every step height is an integer multiple of 1/(trials * n).
        let step = f - previous;
        let steps = (step / unit).round();
        assert!(
            (step - steps * unit).abs() < 1e-9,
            "step at {r} must be a multiple of 1/observations"
        );
        assert_eq!(steps as u64, cdf.count_at(r), "step at {r} counts the observations there");
        previous = f;
    }
    assert!((previous - 1.0).abs() < 1e-12, "the CDF saturates at 1");
    assert_eq!(cdf.tail(cdf.max_radius()), 0.0);
}

#[test]
fn sweep_row_cdfs_are_valid_ecdfs_across_families() {
    let topologies = [
        Topology::Cycle,
        Topology::CompleteBinaryTree,
        Topology::PreferentialAttachment { m: 2, seed: 13 },
        Topology::gnp_connected(24, 7),
    ];
    for topology in topologies {
        let trials = 3usize;
        let n = 24usize;
        let result = Sweep::on(Problem::LargestId, topology.clone(), vec![n])
            .with_policy(AssignmentPolicy::Random { base_seed: 5 })
            .with_trials(trials)
            .run()
            .unwrap();
        assert_cdf_invariants(&result.rows[0].cdf, (trials * n) as u64);
        assert_row_cdf_matches_pooled_trials(&topology, n, trials, 5);
    }
}

#[test]
fn single_trial_cdf_median_is_bit_identical_to_the_quantile_column() {
    // For a single trial the pooled distribution IS the trial, so its
    // 500-per-mille point must be bit-identical to the median column (the
    // `Measure::Quantile { per_mille: 500 }` value) — same nearest-rank
    // definition, same value, no floating-point slack.
    for (topology, n) in [
        (Topology::Cycle, 17usize),
        (Topology::Grid, 12),
        (Topology::PreferentialAttachment { m: 1, seed: 13 }, 40),
    ] {
        let result = Sweep::on(Problem::LargestId, topology.clone(), vec![n])
            .with_policy(AssignmentPolicy::Random { base_seed: 11 })
            .run()
            .unwrap();
        let row = &result.rows[0];
        assert_eq!(row.cdf.quantile(500), row.median, "{topology}");
        // And both agree with the profile-level quantile of the same trial.
        let profile = run_on_topology(
            Problem::LargestId,
            &topology,
            n,
            &AssignmentPolicy::Random { base_seed: 11 }.assignment_for_trial(0),
        )
        .unwrap();
        assert_eq!(row.median, profile.quantile(500), "{topology}");
        assert_eq!(row.cdf.mean(), row.average, "{topology}");
    }
}

#[test]
fn preferential_attachment_satisfies_the_handshake_identity() {
    // Degree sum = 2m with the exact BA edge count, at every (n, m, seed).
    for seed in 0u64..6 {
        for m in 1usize..4 {
            for n in [m + 1, 10, 33, 64] {
                let g = generators::preferential_attachment(n, m, &mut StdRng::seed_from_u64(seed))
                    .unwrap();
                assert_eq!(g.node_count(), n, "exact n at ({n}, {m}, {seed})");
                let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
                assert_eq!(degree_sum, 2 * g.edge_count(), "handshake at ({n}, {m}, {seed})");
                let s = n.min(m + 1);
                assert_eq!(
                    g.edge_count(),
                    s * (s - 1) / 2 + (n - s) * m,
                    "exact edge count at ({n}, {m}, {seed})"
                );
                assert!(traversal::is_connected(&g), "connected at ({n}, {m}, {seed})");
            }
        }
    }
}

#[test]
fn hub_topologies_are_deterministic_across_rebuilds() {
    // The Topology wrappers derive per-(seed, n) streams: same seed, same
    // instance; different seeds, different instances (at sizes where a
    // collision would be astronomically unlikely).
    for seed in 0u64..4 {
        let pa = Topology::PreferentialAttachment { m: 2, seed };
        assert_eq!(pa.build(48).unwrap(), pa.build(48).unwrap());
        let plc = Topology::PowerLawConfiguration { gamma: 2.3, seed };
        assert_eq!(plc.build_unchecked(48).unwrap(), plc.build_unchecked(48).unwrap());
    }
    let a = Topology::PreferentialAttachment { m: 2, seed: 0 }.build(64).unwrap();
    let b = Topology::PreferentialAttachment { m: 2, seed: 1 }.build(64).unwrap();
    assert_ne!(a, b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The CDF of any radius profile agrees with the profile's own
    /// statistics at every probe point.
    #[test]
    fn profile_cdf_agrees_with_profile_statistics(
        radii in collection::vec(0usize..30, 1..60)
    ) {
        let profile = RadiusProfile::new(radii.clone());
        let cdf = profile.cdf();
        prop_assert_eq!(cdf.observations(), radii.len() as u64);
        prop_assert_eq!(cdf.max_radius(), profile.max());
        prop_assert!((cdf.mean() - profile.average()).abs() < 1e-12);
        for r in 0..=profile.max() + 1 {
            prop_assert!((cdf.fraction_within(r) - profile.fraction_within(r)).abs() < 1e-12);
        }
        for per_mille in [0u16, 100, 250, 500, 750, 900, 1000] {
            prop_assert_eq!(cdf.quantile(per_mille), profile.quantile(per_mille));
        }
    }

    /// Merging a split of a radius vector equals the distribution of the
    /// whole vector, regardless of the split point.
    #[test]
    fn cdf_merge_equals_pooling(
        radii in collection::vec(0usize..20, 2..50),
        split_seed in 0usize..1000
    ) {
        let split = split_seed % radii.len();
        let mut merged = RadiusCdf::from_radii(&radii[..split]);
        merged.merge(&RadiusCdf::from_radii(&radii[split..]));
        prop_assert_eq!(merged, RadiusCdf::from_radii(&radii));
    }

    /// Preferential-attachment determinism as a property: rebuilding with
    /// the same seed is bit-identical, and the handshake identity holds.
    #[test]
    fn preferential_attachment_properties(n in 1usize..48, m in 1usize..4, seed in 0u64..500) {
        let g1 = generators::preferential_attachment(n, m, &mut StdRng::seed_from_u64(seed)).unwrap();
        let g2 = generators::preferential_attachment(n, m, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(&g1, &g2);
        prop_assert_eq!(g1.node_count(), n);
        let degree_sum: usize = g1.nodes().map(|v| g1.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g1.edge_count());
        prop_assert!(traversal::is_connected(&g1));
    }
}
