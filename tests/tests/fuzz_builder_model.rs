//! Model-based fuzzing of the graph construction surface.
//!
//! Byte buffers are decoded (totally, via the `proptest::arbitrary` shim)
//! into command programs — add-node / add-edge / set-identifier / freeze
//! interleavings, including deliberately out-of-bounds and duplicate
//! arguments — and executed in lockstep against both the real
//! `Graph`/`CsrGraph` stack and a deliberately naive adjacency-map model.
//! The shared interpreter lives in `avglocal_integration_tests::fuzz`, so the
//! regression corpus replays the exact same driver.

use avglocal::graph::GraphBuilder;
use avglocal_integration_tests::fuzz::{classify, predict_build, run_program};
use proptest::prelude::*;

proptest! {
    // The headline acceptance run: ten thousand decoded command programs,
    // each checked operation-for-operation against the naive model.
    #![proptest_config(ProptestConfig::with_cases(10_000))]

    #[test]
    fn builder_and_model_agree_on_every_program(buf in collection::bytes(0..192)) {
        if let Err(divergence) = run_program(&buf) {
            return Err(TestCaseError::fail(divergence));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2_000))]

    #[test]
    fn graph_builder_outcome_matches_prediction(buf in collection::bytes(0..96)) {
        let mut u = Unstructured::new(&buf);
        // A small identifier alphabet forces duplicate identifiers, unknown
        // edge endpoints and duplicate edges to all occur regularly.
        let nodes = u.arbitrary_len(12);
        let identifiers: Vec<u64> = (0..nodes).map(|_| u.int_in_range(0..10)).collect();
        let edge_count = u.arbitrary_len(12);
        let edges: Vec<(u64, u64)> =
            (0..edge_count).map(|_| (u.int_in_range(0..10), u.int_in_range(0..10))).collect();

        let built = GraphBuilder::new()
            .nodes(identifiers.iter().copied())
            .edges(edges.iter().copied())
            .build();
        prop_assert_eq!(classify(&built), predict_build(&identifiers, &edges));
        if let Ok(graph) = built {
            prop_assert_eq!(graph.node_count(), identifiers.len());
            prop_assert_eq!(graph.edge_count(), edges.len());
        }
    }
}
