//! Cross-view equivalence: the ball executor and the message-passing
//! executor assign identical costs to every node — the property that lets the
//! paper talk about "radii" and "rounds" interchangeably.

use avglocal::prelude::*;
use avglocal::runtime::{examples::NaiveLargestId, GatherAdapter};
use avglocal_integration_tests::{shuffled_ring, test_sizes};
use proptest::prelude::*;

#[test]
fn gather_adapter_matches_ball_executor_on_cycles() {
    for n in test_sizes() {
        let g = shuffled_ring(n, 5);
        let ball = BallExecutor::new()
            .run(&g, &avglocal::algorithms::LargestId, Knowledge::none())
            .unwrap();
        let rounds = SyncExecutor::new()
            .run(&g, &GatherAdapter::new(avglocal::algorithms::LargestId), Knowledge::none())
            .unwrap();
        for v in g.nodes() {
            assert_eq!(rounds.decision_round(v), Some(ball.radius(v)), "n={n}, node={v}");
            assert_eq!(rounds.output(v), Some(ball.output(v)), "n={n}, node={v}");
        }
        // The profiles (and hence both measures) coincide exactly.
        let p1 = RadiusProfile::from_ball_execution(&ball);
        let p2 = RadiusProfile::from_execution(&rounds).unwrap();
        assert_eq!(p1, p2);
    }
}

#[test]
fn gather_adapter_matches_ball_executor_on_other_topologies() {
    use avglocal::graph::generators;
    let mut graphs = [
        generators::grid(5, 4).unwrap(),
        generators::balanced_tree(3, 3).unwrap(),
        generators::hypercube(4).unwrap(),
        generators::petersen(),
        generators::caterpillar(6, 2).unwrap(),
    ];
    for (i, g) in graphs.iter_mut().enumerate() {
        IdAssignment::Shuffled { seed: i as u64 }.apply(g).unwrap();
        let ball = BallExecutor::new().run(g, &NaiveLargestId, Knowledge::none()).unwrap();
        let rounds = SyncExecutor::new()
            .run(g, &GatherAdapter::new(NaiveLargestId), Knowledge::none())
            .unwrap();
        for v in g.nodes() {
            assert_eq!(rounds.decision_round(v), Some(ball.radius(v)));
        }
    }
}

#[test]
fn radii_are_independent_of_the_identifier_universe_offset() {
    // Shifting every identifier by a constant must not change any radius:
    // the algorithms only compare identifiers.
    let n = 40;
    let base_graph = shuffled_ring(n, 8);
    let shifted = {
        let mut g = avglocal::graph::generators::cycle(n).unwrap();
        let perm = IdAssignment::Shuffled { seed: 8 }.permutation(n);
        IdAssignment::Explicit(perm).apply_with_base(&mut g, 1_000_000).unwrap();
        g
    };
    let a = Problem::LargestId.run(&base_graph).unwrap();
    let b = Problem::LargestId.run(&shifted).unwrap();
    assert_eq!(a.radii(), b.radii());
    let a = Problem::LandmarkColoring.run(&base_graph).unwrap();
    let b = Problem::LandmarkColoring.run(&shifted).unwrap();
    assert_eq!(a.radii(), b.radii());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Rotating the identifier arrangement around the cycle permutes the
    /// radius profile but preserves both measures (the problem is symmetric).
    #[test]
    fn rotation_invariance_of_measures(n in 4usize..40, seed in 0u64..100, shift in 1usize..40) {
        let shift = shift % n;
        let base = IdAssignment::Shuffled { seed };
        let base_profile = run_on_cycle(Problem::LargestId, n, &base).unwrap();

        // Compose the shuffle with a rotation of the positions.
        let perm = base.permutation(n);
        let rotated: Vec<usize> = (0..n).map(|i| perm.get((i + shift) % n)).collect();
        let rotated_profile = run_on_cycle(
            Problem::LargestId,
            n,
            &IdAssignment::from_vec(rotated).unwrap(),
        )
        .unwrap();

        let mut a = base_profile.radii().to_vec();
        let mut b = rotated_profile.radii().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        prop_assert!((base_profile.average() - rotated_profile.average()).abs() < 1e-9);
        prop_assert_eq!(base_profile.max(), rotated_profile.max());
    }
}
