//! The topology-parameterised sweep harness against its cycle-only
//! ancestors, and the [`FrozenExecutor`] session against the per-call
//! executor.
//!
//! Three guarantees are pinned down here:
//!
//! 1. a sweep on [`Topology::Cycle`] is **bit-for-bit** the old
//!    `run_on_cycle` pipeline — rows, summaries, and determinism under
//!    parallel trials;
//! 2. [`FrozenExecutor::run_node`] matches [`BallExecutor::run_node`] on
//!    every supported topology;
//! 3. a `G(n, p)` family that cannot produce a connected instance is a loud
//!    error, never a silently component-local measurement.

use avglocal::analysis::Summary;
use avglocal::graph::GraphError;
use avglocal::prelude::*;
use avglocal::runtime::examples::NaiveLargestId;
use avglocal::{CoreError, SweepResult};
use proptest::prelude::*;

/// Sizes for which every deterministic family (including the torus, which
/// needs a factorisation with both sides >= 3) has an instance.
const UNIVERSAL_SIZES: [usize; 4] = [9, 12, 16, 24];

fn supported_topologies(n: usize, seed: u64) -> Vec<Topology> {
    let mut all = Topology::DETERMINISTIC.to_vec();
    all.push(Topology::gnp_connected(n, seed));
    all
}

/// Rebuilds a one-size sweep row the way the pre-topology harness did:
/// sequentially, through the cycle-only entry points.
fn legacy_cycle_row(
    problem: Problem,
    n: usize,
    policy: &AssignmentPolicy,
    trials: usize,
) -> (f64, f64, f64, Summary) {
    let mut worst = Vec::new();
    let mut averages = Vec::new();
    let mut totals = Vec::new();
    for trial in 0..trials {
        let assignment = policy.assignment_for_trial(trial);
        let profile = run_on_cycle(problem, n, &assignment).unwrap();
        let pair = MeasurePair::of(&profile);
        worst.push(pair.worst_case);
        averages.push(pair.average);
        totals.push(profile.total() as f64);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    (mean(&worst), mean(&averages), mean(&totals), Summary::from_values(&averages))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The topology-parameterised sweep on `Topology::Cycle` reproduces the
    /// sequential cycle-only pipeline bit for bit: every aggregate of every
    /// row, including the per-trial summary, and independently of the
    /// parallel trial scheduling.
    #[test]
    fn cycle_sweep_is_bit_identical_to_the_legacy_path(
        n in 4usize..48,
        base_seed in 0u64..500,
        trials in 1usize..5
    ) {
        let policy = AssignmentPolicy::Random { base_seed };
        let result = Sweep::on(Problem::LargestId, Topology::Cycle, vec![n])
            .with_policy(policy.clone())
            .with_trials(trials)
            .run()
            .unwrap();
        let row = &result.rows[0];
        let (worst, average, total, summary) =
            legacy_cycle_row(Problem::LargestId, n, &policy, trials);
        prop_assert_eq!(row.n, n);
        prop_assert_eq!(row.trials, trials);
        prop_assert_eq!(row.worst_case, worst);
        prop_assert_eq!(row.average, average);
        prop_assert_eq!(row.total, total);
        prop_assert_eq!(row.average_summary.clone(), summary);
        prop_assert!(row.topology.is_cycle());
    }

    /// Two runs of the same sweep configuration are identical, trials being
    /// parallel notwithstanding — and so is the legacy constructor, which is
    /// now a thin wrapper over the topology-parameterised one.
    #[test]
    fn sweeps_are_deterministic_under_parallel_trials(
        n in 4usize..40,
        base_seed in 0u64..200,
        trials in 2usize..6
    ) {
        let build = |explicit_topology: bool| -> SweepResult {
            let sweep = if explicit_topology {
                Sweep::on(Problem::LargestId, Topology::Cycle, vec![n, n + 1])
            } else {
                Sweep::new(Problem::LargestId, vec![n, n + 1])
            };
            sweep
                .with_policy(AssignmentPolicy::Random { base_seed })
                .with_trials(trials)
                .run()
                .unwrap()
        };
        prop_assert_eq!(build(true), build(true));
        prop_assert_eq!(build(true), build(false));
    }

    /// The frozen session and the per-call executor agree on every node of
    /// every supported topology, probe for probe.
    #[test]
    fn frozen_session_matches_per_call_run_node(
        size_idx in 0usize..UNIVERSAL_SIZES.len(),
        seed in 0u64..200
    ) {
        let n = UNIVERSAL_SIZES[size_idx];
        for topology in supported_topologies(n, seed) {
            let graph = topology_with_assignment(
                &topology,
                n,
                &IdAssignment::Shuffled { seed },
            ).unwrap();
            let session = FrozenExecutor::new(&graph);
            let per_call = BallExecutor::new();
            for v in graph.nodes() {
                let fresh = per_call
                    .run_node(&graph, v, &NaiveLargestId, Knowledge::none())
                    .unwrap();
                let reused = session
                    .run_node(v, &NaiveLargestId, Knowledge::none())
                    .unwrap();
                prop_assert_eq!(fresh, reused, "{} node {:?}", topology, v);
            }
        }
    }

    /// `run_on_topology` on the cycle family is exactly `run_on_cycle`.
    #[test]
    fn run_on_topology_generalises_run_on_cycle(n in 3usize..64, seed in 0u64..300) {
        let assignment = IdAssignment::Shuffled { seed };
        let via_topology =
            run_on_topology(Problem::LargestId, &Topology::Cycle, n, &assignment).unwrap();
        let via_cycle = run_on_cycle(Problem::LargestId, n, &assignment).unwrap();
        prop_assert_eq!(via_topology, via_cycle);
    }
}

#[test]
fn disconnected_gnp_instances_are_rejected_not_measured() {
    // p = 0 on 8 nodes: no draw can ever be connected. The raw generator
    // hands the disconnected instance back…
    let family = Topology::Gnp { p: 0.0, seed: 42 };
    let raw = family.build_unchecked(8).unwrap();
    assert_eq!(raw.edge_count(), 0);

    // …but the sweep-facing build refuses it with a dedicated error,
    let err = family.build(8).unwrap_err();
    assert!(matches!(err, GraphError::Disconnected { .. }));

    // and the error survives the whole experiment stack.
    let err = Sweep::on(Problem::LargestId, family.clone(), vec![8]).run().unwrap_err();
    assert!(matches!(err, CoreError::Graph(GraphError::Disconnected { .. })));
    let err = random_permutation_study_on(Problem::LargestId, &family, 8, 3, 0).unwrap_err();
    assert!(matches!(err, CoreError::Graph(GraphError::Disconnected { .. })));
}

#[test]
fn gnp_trials_share_one_instance() {
    // The sweep must measure identifier randomness on a fixed graph: two
    // trials of the same row see the same adjacency, only different ids.
    let family = Topology::gnp_connected(32, 9);
    let a = family.build(32).unwrap();
    let b = family.build(32).unwrap();
    assert_eq!(a, b, "the instance is a deterministic function of (family, n)");

    let result = Sweep::on(Problem::KnowTheLeader, family, vec![32])
        .with_policy(AssignmentPolicy::Random { base_seed: 4 })
        .with_trials(3)
        .run()
        .unwrap();
    // KnowTheLeader's worst case is the eccentricity of the winner; on a
    // fixed graph it can vary with the winner's position but stays within
    // the diameter, which would not be pinned down if the graph resampled.
    let diameter = avglocal::graph::traversal::diameter(&a).unwrap() as f64;
    assert!(result.rows[0].worst_case <= diameter);
}

#[test]
fn cross_topology_sweep_runs_end_to_end() {
    // The acceptance-criteria sweep: {cycle, tree, grid, gnp} from one
    // configuration, one row per topology, with sane measure ordering.
    for topology in [
        Topology::Cycle,
        Topology::CompleteBinaryTree,
        Topology::Grid,
        Topology::gnp_connected(24, 1),
    ] {
        let result = Sweep::on(Problem::LargestId, topology.clone(), vec![24])
            .with_policy(AssignmentPolicy::Random { base_seed: 8 })
            .with_trials(3)
            .run()
            .unwrap();
        let row = &result.rows[0];
        assert_eq!(row.topology, topology);
        assert_eq!(row.n, 24);
        assert!(row.worst_case >= row.average, "{topology}");
        assert!(row.average > 0.0, "{topology}");
    }
}
