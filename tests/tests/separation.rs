//! E1 end-to-end: the exponential separation between the worst-case and the
//! average measure for the largest-ID problem (paper, Section 2).

use avglocal::prelude::*;
use avglocal_integration_tests::{shuffled_ring, test_sizes};

#[test]
fn worst_case_is_linear_for_every_assignment() {
    for n in [16usize, 64, 256] {
        for assignment in
            [IdAssignment::Identity, IdAssignment::Reversed, IdAssignment::Shuffled { seed: 9 }]
        {
            let profile = run_on_cycle(Problem::LargestId, n, &assignment).unwrap();
            assert_eq!(profile.max(), n / 2, "n={n}, assignment={assignment:?}");
        }
    }
}

#[test]
fn average_grows_much_slower_than_worst_case() {
    // Measure the average radius under random identifiers for growing n and
    // check the separation factor keeps increasing — the qualitative shape of
    // the paper's exponential gap.
    let mut previous_separation = 0.0;
    for k in [5u32, 7, 9, 11] {
        let n = 1usize << k;
        let result = Sweep::new(Problem::LargestId, vec![n])
            .with_policy(AssignmentPolicy::Random { base_seed: 3 })
            .with_trials(3)
            .run()
            .unwrap();
        let row = &result.rows[0];
        let separation = row.separation();
        assert!(
            separation > previous_separation,
            "separation should grow with n: {separation} after {previous_separation}"
        );
        previous_separation = separation;
    }
    // By n = 2048 the separation is already enormous.
    assert!(previous_separation > 60.0, "final separation {previous_separation}");
}

#[test]
fn identity_assignment_realises_the_minimum_average() {
    // With identifiers increasing around the ring, all nodes except the
    // winner decide at radius 1 — the best possible average for this
    // algorithm, useful as a sanity lower bracket.
    for n in test_sizes() {
        let profile = run_on_cycle(Problem::LargestId, n, &IdAssignment::Identity).unwrap();
        let expected = ((n - 1) + n / 2) as f64 / n as f64;
        assert!((profile.average() - expected).abs() < 1e-9, "n={n}");
    }
}

#[test]
fn measured_average_is_within_theory_bounds() {
    for n in [32usize, 128, 512] {
        for seed in 0..3u64 {
            let g = shuffled_ring(n, seed);
            let profile = Problem::LargestId.run(&g).unwrap();
            // Lower bracket: at least 1 - 1/n (every non-winner needs >= 1).
            assert!(profile.average() >= (n as f64 - 1.0) / n as f64);
            // Upper bracket: the worst-case-over-permutations average.
            assert!(
                profile.average() <= theory::largest_id_worst_average(n) + 1e-9,
                "n={n} seed={seed}: {} > {}",
                profile.average(),
                theory::largest_id_worst_average(n)
            );
        }
    }
}

#[test]
fn full_information_baseline_has_no_gap() {
    let g = shuffled_ring(128, 5);
    let lazy = Problem::FullInfoLargestId.run(&g).unwrap();
    assert_eq!(lazy.average(), lazy.max() as f64);
    assert_eq!(lazy.max(), 64);
    let smart = Problem::LargestId.run(&g).unwrap();
    assert!(smart.average() < lazy.average() / 5.0);
}
