//! Model-checking suite for the `compat/rayon` worker pool.
//!
//! Compiled (and meaningful) only under `RUSTFLAGS="--cfg avg_local_loom"`,
//! which swaps the pool's synchronization seam (`compat/rayon/src/sync.rs`)
//! to the vendored `compat/loom` checker. Every test below DFS-explores all
//! thread interleavings of a small pool protocol instance within the
//! default preemption bound and fails on any data race (memory-ordering
//! aware — a racy `Relaxed` publication is caught even on schedules where
//! the accesses happen to land safely), deadlock, or assertion violation.
//!
//! What this suite proves about `pool.rs`, exhaustively at model size:
//!
//! * the enter-under-injector-lock / remove-before-wait / `inside`-count
//!   job-lifetime protocol: the caller's teardown never races a worker still
//!   inside the job (any such race would be reported on the job's cells);
//! * `MaybeUninit` soundness of the output slots: every claimed index is
//!   written exactly once, and each write happens-before the caller's read
//!   (the model-side `collect_outputs` reads every slot through the
//!   instrumented cell);
//! * the `join` claim handshake (`claimed.swap(AcqRel)`): the right-hand
//!   closure runs exactly once, and its effects are visible to whichever
//!   thread consumes the result;
//! * panic capture: a panicking work item is contained, the pool state
//!   stays usable, and the propagated payload is the panicking item with
//!   the smallest index, on every interleaving.

#![cfg(avg_local_loom)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use rayon::pool::{join_on, run_chunked_on, worker_step, Shared};

/// Silences the default panic hook around `f`: the pool tests below inject
/// panicking work items whose unwinds are caught by the pool's own
/// `catch_unwind`, and the default hook would print a backtrace for each of
/// the hundreds of explored schedules.
fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = f();
    std::panic::set_hook(hook);
    result
}

/// A model worker: a spawned thread making `steps` bounded injector scans
/// (enter under the lock, run without it) — `worker_loop` minus the blocking
/// wait, so every model iteration terminates.
fn spawn_worker(shared: &Arc<Shared>, index: usize, steps: usize) -> loom::thread::JoinHandle<()> {
    let shared = Arc::clone(shared);
    loom::thread::spawn(move || {
        for _ in 0..steps {
            worker_step(&shared, index);
        }
    })
}

#[test]
fn chunk_job_outputs_written_exactly_once_and_in_order() {
    loom::model(|| {
        let shared = Arc::new(Shared::with_threads(2));
        let runs_per_index: Arc<Vec<AtomicUsize>> =
            Arc::new((0..2).map(|_| AtomicUsize::new(0)).collect());
        let worker = spawn_worker(&shared, 1, 2);
        let counts = Arc::clone(&runs_per_index);
        // len 2, so chunk_size is 1: two independently claimable chunks.
        let results = run_chunked_on(
            &shared,
            2,
            || (),
            move |(), i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
                i * 10
            },
        );
        worker.join().unwrap();
        // Deterministic by position, no matter who claimed what…
        assert_eq!(results, vec![0, 10]);
        // …and every index was processed exactly once.
        for counter in runs_per_index.iter() {
            assert_eq!(counter.load(Ordering::Relaxed), 1);
        }
    });
}

#[test]
fn chunk_job_reuses_one_state_per_participant() {
    loom::model(|| {
        let shared = Arc::new(Shared::with_threads(2));
        let inits = Arc::new(AtomicUsize::new(0));
        let worker = spawn_worker(&shared, 1, 2);
        let init_count = Arc::clone(&inits);
        let results = run_chunked_on(
            &shared,
            2,
            move || init_count.fetch_add(1, Ordering::Relaxed),
            |state, i| (*state, i),
        );
        worker.join().unwrap();
        // At most one lazily-built state per participant, and every result
        // is tagged with a valid participant state id.
        let states_built = inits.load(Ordering::Relaxed);
        assert!((1..=2).contains(&states_built), "built {states_built} states");
        for (index, (state_id, i)) in results.into_iter().enumerate() {
            assert!(state_id < states_built);
            assert_eq!(i, index);
        }
    });
}

#[test]
fn join_claim_handshake_runs_b_exactly_once() {
    loom::model(|| {
        let shared = Arc::new(Shared::with_threads(2));
        let b_runs = Arc::new(AtomicUsize::new(0));
        let worker = spawn_worker(&shared, 1, 1);
        let b_count = Arc::clone(&b_runs);
        let (ra, rb) = join_on(
            &shared,
            || 41,
            move || {
                b_count.fetch_add(1, Ordering::Relaxed);
                42
            },
        );
        worker.join().unwrap();
        assert_eq!((ra, rb), (41, 42));
        assert_eq!(b_runs.load(Ordering::Relaxed), 1);
    });
}

#[test]
fn panicking_item_is_contained_and_pool_survives() {
    quiet_panics(|| {
        loom::model(|| {
            let shared = Arc::new(Shared::with_threads(2));
            let worker = spawn_worker(&shared, 1, 2);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                run_chunked_on(
                    &shared,
                    2,
                    || (),
                    |(), i| {
                        if i == 0 {
                            panic!("item 0 failed");
                        }
                        i
                    },
                )
            }));
            let payload = outcome.expect_err("index 0 always panics");
            let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
            assert_eq!(message, "item 0 failed");
            worker.join().unwrap();
            // The same pool state is still fully usable afterwards.
            let results = run_chunked_on(&shared, 2, || (), |(), i| i + 1);
            assert_eq!(results, vec![1, 2]);
        });
    });
}

#[test]
fn smallest_index_panic_wins_on_every_interleaving() {
    quiet_panics(|| {
        loom::model(|| {
            let shared = Arc::new(Shared::with_threads(2));
            let worker = spawn_worker(&shared, 1, 2);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                run_chunked_on(&shared, 2, || (), |(), i| -> usize { panic!("item {i} failed") })
            }));
            // Both items panic; with chunk size 1 the two panics can be
            // recorded in either order, but the *propagated* payload must be
            // index 0's on every schedule (first-in-node-order selection).
            let payload = outcome.expect_err("every item panics");
            let message = payload.downcast_ref::<String>().cloned().unwrap_or_default();
            assert_eq!(message, "item 0 failed");
            worker.join().unwrap();
        });
    });
}

#[test]
fn join_survives_a_panicking_right_hand_side() {
    quiet_panics(|| {
        loom::model(|| {
            let shared = Arc::new(Shared::with_threads(2));
            let worker = spawn_worker(&shared, 1, 1);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                join_on(&shared, || 1, || -> usize { panic!("b failed") })
            }));
            let payload = outcome.expect_err("b always panics");
            let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
            assert_eq!(message, "b failed");
            worker.join().unwrap();
            // The pool state survives the poisoned join.
            let (ra, rb) = join_on(&shared, || 2, || 3);
            assert_eq!((ra, rb), (2, 3));
        });
    });
}

/// Scheduler-regression canary (see the satellite list in ISSUE 7 and the
/// sibling canaries in `compat/loom/tests/model.rs`): pins the size of the
/// explored schedule space for the smallest real pool model. A change to
/// the scheduler, the preemption bounding, or the pool's operation count
/// shifts this number — update it deliberately, never to make CI pass.
#[test]
fn exploration_canary_join_handshake() {
    let stats = loom::Builder::default().check(|| {
        let shared = Arc::new(Shared::with_threads(2));
        let worker = spawn_worker(&shared, 1, 1);
        let (ra, rb) = join_on(&shared, || 1, || 2);
        assert_eq!((ra, rb), (1, 2));
        worker.join().unwrap();
    });
    assert_eq!(stats.iterations, CANARY_JOIN_HANDSHAKE);
}

/// Pinned schedule-space size for the canary model above, at the default
/// preemption bound of 2.
const CANARY_JOIN_HANDSHAKE: usize = 76;
