//! End-to-end chaos and crash-safety for the resilient radius-query service.
//!
//! Two robustness claims of the service layer are exercised here at
//! integration scale (CI runs this file on both the `AVG_LOCAL_THREADS=1`
//! and `AVG_LOCAL_THREADS=4` legs):
//!
//! * **chaos**: the deterministic harness in `avglocal_service::chaos`
//!   drives concurrent readers through scripted generation swaps, torn
//!   publishes, failpoint panic storms, worker kills, deadline expiries and
//!   batched queries racing the swaps (including deadline storms that expire
//!   whole batches mid-flight) — every completed answer, single or batch
//!   entry, must be bit-identical to the sequential reference on the
//!   generation it was served from, and every failure must surface as its
//!   typed error;
//! * **crash-safe persistence**: a [`SnapshotStore`] that crashed mid-write
//!   recovers deterministically to the last durable generation, and the
//!   service restarted on it keeps answering bit-identically.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;

use avglocal::graph::{generators, CsrGraph, GraphError, IdAssignment, NodeId};
use avglocal::runtime::examples::NaiveLargestId;
use avglocal::runtime::{BallAlgorithm, BallExecutor, Knowledge, LocalView};
use avglocal_service::chaos::{run_chaos, ChaosPlan};
use avglocal_service::{RadiusQueryService, ServiceConfig, ServiceError, SnapshotStore, TestClock};

/// A cycle on `n` nodes with a shuffled identifier table, frozen.
fn shuffled_cycle(n: usize, seed: u64) -> CsrGraph {
    let mut graph = generators::cycle(n).expect("cycles are valid");
    IdAssignment::Shuffled { seed }.apply(&mut graph).expect("shuffles are permutations");
    graph.freeze()
}

/// A fresh directory under the target-local tmpdir, unique per test.
fn scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("service_chaos_{tag}"));
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("stale scratch directory is removable");
    }
    dir
}

#[test]
fn default_chaos_plan_holds_every_invariant() {
    let report = run_chaos(&ChaosPlan::default());
    assert_eq!(report.mismatches, 0, "served answer diverged from its generation's reference");
    assert_eq!(report.unexpected_errors, 0, "an untyped or unexpected error escaped");
    assert!(report.completed > 0, "chaos run completed no queries");
    assert!(report.published > 0, "chaos run published no generations");
    assert!(report.publish_rejected > 0, "torn publishes never exercised validation");
    assert!(report.publish_panicked > 0, "panic storms never exercised rollback");
    assert!(report.deadline_expired > 0, "deadline faults never fired");
    assert!(report.batches > 0, "chaos run issued no batched queries");
    assert!(report.batch_entries > 0, "batched queries probed no entries");
    assert!(report.batch_expired > 0, "deadline storms never expired a batch mid-flight");
}

/// Decides immediately everywhere, but the probe of `hold_id` parks until
/// `release` is raised — a deterministic way to keep an admission slot
/// occupied regardless of core count or scheduling.
struct HoldAtNode {
    hold_id: u64,
    entered: Arc<AtomicBool>,
    release: Arc<AtomicBool>,
}

impl BallAlgorithm for HoldAtNode {
    type Output = u64;

    fn decide(&self, view: &LocalView, _knowledge: &Knowledge) -> Option<u64> {
        let id = view.center_identifier().value();
        if id == self.hold_id {
            self.entered.store(true, SeqCst);
            while !self.release.load(SeqCst) {
                std::thread::yield_now();
            }
        }
        Some(id)
    }
}

#[test]
fn admission_pressure_sheds_with_the_typed_overload_error() {
    // A single admission slot, held open by a parked probe: the concurrent
    // query must be shed with the typed `Overloaded`, and once the slot
    // frees, the same query completes.
    let graph = generators::cycle(8).expect("cycles are valid");
    let hold_id = graph.identifier(NodeId::new(0)).value();
    let entered = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let algorithm =
        HoldAtNode { hold_id, entered: Arc::clone(&entered), release: Arc::clone(&release) };
    let config = ServiceConfig { max_in_flight: 1, ..ServiceConfig::default() };
    let service = RadiusQueryService::new(
        algorithm,
        Knowledge::none(),
        graph.freeze(),
        Arc::new(TestClock::new()),
        config,
    );

    std::thread::scope(|scope| {
        let holder = scope.spawn(|| service.query(NodeId::new(0)));
        while !entered.load(SeqCst) {
            std::thread::yield_now();
        }
        match service.query(NodeId::new(1)) {
            Err(ServiceError::Overloaded { in_flight, limit }) => {
                assert_eq!(in_flight, 1);
                assert_eq!(limit, 1);
            }
            other => panic!("expected Overloaded while the slot is held, got {other:?}"),
        }
        release.store(true, SeqCst);
        let held = holder.join().expect("holder does not panic").expect("held query completes");
        assert_eq!(held.output, hold_id);
    });

    let after = service.query(NodeId::new(1)).expect("freed slot admits again");
    assert_eq!(after.output, graph.identifier(NodeId::new(1)).value());
    let stats = service.stats();
    assert_eq!(stats.shed, 1, "exactly the blocked query was shed");
    assert_eq!(stats.admitted, 2, "the held and the retried query were admitted");
}

#[test]
fn chaos_seeds_vary_the_storm_but_never_the_invariants() {
    for seed in [1u64, 0xdead_beef, u64::MAX / 3] {
        let plan = ChaosPlan {
            seed,
            readers: 3,
            queries_per_reader: 80,
            publish_attempts: 12,
            ..ChaosPlan::default()
        };
        let report = run_chaos(&plan);
        assert_eq!(report.mismatches, 0, "seed {seed}");
        assert_eq!(report.unexpected_errors, 0, "seed {seed}");
        assert!(report.completed > 0, "seed {seed}");
        assert!(report.batches > 0, "seed {seed}: batches raced no swaps");
    }
}

#[test]
fn restart_after_torn_write_recovers_the_last_durable_generation() {
    let store = SnapshotStore::open(scratch("torn")).expect("store opens on a fresh directory");

    // Three durable generations with distinct shuffled identifier tables.
    let mut graphs = Vec::new();
    for epoch in 1u64..=3 {
        let csr = shuffled_cycle(30, 0xbeef ^ epoch);
        store.persist(epoch, &csr).expect("persist succeeds");
        graphs.push(csr);
    }

    // The crash: epoch 4 tears mid-write, leaving half a snapshot under the
    // final name (the worst case — rename happened, data did not).
    let torn = graphs[2].to_bytes();
    fs::write(store.path_for(4), &torn[..torn.len() / 2]).expect("scratch dir is writable");
    // A leftover temp file from the same crash must also be ignored.
    fs::write(store.dir().join("gen-00000000000000000005.snap.tmp"), b"partial")
        .expect("scratch dir is writable");

    let recovery = store.recover();
    let (epoch, durable) = recovery.durable.expect("a durable generation survives");
    assert_eq!(epoch, 3, "recovery must fall back to the newest clean epoch");
    assert_eq!(durable, graphs[2], "recovered snapshot is bit-identical to what was persisted");
    assert_eq!(recovery.skipped.len(), 1, "exactly the torn epoch is skipped");
    assert!(
        matches!(recovery.skipped[0].1, GraphError::CorruptSnapshot { .. }),
        "torn write surfaces as typed corruption, got {:?}",
        recovery.skipped[0].1
    );

    // The restarted service serves bit-identical answers on the recovered
    // generation.
    let reference = BallExecutor::new()
        .run_frozen_sequential(&durable, &NaiveLargestId, Knowledge::none())
        .expect("largest-ID terminates");
    let service = RadiusQueryService::new(
        NaiveLargestId,
        Knowledge::none(),
        durable,
        Arc::new(TestClock::new()),
        ServiceConfig::default(),
    );
    for v in 0..30 {
        let node = NodeId::new(v);
        let reply = service.query(node).expect("recovered service answers");
        assert_eq!(&reply.output, reference.output(node));
        assert_eq!(reply.radius, reference.radius(node));
        assert_eq!(reply.epoch, 1, "a restart begins a fresh epoch sequence");
    }
}

#[test]
fn a_fully_torn_store_recovers_to_nothing_without_panicking() {
    let store = SnapshotStore::open(scratch("all_torn")).expect("store opens");
    let csr = generators::cycle(12).expect("cycles are valid").freeze();
    let bytes = csr.to_bytes();
    for epoch in 1u64..=3 {
        fs::write(store.path_for(epoch), &bytes[..bytes.len() / 3]).expect("writable");
    }
    let recovery = store.recover();
    assert!(recovery.durable.is_none(), "no clean snapshot must mean no durable generation");
    assert_eq!(recovery.skipped.len(), 3);
    for (path, error) in &recovery.skipped {
        assert!(
            matches!(error, GraphError::CorruptSnapshot { .. }),
            "{}: expected typed corruption, got {error:?}",
            path.display()
        );
    }
}

#[test]
fn persist_then_recover_round_trips_across_service_epochs() {
    // The publish-and-persist loop a deployment would run: every published
    // generation is persisted under its epoch; a restart recovers the newest.
    let store = SnapshotStore::open(scratch("epochs")).expect("store opens");
    let initial = generators::cycle(24).expect("cycles are valid").freeze();
    let service = RadiusQueryService::new(
        NaiveLargestId,
        Knowledge::none(),
        initial.clone(),
        Arc::new(TestClock::new()),
        ServiceConfig::default(),
    );
    store.persist(service.current_epoch(), &initial).expect("persist epoch 1");

    for seed in 0..3u64 {
        let next = shuffled_cycle(24, seed);
        let epoch = service.publish_csr(next.clone()).expect("publish succeeds");
        store.persist(epoch, &next).expect("persist published epoch");
    }

    let recovery = store.recover();
    let (epoch, durable) = recovery.durable.expect("the last publish is durable");
    assert_eq!(epoch, service.current_epoch());
    assert!(recovery.skipped.is_empty());
    let pinned = service.pin();
    assert_eq!(pinned.epoch(), epoch);
    assert_eq!(durable.node_count(), pinned.node_count());
}
