//! E6 end-to-end: the Section 1 motivating applications are governed by the
//! average measure, not the worst case.

use avglocal::prelude::*;
use avglocal_integration_tests::shuffled_ring;

#[test]
fn parallel_replay_finishes_earlier_for_average_efficient_algorithms() {
    let n = 128;
    let workers = 8;
    let g = shuffled_ring(n, 44);

    let smart = Problem::LargestId.run(&g).unwrap();
    let lazy = Problem::FullInfoLargestId.run(&g).unwrap();
    assert_eq!(smart.max(), lazy.max(), "same worst case");

    let smart_schedule = schedule_radii(&smart, workers);
    let lazy_schedule = schedule_radii(&lazy, workers);
    assert!(
        smart_schedule.makespan * 3 < lazy_schedule.makespan,
        "smart {} vs lazy {}",
        smart_schedule.makespan,
        lazy_schedule.makespan
    );
    // The lazy baseline's makespan is essentially n/2 * n / workers.
    assert_eq!(lazy_schedule.total_work, n / 2 * n);
}

#[test]
fn makespan_is_never_below_the_lower_bound_and_within_twice_of_it() {
    let g = shuffled_ring(200, 3);
    for problem in [Problem::LargestId, Problem::ThreeColoring, Problem::LandmarkColoring] {
        let profile = problem.run(&g).unwrap();
        for workers in [1usize, 2, 5, 16, 64] {
            let outcome = schedule_radii(&profile, workers);
            assert!(outcome.makespan >= outcome.lower_bound);
            assert!(outcome.approximation_ratio() < 2.0);
        }
    }
}

#[test]
fn dynamic_update_cost_tracks_the_average_radius() {
    let n = 256;
    let g = shuffled_ring(n, 12);

    let coloring = Problem::ThreeColoring.run(&g).unwrap();
    let leader = Problem::KnowTheLeader.run(&g).unwrap();

    let coloring_cost = expected_invalidated_nodes(&coloring);
    let leader_cost = expected_invalidated_nodes(&leader);

    // Re-colouring after a change touches a constant-size neighbourhood;
    // re-learning the leader touches everyone.
    assert!(coloring_cost <= 2.0 * theory::cole_vishkin_upper_bound(64) as f64 + 1.0);
    assert_eq!(leader_cost, n as f64);
    assert!(leader_cost / coloring_cost > 10.0);
}

#[test]
fn update_cost_is_bounded_by_ball_sizes() {
    let g = shuffled_ring(64, 5);
    for problem in Problem::ALL {
        let profile = problem.run(&g).unwrap();
        let cost = expected_invalidated_nodes(&profile);
        assert!(cost >= 1.0, "{problem}: at least the changed node itself");
        assert!(cost <= 64.0, "{problem}: never more than the whole ring");
        assert!(
            cost <= 2.0 * profile.average() + 1.0 + 1e-9,
            "{problem}: cost {cost} exceeds 2·avg+1"
        );
    }
}
