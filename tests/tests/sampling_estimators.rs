//! Statistical correctness of the sampling estimators.
//!
//! Three properties on families small enough for exact sweeps:
//!
//! 1. **Census degeneration** — a sample plan whose budget covers the whole
//!    population reproduces the exact `MeasureSet` values **bit-identically**
//!    (same arithmetic, same order), with zero half-width.
//! 2. **Coverage** — the reported 95% confidence intervals cover the exact
//!    value at the nominal rate over ≥ 200 seeded replications. The assert
//!    is tolerance-banded (`coverage ≥ 0.90`, about 3σ below nominal for
//!    200 draws), never a flaky point check.
//! 3. **Design efficiency** — stratified-by-degree sampling beats uniform
//!    sampling on mean-squared error on hub families at equal budget (the
//!    reason the stratified plan exists).
//!
//! Plus the determinism leg: same `(seed, plan)` → bit-identical sample set
//! and estimate across WorkStealing/StaticChunks (and both CI thread legs,
//! which run this whole suite); disjoint seeds → disjoint sample streams.

use std::sync::Arc;

use avglocal::algorithms::{KnowTheLeader, LargestId};
use avglocal::prelude::*;
use avglocal::runtime::examples::NaiveLargestId;
use avglocal::runtime::{BallAlgorithm, BallExecutor, NodeBatchOptions, Scheduling};
use avglocal::sampling::SampleQueries;
use avglocal::service::{QueryOptions, RadiusQueryService, ServiceConfig, TestClock};
use avglocal::{hub_adversarial_assignment, SamplePlan};
use proptest::prelude::*;

/// Exact per-node radii of `algo` on `csr`, from the sequential reference
/// executor (the determinism anchor of the repo).
fn exact_radii<A>(csr: &avglocal::graph::CsrGraph, algo: &A) -> Vec<usize>
where
    A: BallAlgorithm + Sync,
    A::Output: Send,
{
    let run = BallExecutor::new().run_frozen_sequential(csr, algo, Knowledge::none()).unwrap();
    (0..csr.node_count()).map(|v| run.radius(NodeId::new(v))).collect()
}

fn exact_measures(csr: &avglocal::graph::CsrGraph, radii: &[usize]) -> MeasureSet {
    MeasureSet::of_csr(&RadiusProfile::new(radii.to_vec()), csr)
}

/// A shuffled ring and a hub-adversarial preferential-attachment family —
/// one regular, one heavy-tailed — both connected.
fn census_families() -> Vec<avglocal::graph::CsrGraph> {
    let mut ring = generators::cycle(96).unwrap();
    IdAssignment::Shuffled { seed: 11 }.apply(&mut ring).unwrap();

    let mut hub = Topology::PreferentialAttachment { m: 1, seed: 13 }.build(96).unwrap();
    let adversarial = hub_adversarial_assignment(&hub).unwrap();
    adversarial.apply(&mut hub).unwrap();

    vec![ring.freeze(), hub.freeze()]
}

#[test]
fn full_population_plans_reproduce_measure_set_bit_identically() {
    for csr in census_families() {
        let n = csr.node_count();
        let m = csr.edge_count();
        let radii = exact_radii(&csr, &LargestId);
        let exact = exact_measures(&csr, &radii);

        for seed in [0u64, 7, 991] {
            let uniform = SamplePlan::Uniform { budget: n }.draw(&csr, seed);
            assert!(uniform.is_census());
            let est = uniform.estimate_against(&radii);
            let node = est.node_averaged.unwrap();
            assert_eq!(node.value, exact.node_averaged, "uniform census, seed {seed}");
            assert_eq!(node.half_width_95, 0.0);
            assert_eq!(est.median().unwrap(), exact.median);
            for per_mille in [0, 100, 500, 900, 990, 1000] {
                assert_eq!(est.quantile(per_mille).unwrap(), exact.cdf.quantile(per_mille));
            }

            let strata = SamplePlan::StratifiedByDegree { budget: n }.draw(&csr, seed);
            assert!(strata.is_census());
            let est = strata.estimate_against(&radii);
            assert_eq!(est.node_averaged.unwrap().value, exact.node_averaged);
            assert_eq!(est.node_averaged.unwrap().half_width_95, 0.0);
            assert_eq!(est.median().unwrap(), exact.median);

            let edges = SamplePlan::EdgeEndpoint { budget: 2 * m }.draw(&csr, seed);
            assert!(edges.is_census());
            let est = edges.estimate_against(&radii);
            assert_eq!(est.edge_averaged.unwrap().value, exact.edge_averaged);
            assert_eq!(est.edge_averaged_mean.unwrap().value, exact.edge_averaged_mean);
            assert_eq!(est.edge_averaged.unwrap().half_width_95, 0.0);
            assert!(est.node_averaged.is_none(), "edge plans must not fake node measures");
        }
    }
}

/// Coverage is measured under `KnowTheLeader`, whose radius profile (the
/// distance at which the leader's identifier enters a node's ball) spreads
/// over many distinct values, so the t-interval premise behind the reported
/// CI actually holds. `LargestId` radii on these families are discrete with
/// rare extreme outliers: most 10% samples see zero in-sample variance and
/// report a zero-width interval, which no honest CI can rescue — that regime
/// is exercised by the MSE test below instead.
fn hub_family(n: usize) -> avglocal::graph::CsrGraph {
    let mut hub = Topology::PreferentialAttachment { m: 1, seed: 13 }.build(n).unwrap();
    let adversarial = hub_adversarial_assignment(&hub).unwrap();
    adversarial.apply(&mut hub).unwrap();
    hub.freeze()
}

/// Coverage of the node-averaged CI at 10% budget — the acceptance criterion
/// of the sampling layer: ≥ 90% of 200 seeded replications must cover the
/// exact value. A shuffled grid gives leader distances spread over a wide
/// range (the ring is degenerate under `KnowTheLeader`: every radius equals
/// half the cycle, which would make coverage trivially 1).
#[test]
fn uniform_ci_covers_the_exact_node_average_at_nominal_rate() {
    let mut grid = Topology::Grid.build(484).unwrap();
    IdAssignment::Shuffled { seed: 5 }.apply(&mut grid).unwrap();
    let csr = grid.freeze();
    let radii = exact_radii(&csr, &KnowTheLeader);
    let exact = exact_measures(&csr, &radii).node_averaged;

    let plan = SamplePlan::Uniform { budget: 48 }; // ~10% of 484
    let replications = 200;
    let mut covered = 0usize;
    for rep in 0..replications {
        let sample = plan.draw(&csr, plan.seed_for(42, rep));
        let estimate = sample.estimate_against(&radii).node_averaged.unwrap();
        assert!(estimate.half_width_95.is_finite() && estimate.half_width_95 > 0.0);
        if estimate.covers(exact) {
            covered += 1;
        }
    }
    let coverage = covered as f64 / replications as f64;
    assert!(
        (0.90..=1.0).contains(&coverage),
        "95% CI coverage over {replications} replications was {coverage}"
    );
}

/// Same banded-coverage property for the edge-endpoint design and the
/// edge-averaged (max-endpoint) measure, on the hub family where edge
/// endpoints are the natural frame.
#[test]
fn edge_endpoint_ci_covers_the_exact_edge_average_at_nominal_rate() {
    let csr = hub_family(512);
    let radii = exact_radii(&csr, &KnowTheLeader);
    let exact = exact_measures(&csr, &radii).edge_averaged;

    let plan = SamplePlan::EdgeEndpoint { budget: 102 }; // ~51 edges
    let replications = 200;
    let mut covered = 0usize;
    for rep in 0..replications {
        let sample = plan.draw(&csr, plan.seed_for(42, rep));
        let estimate = sample.estimate_against(&radii).edge_averaged.unwrap();
        if estimate.covers(exact) {
            covered += 1;
        }
    }
    let coverage = covered as f64 / replications as f64;
    assert!(
        (0.90..=1.0).contains(&coverage),
        "95% CI coverage over {replications} replications was {coverage}"
    );
}

/// Stratified-by-degree coverage on the hub family it exists for.
#[test]
fn stratified_ci_covers_the_exact_node_average_on_hub_families() {
    let csr = hub_family(512);
    let radii = exact_radii(&csr, &KnowTheLeader);
    let exact = exact_measures(&csr, &radii).node_averaged;

    let plan = SamplePlan::StratifiedByDegree { budget: 51 };
    let replications = 200;
    let mut covered = 0usize;
    for rep in 0..replications {
        let sample = plan.draw(&csr, plan.seed_for(42, rep));
        let estimate = sample.estimate_against(&radii).node_averaged.unwrap();
        if estimate.covers(exact) {
            covered += 1;
        }
    }
    let coverage = covered as f64 / replications as f64;
    assert!(
        (0.90..=1.0).contains(&coverage),
        "95% CI coverage over {replications} replications was {coverage}"
    );
}

/// The reason the stratified plan exists: on a hub family, the heavy-degree
/// tail is a vanishing fraction of nodes but carries extreme radii, so a
/// uniform sample that misses it is far off while stratification always
/// represents it. At equal budget, stratified must win on MSE.
#[test]
fn stratified_beats_uniform_on_mse_for_hub_families() {
    let csr = hub_family(256);
    let radii = exact_radii(&csr, &LargestId);
    let exact = exact_measures(&csr, &radii).node_averaged;

    let budget = 32;
    let replications = 200;
    let mse = |plan: SamplePlan| {
        let mut sum = 0.0;
        for rep in 0..replications {
            let sample = plan.draw(&csr, plan.seed_for(45, rep));
            let err = sample.estimate_against(&radii).node_averaged.unwrap().value - exact;
            sum += err * err;
        }
        sum / replications as f64
    };
    let uniform = mse(SamplePlan::Uniform { budget });
    let stratified = mse(SamplePlan::StratifiedByDegree { budget });
    assert!(
        stratified < uniform,
        "stratified MSE {stratified} must beat uniform MSE {uniform} at budget {budget}"
    );
}

/// `query_sample` rides the batched service path: the draw and every probe
/// come from one pinned generation, and the estimate is bit-identical to
/// estimating offline against the sequential reference radii.
#[test]
fn service_query_sample_pins_one_generation_and_matches_offline_estimation() {
    let mut ring = generators::cycle(128).unwrap();
    IdAssignment::Shuffled { seed: 21 }.apply(&mut ring).unwrap();
    let csr = ring.freeze();
    let service = RadiusQueryService::new(
        NaiveLargestId,
        Knowledge::none(),
        csr.clone(),
        Arc::new(TestClock::new()),
        ServiceConfig::default(),
    );
    let plan = SamplePlan::Uniform { budget: 32 };
    let seed = plan.seed_for(9, 0);
    let reply = service.query_sample(plan, seed, QueryOptions::new()).unwrap();
    assert_eq!(reply.epoch, 1);

    let radii = exact_radii(&csr, &LargestId);
    let offline = plan.draw(&csr, seed).estimate_against(&radii);
    assert_eq!(reply.measures, offline, "service estimate must equal the offline one bitwise");

    // A publish after the call does not disturb a fresh call's pinned draw.
    service.publish_csr(generators::cycle(128).unwrap().freeze()).unwrap();
    let second = service.query_sample(plan, seed, QueryOptions::new()).unwrap();
    assert_eq!(second.epoch, 2, "the sample must be drawn from the newly pinned generation");
}

/// Same (seed, plan) → bit-identical sample set and estimate across both
/// schedulings; the CI thread matrix runs this under 1 and 4 threads.
#[test]
fn estimates_are_bit_identical_across_schedulings() {
    for csr in census_families() {
        let n = csr.node_count();
        for plan in [
            SamplePlan::Uniform { budget: n / 4 },
            SamplePlan::EdgeEndpoint { budget: n / 4 },
            SamplePlan::StratifiedByDegree { budget: n / 4 },
        ] {
            let sample = plan.draw(&csr, plan.seed_for(3, 0));
            let session = FrozenExecutor::from_csr(csr.clone());
            let mut estimates = Vec::new();
            for scheduling in [Scheduling::WorkStealing, Scheduling::StaticChunks] {
                let radii = Problem::LargestId
                    .probe_radii(
                        &session,
                        sample.nodes(),
                        &NodeBatchOptions::new().with_scheduling(scheduling),
                    )
                    .unwrap();
                estimates.push(sample.estimate(&radii));
            }
            assert_eq!(estimates[0], estimates[1], "{plan:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Drawing is a pure function of (plan, graph, seed): two draws agree
    /// bit for bit, and probing the drawn set under either scheduling gives
    /// the same estimate.
    #[test]
    fn sampled_estimates_are_deterministic(
        k in 8usize..32,
        seed in 0u64..1000,
        base in 0u64..1000,
        kind in 0usize..3,
    ) {
        let n = k * 4;
        let mut graph = generators::cycle(n).unwrap();
        IdAssignment::Shuffled { seed }.apply(&mut graph).unwrap();
        let csr = graph.freeze();
        let plan = match kind {
            0 => SamplePlan::Uniform { budget: k },
            1 => SamplePlan::EdgeEndpoint { budget: k },
            _ => SamplePlan::StratifiedByDegree { budget: k },
        };
        let stream = plan.seed_for(base, 0);
        let first = plan.draw(&csr, stream);
        let second = plan.draw(&csr, stream);
        prop_assert_eq!(&first, &second);

        let session = FrozenExecutor::from_csr(csr.clone());
        let stealing = Problem::LargestId.probe_radii(
            &session,
            first.nodes(),
            &NodeBatchOptions::new().with_scheduling(Scheduling::WorkStealing),
        ).unwrap();
        let chunked = Problem::LargestId.probe_radii(
            &session,
            first.nodes(),
            &NodeBatchOptions::new().with_scheduling(Scheduling::StaticChunks),
        ).unwrap();
        prop_assert_eq!(&stealing, &chunked);
        prop_assert_eq!(first.estimate(&stealing), second.estimate(&chunked));
    }

    /// Disjoint base seeds derive disjoint sample streams: different stream
    /// seeds, and (for strict subsets of a non-trivial population) different
    /// sampled node sets.
    #[test]
    fn disjoint_seeds_draw_disjoint_streams(
        base in 0u64..10_000,
        trial in 0usize..16,
        kind in 0usize..3,
    ) {
        let plan = match kind {
            0 => SamplePlan::Uniform { budget: 8 },
            1 => SamplePlan::EdgeEndpoint { budget: 8 },
            _ => SamplePlan::StratifiedByDegree { budget: 8 },
        };
        prop_assert_ne!(plan.seed_for(base, trial), plan.seed_for(base + 1, trial));
        prop_assert_ne!(plan.seed_for(base, trial), plan.seed_for(base, trial + 1));

        let graph = generators::cycle(96).unwrap();
        let csr = graph.freeze();
        let a = plan.draw(&csr, plan.seed_for(base, trial));
        let b = plan.draw(&csr, plan.seed_for(base + 1, trial));
        // 8 nodes out of 96: a collision of the whole set is ~1e-12 per
        // case, so inequality is a sound deterministic assertion for the
        // seeds proptest enumerates here.
        prop_assert_ne!(a.nodes(), b.nodes());
    }
}
