//! The parallel `Graph::freeze` against its serial reference.
//!
//! The parallel build (parallel degree count, prefix-sum offsets, race-free
//! parallel scatter, lock-free union-find component labelling) must be
//! **bit-identical** to the serial left-to-right build on every input: CSR
//! offsets and targets, identifier table, and the canonical component
//! labelling. `CsrGraph`'s derived `PartialEq` covers all four, and the
//! component labelling is additionally cross-checked against the
//! BFS-based `traversal::connected_components`.
//!
//! Thread counts: the pool size is process-global (`AVG_LOCAL_THREADS`), so
//! CI runs this suite under both the 1-thread sequential-reference pool and
//! the pinned 4-thread pool; `Graph::freeze_parallel` exercises the parallel
//! code path in both cases (a 1-participant pool runs it inline).

use avglocal::graph::csr::CsrGraph;
use avglocal::graph::{traversal, ComponentLabels, ComponentMode};
use avglocal::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sizes for which every deterministic family (including the torus) has an
/// instance.
const UNIVERSAL_SIZES: [usize; 3] = [9, 16, 24];

fn assert_freeze_agreement(graph: &Graph) {
    let serial = graph.freeze_serial();
    let parallel = graph.freeze_parallel();
    // Offsets, targets, identifiers and component labels, all at once.
    assert_eq!(serial, parallel);
    // The dispatching entry point picks one of the two, so it agrees too.
    assert_eq!(graph.freeze(), serial);
    // The component labelling matches the BFS ground truth: same partition,
    // components numbered by smallest member.
    let expected = traversal::connected_components(graph);
    let labels = serial.components();
    assert_eq!(labels.count(), expected.len());
    for (c, nodes) in expected.iter().enumerate() {
        assert_eq!(labels.sizes()[c] as usize, nodes.len());
        for &v in nodes {
            assert_eq!(labels.label(v), c as u32);
        }
    }
    assert_eq!(labels.is_connected(), traversal::is_connected(graph));
    // The standalone graph labelling agrees with the freeze-time one.
    assert_eq!(&ComponentLabels::of_graph(graph), labels);
}

#[test]
fn freeze_agrees_on_every_topology_family() {
    for &n in &UNIVERSAL_SIZES {
        for topology in Topology::DETERMINISTIC {
            assert_freeze_agreement(&topology.build(n).unwrap());
        }
        assert_freeze_agreement(&Topology::gnp_connected(n, 7).build(n).unwrap());
    }
}

#[test]
fn freeze_agrees_on_disconnected_instances() {
    // Subcritical G(n, p) instances in per-component mode are the graphs the
    // component labelling exists for.
    for seed in 0..8u64 {
        let n = 48;
        let topology = Topology::Gnp { p: 0.6 / n as f64, seed };
        let graph = topology.build_for(n, ComponentMode::PerComponent).unwrap();
        assert_freeze_agreement(&graph);
    }
    // The degenerate extremes: no edges at all, and the empty graph.
    assert_freeze_agreement(&Topology::Gnp { p: 0.0, seed: 1 }.build_unchecked(16).unwrap());
    assert_freeze_agreement(&Graph::new());
}

#[test]
fn freeze_agrees_on_large_instances_past_the_parallel_cutoff() {
    // Large enough that `freeze()` takes the parallel path on a multi-thread
    // pool: the dispatch itself must stay invisible.
    let n = 1 << 13;
    for topology in [Topology::Cycle, Topology::Grid] {
        assert_freeze_agreement(&topology.build(n).unwrap());
    }
}

#[test]
fn frozen_components_feed_the_executors_unchanged() {
    // A frozen snapshot of a disconnected graph still runs (balls saturate
    // at the component), and the labelling the executors would consult is
    // the same one the serial reference computes.
    let graph = Topology::Gnp { p: 0.02, seed: 3 }.build_unchecked(40).unwrap();
    let csr = graph.freeze();
    assert_eq!(csr.components(), graph.freeze_serial().components());
    assert_eq!(CsrGraph::from_graph(&graph), csr);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random multigraph-free edge sets: the parallel freeze matches the
    /// serial reference on arbitrary (often disconnected) graphs.
    #[test]
    fn freeze_agrees_on_random_graphs(n in 1usize..64, extra in 0usize..96, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut graph = Graph::new();
        for i in 0..n {
            graph.add_node(Identifier::new(i as u64));
        }
        for _ in 0..extra {
            let u = NodeId::new(rng.gen_range(0..n));
            let v = NodeId::new(rng.gen_range(0..n));
            if u != v && !graph.contains_edge(u, v) {
                graph.add_edge(u, v).unwrap();
            }
        }
        let serial = graph.freeze_serial();
        let parallel = graph.freeze_parallel();
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(
            serial.components().count(),
            traversal::connected_components(&graph).len()
        );
    }

    /// Repeated parallel freezes of the same graph are identical — the
    /// union-find's canonical labelling is independent of scheduling.
    #[test]
    fn parallel_freeze_is_deterministic(seed in 0u64..200) {
        let n = 96;
        let topology = Topology::Gnp { p: 1.2 / n as f64, seed };
        let graph = topology.build_unchecked(n).unwrap();
        let first = graph.freeze_parallel();
        for _ in 0..3 {
            prop_assert_eq!(&graph.freeze_parallel(), &first);
        }
    }
}
