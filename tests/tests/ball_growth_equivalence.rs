//! Property tests: the incremental [`BallGrower`] is indistinguishable from
//! from-scratch [`extract_ball`] extraction — members, distances, saturation
//! and view fingerprints — at every radius, on every graph family the sweep
//! harness cares about (cycles, paths, trees, grids, Gnp random graphs).

use avglocal::algorithms::LargestId;
use avglocal::graph::{extract_ball, generators, BallGrower};
use avglocal::prelude::*;
use avglocal::runtime::{BallExecutor, Knowledge, LocalView};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Checks grower == extract_ball for every centre and every radius from 0 to
/// two past saturation, on `g`.
fn assert_grower_matches_extraction(g: &Graph) {
    let csr = g.freeze();
    for center in g.nodes() {
        let mut grower = BallGrower::new(&csr, center);
        let mut radius = 0usize;
        let mut beyond_saturation = 0usize;
        loop {
            let expected = extract_ball(g, center, radius);
            assert_eq!(
                grower.snapshot_ball(),
                expected,
                "ball mismatch at centre {center}, radius {radius}"
            );
            let lazy = LocalView::from_grower(&grower);
            let eager = LocalView::from_ball(&expected);
            assert_eq!(lazy.fingerprint(), eager.fingerprint());
            assert_eq!(lazy.node_count(), eager.node_count());
            assert_eq!(lazy.max_identifier(), eager.max_identifier());
            assert_eq!(lazy.center_degree(), eager.center_degree());
            assert_eq!(lazy.is_saturated(), eager.is_saturated());

            if grower.is_saturated() {
                beyond_saturation += 1;
                if beyond_saturation > 2 {
                    break;
                }
            }
            grower.grow();
            radius += 1;
        }
    }
}

/// Checks that the incremental executor and the from-scratch baseline agree
/// on every radius and output of the largest-ID algorithm on `g`.
fn assert_executors_agree(g: &Graph) {
    let fast = BallExecutor::new()
        .run(g, &LargestId, Knowledge::none())
        .expect("largest-ID terminates on every graph");
    let slow = BallExecutor::from_scratch_baseline()
        .run(g, &LargestId, Knowledge::none())
        .expect("largest-ID terminates on every graph");
    assert_eq!(fast.radii(), slow.radii());
    assert_eq!(fast.outputs(), slow.outputs());
}

fn shuffled(mut g: Graph, seed: u64) -> Graph {
    IdAssignment::Shuffled { seed }.apply(&mut g).expect("shuffles always fit");
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn grower_matches_extraction_on_cycles(n in 3usize..28, seed in 0u64..1000) {
        let g = shuffled(generators::cycle(n).unwrap(), seed);
        assert_grower_matches_extraction(&g);
        assert_executors_agree(&g);
    }

    #[test]
    fn grower_matches_extraction_on_paths(n in 1usize..28, seed in 0u64..1000) {
        let g = shuffled(generators::path(n).unwrap(), seed);
        assert_grower_matches_extraction(&g);
        assert_executors_agree(&g);
    }

    #[test]
    fn grower_matches_extraction_on_random_trees(n in 1usize..24, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = shuffled(generators::random_tree(n, &mut rng).unwrap(), seed);
        assert_grower_matches_extraction(&g);
        assert_executors_agree(&g);
    }

    #[test]
    fn grower_matches_extraction_on_grids(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        let g = shuffled(generators::grid(rows, cols).unwrap(), seed);
        assert_grower_matches_extraction(&g);
        assert_executors_agree(&g);
    }

    #[test]
    fn grower_matches_extraction_on_gnp(n in 1usize..20, p_millis in 0usize..1001, seed in 0u64..1000) {
        // Gnp graphs may be disconnected: saturation then happens at the
        // component, which both engines must agree on.
        let p = p_millis as f64 / 1000.0;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = shuffled(generators::erdos_renyi(n, p, &mut rng).unwrap(), seed);
        assert_grower_matches_extraction(&g);
        assert_executors_agree(&g);
    }

    #[test]
    fn grower_matches_extraction_on_preferential_attachment(
        n in 1usize..24,
        m in 1usize..4,
        seed in 0u64..1000
    ) {
        // Hub-weighted instances stress the grower differently from the
        // near-regular families: one frontier step at a hub pulls in a large
        // fraction of the graph at once.
        let mut rng = StdRng::seed_from_u64(seed);
        let g = shuffled(generators::preferential_attachment(n, m, &mut rng).unwrap(), seed);
        assert_grower_matches_extraction(&g);
        assert_executors_agree(&g);
    }

    #[test]
    fn grower_matches_extraction_on_power_law_configuration(
        n in 1usize..20,
        gamma_tenths in 15usize..35,
        seed in 0u64..1000
    ) {
        // Configuration-model draws may be disconnected (saturation at the
        // component) and carry extreme degree skew.
        let gamma = gamma_tenths as f64 / 10.0;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = shuffled(generators::power_law_configuration(n, gamma, &mut rng).unwrap(), seed);
        assert_grower_matches_extraction(&g);
        assert_executors_agree(&g);
    }
}
