//! Fuzzing of every untrusted-input decode surface.
//!
//! The snapshot codec and the edge-list parser both face arbitrary bytes;
//! these properties check the contract that matters at a trust boundary:
//! **no input panics**, accepted inputs round-trip bit-identically (component
//! labels included), and corrupted inputs are rejected with typed errors.

use avglocal::graph::io::from_edge_list;
use avglocal::graph::{generators, snapshot, CsrGraph, GraphError};
use avglocal_integration_tests::shuffled_ring;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2_000))]

    /// Arbitrary bytes must be decoded or rejected, never panicked on. A
    /// random buffer essentially never carries the magic, so acceptance here
    /// would itself be suspicious — but the property only demands totality.
    #[test]
    fn arbitrary_bytes_never_panic_the_snapshot_decoder(buf in collection::bytes(0..256)) {
        match CsrGraph::from_bytes(&buf) {
            Ok(decoded) => prop_assert_eq!(decoded.to_bytes(), buf),
            Err(GraphError::CorruptSnapshot { offset, .. }) => prop_assert!(offset <= buf.len()),
            Err(other) => {
                return Err(TestCaseError::fail(format!("unexpected error variant: {other}")));
            }
        }
    }

    /// Same totality demand with the header hurdle removed: a well-formed
    /// magic + version prefix followed by arbitrary bytes reaches the body
    /// validation paths instead of bouncing off the first checks.
    #[test]
    fn magic_prefixed_garbage_never_panics(buf in collection::bytes(0..224)) {
        let mut bytes = snapshot::MAGIC.to_vec();
        bytes.extend_from_slice(&snapshot::VERSION.to_le_bytes());
        bytes.extend_from_slice(&buf);
        match CsrGraph::from_bytes(&bytes) {
            Ok(decoded) => prop_assert_eq!(decoded.to_bytes(), bytes),
            Err(GraphError::CorruptSnapshot { .. }) => {}
            Err(other) => {
                return Err(TestCaseError::fail(format!("unexpected error variant: {other}")));
            }
        }
    }

    /// Every truncation of a valid snapshot is an error, not a panic.
    #[test]
    fn truncated_ring_snapshots_are_rejected(n in 3usize..48, seed in 0u64..32, cut in 0usize..4096) {
        let bytes = shuffled_ring(n, seed).freeze().to_bytes();
        let cut = cut % bytes.len();
        prop_assert!(CsrGraph::from_bytes(&bytes[..cut]).is_err());
    }

    /// Any single bit flip anywhere in a snapshot is detected.
    #[test]
    fn bit_flipped_ring_snapshots_are_rejected(n in 3usize..48, seed in 0u64..32, flip in 0usize..1 << 20) {
        let mut bytes = shuffled_ring(n, seed).freeze().to_bytes();
        let bit = flip % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(CsrGraph::from_bytes(&bytes).is_err(), "flip of bit {} survived", bit);
    }

    /// Accepted snapshots round-trip bit-identically — offsets, targets,
    /// identifiers and component labels — on random (often disconnected)
    /// graphs, not just the well-behaved rings.
    #[test]
    fn random_graph_snapshots_round_trip(n in 1usize..64, density in 0usize..4, seed in 0u64..1000) {
        let m = (n.saturating_sub(1)) * density / 2;
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = generators::gnm_random(n, m, &mut rng).unwrap();
        let csr = graph.freeze();
        let bytes = csr.to_bytes();
        let decoded = match CsrGraph::from_bytes(&bytes) {
            Ok(decoded) => decoded,
            Err(e) => return Err(TestCaseError::fail(format!("own snapshot rejected: {e}"))),
        };
        prop_assert_eq!(decoded.offsets(), csr.offsets());
        prop_assert_eq!(decoded.targets(), csr.targets());
        prop_assert_eq!(decoded.identifiers(), csr.identifiers());
        prop_assert_eq!(decoded.components().count(), csr.components().count());
        prop_assert_eq!(decoded.components().labels(), csr.components().labels());
        prop_assert_eq!(decoded.components().sizes(), csr.components().sizes());
        prop_assert_eq!(decoded.to_bytes(), bytes);
    }

    /// The edge-list parser is total over arbitrary (lossily decoded) text.
    #[test]
    fn arbitrary_text_never_panics_the_edge_list_parser(buf in collection::bytes(0..256)) {
        let text = String::from_utf8_lossy(&buf);
        match from_edge_list(&text) {
            Ok(graph) => prop_assert!(graph.node_count() <= text.len()),
            Err(GraphError::MalformedLine { line, .. }) => {
                prop_assert!(line >= 1 && line <= text.lines().count());
            }
            // Structurally valid text can still describe an invalid graph
            // (duplicate identifiers, self-loops, unknown endpoints, ...).
            Err(_) => {}
        }
    }

    /// Mutating one byte of a valid serialisation keeps the parser total and
    /// keeps reported line numbers inside the document.
    #[test]
    fn mutated_edge_lists_stay_total(n in 3usize..24, seed in 0u64..32, pos in 0usize..4096, byte in 0u64..256) {
        let graph = shuffled_ring(n, seed);
        let mut text = avglocal::graph::io::to_edge_list(&graph).into_bytes();
        let pos = pos % text.len();
        text[pos] = byte as u8;
        let text = String::from_utf8_lossy(&text).into_owned();
        if let Err(GraphError::MalformedLine { line, .. }) = from_edge_list(&text) {
            prop_assert!(line >= 1 && line <= text.lines().count());
        }
    }
}
