//! In-tree stand-in for the subset of the
//! [`criterion`](https://crates.io/crates/criterion) crate this workspace
//! uses.
//!
//! The build environment has no access to a crate registry, so the workspace
//! vendors a small wall-clock harness with the same source-level API as the
//! benches need: [`Criterion::benchmark_group`], `sample_size`,
//! `bench_with_input` / `bench_function`, [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! There is no statistical analysis: each benchmark runs one warm-up
//! iteration followed by `sample_size` timed iterations and prints the mean
//! and minimum per-iteration wall time.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id labelled by a function name and a parameter.
    #[must_use]
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function.into(), parameter) }
    }

    /// An id labelled by a parameter only.
    #[must_use]
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId { label: label.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Times closures under [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    minimum: Duration,
    iterations: u64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher { samples, total: Duration::ZERO, minimum: Duration::MAX, iterations: 0 }
    }

    /// Runs `routine` once to warm up, then `sample_size` timed times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            self.total += elapsed;
            self.minimum = self.minimum.min(elapsed);
            self.iterations += 1;
        }
    }
}

/// One named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Benchmarks `routine`, passing it `input`.
    pub fn bench_with_input<I, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher, input);
        self.report(&id.label, &bencher);
        self
    }

    /// Benchmarks `routine` with no input.
    pub fn bench_function<I, R>(&mut self, id: I, mut routine: R) -> &mut Self
    where
        I: Into<BenchmarkId>,
        R: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher);
        self.report(&id.into().label, &bencher);
        self
    }

    fn report(&mut self, label: &str, bencher: &Bencher) {
        let line = if bencher.iterations == 0 {
            format!("{}/{label}: no iterations recorded", self.name)
        } else {
            let mean = bencher.total / u32::try_from(bencher.iterations).unwrap_or(u32::MAX);
            format!(
                "{}/{label}: mean {} / min {} over {} iterations",
                self.name,
                format_duration(mean),
                format_duration(bencher.minimum),
                bencher.iterations
            )
        };
        println!("{line}");
        self.criterion.lines.push(line);
    }

    /// Ends the group (upstream flushes reports here; the shim prints live).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    lines: Vec<String>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10 }
    }

    /// Benchmarks `routine` outside of any group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, name: &str, mut routine: R) {
        let mut bencher = Bencher::new(10);
        routine(&mut bencher);
        let mut group = self.benchmark_group("bench");
        group.report(name, &bencher);
    }

    /// All report lines produced so far (used by the shim's tests).
    #[must_use]
    pub fn report_lines(&self) -> &[String] {
        &self.lines
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} us", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Declares a benchmark group function running the listed targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_reports_mean_and_min() {
        let mut c = Criterion::default();
        {
            let mut group = c.benchmark_group("demo");
            group.sample_size(3);
            group.bench_with_input(BenchmarkId::from_parameter(42), &42u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            group.finish();
        }
        assert_eq!(c.report_lines().len(), 1);
        assert!(c.report_lines()[0].starts_with("demo/42:"));
        assert!(c.report_lines()[0].contains("3 iterations"));
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
    }

    #[test]
    fn durations_format_with_units() {
        assert!(format_duration(Duration::from_nanos(5)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(5)).ends_with("us"));
        assert!(format_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(5)).ends_with(" s"));
    }
}
