//! In-tree stand-in for the subset of the
//! [`rayon`](https://crates.io/crates/rayon) crate this workspace uses.
//!
//! The build environment has no access to a crate registry, so the workspace
//! vendors the data-parallel surface its executors need:
//! `into_par_iter().map(..).collect()` over ranges and vectors, plus
//! [`join`]. Work is executed on `std::thread::scope` threads over contiguous
//! chunks, so results are always in input order — parallelism never changes
//! an answer.
//!
//! A global thread-budget (initialised to the machine's available
//! parallelism) bounds the total number of live worker threads even under
//! nested parallel calls: a call that cannot reserve extra threads simply
//! runs inline on the caller's thread.

#![forbid(unsafe_code)]

use std::ops::Range;
use std::sync::atomic::{AtomicIsize, Ordering};
use std::sync::OnceLock;

/// The traits to import to use parallel iterators.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

fn budget() -> &'static AtomicIsize {
    static BUDGET: OnceLock<AtomicIsize> = OnceLock::new();
    BUDGET.get_or_init(|| {
        let threads = std::thread::available_parallelism().map_or(1, usize::from);
        // The caller's thread always works too, so the budget only counts
        // *extra* workers.
        AtomicIsize::new(threads as isize - 1)
    })
}

/// Reserves up to `wanted` extra worker threads from the global budget.
fn reserve_workers(wanted: usize) -> usize {
    let budget = budget();
    let mut granted = 0usize;
    while granted < wanted {
        let available = budget.load(Ordering::Relaxed);
        if available <= 0 {
            break;
        }
        let take = (available as usize).min(wanted - granted) as isize;
        if budget
            .compare_exchange(available, available - take, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            granted += take as usize;
        }
    }
    granted
}

fn release_workers(count: usize) {
    budget().fetch_add(count as isize, Ordering::Relaxed);
}

/// Returns the reserved workers to the budget on drop, so a panicking worker
/// closure cannot leak the reservation (which would silently degrade every
/// later parallel call in the process to sequential execution).
struct Reservation(usize);

impl Drop for Reservation {
    fn drop(&mut self) {
        release_workers(self.0);
    }
}

/// The number of threads the pool would use for a fresh, un-nested parallel
/// call (the machine's available parallelism).
#[must_use]
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Runs the two closures, in parallel when a worker thread is available, and
/// returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if reserve_workers(1) == 0 {
        return (a(), b());
    }
    let _reservation = Reservation(1);
    std::thread::scope(|scope| {
        let handle = scope.spawn(b);
        let ra = a();
        (ra, handle.join().expect("rayon-shim join worker panicked"))
    })
}

/// Applies `f` to every item on a bounded set of scoped threads, preserving
/// input order in the output.
fn parallel_apply<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let len = items.len();
    if len <= 1 {
        return items.into_iter().map(f).collect();
    }
    let extra = reserve_workers(len.saturating_sub(1).min(current_num_threads()));
    if extra == 0 {
        return items.into_iter().map(f).collect();
    }
    let _reservation = Reservation(extra);
    let chunks = extra + 1;
    let chunk_len = len.div_ceil(chunks);
    let mut batches: Vec<Vec<T>> = Vec::with_capacity(chunks);
    let mut items = items.into_iter();
    for _ in 0..chunks {
        batches.push(items.by_ref().take(chunk_len).collect());
    }
    let mut results: Vec<Vec<R>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(chunks);
        for batch in batches {
            handles.push(scope.spawn(move || batch.into_iter().map(f).collect::<Vec<R>>()));
        }
        handles.into_iter().map(|h| h.join().expect("rayon-shim map worker panicked")).collect()
    });
    let mut out = Vec::with_capacity(len);
    for batch in &mut results {
        out.append(batch);
    }
    out
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The type of the items.
    type Item: Send;
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// A parallel iterator: a pipeline that can be executed across threads.
pub trait ParallelIterator: Sized {
    /// The type of the items.
    type Item: Send;

    /// Executes the pipeline and returns the items in input order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps every item through `f` (applied in parallel when driven).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Executes the pipeline and collects the items.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drive().into_iter().collect()
    }

    /// Executes the pipeline for its effects.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
        Self::Item: Send,
    {
        let _: Vec<()> = Map { base: self, f: |item| f(item) }.drive();
    }
}

/// Parallel iterator over an already-materialised list of items.
#[derive(Debug)]
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;
    fn drive(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = VecIter<usize>;
    fn into_par_iter(self) -> VecIter<usize> {
        VecIter { items: self.collect() }
    }
}

/// A mapping stage of a parallel pipeline.
#[derive(Debug)]
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;
    fn drive(self) -> Vec<R> {
        parallel_apply(self.base.drive(), &self.f)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        assert!(squares.iter().enumerate().all(|(i, &s)| s == i * i));
    }

    #[test]
    fn vec_source_and_chained_maps() {
        let v: Vec<i64> = vec![3, 1, 2];
        let out: Vec<i64> = v.into_par_iter().map(|x| x * 10).map(|x| x + 1).collect();
        assert_eq!(out, vec![31, 11, 21]);
    }

    #[test]
    fn nested_calls_do_not_deadlock() {
        let totals: Vec<usize> = (0..8)
            .into_par_iter()
            .map(|i| (0..100).into_par_iter().map(move |j| i + j).collect::<Vec<_>>().len())
            .collect();
        assert!(totals.iter().all(|&t| t == 100));
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn panicking_worker_does_not_leak_the_budget() {
        use std::sync::atomic::Ordering;
        // A panic inside a parallel map must return the reserved workers to
        // the global budget (otherwise all later calls silently go inline).
        let before = super::budget().load(Ordering::Relaxed);
        let attempt = std::panic::catch_unwind(|| {
            let _: Vec<usize> = (0..64)
                .into_par_iter()
                .map(|i| if i == 33 { panic!("worker boom") } else { i })
                .collect();
        });
        assert!(attempt.is_err(), "the panic must propagate to the caller");
        // Other tests may hold transient reservations; only a *permanent*
        // shortfall (the leak) keeps the budget below `before` for long.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while super::budget().load(Ordering::Relaxed) < before {
            assert!(
                std::time::Instant::now() < deadline,
                "reservation leaked after a worker panic"
            );
            std::thread::yield_now();
        }
        // And the pool still works afterwards.
        let v: Vec<usize> = (0..100).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(v[99], 100);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<usize> = Vec::<usize>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<usize> = vec![5].into_par_iter().map(|x| x * 2).collect();
        assert_eq!(one, vec![10]);
    }
}
