//! In-tree stand-in for the subset of the
//! [`rayon`](https://crates.io/crates/rayon) crate this workspace uses.
//!
//! The build environment has no access to a crate registry, so the workspace
//! vendors the data-parallel surface its executors need:
//! `into_par_iter().map(..).collect()` / [`ParallelIterator::map_init`] over
//! ranges and vectors, plus [`join`].
//!
//! Unlike the first-generation shim — which spawned fresh
//! `std::thread::scope` threads on every call and split the input into
//! static contiguous chunks — this version executes on a **persistent,
//! lazily initialised global worker pool** with **dynamic chunk
//! distribution**: parallel calls publish a job with an atomic chunk cursor,
//! idle participants steal the remaining chunks, and results land in
//! pre-allocated index-addressed slots. Outputs are therefore always in
//! input order — parallelism never changes an answer — while a single
//! expensive item no longer serialises the whole static chunk behind it (see
//! [`pool`] for the architecture, and [`pool::baseline`] for the retained
//! spawn-per-call static baseline benches compare against).
//!
//! The pool size is, in order of precedence: the
//! [`ThreadPoolBuilder::build_global`] request, the `AVG_LOCAL_THREADS`
//! environment variable, or the machine's available parallelism. A pool of
//! size 1 runs every call inline on the caller, which keeps single-core and
//! `AVG_LOCAL_THREADS=1` runs allocation- and thread-free — the reference
//! behaviour determinism tests compare against. Nested parallel calls share
//! the same pool and injector (no extra threads), and the nesting caller
//! always participates in its own job, so nesting cannot deadlock.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod failpoints;
pub mod pool;
mod sync;

use std::mem::ManuallyDrop;
use std::ops::Range;

/// The traits to import to use parallel iterators.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// The number of participants (worker threads plus the calling thread) the
/// global pool executes with, initialising the pool on first use.
#[must_use]
pub fn current_num_threads() -> usize {
    pool::num_threads()
}

/// Error returned when the global pool was already initialised with a
/// different size than the builder requested.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadPoolBuildError {
    /// The size the already-running global pool was built with.
    pub active_threads: usize,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global thread pool already initialised with {} threads", self.active_threads)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for the global pool, mirroring rayon's
/// `ThreadPoolBuilder::new().num_threads(n).build_global()` surface so
/// benches and CI can pin worker counts programmatically (the
/// `AVG_LOCAL_THREADS` environment variable is the non-programmatic route).
#[derive(Debug, Clone, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with no explicit thread count.
    #[must_use]
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Requests a pool of exactly `num_threads` participants (0 keeps the
    /// automatic choice, like upstream rayon).
    #[must_use]
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = Some(num_threads);
        self
    }

    /// Installs the request for the global pool.
    ///
    /// # Errors
    ///
    /// Returns [`ThreadPoolBuildError`] when the global pool has already
    /// been initialised (by an earlier parallel call) with a different size.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        match self.num_threads {
            None | Some(0) => Ok(()),
            Some(threads) => pool::request_threads(threads)
                .map_err(|active_threads| ThreadPoolBuildError { active_threads }),
        }
    }
}

/// Runs the two closures, in parallel when a pool worker is free to take the
/// second one, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    pool::join(a, b)
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The type of the items.
    type Item: Send;
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// A parallel iterator: a pipeline that can be executed across the pool.
pub trait ParallelIterator: Sized {
    /// The type of the items.
    type Item: Send;

    /// Drives the pipeline on the pool with a per-participant `state`
    /// threaded through `f` — the engine hook every adapter reduces to.
    /// Results are returned in input order.
    fn apply_with_state<S, R, G, F>(self, init: G, f: F) -> Vec<R>
    where
        S: Send,
        R: Send,
        G: Fn() -> S + Sync,
        F: Fn(&mut S, Self::Item) -> R + Sync;

    /// Maps every item through `f` (applied in parallel when driven).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Maps every item through `f`, handing it a mutable state created by
    /// `init` once per pool participant and reused across all chunks that
    /// participant claims — rayon's `map_init`. This is how executors keep
    /// per-worker scratch buffers warm across stolen chunks.
    fn map_init<S, R, G, F>(self, init: G, f: F) -> MapInit<Self, G, F>
    where
        S: Send,
        R: Send,
        G: Fn() -> S + Sync,
        F: Fn(&mut S, Self::Item) -> R + Sync,
    {
        MapInit { base: self, init, f }
    }

    /// Executes the pipeline and returns the items in input order.
    fn drive(self) -> Vec<Self::Item> {
        self.apply_with_state(|| (), |_, item| item)
    }

    /// Executes the pipeline and collects the items.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drive().into_iter().collect()
    }

    /// Executes the pipeline for its effects.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let _: Vec<()> = self.apply_with_state(|| (), |_, item| f(item));
    }
}

/// Shareable raw base pointer of a vector whose items are claimed by index.
struct ItemsPtr<T>(*const T);

impl<T> ItemsPtr<T> {
    /// The base pointer; a method (rather than field access) so closures
    /// capture the `Sync` wrapper, not the raw pointer.
    fn base(&self) -> *const T {
        self.0
    }
}

// SAFETY: the pointer is only dereferenced through the claim-by-index
// protocol (each index exactly once) on `T: Send` items.
unsafe impl<T: Send> Send for ItemsPtr<T> {}
unsafe impl<T: Send> Sync for ItemsPtr<T> {}

/// Frees a vector's buffer on drop without dropping any elements; used so a
/// panicking pipeline cannot double-drop items that were moved out by index.
struct RawBuffer<T> {
    ptr: *mut T,
    capacity: usize,
}

impl<T> Drop for RawBuffer<T> {
    fn drop(&mut self) {
        // SAFETY: constructed from a live Vec's parts; length 0 means no
        // element destructor runs (consumed items were moved out; on a
        // panic, unconsumed ones are deliberately leaked).
        drop(unsafe { Vec::from_raw_parts(self.ptr, 0, self.capacity) });
    }
}

/// Parallel iterator over an already-materialised list of items.
#[derive(Debug)]
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;

    fn apply_with_state<S, R, G, F>(self, init: G, f: F) -> Vec<R>
    where
        S: Send,
        R: Send,
        G: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> R + Sync,
    {
        let len = self.items.len();
        let mut items = ManuallyDrop::new(self.items);
        let buffer = RawBuffer { ptr: items.as_mut_ptr(), capacity: items.capacity() };
        let base = ItemsPtr(buffer.ptr.cast_const());
        let results = pool::run_chunked(len, init, |state, index| {
            // SAFETY: the chunk cursor hands out every index exactly once,
            // so each item is moved out exactly once.
            let item = unsafe { std::ptr::read(base.base().add(index)) };
            f(state, item)
        });
        drop(buffer);
        results
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

/// Parallel iterator over a contiguous index range — drives the pool's chunk
/// cursor directly, with no materialised item buffer.
#[derive(Debug)]
pub struct RangeIter {
    range: Range<usize>,
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn apply_with_state<S, R, G, F>(self, init: G, f: F) -> Vec<R>
    where
        S: Send,
        R: Send,
        G: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> R + Sync,
    {
        let start = self.range.start;
        let len = self.range.len();
        pool::run_chunked(len, init, |state, index| f(state, start + index))
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = RangeIter;
    fn into_par_iter(self) -> RangeIter {
        RangeIter { range: self }
    }
}

/// A mapping stage of a parallel pipeline.
#[derive(Debug)]
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;

    fn apply_with_state<S, R2, G, F2>(self, init: G, f: F2) -> Vec<R2>
    where
        S: Send,
        R2: Send,
        G: Fn() -> S + Sync,
        F2: Fn(&mut S, R) -> R2 + Sync,
    {
        let map = self.f;
        self.base.apply_with_state(init, |state, item| f(state, map(item)))
    }
}

/// A stateful mapping stage of a parallel pipeline (see
/// [`ParallelIterator::map_init`]).
#[derive(Debug)]
pub struct MapInit<I, G, F> {
    base: I,
    init: G,
    f: F,
}

impl<I, S, R, G, F> ParallelIterator for MapInit<I, G, F>
where
    I: ParallelIterator,
    S: Send,
    R: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, I::Item) -> R + Sync,
{
    type Item = R;

    fn apply_with_state<S2, R2, G2, F2>(self, init: G2, f: F2) -> Vec<R2>
    where
        S2: Send,
        R2: Send,
        G2: Fn() -> S2 + Sync,
        F2: Fn(&mut S2, R) -> R2 + Sync,
    {
        let my_init = self.init;
        let my_f = self.f;
        self.base.apply_with_state(
            move || (my_init(), init()),
            move |state, item| {
                let (inner, outer) = state;
                f(outer, my_f(inner, item))
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        assert!(squares.iter().enumerate().all(|(i, &s)| s == i * i));
    }

    #[test]
    fn vec_source_and_chained_maps() {
        let v: Vec<i64> = vec![3, 1, 2];
        let out: Vec<i64> = v.into_par_iter().map(|x| x * 10).map(|x| x + 1).collect();
        assert_eq!(out, vec![31, 11, 21]);
    }

    #[test]
    fn vec_source_moves_every_item_exactly_once() {
        // Non-Copy items with a drop counter: every item must be consumed by
        // the pipeline exactly once and dropped exactly once.
        struct Tracked(Arc<AtomicUsize>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let items: Vec<Tracked> = (0..500).map(|_| Tracked(Arc::clone(&drops))).collect();
        let consumed: Vec<usize> = items.into_par_iter().map(drop).map(|()| 1).collect();
        assert_eq!(consumed.len(), 500);
        assert_eq!(drops.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn map_init_reuses_state_within_a_participant() {
        // The number of `init` calls is bounded by the pool size, never by
        // the item count — that is the whole point of per-worker state.
        let inits = AtomicUsize::new(0);
        let out: Vec<usize> = (0..4096)
            .into_par_iter()
            .map_init(
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    0usize
                },
                |calls, i| {
                    *calls += 1;
                    i
                },
            )
            .collect();
        assert_eq!(out.len(), 4096);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
        let init_count = inits.load(Ordering::Relaxed);
        assert!(init_count >= 1);
        assert!(
            init_count <= super::current_num_threads(),
            "map_init must create at most one state per pool participant \
             ({init_count} inits on a {}-thread pool)",
            super::current_num_threads()
        );
    }

    #[test]
    fn map_init_after_map_composes() {
        let out: Vec<usize> = (0..100)
            .into_par_iter()
            .map(|i| i * 2)
            .map_init(|| 3usize, |offset, i| i + *offset)
            .collect();
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2 + 3));
    }

    #[test]
    fn nested_calls_do_not_deadlock() {
        let totals: Vec<usize> = (0..8)
            .into_par_iter()
            .map(|i| (0..100).into_par_iter().map(move |j| i + j).collect::<Vec<_>>().len())
            .collect();
        assert!(totals.iter().all(|&t| t == 100));
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_propagates_panics_from_the_right_side() {
        let attempt = std::panic::catch_unwind(|| {
            super::join(|| 1, || -> usize { panic!("right side boom") });
        });
        assert!(attempt.is_err());
        // The pool still works afterwards.
        let (a, b) = super::join(|| 5, || 6);
        assert_eq!((a, b), (5, 6));
    }

    #[test]
    fn panicking_item_propagates_and_pool_survives() {
        let attempt = std::panic::catch_unwind(|| {
            let _: Vec<usize> = (0..64)
                .into_par_iter()
                .map(|i| if i == 33 { panic!("worker boom") } else { i })
                .collect();
        });
        assert!(attempt.is_err(), "the panic must propagate to the caller");
        // The persistent pool must survive a panicking job.
        for _ in 0..3 {
            let v: Vec<usize> = (0..100).into_par_iter().map(|i| i + 1).collect();
            assert_eq!(v[99], 100);
        }
    }

    #[test]
    fn lowest_index_panic_wins_deterministically() {
        // Several items panic with index-carrying payloads; whatever the
        // chunk interleaving, the payload re-thrown on the caller must be
        // the one of the smallest panicking index.
        for round in 0..8 {
            let payload = std::panic::catch_unwind(|| {
                let _: Vec<usize> = (0..512)
                    .into_par_iter()
                    .map(|i| if i % 97 == 19 { panic!("boom at {i}") } else { i })
                    .collect();
            })
            .unwrap_err();
            let message = payload.downcast::<String>().expect("panic payload is a String");
            assert_eq!(*message, "boom at 19", "round {round}");
        }
    }

    #[test]
    fn injected_panic_storm_leaves_the_pool_usable() {
        // Panic on every claimed chunk of the armed jobs — a storm, not a
        // single fault — and the pool must keep answering afterwards.
        crate::failpoints::arm(crate::failpoints::Plan::new().panic_every(1));
        for _ in 0..3 {
            let attempt = std::panic::catch_unwind(|| {
                let _: Vec<usize> = (0..256).into_par_iter().map(|i| 512 - i).collect();
            });
            assert!(attempt.is_err(), "the injected storm must surface");
        }
        crate::failpoints::disarm();
        let v: Vec<usize> = (0..256).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v[255], 510);
    }

    #[test]
    fn injected_delays_never_change_results() {
        crate::failpoints::arm(crate::failpoints::Plan::new().delay_every(2, 200));
        let delayed: Vec<u64> =
            (0..1024).into_par_iter().map(|i| (i as u64).wrapping_mul(0x9e37_79b9)).collect();
        crate::failpoints::disarm();
        let plain: Vec<u64> =
            (0..1024).into_par_iter().map(|i| (i as u64).wrapping_mul(0x9e37_79b9)).collect();
        assert_eq!(delayed, plain);
    }

    #[test]
    fn repeated_runs_are_bit_identical() {
        let run = || -> Vec<u64> {
            (0..2048).into_par_iter().map(|i| (i as u64).wrapping_mul(0x9e37_79b9)).collect()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<usize> = Vec::<usize>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<usize> = vec![5].into_par_iter().map(|x| x * 2).collect();
        assert_eq!(one, vec![10]);
    }

    #[test]
    fn for_each_visits_every_item() {
        let count = AtomicUsize::new(0);
        (0..333).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 333);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn builder_rejects_resizing_a_running_pool() {
        // Force pool start, then ask for an absurd size: either the pool was
        // not started yet (request accepted) or the builder must refuse.
        let _ = (0..16).into_par_iter().map(|i| i).collect::<Vec<_>>();
        let active = super::current_num_threads();
        match super::ThreadPoolBuilder::new().num_threads(active + 7).build_global() {
            Ok(()) => panic!("builder accepted resizing an already-running pool"),
            Err(err) => assert_eq!(err.active_threads, active),
        }
        // A no-op request is always fine.
        assert!(super::ThreadPoolBuilder::new().build_global().is_ok());
    }

    #[test]
    fn static_baseline_matches_pool_results() {
        let pool: Vec<usize> = (0..512).into_par_iter().map(|i| i * 3).collect();
        let baseline = super::pool::baseline::static_chunked(512, 4, || (), |(), i| i * 3);
        assert_eq!(pool, baseline);
    }
}
