//! The persistent worker pool behind the crate's parallel primitives.
//!
//! # Architecture
//!
//! A single global pool is initialised lazily on the first parallel call. It
//! owns `threads - 1` **persistent** worker threads (the calling thread is
//! always the remaining participant), so steady-state parallel calls never
//! pay thread-spawn latency — the overhead the old scoped-thread shim paid on
//! every call.
//!
//! Work is distributed **dynamically**: a parallel call publishes one
//! *chunk job* carrying an atomic cursor over the index space `0..len`.
//! Every participant — the caller plus any worker that picks the job up from
//! the shared injector — repeatedly claims the next small chunk of indices
//! from the cursor and processes it. A participant stuck on one expensive
//! item therefore stalls only its own chunk while the others drain the rest
//! of the index space, which is exactly what the skewed per-node costs of
//! adversarial identifier assignments need (one `Θ(n)` node among `n - 1`
//! cheap ones). This is shared-queue work *sharing* rather than per-worker
//! deques, but it provides the property that matters here: idle participants
//! steal remaining chunks instead of idling behind a static partition.
//!
//! Results are written into pre-allocated, index-addressed output slots, so
//! outputs are deterministic by **position** no matter which participant
//! processed which chunk and in which order.
//!
//! # Nested calls
//!
//! A participant may itself issue a parallel call (the nested-call budget
//! semantics of the old shim). The nested job is published to the same
//! injector; the nesting participant claims its chunks itself, so progress
//! never depends on another thread being free — a pool of total size 1
//! degrades to plain inline execution.
//!
//! # Safety
//!
//! Jobs live on the publishing caller's stack and are shared with workers by
//! raw pointer, so the protocol below guarantees no worker can touch a job
//! after its caller returns:
//!
//! * a worker only learns about a job from the injector, and **enters** it
//!   (increments the job's `inside` count) while holding the injector lock;
//! * the caller removes the job from the injector (same lock) before its
//!   final wait, so no new participant can enter afterwards;
//! * the caller returns only once every index is completed **and**
//!   `inside == 0`, i.e. after the last worker has left the job.
//!
//! # Panics
//!
//! A panicking work item is caught and recorded per chunk; the remaining
//! chunks still run to completion, and the panic whose item index is
//! **smallest** is the one re-thrown on the caller. For a deterministic work
//! closure this makes the propagated payload deterministic — the same
//! first-in-index-order panic no matter how the pool interleaved the chunks
//! or how many participants it has — at the price of finishing the job on
//! the (rare) panic path instead of aborting it early. Job panics therefore
//! never unwind a pool thread, and the pool survives arbitrarily many
//! panicking jobs. On the panic path the already produced outputs (and, for
//! vector sources, unconsumed items) are leaked rather than dropped — a
//! deliberate simplification over upstream rayon.
//!
//! Should a panic nevertheless escape every job scope — only possible
//! between jobs, e.g. an injected worker kill — the worker thread itself
//! dies, and a per-worker supervisor respawns a replacement under the same
//! participant index (counted by [`worker_respawn_count`]), so the pool's
//! capacity is self-healing rather than silently degrading.
//!
//! Fault-injection hooks (see [`crate::failpoints`]) fire at every chunk
//! claim inside the same `catch_unwind` as the work items, so injected
//! panic storms exercise exactly the recovery path above; worker-kill
//! injection (see [`crate::failpoints::kill_workers`]) fires at job
//! boundaries to exercise the supervisor path.

use std::any::Any;
use std::cell::Cell;
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

use crate::failpoints::JobFailpoints;
use crate::sync::{AtomicBool, AtomicUsize, Condvar, Mutex, Ordering, UnsafeCell};

/// Environment variable pinning the pool size (total participants, counting
/// the calling thread). Read once, at first use of the pool; values that do
/// not parse to a positive integer are ignored.
pub const THREADS_ENV: &str = "AVG_LOCAL_THREADS";

/// Hard cap on the pool size, guarding against absurd overrides.
const MAX_THREADS: usize = 512;

/// Pool size requested by [`crate::ThreadPoolBuilder::build_global`] before
/// the pool was initialised (0 = no request). Deliberately a `std` atomic,
/// not a `crate::sync` one: this is pool *configuration*, outside the
/// protocol the loom model checks.
static REQUESTED_THREADS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Records a builder request for the global pool size and initialises the
/// pool eagerly (like upstream rayon's `build_global`), so success means
/// the pool *is* running at the requested size — there is no window in
/// which a racing first parallel call can win with a different size after
/// an `Ok` was reported.
///
/// Returns `Err` with the actually-active size when the pool was (or ends
/// up, under a race) initialised with a different one.
pub(crate) fn request_threads(threads: usize) -> Result<(), usize> {
    let clamped = threads.clamp(1, MAX_THREADS);
    if POOL.get().is_none() {
        // ordering: `Relaxed` is sufficient: `OnceLock` initialisation
        // serialises the read in `resolve_thread_count` against this store,
        // and success is decided by re-reading the truth below, not by the
        // store having won.
        REQUESTED_THREADS.store(clamped, std::sync::atomic::Ordering::Relaxed);
    }
    // `OnceLock` serialises initialisation: either our request (stored
    // above) wins, or someone else's resolution did — read the truth back.
    let active = num_threads();
    if active == clamped {
        Ok(())
    } else {
        Err(active)
    }
}

/// The number of participants (workers + the calling thread) of the global
/// pool, initialising it if necessary.
pub(crate) fn num_threads() -> usize {
    shared().threads
}

fn resolve_thread_count() -> usize {
    // ordering: `Relaxed` is sufficient: only the integer itself is read;
    // the `OnceLock` in `shared()` provides the happens-before edge to
    // whichever thread ends up initialising the pool.
    let requested = REQUESTED_THREADS.load(std::sync::atomic::Ordering::Relaxed);
    if requested > 0 {
        return requested;
    }
    if let Ok(value) = std::env::var(THREADS_ENV) {
        if let Ok(parsed) = value.trim().parse::<usize>() {
            if parsed > 0 {
                return parsed.min(MAX_THREADS);
            }
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// State shared between the workers and every caller.
///
/// Normally there is exactly one, global, lazily-started instance (see
/// `run_chunked` / `join`), but the struct is deliberately constructible
/// on its own: the loom suite builds a local `Shared` per model iteration
/// and drives the *same* job protocol against it through [`run_chunked_on`],
/// [`join_on`], and [`worker_step`].
pub struct Shared {
    /// Total participants: `threads - 1` workers plus the calling thread.
    threads: usize,
    /// Jobs currently accepting helpers, newest last.
    injector: Mutex<Vec<JobRef>>,
    /// Signalled when a job is published.
    work_available: Condvar,
}

impl Shared {
    /// A fresh, isolated pool state for `threads` participants. Spawns no
    /// workers: callers participate inline, and additional participants are
    /// driven explicitly with [`worker_step`] (as the loom models do) or by
    /// a surrounding `worker_loop`.
    pub fn with_threads(threads: usize) -> Shared {
        Shared {
            threads: threads.max(1),
            injector: Mutex::new(Vec::new()),
            work_available: Condvar::new(),
        }
    }
}

static POOL: OnceLock<Shared> = OnceLock::new();

/// Workers respawned by the supervisor after dying outside a job boundary.
/// A `std` atomic (not `crate::sync`): supervision bookkeeping, outside the
/// loom-modelled job protocol.
static WORKER_RESPAWNS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// How many pool workers the supervisor has respawned after an unwind
/// escaped every job scope (see [`crate::failpoints::kill_workers`] for the
/// injection hook). Normally 0 for the whole process lifetime.
#[must_use]
pub fn worker_respawn_count() -> usize {
    // ordering: `Relaxed` — a monotone statistics counter; readers only need
    // eventual counts, nothing is published through it.
    WORKER_RESPAWNS.load(std::sync::atomic::Ordering::Relaxed)
}

fn shared() -> &'static Shared {
    let shared = POOL.get_or_init(|| Shared::with_threads(resolve_thread_count()));
    static WORKERS_STARTED: OnceLock<()> = OnceLock::new();
    WORKERS_STARTED.get_or_init(|| {
        for index in 1..shared.threads {
            spawn_worker(shared, index);
        }
    });
    shared
}

/// Spawns the supervised worker thread for participant `index`.
fn spawn_worker(shared: &'static Shared, index: usize) {
    std::thread::Builder::new()
        .name(format!("avglocal-pool-{index}"))
        .spawn(move || supervise_worker(shared, index))
        .expect("spawning a pool worker thread");
}

/// Runs `worker_loop` and, should it ever unwind — a panic escaping every
/// job scope, which job-level `catch_unwind` recovery cannot see — respawns
/// a replacement worker under the same participant index, so the pool's
/// capacity survives worker death.
///
/// The unwind can only originate *between* jobs (job panics are caught per
/// chunk, and `worker_loop` holds no lock while running a job), so the dying
/// worker is registered with no job and poisons no mutex; the replacement
/// takes over a clean protocol state. The respawn happens on the dying
/// thread itself before it finishes unwinding, which keeps supervision free
/// of any watchdog thread or health-check traffic on the hot path.
fn supervise_worker(shared: &'static Shared, index: usize) {
    let outcome = catch_unwind(AssertUnwindSafe(|| worker_loop(shared, index)));
    if outcome.is_err() {
        // ordering: `Relaxed` — monotone statistics counter read only by
        // `worker_respawn_count`; no memory is published through it.
        WORKER_RESPAWNS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        spawn_worker(shared, index);
    }
}

thread_local! {
    /// Stable participant index of this thread: workers get `1..threads`,
    /// any external thread acts as participant 0 of the jobs it publishes.
    static PARTICIPANT_INDEX: Cell<usize> = const { Cell::new(0) };
}

/// A type- and lifetime-erased reference to a job living on some caller's
/// stack. The protocol in the module docs keeps the pointer valid for as
/// long as any worker can reach it.
#[derive(Clone, Copy)]
struct JobRef {
    data: *const (),
    /// Registers the calling worker as a participant; called under the
    /// injector lock. Returns `false` when the job has no work left.
    // SAFETY: callers must pass the `data` of the same `JobRef` while the
    // owning stack frame is live (the enter/inside protocol guarantees it).
    enter: unsafe fn(*const ()) -> bool,
    /// Claims and processes chunks until none remain, then deregisters the
    /// participant. Called *without* the injector lock.
    // SAFETY: same contract as `enter`, plus the caller must have obtained
    // `true` from `enter` for this job first.
    run: unsafe fn(*const (), usize),
}

// SAFETY: the pointed-to job is shared across threads by design; the public
// entry points bound the user closures by `Sync` and the results by `Send`,
// and the enter/inside protocol bounds the pointer's lifetime.
unsafe impl Send for JobRef {}

/// Scans the injector for a job with work left, newest (deepest nesting
/// level) first, dropping exhausted entries on the way. The caller must hold
/// the injector lock: entering under it is what guarantees that a caller who
/// later removes the job from the injector observes the incremented `inside`.
fn pick_job(queue: &mut Vec<JobRef>) -> Option<JobRef> {
    while let Some(&job) = queue.last() {
        // SAFETY: the ref was found in the injector under the lock, so
        // its caller has not returned (removal precedes return).
        if unsafe { (job.enter)(job.data) } {
            return Some(job);
        }
        queue.pop();
    }
    None
}

/// One bounded worker iteration against `shared`: pick up at most one job
/// from the injector (entering under the lock) and run it to exhaustion
/// (without the lock). Returns whether a job was run.
///
/// This is `worker_loop` minus the blocking wait — the loom suite drives
/// model workers through it so every iteration of a model terminates, while
/// exercising exactly the enter/run scan the real workers use.
pub fn worker_step(shared: &Shared, index: usize) -> bool {
    let mut queue = shared.injector.lock().expect("pool injector poisoned");
    let picked = pick_job(&mut queue);
    drop(queue);
    match picked {
        Some(job) => {
            // SAFETY: this worker is registered in the job's `inside`
            // count (by `enter`), so the caller waits for it before
            // returning.
            unsafe { (job.run)(job.data, index) };
            true
        }
        None => false,
    }
}

fn worker_loop(shared: &'static Shared, index: usize) {
    PARTICIPANT_INDEX.with(|cell| cell.set(index));
    let mut queue = shared.injector.lock().expect("pool injector poisoned");
    loop {
        match pick_job(&mut queue) {
            Some(job) => {
                drop(queue);
                // SAFETY: this worker is registered in the job's `inside`
                // count, so the caller waits for it before returning.
                unsafe { (job.run)(job.data, index) };
                // Job boundary: the worker is deregistered from the job and
                // holds no lock, so an injected kill here unwinds out of
                // `worker_loop` entirely — the fault `supervise_worker`
                // recovers from.
                crate::failpoints::maybe_kill_worker(index);
                queue = shared.injector.lock().expect("pool injector poisoned");
            }
            None => {
                queue = shared.work_available.wait(queue).expect("pool injector poisoned");
            }
        }
    }
}

/// Completion bookkeeping of a job, all under one mutex so the final
/// notification cannot race the caller's teardown of the job.
struct JobStatus {
    /// Indices whose processing has finished (panicking chunks count in
    /// full: their unprocessed tail can never be claimed again).
    completed: usize,
    /// Workers currently registered with the job.
    inside: usize,
    /// The captured panic with the smallest item index, re-thrown by the
    /// caller — deterministic for deterministic work closures.
    panic: Option<(usize, Box<dyn Any + Send + 'static>)>,
}

/// A dynamic chunk job over the index space `0..len`: the cursor hands out
/// chunks, every claimed index `i` writes its result into `outputs[i]`, and
/// each participant lazily builds one reusable state in its own slot.
struct ChunkJob<S, R, G, F> {
    len: usize,
    chunk: usize,
    cursor: AtomicUsize,
    /// Fault-injection plan captured from the publishing thread, consulted
    /// at every chunk claim (inert unless a test armed it).
    failpoints: JobFailpoints,
    /// Base of `len` pre-allocated output slots, written by claimed index.
    outputs: *const UnsafeCell<MaybeUninit<R>>,
    /// Base of one state slot per possible participant index.
    states: *const UnsafeCell<Option<S>>,
    init: *const G,
    work: *const F,
    sync: Mutex<JobStatus>,
    done: Condvar,
}

impl<S, R, G, F> ChunkJob<S, R, G, F>
where
    G: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    /// Claims and processes chunks until the cursor is exhausted.
    ///
    /// # Safety
    ///
    /// `index` must be unique among the job's live participants (guaranteed
    /// by the pool: workers use their own index, the caller uses its), and
    /// the job's pointers must still be valid (guaranteed by the
    /// enter/remove/wait protocol).
    unsafe fn participate(&self, index: usize) {
        loop {
            // ordering: `Relaxed` is sufficient: fetch_adds on one atomic
            // form a single total modification order, so every index is
            // handed out exactly once no matter how claims interleave; the
            // results written for those indices reach the caller through
            // the `sync` mutex, not through the cursor. Verified by the
            // loom model (`loom_pool.rs`).
            let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.len {
                break;
            }
            let end = (start + self.chunk).min(self.len);
            // Tracks how far into the chunk the work got, so a panic can be
            // attributed to the exact item that raised it (injected chunk
            // failpoints attribute to the chunk's first item).
            let done_in_chunk = Cell::new(0usize);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                self.failpoints.before_chunk();
                // SAFETY: only this participant touches state slot `index`
                // (workers use their unique pool index, the caller its own),
                // so the access is exclusive; the raw pointer stays valid
                // and ours for the whole chunk.
                let state = unsafe { &*self.states.add(index) }.with_mut(|slot| {
                    // SAFETY: exclusive per-participant slot, see above.
                    let slot = unsafe { &mut *slot };
                    std::ptr::from_mut::<S>(slot.get_or_insert_with(|| unsafe { (*self.init)() }))
                });
                for i in start..end {
                    // SAFETY: `state` is this participant's private slot.
                    let value = unsafe { (*self.work)(&mut *state, i) };
                    // SAFETY: index `i` was claimed from the cursor exactly
                    // once, so this is the slot's only write ever.
                    unsafe { &*self.outputs.add(i) }.with_mut(|out| {
                        // SAFETY: same exactly-once claim as above.
                        unsafe { *out = MaybeUninit::new(value) };
                    });
                    done_in_chunk.set(done_in_chunk.get() + 1);
                }
            }));
            let mut status = self.sync.lock().expect("job status poisoned");
            status.completed += end - start;
            if let Err(payload) = outcome {
                // Keep the panic with the smallest item index. Remaining
                // chunks keep running (no early abort), so for work closures
                // that panic deterministically per index the smallest
                // panicking index always runs — and wins — regardless of
                // chunk interleaving.
                let at = start + done_in_chunk.get();
                let replace = match &status.panic {
                    None => true,
                    Some((recorded, _)) => at < *recorded,
                };
                if replace {
                    status.panic = Some((at, payload));
                }
            }
            if status.completed == self.len {
                self.done.notify_all();
            }
        }
    }
}

/// `JobRef::enter` for a [`ChunkJob`].
///
/// # Safety
///
/// `data` must point at the live [`ChunkJob`] this `JobRef` was built from,
/// and the caller must hold the injector lock.
unsafe fn chunk_enter<S, R, G, F>(data: *const ()) -> bool
where
    G: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    // SAFETY: called under the injector lock on a listed job (see JobRef).
    let job = unsafe { &*data.cast::<ChunkJob<S, R, G, F>>() };
    // ordering: `Relaxed` is sufficient: this is a conservative has-work
    // probe. The cursor only grows, so a stale low read merely admits a
    // worker whose first claim then finds nothing; job-lifetime correctness
    // rests on the `inside` count under the `sync` mutex, not on this load.
    // Verified by the loom model (`loom_pool.rs`).
    if job.cursor.load(Ordering::Relaxed) >= job.len {
        return false;
    }
    job.sync.lock().expect("job status poisoned").inside += 1;
    true
}

/// `JobRef::run` for a [`ChunkJob`]: participate, then deregister.
///
/// # Safety
///
/// `data` must point at the live [`ChunkJob`] this worker entered via
/// [`chunk_enter`]; `index` must be the worker's unique pool index.
unsafe fn chunk_run<S, R, G, F>(data: *const (), index: usize)
where
    G: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    // SAFETY: the worker is registered via `chunk_enter`, so the job
    // outlives this call; `index` is the worker's unique pool index.
    let job = unsafe { &*data.cast::<ChunkJob<S, R, G, F>>() };
    unsafe { job.participate(index) };
    let mut status = job.sync.lock().expect("job status poisoned");
    status.inside -= 1;
    if status.inside == 0 && status.completed == job.len {
        job.done.notify_all();
    }
}

/// Chunk size for a job of `len` items on a pool of `threads` participants:
/// roughly 16 claims per participant, so one expensive item stalls only a
/// small chunk while cursor traffic stays negligible.
fn chunk_size(len: usize, threads: usize) -> usize {
    (len / (threads * 16)).clamp(1, 1024)
}

/// Runs `work(state, index)` for every `index in 0..len` on the global pool
/// and returns the results in index order.
///
/// Each participant lazily creates one `state` with `init` and reuses it for
/// every chunk it claims — the hook executors use to keep per-worker scratch
/// buffers warm across stolen chunks.
///
/// # Panics
///
/// Re-throws the recorded panic with the smallest item index among those
/// raised by `init` or `work` (see the module docs); the pool survives.
pub(crate) fn run_chunked<S, R, G, F>(len: usize, init: G, work: F) -> Vec<R>
where
    S: Send,
    R: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    run_chunked_on(shared(), len, init, work)
}

/// `run_chunked` against an explicit pool state instead of the global one.
/// The loom suite uses this to run the real job protocol inside a model.
pub fn run_chunked_on<S, R, G, F>(shared: &Shared, len: usize, init: G, work: F) -> Vec<R>
where
    S: Send,
    R: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let failpoints = JobFailpoints::capture();
    if shared.threads == 1 || len == 1 {
        // Inline execution still honours the failpoint plan, batched at the
        // same chunk granularity the pool would use, so the 1-thread CI leg
        // exercises injected faults too (panics propagate directly to the
        // caller here — there is no pool to survive).
        let chunk = chunk_size(len, 1);
        let mut state = init();
        return (0..len)
            .map(|i| {
                if i % chunk == 0 {
                    failpoints.before_chunk();
                }
                work(&mut state, i)
            })
            .collect();
    }

    let outputs: Vec<UnsafeCell<MaybeUninit<R>>> =
        (0..len).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let states: Vec<UnsafeCell<Option<S>>> =
        (0..shared.threads).map(|_| UnsafeCell::new(None)).collect();
    let job = ChunkJob {
        len,
        chunk: chunk_size(len, shared.threads),
        cursor: AtomicUsize::new(0),
        failpoints,
        outputs: outputs.as_ptr(),
        states: states.as_ptr(),
        init: &init,
        work: &work,
        sync: Mutex::new(JobStatus { completed: 0, inside: 0, panic: None }),
        done: Condvar::new(),
    };
    let job_ref = JobRef {
        data: std::ptr::from_ref(&job).cast(),
        enter: chunk_enter::<S, R, G, F>,
        run: chunk_run::<S, R, G, F>,
    };
    shared.injector.lock().expect("pool injector poisoned").push(job_ref);
    shared.work_available.notify_all();

    // The caller claims chunks too, under its own participant index.
    let index = PARTICIPANT_INDEX.with(Cell::get);
    // SAFETY: the caller's index cannot collide with a worker helping this
    // job, and the job outlives this frame.
    unsafe { job.participate(index) };

    // No new helper may enter once the ref is gone from the injector …
    shared
        .injector
        .lock()
        .expect("pool injector poisoned")
        .retain(|j| !std::ptr::eq(j.data, job_ref.data));
    // … so waiting for `inside == 0` below makes freeing the job safe.
    let mut status = job.sync.lock().expect("job status poisoned");
    while status.completed < len || status.inside > 0 {
        status = job.done.wait(status).expect("job status poisoned");
    }
    let panic = status.panic.take();
    drop(status);
    if let Some((_at, payload)) = panic {
        // `outputs` frees its buffer without dropping the written `R`s —
        // the panic path leaks results instead of tracking which slots are
        // initialised.
        resume_unwind(payload);
    }
    collect_outputs(outputs, len)
}

/// Turns the fully-written output slots into the result vector.
///
/// Precondition (upheld by [`run_chunked_on`]): every slot in `0..len` was
/// written exactly once, and those writes happen-before this call via the
/// job's `sync` mutex — the exact claim the loom variant below verifies.
#[cfg(not(avg_local_loom))]
fn collect_outputs<R>(outputs: Vec<UnsafeCell<MaybeUninit<R>>>, len: usize) -> Vec<R> {
    debug_assert_eq!(outputs.len(), len);
    // SAFETY: per the precondition every slot holds an initialised `R`, and
    // the seam's `UnsafeCell` is `#[repr(transparent)]` over
    // `MaybeUninit<R>`, which has the layout of `R` — so the buffer can be
    // reinterpreted in place without copying.
    let mut buffer = std::mem::ManuallyDrop::new(outputs);
    unsafe { Vec::from_raw_parts(buffer.as_mut_ptr().cast::<R>(), len, buffer.capacity()) }
}

/// Model-checked variant: reads each slot through the instrumented cell, so
/// the model proves the write of every slot happens-before the caller's read
/// (the `MaybeUninit`-soundness claim), at the cost of a per-slot move.
#[cfg(avg_local_loom)]
fn collect_outputs<R>(outputs: Vec<UnsafeCell<MaybeUninit<R>>>, len: usize) -> Vec<R> {
    debug_assert_eq!(outputs.len(), len);
    outputs
        .into_iter()
        .map(|cell| {
            // SAFETY: per the precondition the slot was written exactly
            // once; reading it out leaves a `MaybeUninit` behind, which
            // never drops its contents, so no double-drop.
            cell.with(|slot| unsafe { (*slot).assume_init_read() })
        })
        .collect()
}

/// A one-shot job carrying the right-hand closure of a `join` call.
struct JoinJob<B, RB> {
    claimed: AtomicBool,
    op: UnsafeCell<Option<B>>,
    sync: Mutex<JoinStatus<RB>>,
    done: Condvar,
}

struct JoinStatus<RB> {
    finished: bool,
    inside: usize,
    result: Option<RB>,
    panic: Option<Box<dyn Any + Send + 'static>>,
}

impl<B, RB> JoinJob<B, RB>
where
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    /// Tries to claim and run the closure; returns `false` when another
    /// participant claimed it first.
    fn try_execute(&self) -> bool {
        // ordering: `AcqRel` as defence in depth. Exactly-once rests only on
        // RMW atomicity: `op` reaches workers through the injector mutex and
        // the result travels back through `sync`, so the loom model
        // (`loom_pool.rs`) accepts even `Relaxed` here. The stronger ordering
        // documents the claim->take edge directly, decoupling this handshake
        // from the surrounding mutexes, and costs nothing on this path.
        if self.claimed.swap(true, Ordering::AcqRel) {
            return false;
        }
        // SAFETY: the swap above makes this the only access to `op`.
        let op =
            self.op.with_mut(|op| unsafe { (*op).take() }).expect("join closure claimed twice");
        let outcome = catch_unwind(AssertUnwindSafe(op));
        let mut status = self.sync.lock().expect("join status poisoned");
        match outcome {
            Ok(value) => status.result = Some(value),
            Err(payload) => status.panic = Some(payload),
        }
        status.finished = true;
        self.done.notify_all();
        true
    }
}

/// `JobRef::enter` for a [`JoinJob`].
///
/// # Safety
///
/// `data` must point at the live [`JoinJob`] this `JobRef` was built from,
/// and the caller must hold the injector lock.
unsafe fn join_enter<B, RB>(data: *const ()) -> bool
where
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    // SAFETY: called under the injector lock on a listed job.
    let job = unsafe { &*data.cast::<JoinJob<B, RB>>() };
    if job.claimed.load(Ordering::Acquire) {
        return false;
    }
    job.sync.lock().expect("join status poisoned").inside += 1;
    true
}

/// `JobRef::run` for a [`JoinJob`]: race for the claim, then deregister.
///
/// # Safety
///
/// `data` must point at the live [`JoinJob`] this worker entered via
/// [`join_enter`].
unsafe fn join_run<B, RB>(data: *const (), _index: usize)
where
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    // SAFETY: registered via `join_enter`; the caller waits for us.
    let job = unsafe { &*data.cast::<JoinJob<B, RB>>() };
    job.try_execute();
    let mut status = job.sync.lock().expect("join status poisoned");
    status.inside -= 1;
    if status.inside == 0 {
        job.done.notify_all();
    }
}

/// Runs the two closures, in parallel when a pool worker picks the second
/// one up, and returns both results. See [`crate::join`].
pub(crate) fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    join_on(shared(), a, b)
}

/// `join` against an explicit pool state instead of the global one. The
/// loom suite uses this to model-check the claim handshake.
pub fn join_on<A, B, RA, RB>(shared: &Shared, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if shared.threads == 1 {
        return (a(), b());
    }
    let job: JoinJob<B, RB> = JoinJob {
        claimed: AtomicBool::new(false),
        op: UnsafeCell::new(Some(b)),
        sync: Mutex::new(JoinStatus { finished: false, inside: 0, result: None, panic: None }),
        done: Condvar::new(),
    };
    let job_ref = JobRef {
        data: std::ptr::from_ref(&job).cast(),
        enter: join_enter::<B, RB>,
        run: join_run::<B, RB>,
    };
    shared.injector.lock().expect("pool injector poisoned").push(job_ref);
    shared.work_available.notify_one();

    let ra = a();

    // Run `b` ourselves unless a worker already claimed it.
    job.try_execute();
    shared
        .injector
        .lock()
        .expect("pool injector poisoned")
        .retain(|j| !std::ptr::eq(j.data, job_ref.data));
    let mut status = job.sync.lock().expect("join status poisoned");
    while !status.finished || status.inside > 0 {
        status = job.done.wait(status).expect("join status poisoned");
    }
    let panic = status.panic.take();
    let result = status.result.take();
    drop(status);
    if let Some(payload) = panic {
        resume_unwind(payload);
    }
    (ra, result.expect("join closure finished without a result"))
}

/// The old shim's execution model, kept as a measured baseline: spawn scoped
/// threads **per call** and hand each exactly one contiguous, statically
/// chosen batch of the index space.
pub mod baseline {
    /// Runs `work(state, index)` for every `index in 0..len` on `batches`
    /// fresh scoped threads, each owning one contiguous batch decided
    /// upfront and one private `state`.
    ///
    /// This reproduces the pre-pool behaviour of both the shim (a scoped
    /// spawn per parallel call) and the executor's static index chunks (an
    /// expensive item serialises its whole batch behind it), so benches can
    /// quantify what the persistent pool and dynamic chunking buy.
    ///
    /// # Panics
    ///
    /// Like the pool proper, a panicking work item does not abort the other
    /// batches, and the payload re-thrown is the panic of the **lowest item
    /// index** (batches are contiguous and ascending, and a batch's own
    /// panic is always its smallest panicking index), so panic propagation
    /// is deterministic here too.
    pub fn static_chunked<S, R, G, F>(len: usize, batches: usize, init: G, work: F) -> Vec<R>
    where
        S: Send,
        R: Send,
        G: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> R + Sync,
    {
        let batches = batches.clamp(1, len.max(1));
        if len == 0 || batches == 1 {
            let mut state = init();
            return (0..len).map(|i| work(&mut state, i)).collect();
        }
        let batch_len = len.div_ceil(batches);
        let ranges: Vec<std::ops::Range<usize>> =
            (0..len).step_by(batch_len).map(|start| start..(start + batch_len).min(len)).collect();
        let per_batch: Vec<std::thread::Result<Vec<R>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|range| {
                    let init = &init;
                    let work = &work;
                    scope.spawn(move || {
                        let mut state = init();
                        range.map(|i| work(&mut state, i)).collect::<Vec<R>>()
                    })
                })
                .collect();
            handles.into_iter().map(std::thread::ScopedJoinHandle::join).collect()
        });
        let mut out = Vec::with_capacity(len);
        for batch in per_batch {
            match batch {
                Ok(mut values) => out.append(&mut values),
                // First panicking batch in index order wins; its payload is
                // the batch's smallest panicking index.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    }
}
