//! The synchronization-primitive seam of the pool: `std` types on normal
//! builds, instrumented [`loom`] types under `--cfg avg_local_loom`.
//!
//! `pool.rs` is written once, against this module; compiling the workspace
//! with `RUSTFLAGS="--cfg avg_local_loom"` swaps every atomic, mutex,
//! condvar, and job cell for its model-checked counterpart so the loom
//! suite (`tests/tests/loom_pool.rs`) can DFS-explore the pool's
//! interleavings. The only type that is not a plain re-export is
//! [`UnsafeCell`]: loom's cell exposes closure-based `with`/`with_mut`
//! accessors (so every access is a recordable event), so the `std` arm
//! provides the same shape as a zero-cost `#[repr(transparent)]` wrapper.

#[cfg(not(avg_local_loom))]
mod imp {
    pub use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    pub use std::sync::{Condvar, Mutex};

    /// `std` twin of loom's closure-based cell.
    ///
    /// `#[repr(transparent)]` over `std::cell::UnsafeCell<T>` (itself
    /// transparent over `T`), which `pool::collect_outputs` relies on to
    /// reinterpret a fully-written `Vec<UnsafeCell<MaybeUninit<R>>>` as
    /// `Vec<R>` in place.
    #[repr(transparent)]
    pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    impl<T> UnsafeCell<T> {
        pub const fn new(data: T) -> UnsafeCell<T> {
            UnsafeCell(std::cell::UnsafeCell::new(data))
        }

        /// Immutable access. The pointer is raw, exactly as in loom's API:
        /// dereferencing it is the caller's `unsafe` obligation (no aliasing
        /// `&mut`, cf. the pool's cursor/index protocol).
        // Only the loom arm of `pool::collect_outputs` reads through `with`;
        // kept on the std arm for API parity so pool code never cfg-splits.
        #[allow(dead_code)]
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        /// Mutable access; same contract as [`UnsafeCell::with`].
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }
    }
}

#[cfg(avg_local_loom)]
mod imp {
    pub use loom::cell::UnsafeCell;
    pub use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    pub use loom::sync::{Condvar, Mutex};
}

pub(crate) use imp::*;
