//! Test-only fault injection for the worker pool.
//!
//! Robustness claims about the pool — "a panic storm does not kill the
//! process", "the first panic in index order is the one re-thrown", "a
//! session is still usable after a poisoned run" — need a way to *make*
//! workers fail on demand. This module is that switchboard: a test arms a
//! [`Plan`] (panic and/or delay injection, counted per claimed worker
//! chunk), the pool consults it at every chunk claim, and the test disarms
//! it again when done.
//!
//! # Scoping
//!
//! Plans are **thread-local to the publishing thread** and are captured into
//! a job when the job is published. That means a test arming failpoints
//! perturbs only the parallel calls *it* issues — concurrently running tests
//! in the same process (cargo's default) are untouched, even though the
//! injected panics and delays fire on shared pool workers.
//!
//! A process-wide default can be supplied through the `AVG_LOCAL_FAILPOINTS`
//! environment variable (read once, at first capture), using
//! comma-separated `key=value` pairs: `panic_every=N`, `delay_every=N`,
//! `delay_micros=M`. Example: `AVG_LOCAL_FAILPOINTS=delay_every=3,delay_micros=50`
//! makes every third claimed chunk (of every job in the process) sleep 50µs
//! before running — a cheap way to shake out interleaving assumptions under
//! a whole test binary.
//!
//! # Example
//!
//! ```
//! use rayon::prelude::*;
//!
//! rayon::failpoints::arm(rayon::failpoints::Plan::new().delay_every(2, 10));
//! let doubled: Vec<usize> = (0..100).into_par_iter().map(|x| x * 2).collect();
//! rayon::failpoints::disarm();
//! assert_eq!(doubled[7], 14); // delays never change results
//! ```

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// Environment variable supplying a process-wide default [`Plan`].
pub const FAILPOINTS_ENV: &str = "AVG_LOCAL_FAILPOINTS";

/// An injection plan: which claimed chunks panic and/or stall.
///
/// Counters are per job, starting at 1 for the first claimed chunk; a
/// setting of `0` (the default) disables that injection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Plan {
    /// Panic on every `panic_every`-th claimed chunk (0 = never).
    pub panic_every: u64,
    /// Sleep on every `delay_every`-th claimed chunk (0 = never).
    pub delay_every: u64,
    /// Sleep duration for delay injection, in microseconds.
    pub delay_micros: u64,
}

impl Plan {
    /// An inert plan (no injection).
    #[must_use]
    pub fn new() -> Self {
        Plan::default()
    }

    /// Panics on every `every`-th claimed chunk.
    #[must_use]
    pub fn panic_every(mut self, every: u64) -> Self {
        self.panic_every = every;
        self
    }

    /// Sleeps `micros` microseconds on every `every`-th claimed chunk.
    #[must_use]
    pub fn delay_every(mut self, every: u64, micros: u64) -> Self {
        self.delay_every = every;
        self.delay_micros = micros;
        self
    }

    /// `true` when the plan injects anything at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.panic_every > 0 || self.delay_every > 0
    }
}

thread_local! {
    /// The plan armed on this thread, captured by jobs it publishes.
    static ARMED: Cell<Plan> = const { Cell::new(Plan { panic_every: 0, delay_every: 0, delay_micros: 0 }) };
}

/// Arms `plan` for every parallel call subsequently published **by this
/// thread**, until [`disarm`] (or a later `arm`) replaces it.
pub fn arm(plan: Plan) {
    ARMED.with(|cell| cell.set(plan));
}

/// Removes this thread's armed plan.
pub fn disarm() {
    ARMED.with(|cell| cell.set(Plan::default()));
}

/// The process-wide default plan from [`FAILPOINTS_ENV`], parsed once.
fn env_default() -> Plan {
    static DEFAULT: OnceLock<Plan> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        let Ok(spec) = std::env::var(FAILPOINTS_ENV) else {
            return Plan::default();
        };
        let mut plan = Plan::default();
        for pair in spec.split(',') {
            let Some((key, value)) = pair.split_once('=') else { continue };
            let Ok(value) = value.trim().parse::<u64>() else { continue };
            match key.trim() {
                "panic_every" => plan.panic_every = value,
                "delay_every" => plan.delay_every = value,
                "delay_micros" => plan.delay_micros = value,
                _ => {}
            }
        }
        plan
    })
}

/// Pending worker-kill tokens (see [`kill_workers`]): each is consumed by
/// one pool worker at its next job boundary.
static WORKER_KILLS: AtomicU64 = AtomicU64::new(0);

/// Arms `count` worker-kill tokens, process-wide.
///
/// Unlike a [`Plan`] panic — which unwinds *inside* a job's per-chunk
/// `catch_unwind` — a kill token makes a pool worker panic at its next **job
/// boundary**, outside any job scope, killing the thread itself. This is the
/// fault the pool supervisor exists for: the dead worker is detected and
/// respawned (see `pool::worker_respawn_count`), and the fault-injection
/// suite uses this hook to prove the pool keeps serving afterwards.
///
/// Tokens are consumed by whichever workers reach a job boundary first; on a
/// single-participant pool (no worker threads) they sit armed but unclaimed.
pub fn kill_workers(count: u64) {
    // ordering: `Relaxed` — a token counter, not a publication channel; the
    // RMW total order keeps grants and claims balanced, and no other memory
    // is synchronised through it.
    WORKER_KILLS.fetch_add(count, Ordering::Relaxed);
}

/// Claims one armed worker-kill token, if any; called by pool workers at
/// every job boundary.
fn take_worker_kill() -> bool {
    // ordering: `Relaxed` — same token counter as `kill_workers`; no other
    // memory is synchronised through it.
    let mut current = WORKER_KILLS.load(Ordering::Relaxed);
    while current > 0 {
        // ordering: `Relaxed` — CAS on the same token counter; the RMW
        // total order alone guarantees each token is claimed exactly once.
        match WORKER_KILLS.compare_exchange_weak(
            current,
            current - 1,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return true,
            Err(observed) => current = observed,
        }
    }
    false
}

/// Panics iff a worker-kill token is armed; called by pool workers at job
/// boundaries (no locks held), so the unwind escapes every job scope and
/// reaches the worker supervisor.
pub(crate) fn maybe_kill_worker(index: usize) {
    if take_worker_kill() {
        panic!("injected worker kill (outside any job) on pool participant {index}");
    }
}

/// The failpoint state of one published job: the plan captured at publish
/// time plus a per-job chunk counter shared by every participant.
#[derive(Debug)]
pub(crate) struct JobFailpoints {
    plan: Plan,
    chunks: AtomicU64,
}

impl JobFailpoints {
    /// Captures the publishing thread's armed plan (falling back to the
    /// environment default) into a fresh per-job state.
    pub(crate) fn capture() -> Self {
        let armed = ARMED.with(Cell::get);
        let plan = if armed.is_active() { armed } else { env_default() };
        JobFailpoints { plan, chunks: AtomicU64::new(0) }
    }

    /// Called by a participant at every chunk claim; sleeps and/or panics
    /// according to the captured plan. Panics raised here unwind through the
    /// pool's regular per-chunk `catch_unwind`, so they exercise exactly the
    /// path a panicking work item takes.
    pub(crate) fn before_chunk(&self) {
        if !self.plan.is_active() {
            return;
        }
        // ordering: `Relaxed` — a private event counter driving the fault
        // schedule; nothing is published through it, and the RMW total order
        // alone keeps the counts distinct across participants.
        let count = self.chunks.fetch_add(1, Ordering::Relaxed) + 1;
        if self.plan.delay_every > 0 && count.is_multiple_of(self.plan.delay_every) {
            std::thread::sleep(Duration::from_micros(self.plan.delay_micros));
        }
        if self.plan.panic_every > 0 && count.is_multiple_of(self.plan.panic_every) {
            panic!("injected failpoint panic (chunk claim #{count})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_default_inert_and_compose() {
        assert!(!Plan::new().is_active());
        let plan = Plan::new().panic_every(3).delay_every(2, 100);
        assert!(plan.is_active());
        assert_eq!(plan, Plan { panic_every: 3, delay_every: 2, delay_micros: 100 });
    }

    #[test]
    fn capture_snapshots_the_armed_plan() {
        arm(Plan::new().panic_every(5));
        let job = JobFailpoints::capture();
        disarm();
        assert_eq!(job.plan.panic_every, 5);
        // Disarming after capture does not defuse the captured job…
        let later = JobFailpoints::capture();
        // …while new captures see the disarmed state (or the env default,
        // absent in the test environment unless set by the harness).
        if std::env::var(FAILPOINTS_ENV).is_err() {
            assert!(!later.plan.is_active());
        }
    }

    #[test]
    fn before_chunk_counts_and_panics_on_schedule() {
        let job = JobFailpoints { plan: Plan::new().panic_every(3), chunks: AtomicU64::new(0) };
        job.before_chunk();
        job.before_chunk();
        let caught = std::panic::catch_unwind(|| job.before_chunk());
        assert!(caught.is_err());
        let message = *caught
            .unwrap_err()
            .downcast::<String>()
            .expect("injected panics carry a String payload");
        assert!(message.contains("injected failpoint panic"), "{message}");
    }

    #[test]
    fn inactive_plans_never_touch_the_counter() {
        let job = JobFailpoints { plan: Plan::default(), chunks: AtomicU64::new(0) };
        for _ in 0..10 {
            job.before_chunk();
        }
        assert_eq!(job.chunks.load(Ordering::Relaxed), 0);
    }
}
