//! In-tree stand-in for the subset of the
//! [`proptest`](https://crates.io/crates/proptest) crate this workspace uses.
//!
//! The build environment has no access to a crate registry, so the workspace
//! vendors what its property tests need: the [`proptest!`] macro over
//! functions whose arguments are drawn `name in strategy`, numeric-range and
//! [`collection::vec`] strategies, [`ProptestConfig::with_cases`], and the
//! `prop_assert*` macros.
//!
//! Differences from upstream: cases are sampled from a deterministic
//! per-test-independent stream (no persisted failure file) and there is **no
//! shrinking** — a failing case panics with its inputs printed.
//!
//! The [`arbitrary`] module additionally vendors a byte-driven
//! `Arbitrary`-style shim ([`arbitrary::Unstructured`]): generate a raw byte
//! buffer with [`collection::bytes`], then decode it into structured fuzz
//! inputs (command sequences, codec inputs) with total, deterministic
//! readers.

#![forbid(unsafe_code)]

pub mod arbitrary;

use std::fmt;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the (many) executor-driving
        // properties in this workspace fast while still exploring broadly.
        ProptestConfig { cases: 64 }
    }
}

/// A rejected test case, produced by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure carrying `message`.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result type of one sampled case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The source of randomness handed to strategies.
pub type TestRng = StdRng;

/// A value generator.
pub trait Strategy {
    /// The type of the generated values.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_int_range!(usize, u64, u32, u16, u8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors with lengths in `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for raw byte buffers with lengths drawn from `size` — the
    /// generation side of the [`crate::arbitrary`] fuzz shim (every byte
    /// value 0..=255 is reachable, unlike a `Range<u8>` element strategy).
    #[derive(Debug, Clone)]
    pub struct BytesStrategy {
        size: Range<usize>,
    }

    /// Generates `Vec<u8>` buffers with lengths in `size` and uniform bytes.
    pub fn bytes(size: Range<usize>) -> BytesStrategy {
        BytesStrategy { size }
    }

    impl Strategy for BytesStrategy {
        type Value = Vec<u8>;
        fn sample(&self, rng: &mut TestRng) -> Vec<u8> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| rng.gen_range(0u64..256) as u8).collect()
        }
    }
}

/// Builds the deterministic RNG for a named property.
///
/// Used by the [`proptest!`] macro; the seed mixes the test path so distinct
/// properties explore distinct streams.
#[must_use]
pub fn rng_for(test_path: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// Everything a property test needs, importable in one line.
pub mod prelude {
    pub use crate::arbitrary::{Arbitrary, Unstructured};
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Declares property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     // (inside a `#[cfg(test)]` module this would also carry `#[test]`)
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (
        ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                #[allow(unused_mut)]
                let mut inputs = String::new();
                $(inputs.push_str(&format!("\n  {} = {:?}", stringify!($arg), $arg));)*
                let outcome: $crate::TestCaseResult = (|| {
                    { $body }
                    Ok(())
                })();
                if let Err(err) = outcome {
                    panic!(
                        "proptest property {} failed at case {}/{}: {}\ninputs:{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err,
                        inputs,
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Fails the current case unless the two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..40, x in 0u64..17) {
            prop_assert!((3..40).contains(&n));
            prop_assert!(x < 17);
        }

        #[test]
        fn vec_strategy_respects_length(values in collection::vec(0.0f64..1e6, 1..20)) {
            prop_assert!(!values.is_empty() && values.len() < 20);
            prop_assert!(values.iter().all(|v| (0.0..1e6).contains(v)));
        }

        #[test]
        fn bytes_strategy_respects_length_and_feeds_the_cursor(buf in collection::bytes(0..64)) {
            prop_assert!(buf.len() < 64);
            let mut u = crate::arbitrary::Unstructured::new(&buf);
            let x = u.int_in_range(0..10);
            prop_assert!(x < 10);
        }
    }

    proptest! {
        #[test]
        fn default_config_arm_compiles(a in 0usize..5) {
            prop_assert!(a < 5);
        }
    }

    #[test]
    fn strategies_are_deterministic_per_test_path() {
        let mut a = crate::rng_for("x::y");
        let mut b = crate::rng_for("x::y");
        let mut c = crate::rng_for("x::z");
        let sa: Vec<usize> = (0..8).map(|_| (0usize..1000).sample(&mut a)).collect();
        let sb: Vec<usize> = (0..8).map(|_| (0usize..1000).sample(&mut b)).collect();
        let sc: Vec<usize> = (0..8).map(|_| (0usize..1000).sample(&mut c)).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(v in 0usize..3) {
                prop_assert!(v > 100, "v was only {}", v);
            }
        }
        always_fails();
    }
}
