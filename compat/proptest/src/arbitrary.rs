//! A byte-driven structured-input shim in the style of the
//! [`arbitrary`](https://crates.io/crates/arbitrary) crate.
//!
//! Fuzz-style model tests want to interpret an opaque byte buffer as a
//! *program* — a sequence of commands with small arguments — so that any
//! buffer, however mangled, decodes to **some** valid command sequence. This
//! module provides the decoding side: [`Unstructured`] is a cursor over a
//! byte slice with total (never-failing, never-panicking) primitive readers,
//! and [`Arbitrary`] is the trait for types that know how to assemble
//! themselves from one.
//!
//! Differences from the real crate, in keeping with this workspace's
//! offline-vendored compat shims: no derive macro, no size hints, and
//! exhaustion is handled by **zero-filling** instead of erroring — once the
//! buffer runs out every further read returns 0, so decoding is a total
//! deterministic function of the input bytes. Pair it with
//! [`crate::collection::bytes`] to let a property test generate the buffers.

use std::ops::Range;

/// A cursor over untrusted/unstructured bytes with total primitive readers.
///
/// All readers are little-endian and zero-fill once the buffer is exhausted,
/// so any byte slice decodes to a deterministic value stream — no `Result`s
/// to thread through fuzz-target code.
///
/// # Examples
///
/// ```
/// use proptest::arbitrary::Unstructured;
///
/// let mut u = Unstructured::new(&[7, 1, 0]);
/// assert_eq!(u.byte(), 7);
/// assert_eq!(u.int_in_range(0..5), 1);
/// assert_eq!(u.byte(), 0);
/// assert!(u.is_empty());
/// assert_eq!(u.byte(), 0); // exhausted reads zero-fill
/// ```
#[derive(Debug)]
pub struct Unstructured<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Unstructured<'a> {
    /// Wraps `data` in a fresh cursor positioned at the start.
    #[must_use]
    pub fn new(data: &'a [u8]) -> Self {
        Unstructured { data, pos: 0 }
    }

    /// `true` once every input byte has been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pos >= self.data.len()
    }

    /// Number of unconsumed bytes.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.data.len().saturating_sub(self.pos)
    }

    /// Reads one byte (0 when exhausted).
    pub fn byte(&mut self) -> u8 {
        let b = self.data.get(self.pos).copied().unwrap_or(0);
        self.pos = self.pos.saturating_add(1);
        b
    }

    /// Reads `N` bytes little-endian style, zero-filling past the end.
    fn fill<const N: usize>(&mut self) -> [u8; N] {
        let mut buf = [0u8; N];
        for slot in &mut buf {
            *slot = self.byte();
        }
        buf
    }

    /// Reads a little-endian `u16` (zero-filled when exhausted).
    pub fn u16(&mut self) -> u16 {
        u16::from_le_bytes(self.fill())
    }

    /// Reads a little-endian `u32` (zero-filled when exhausted).
    pub fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.fill())
    }

    /// Reads a little-endian `u64` (zero-filled when exhausted).
    pub fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.fill())
    }

    /// Reads a value of any [`Arbitrary`] type.
    pub fn arbitrary<T: Arbitrary>(&mut self) -> T {
        T::arbitrary(self)
    }

    /// Draws a `u64` in `range` (returns `range.start` when the range is
    /// empty). The draw consumes 8 bytes and reduces modulo the span, which
    /// is plenty uniform for fuzzing purposes.
    pub fn int_in_range(&mut self, range: Range<u64>) -> u64 {
        let span = range.end.saturating_sub(range.start);
        if span == 0 {
            return range.start;
        }
        range.start + self.u64() % span
    }

    /// Draws an index below `len` (0 when `len == 0`).
    pub fn choose_index(&mut self, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        (self.u64() % (len as u64)) as usize
    }

    /// Returns `true` with probability roughly `numerator / denominator`
    /// (always `false` when `denominator == 0`).
    pub fn ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        if denominator == 0 {
            return false;
        }
        self.u32() % denominator < numerator
    }

    /// Draws a collection length, capped both by `max` and by the bytes that
    /// remain (so exhausted input yields short collections instead of long
    /// runs of zeros).
    pub fn arbitrary_len(&mut self, max: usize) -> usize {
        let cap = max.min(self.remaining());
        if cap == 0 {
            return 0;
        }
        (self.u64() % (cap as u64 + 1)) as usize
    }

    /// Consumes the cursor and returns every unread byte.
    #[must_use]
    pub fn take_rest(self) -> &'a [u8] {
        &self.data[self.pos.min(self.data.len())..]
    }
}

/// Types that can be assembled from unstructured bytes.
///
/// Implementations must be **total**: any cursor state yields a value, so an
/// arbitrary byte buffer always decodes to a well-formed instance. That is
/// the property that lets a fuzz harness feed raw bytes to a model test
/// without a rejection path.
pub trait Arbitrary: Sized {
    /// Assembles a value from the cursor.
    fn arbitrary(u: &mut Unstructured<'_>) -> Self;
}

impl Arbitrary for u8 {
    fn arbitrary(u: &mut Unstructured<'_>) -> Self {
        u.byte()
    }
}

impl Arbitrary for u16 {
    fn arbitrary(u: &mut Unstructured<'_>) -> Self {
        u.u16()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(u: &mut Unstructured<'_>) -> Self {
        u.u32()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(u: &mut Unstructured<'_>) -> Self {
        u.u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(u: &mut Unstructured<'_>) -> Self {
        u.u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(u: &mut Unstructured<'_>) -> Self {
        u.byte() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_are_little_endian_and_sequential() {
        let mut u = Unstructured::new(&[1, 0, 2, 0, 0, 0]);
        assert_eq!(u.u16(), 1);
        assert_eq!(u.u32(), 2);
        assert!(u.is_empty());
    }

    #[test]
    fn exhausted_cursor_zero_fills_forever() {
        let mut u = Unstructured::new(&[0xff]);
        assert_eq!(u.u32(), 0xff);
        for _ in 0..4 {
            assert_eq!(u.u64(), 0);
            assert_eq!(u.byte(), 0);
            assert!(!u.arbitrary::<bool>());
        }
    }

    #[test]
    fn decoding_is_deterministic() {
        let bytes: Vec<u8> = (0..64).map(|i| (i * 37 % 251) as u8).collect();
        let decode = |data: &[u8]| {
            let mut u = Unstructured::new(data);
            (0..10).map(|_| u.int_in_range(0..1000)).collect::<Vec<u64>>()
        };
        assert_eq!(decode(&bytes), decode(&bytes));
    }

    #[test]
    fn int_in_range_stays_in_range() {
        let bytes: Vec<u8> = (0..255).collect();
        let mut u = Unstructured::new(&bytes);
        for _ in 0..40 {
            let x = u.int_in_range(10..17);
            assert!((10..17).contains(&x));
        }
        // Empty and unit ranges are total too.
        assert_eq!(u.int_in_range(5..5), 5);
        assert_eq!(u.int_in_range(9..10), 9);
    }

    #[test]
    fn choose_index_and_ratio_are_total() {
        let mut u = Unstructured::new(&[]);
        assert_eq!(u.choose_index(0), 0);
        assert_eq!(u.choose_index(5), 0);
        assert!(!u.ratio(1, 0));
        assert!(u.ratio(1, 1));
    }

    #[test]
    fn arbitrary_len_respects_remaining_bytes() {
        let mut u = Unstructured::new(&[200, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let len = u.arbitrary_len(100);
        assert!(len <= 10);
        let mut empty = Unstructured::new(&[]);
        assert_eq!(empty.arbitrary_len(100), 0);
    }

    #[test]
    fn take_rest_returns_the_unread_tail() {
        let mut u = Unstructured::new(&[1, 2, 3, 4]);
        let _ = u.u16();
        assert_eq!(u.take_rest(), &[3, 4]);
    }
}
