//! The model-checking runtime: a deterministic cooperative scheduler that
//! DFS-explores thread interleavings, plus the vector-clock machinery that
//! detects data races under C11-style release/acquire visibility.
//!
//! # Execution model
//!
//! Every instrumented operation (atomic access, mutex lock/unlock, condvar
//! wait/notify, `UnsafeCell` access, spawn/join) is a *visible operation*.
//! Model threads are real OS threads, but exactly one runs at a time: a
//! thread performs one visible operation while it holds the logical token
//! (`active == me`), then a *scheduling decision* picks which thread performs
//! the next one. The sequence of decisions taken in one run is the
//! *schedule*; after each run the deepest decision with an untried
//! alternative is advanced and the run replayed — a depth-first enumeration
//! of schedules.
//!
//! # Preemption bounding
//!
//! Full enumeration is exponential in the trace length, so exploration is
//! *preemption-bounded* (CHESS-style): switching away from a thread that
//! could have continued costs one unit of a configurable budget
//! ([`Builder::preemption_bound`]); forced switches (the running thread
//! blocked or finished) are free. Empirically almost all concurrency bugs
//! manifest within two preemptions, and every schedule with more context
//! switches than the bound is deliberately skipped — the suite pins the
//! explored-iteration counts so a scheduler change cannot silently shrink
//! coverage.
//!
//! # Race detection
//!
//! Visibility is tracked with vector clocks, independently of the schedule
//! actually explored, so a racy publication is caught even on a schedule
//! where the accesses happen to land in a safe order:
//!
//! * every thread carries a clock, bumped at each visible operation;
//! * `Release` stores replace an atomic's *release clock* with the writer's
//!   clock; `Relaxed` stores **clear** it (a relaxed store starts a new,
//!   synchronization-free release sequence); relaxed RMWs leave it in place
//!   (they continue the release sequence, as in C11);
//! * `Acquire` loads join the atomic's release clock into the reader —
//!   `Relaxed` loads join nothing;
//! * mutexes join the holder's clock on unlock and release it to the next
//!   locker; spawn/join edges do the obvious joins;
//! * an [`crate::cell::UnsafeCell`] access races iff a prior conflicting
//!   access is not happens-before the accessor — reported as a model
//!   failure naming both the cell and the access kinds.
//!
//! Atomic *values* follow the modification order (each load observes the
//! latest store), i.e. the checker does not additionally explore stale
//! `Relaxed` loads; stale-value bugs that matter here are publication
//! races, which the clock machinery catches as described above.

use std::cell::Cell;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
use std::sync::{
    Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock,
    PoisonError,
};

/// Sentinel for "no model thread" in the thread-local slot.
const NO_TID: usize = usize::MAX;

/// Panic payload used to abort model threads once a failure is recorded.
/// Instrumented operations throw it instead of blocking, so every thread
/// unwinds out of the iteration promptly; the runner swallows it and reports
/// the recorded failure instead.
pub(crate) struct ModelAbort;

thread_local! {
    /// The model-thread id of this OS thread, `NO_TID` outside a model.
    static MODEL_TID: Cell<usize> = const { Cell::new(NO_TID) };
}

/// Process-wide map from OS thread to the execution it participates in.
/// Keyed by OS thread id so concurrently running models (cargo's parallel
/// test harness) stay disjoint.
fn registry() -> &'static StdMutex<HashMap<std::thread::ThreadId, Arc<Execution>>> {
    static REGISTRY: OnceLock<StdMutex<HashMap<std::thread::ThreadId, Arc<Execution>>>> =
        OnceLock::new();
    REGISTRY.get_or_init(|| StdMutex::new(HashMap::new()))
}

/// The execution the current OS thread is a model thread of, if any.
pub(crate) fn current() -> Option<Arc<Execution>> {
    let map = registry().lock().unwrap_or_else(PoisonError::into_inner);
    map.get(&std::thread::current().id()).cloned()
}

fn register_current(exec: &Arc<Execution>, tid: usize) {
    MODEL_TID.with(|cell| cell.set(tid));
    registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(std::thread::current().id(), Arc::clone(exec));
}

fn deregister_current() {
    MODEL_TID.with(|cell| cell.set(NO_TID));
    registry().lock().unwrap_or_else(PoisonError::into_inner).remove(&std::thread::current().id());
}

/// A vector clock: `clock[t]` is the latest operation of thread `t` known to
/// happen-before the clock's owner.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    fn get(&self, t: usize) -> u32 {
        self.0.get(t).copied().unwrap_or(0)
    }

    fn set(&mut self, t: usize, v: u32) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] = v;
    }

    fn bump(&mut self, t: usize) {
        let v = self.get(t) + 1;
        self.set(t, v);
    }

    fn join(&mut self, other: &VClock) {
        for (t, &v) in other.0.iter().enumerate() {
            if self.get(t) < v {
                self.set(t, v);
            }
        }
    }

    /// `self` happens-before (or equals) `other`.
    fn le(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(t, &v)| v <= other.get(t))
    }

    fn clear(&mut self) {
        self.0.clear();
    }
}

/// Scheduling status of a model thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Waiting to acquire the mutex with this object id.
    BlockedMutex(usize),
    /// Parked on a condvar, not yet notified.
    BlockedCondvar,
    /// Waiting for the thread with this id to finish.
    BlockedJoin(usize),
    Finished,
}

struct ThreadState {
    status: Status,
    clock: VClock,
}

/// Model state of one instrumented object.
pub(crate) enum Object {
    /// An atomic variable: the clock released by the current release
    /// sequence (empty after a plain `Relaxed` store).
    Atomic { release: VClock },
    /// A mutex: the holder, plus the clock accumulated by past unlocks.
    Mutex { locked_by: Option<usize>, clock: VClock },
    /// A condvar: parked threads and the mutex each must reacquire.
    Condvar { waiters: Vec<(usize, usize)> },
    /// An `UnsafeCell`: clocks of past writes and reads, for race checks.
    Cell { writes: VClock, reads: VClock },
    /// An `Arc` control block: clocks released by dropped handles.
    Arc { clock: VClock },
}

/// One node of the schedule: which threads were enabled, which was chosen.
#[derive(Clone, Debug)]
struct Decision {
    /// Enabled threads at this point; when `!free`, index 0 is the thread
    /// that was running (so choosing any other index is a preemption).
    candidates: Vec<usize>,
    /// Index into `candidates` taken on the current run.
    chosen: usize,
    /// The running thread was blocked/finished: switching is forced and
    /// costs no preemption budget.
    free: bool,
    /// Preemptions consumed on the path before this decision.
    preemptions_before: usize,
}

struct ExecState {
    threads: Vec<ThreadState>,
    /// The model thread currently holding the execution token.
    active: usize,
    objects: Vec<Object>,
    schedule: Vec<Decision>,
    /// Next schedule index: below `replay_len` decisions are replayed.
    cursor: usize,
    replay_len: usize,
    preemptions: usize,
    steps: usize,
    max_steps: usize,
    /// Threads not yet finished.
    live: usize,
    failure: Option<String>,
    /// Panic payload of a failing model thread, re-thrown by the runner.
    payload: Option<Box<dyn std::any::Any + Send + 'static>>,
    /// OS handles of spawned threads, joined at iteration end.
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// One model iteration: the scheduler/clock state shared by its threads.
pub(crate) struct Execution {
    inner: StdMutex<ExecState>,
    cv: StdCondvar,
    /// Distinguishes iterations, so statically-allocated objects lazily
    /// re-register instead of aliasing stale object ids.
    pub(crate) epoch: usize,
}

fn next_epoch() -> usize {
    static EPOCH: StdAtomicUsize = StdAtomicUsize::new(1);
    // ordering: a unique-id counter; no memory is published through it.
    EPOCH.fetch_add(1, StdOrdering::Relaxed)
}

impl Execution {
    fn new(prefix: Vec<Decision>, max_steps: usize) -> Execution {
        let mut main_clock = VClock::default();
        main_clock.bump(0);
        let replay_len = prefix.len();
        Execution {
            inner: StdMutex::new(ExecState {
                threads: vec![ThreadState { status: Status::Runnable, clock: main_clock }],
                active: 0,
                objects: Vec::new(),
                schedule: prefix,
                cursor: 0,
                replay_len,
                preemptions: 0,
                steps: 0,
                max_steps,
                live: 1,
                failure: None,
                payload: None,
                handles: Vec::new(),
            }),
            cv: StdCondvar::new(),
            epoch: next_epoch(),
        }
    }

    fn lock(&self) -> StdMutexGuard<'_, ExecState> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records a failure (first one wins) and wakes every parked thread so
    /// the iteration unwinds instead of hanging.
    fn fail(&self, state: &mut ExecState, message: String) {
        if state.failure.is_none() {
            state.failure = Some(message);
        }
        self.cv.notify_all();
    }

    fn abort() -> ! {
        std::panic::panic_any(ModelAbort)
    }

    /// Waits for this thread's turn and bumps its clock: the entry point of
    /// every visible operation. Panics with [`ModelAbort`] once the
    /// iteration has failed.
    fn enter_op(&self, me: usize) -> StdMutexGuard<'_, ExecState> {
        let mut state = self.lock();
        while state.failure.is_none() && state.active != me {
            state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        if state.failure.is_some() {
            drop(state);
            Execution::abort();
        }
        state.steps += 1;
        if state.steps > state.max_steps {
            let limit = state.max_steps;
            self.fail(
                &mut state,
                format!(
                    "exceeded {limit} operations in one iteration (livelock or unbounded model)"
                ),
            );
            drop(state);
            Execution::abort();
        }
        state.threads[me].clock.bump(me);
        state
    }

    /// [`Execution::enter_op`] for operations reachable from `Drop` while a
    /// panic unwinds (mutex unlock, `Arc` release): once the iteration has
    /// failed it returns `None` instead of panicking, because a second panic
    /// inside an unwind aborts the whole process. Skipping the op is sound —
    /// a failed iteration is being torn down, and every still-blocked thread
    /// aborts at its next operation rather than waiting on this one.
    fn enter_op_teardown(&self, me: usize) -> Option<StdMutexGuard<'_, ExecState>> {
        let mut state = self.lock();
        while state.failure.is_none() && state.active != me {
            state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        if state.failure.is_some() {
            return None;
        }
        state.steps += 1;
        if state.steps > state.max_steps {
            let limit = state.max_steps;
            self.fail(
                &mut state,
                format!(
                    "exceeded {limit} operations in one iteration (livelock or unbounded model)"
                ),
            );
            return None;
        }
        state.threads[me].clock.bump(me);
        Some(state)
    }

    /// Picks the thread that performs the next visible operation, replaying
    /// the schedule prefix and recording fresh decisions past it.
    fn schedule_next(&self, state: &mut ExecState, me: usize) {
        let enabled: Vec<usize> = (0..state.threads.len())
            .filter(|&t| match state.threads[t].status {
                Status::Runnable => true,
                Status::BlockedMutex(oid) => {
                    matches!(state.objects[oid], Object::Mutex { locked_by: None, .. })
                }
                Status::BlockedJoin(target) => state.threads[target].status == Status::Finished,
                Status::BlockedCondvar | Status::Finished => false,
            })
            .collect();
        if enabled.is_empty() {
            if state.live > 0 {
                let blocked: Vec<usize> = (0..state.threads.len())
                    .filter(|&t| state.threads[t].status != Status::Finished)
                    .collect();
                self.fail(state, format!("deadlock: threads {blocked:?} are all blocked"));
            }
            return;
        }
        let me_enabled = enabled.contains(&me);
        let (next, free, chosen) = if state.cursor < state.replay_len {
            let d = &state.schedule[state.cursor];
            let mut expected: Vec<usize> = Vec::with_capacity(enabled.len());
            if me_enabled {
                expected.push(me);
            }
            expected.extend(enabled.iter().copied().filter(|&t| t != me));
            if d.candidates != expected {
                let have = d.candidates.clone();
                self.fail(
                    state,
                    format!(
                        "schedule divergence while replaying: expected candidates {expected:?}, \
                         recorded {have:?} — the model is non-deterministic"
                    ),
                );
                return;
            }
            (d.candidates[d.chosen], d.free, d.chosen)
        } else {
            let mut candidates: Vec<usize> = Vec::with_capacity(enabled.len());
            if me_enabled {
                candidates.push(me);
            }
            candidates.extend(enabled.iter().copied().filter(|&t| t != me));
            let next = candidates[0];
            state.schedule.push(Decision {
                candidates,
                chosen: 0,
                free: !me_enabled,
                preemptions_before: state.preemptions,
            });
            (next, !me_enabled, 0)
        };
        if !free && chosen != 0 {
            state.preemptions += 1;
        }
        state.cursor += 1;
        state.active = next;
    }

    /// Hands the token to the next scheduled thread: the exit point of every
    /// visible operation.
    fn exit_op(&self, state: StdMutexGuard<'_, ExecState>, me: usize) {
        if self.exit_op_teardown(state, me) {
            Execution::abort();
        }
    }

    /// [`Execution::exit_op`] minus the abort: returns whether the iteration
    /// has failed, leaving the caller to decide whether panicking is safe.
    fn exit_op_teardown(&self, mut state: StdMutexGuard<'_, ExecState>, me: usize) -> bool {
        self.schedule_next(&mut state, me);
        let failed = state.failure.is_some();
        let switched = state.active != me;
        drop(state);
        if switched || failed {
            self.cv.notify_all();
        }
        failed
    }

    /// Blocks the current thread with `status` until the scheduler hands the
    /// token back (which, per the enabled-set rules, implies the blocking
    /// condition has cleared). Returns with the state lock held.
    fn block_until_scheduled<'a>(
        &'a self,
        mut state: StdMutexGuard<'a, ExecState>,
        me: usize,
        status: Status,
    ) -> StdMutexGuard<'a, ExecState> {
        state.threads[me].status = status;
        self.schedule_next(&mut state, me);
        self.cv.notify_all();
        while state.failure.is_none() && state.active != me {
            state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        if state.failure.is_some() {
            drop(state);
            Execution::abort();
        }
        state.threads[me].status = Status::Runnable;
        state
    }

    fn tid(&self) -> usize {
        let tid = MODEL_TID.with(Cell::get);
        assert!(tid != NO_TID, "instrumented operation on a thread outside the model");
        tid
    }

    // ------------------------------------------------------------------
    // Object registration
    // ------------------------------------------------------------------

    /// Allocates a fresh object id in this execution.
    pub(crate) fn alloc_object(&self, object: Object) -> usize {
        let mut state = self.lock();
        state.objects.push(object);
        state.objects.len() - 1
    }

    // ------------------------------------------------------------------
    // Atomics
    // ------------------------------------------------------------------

    /// The read half of an atomic access: `Acquire` (and stronger) joins the
    /// location's release clock into the reader. `value` runs inside the
    /// exclusive window, so the observed value is the one the schedule says
    /// is current.
    pub(crate) fn atomic_load<R>(&self, oid: usize, acquire: bool, value: impl FnOnce() -> R) -> R {
        let me = self.tid();
        let mut state = self.enter_op(me);
        if acquire {
            let Object::Atomic { release } = &state.objects[oid] else { unreachable!() };
            let release = release.clone();
            state.threads[me].clock.join(&release);
        }
        let result = value();
        self.exit_op(state, me);
        result
    }

    /// The write half of a plain atomic store: `Release` (and stronger)
    /// publishes the writer's clock, `Relaxed` clears the release sequence.
    pub(crate) fn atomic_store(&self, oid: usize, release: bool, value: impl FnOnce()) {
        let me = self.tid();
        let mut state = self.enter_op(me);
        let clock = state.threads[me].clock.clone();
        let Object::Atomic { release: rel } = &mut state.objects[oid] else { unreachable!() };
        if release {
            *rel = clock;
        } else {
            rel.clear();
        }
        value();
        self.exit_op(state, me);
    }

    /// A read-modify-write: the acquire half joins, the release half
    /// *extends* the release sequence (a relaxed RMW leaves it intact, as in
    /// C11 release sequences). `value` performs the actual RMW inside the
    /// exclusive window, making RMW claim order identical to schedule order.
    pub(crate) fn atomic_rmw<R>(
        &self,
        oid: usize,
        acquire: bool,
        release: bool,
        value: impl FnOnce() -> R,
    ) -> R {
        let me = self.tid();
        let mut state = self.enter_op(me);
        if acquire {
            let Object::Atomic { release } = &state.objects[oid] else { unreachable!() };
            let clock = release.clone();
            state.threads[me].clock.join(&clock);
        }
        if release {
            let clock = state.threads[me].clock.clone();
            let Object::Atomic { release: rel } = &mut state.objects[oid] else { unreachable!() };
            rel.join(&clock);
        }
        let result = value();
        self.exit_op(state, me);
        result
    }

    // ------------------------------------------------------------------
    // UnsafeCell race detection
    // ------------------------------------------------------------------

    /// Records a cell access and fails the model if a conflicting earlier
    /// access does not happen-before it. The access closure `f` runs inside
    /// the exclusive window, so concurrent closures never overlap for real —
    /// the *race* is detected causally, via the clocks.
    pub(crate) fn cell_access<R>(
        &self,
        oid: usize,
        write: bool,
        type_name: &str,
        f: impl FnOnce() -> R,
    ) -> R {
        let me = self.tid();
        let mut state = self.enter_op(me);
        let my_clock = state.threads[me].clock.clone();
        let my_component = my_clock.get(me);
        let Object::Cell { writes, reads } = &mut state.objects[oid] else { unreachable!() };
        let race = if write {
            !writes.le(&my_clock) || !reads.le(&my_clock)
        } else {
            !writes.le(&my_clock)
        };
        if race {
            let kind = if write { "write" } else { "read" };
            let msg = format!(
                "data race: unsynchronized {kind} of UnsafeCell<{type_name}> — a prior \
                 conflicting access does not happen-before it"
            );
            self.fail(&mut state, msg);
            drop(state);
            Execution::abort();
        }
        if write {
            writes.set(me, my_component);
        } else {
            reads.set(me, my_component);
        }
        let result = f();
        self.exit_op(state, me);
        result
    }

    // ------------------------------------------------------------------
    // Mutex / Condvar
    // ------------------------------------------------------------------

    pub(crate) fn mutex_lock(&self, oid: usize) {
        let me = self.tid();
        let mut state = self.enter_op(me);
        let held = {
            let Object::Mutex { locked_by, .. } = &state.objects[oid] else { unreachable!() };
            locked_by.is_some()
        };
        if held {
            state = self.block_until_scheduled(state, me, Status::BlockedMutex(oid));
        }
        let Object::Mutex { locked_by, clock } = &mut state.objects[oid] else { unreachable!() };
        debug_assert!(locked_by.is_none(), "scheduler handed the token to a blocked locker");
        *locked_by = Some(me);
        let clock = clock.clone();
        state.threads[me].clock.join(&clock);
        self.exit_op(state, me);
    }

    /// Runs from `MutexGuard::drop`, possibly mid-unwind, so it must never
    /// panic: a failed iteration skips the op instead of aborting.
    pub(crate) fn mutex_unlock(&self, oid: usize) {
        let me = self.tid();
        let Some(mut state) = self.enter_op_teardown(me) else { return };
        let my_clock = state.threads[me].clock.clone();
        let Object::Mutex { locked_by, clock } = &mut state.objects[oid] else { unreachable!() };
        *locked_by = None;
        clock.join(&my_clock);
        let _ = self.exit_op_teardown(state, me);
    }

    /// Releases `mutex_oid`, parks on `cv_oid` until notified, reacquires.
    /// No spurious wakeups are modelled: a parked thread runs again only
    /// after a notify (a deliberate, documented simplification).
    pub(crate) fn condvar_wait(&self, cv_oid: usize, mutex_oid: usize) {
        let me = self.tid();
        let mut state = self.enter_op(me);
        let my_clock = state.threads[me].clock.clone();
        {
            let Object::Mutex { locked_by, clock } = &mut state.objects[mutex_oid] else {
                unreachable!()
            };
            *locked_by = None;
            clock.join(&my_clock);
        }
        {
            let Object::Condvar { waiters } = &mut state.objects[cv_oid] else { unreachable!() };
            waiters.push((me, mutex_oid));
        }
        state = self.block_until_scheduled(state, me, Status::BlockedCondvar);
        // Scheduled again: notified and the mutex is free — reacquire.
        let Object::Mutex { locked_by, clock } = &mut state.objects[mutex_oid] else {
            unreachable!()
        };
        debug_assert!(locked_by.is_none());
        *locked_by = Some(me);
        let clock = clock.clone();
        state.threads[me].clock.join(&clock);
        self.exit_op(state, me);
    }

    /// Wakes the longest-parked waiter (`all == false`) or every waiter:
    /// woken threads move to the blocked-on-mutex state and become
    /// schedulable once their mutex frees up.
    pub(crate) fn condvar_notify(&self, cv_oid: usize, all: bool) {
        let me = self.tid();
        let mut state = self.enter_op(me);
        let woken: Vec<(usize, usize)> = {
            let Object::Condvar { waiters } = &mut state.objects[cv_oid] else { unreachable!() };
            if all {
                std::mem::take(waiters)
            } else if waiters.is_empty() {
                Vec::new()
            } else {
                vec![waiters.remove(0)]
            }
        };
        for (tid, mutex_oid) in woken {
            state.threads[tid].status = Status::BlockedMutex(mutex_oid);
        }
        self.exit_op(state, me);
    }

    // ------------------------------------------------------------------
    // Arc clocks
    // ------------------------------------------------------------------

    /// A handle drop releases the dropper's clock into the control block;
    /// the final drop acquires the joined clock before tearing down. Runs
    /// from `Arc::drop`, possibly mid-unwind, so it must never panic.
    pub(crate) fn arc_drop(&self, oid: usize, last: bool) {
        let me = self.tid();
        let Some(mut state) = self.enter_op_teardown(me) else { return };
        let my_clock = state.threads[me].clock.clone();
        let Object::Arc { clock } = &mut state.objects[oid] else { unreachable!() };
        clock.join(&my_clock);
        if last {
            let clock = clock.clone();
            state.threads[me].clock.join(&clock);
        }
        let _ = self.exit_op_teardown(state, me);
    }

    // ------------------------------------------------------------------
    // Threads
    // ------------------------------------------------------------------

    /// Registers a new model thread (clock-seeded from the spawner) and
    /// returns its id. The spawner performs the visible operation.
    pub(crate) fn spawn_thread(self: &Arc<Self>, body: Box<dyn FnOnce() + Send>) -> usize {
        let me = self.tid();
        let mut state = self.enter_op(me);
        let mut clock = state.threads[me].clock.clone();
        let tid = state.threads.len();
        clock.bump(tid);
        state.threads.push(ThreadState { status: Status::Runnable, clock });
        state.live += 1;
        let exec = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("loom-model-{tid}"))
            .spawn(move || {
                register_current(&exec, tid);
                let outcome = catch_unwind(AssertUnwindSafe(body));
                deregister_current();
                exec.finish_thread(tid, outcome.err());
            })
            .expect("spawning a model thread");
        state.handles.push(handle);
        self.exit_op(state, me);
        tid
    }

    /// Marks a model thread finished. A *normal* completion is itself a
    /// visible operation — the thread waits for the token one last time, so
    /// the point where it leaves every enabled set is a schedule decision,
    /// not an OS-timing accident (which would make replay diverge). A
    /// panicking completion skips the wait: the iteration is failing (or,
    /// for a fresh non-[`ModelAbort`] payload, about to be failed right
    /// here), and teardown must not block.
    fn finish_thread(&self, me: usize, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut state = self.lock();
        if let Some(payload) = panic {
            state.threads[me].status = Status::Finished;
            state.live -= 1;
            if !payload.is::<ModelAbort>() && state.failure.is_none() {
                state.failure =
                    Some(format!("model thread {me} panicked: {}", payload_text(payload.as_ref())));
                state.payload = Some(payload);
            }
            drop(state);
            self.cv.notify_all();
            return;
        }
        while state.failure.is_none() && state.active != me {
            state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        state.threads[me].status = Status::Finished;
        state.live -= 1;
        if state.failure.is_none() && state.live > 0 {
            // `me` is already Finished, so this is a forced (free) switch.
            self.schedule_next(&mut state, me);
        }
        drop(state);
        self.cv.notify_all();
    }

    /// Blocks the joining thread until `target` finishes, then joins its
    /// clock (the join synchronization edge).
    pub(crate) fn join_thread(&self, target: usize) {
        let me = self.tid();
        let mut state = self.enter_op(me);
        if state.threads[target].status != Status::Finished {
            state = self.block_until_scheduled(state, me, Status::BlockedJoin(target));
        }
        let clock = state.threads[target].clock.clone();
        state.threads[me].clock.join(&clock);
        self.exit_op(state, me);
    }

    /// Called by the runner after the model closure returns: finish thread 0
    /// (as a visible operation, same as [`Execution::finish_thread`]) and
    /// wait for every spawned thread to exit the iteration.
    fn main_finish(&self) {
        {
            let mut state = self.lock();
            while state.failure.is_none() && state.active != 0 {
                state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
            }
            state.threads[0].status = Status::Finished;
            state.live -= 1;
            if state.failure.is_none() && state.live > 0 {
                self.schedule_next(&mut state, 0);
            }
            drop(state);
            self.cv.notify_all();
        }
        let mut state = self.lock();
        while state.live > 0 {
            state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        let handles = std::mem::take(&mut state.handles);
        drop(state);
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string payload>".to_string()
    }
}

/// Advances the schedule depth-first: bumps the deepest decision that still
/// has an untried, budget-respecting alternative and truncates everything
/// after it. Returns `None` when the bounded space is exhausted.
fn advance(mut schedule: Vec<Decision>, bound: usize) -> Option<Vec<Decision>> {
    while let Some(d) = schedule.last_mut() {
        let next = d.chosen + 1;
        if next < d.candidates.len() && (d.free || d.preemptions_before < bound) {
            d.chosen = next;
            return Some(schedule);
        }
        schedule.pop();
    }
    None
}

/// Exploration statistics returned by [`Builder::check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Number of complete executions (schedules) explored.
    pub iterations: usize,
}

/// Configures a model-checking run. The defaults (two preemptions, a large
/// iteration cap) suit small protocol models; the canary tests pin the
/// resulting iteration counts so these knobs cannot drift silently.
#[derive(Debug, Clone, Copy)]
pub struct Builder {
    /// Maximum voluntary context switches per schedule (forced switches are
    /// free). CHESS-style small-bound exploration.
    pub preemption_bound: usize,
    /// Hard cap on explored schedules; exceeding it panics rather than
    /// silently truncating coverage.
    pub max_iterations: usize,
    /// Hard cap on visible operations within one schedule (livelock guard).
    pub max_steps: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder { preemption_bound: 2, max_iterations: 1_000_000, max_steps: 100_000 }
    }
}

impl Builder {
    /// Explores `f` under every schedule within the preemption bound,
    /// propagating the first failure (data race, deadlock, assertion or
    /// other panic) with its diagnostic.
    pub fn check<F: Fn()>(&self, f: F) -> Stats {
        assert!(
            current().is_none(),
            "loom models cannot be nested: already inside a model on this thread"
        );
        let mut prefix: Vec<Decision> = Vec::new();
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            assert!(
                iterations <= self.max_iterations,
                "loom: exceeded {} iterations — the model is too large for exhaustive \
                 exploration at preemption bound {}",
                self.max_iterations,
                self.preemption_bound
            );
            let exec = Arc::new(Execution::new(prefix, self.max_steps));
            register_current(&exec, 0);
            let outcome = catch_unwind(AssertUnwindSafe(&f));
            exec.main_finish();
            deregister_current();
            let mut state = exec.lock();
            if let Err(payload) = outcome {
                if !payload.is::<ModelAbort>() && state.failure.is_none() {
                    state.failure =
                        Some(format!("model panicked: {}", payload_text(payload.as_ref())));
                    state.payload = Some(payload);
                }
            }
            if state.failure.is_some() {
                let message = state.failure.take().unwrap();
                let payload = state.payload.take();
                drop(state);
                eprintln!("loom: failing schedule found after {iterations} iteration(s)");
                match payload {
                    Some(payload) => resume_unwind(payload),
                    None => panic!("{message}"),
                }
            }
            let schedule = std::mem::take(&mut state.schedule);
            drop(state);
            match advance(schedule, self.preemption_bound) {
                Some(next) => prefix = next,
                None => return Stats { iterations },
            }
        }
    }
}
