//! In-tree stand-in for the subset of the
//! [`loom`](https://crates.io/crates/loom) model checker this workspace
//! uses to verify the `compat/rayon` worker pool.
//!
//! The build environment has no crate registry, so — like the other
//! `compat/` shims — this crate vendors the *surface* the workspace needs:
//! drop-in instrumented replacements for `AtomicUsize` / `AtomicBool`,
//! `Mutex` / `Condvar`, `Arc`, `thread::spawn`, and a loom-style
//! [`cell::UnsafeCell`] with `with` / `with_mut` access closures, all driven
//! by [`model`] (or [`Builder::check`] for explicit bounds + statistics).
//!
//! A model run executes the closure under **every thread interleaving**
//! reachable within a preemption bound, with a deterministic DFS scheduler,
//! and checks each one for data races (vector-clock based, memory-ordering
//! aware: a `Relaxed` publication that *would* race under the C11 model is
//! reported even if the explored schedule happened to be safe), deadlocks,
//! livelocks and panics. See [`rt`](crate::Builder) for the exact execution
//! and visibility model, including its two documented simplifications:
//! atomic loads observe the latest store (no stale-`Relaxed`-value
//! exploration), and condvars have no spurious wakeups.
//!
//! Outside a model every wrapper degrades to a thin passthrough over the
//! `std` primitive, so instrumented code keeps working (uninstrumented and
//! unchecked) if it is ever driven without `loom::model` — with the one
//! rule that an object created inside a model run must not be used in a
//! *different* run (detected and reported, rather than silently aliased).

#![warn(missing_docs)]

mod rt;

pub use rt::{Builder, Stats};

use std::sync::atomic::{AtomicBool as StdAtomicBool, AtomicUsize as StdAtomicUsize};
use std::sync::PoisonError;

/// Explores every schedule of `f` within the default bounds, panicking with
/// a diagnostic on the first data race, deadlock, or panic found.
pub fn model<F: Fn()>(f: F) {
    let _ = Builder::default().check(f);
}

/// The object-identity half of every instrumented wrapper: which execution
/// the object was registered in, and its id there.
#[derive(Debug, Clone, Copy)]
struct ObjectId {
    epoch: usize,
    oid: usize,
}

impl ObjectId {
    /// Registers a fresh object with the active execution, or marks the
    /// object as unregistered (passthrough) when created outside a model.
    fn register(make: impl FnOnce() -> rt::Object) -> ObjectId {
        match rt::current() {
            Some(exec) => ObjectId { epoch: exec.epoch, oid: exec.alloc_object(make()) },
            None => ObjectId { epoch: 0, oid: usize::MAX },
        }
    }

    /// The object's id in `exec`; panics if the object belongs to a
    /// different (e.g. previous) model run, which would otherwise silently
    /// alias another object's clocks.
    fn in_exec(&self, exec: &rt::Execution) -> usize {
        assert!(
            self.epoch == exec.epoch,
            "loom object used in a model run it was not created in \
             (create all instrumented objects inside the model closure)"
        );
        self.oid
    }
}

/// Instrumented atomics and the re-exported [`Ordering`].
///
/// [`Ordering`]: std::sync::atomic::Ordering
pub mod sync {
    use super::*;

    /// Instrumented atomic integer/flag types.
    pub mod atomic {
        use super::*;
        pub use std::sync::atomic::Ordering;

        fn is_acquire(ordering: Ordering) -> bool {
            matches!(ordering, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
        }

        fn is_release(ordering: Ordering) -> bool {
            matches!(ordering, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
        }

        macro_rules! instrumented_atomic {
            ($name:ident, $std:ty, $value:ty) => {
                /// An instrumented atomic: under a model every access is a
                /// visible operation with memory-ordering-aware visibility
                /// tracking; outside a model it is the `std` atomic.
                #[derive(Debug)]
                pub struct $name {
                    value: $std,
                    id: ObjectId,
                }

                impl $name {
                    /// Creates the atomic, registering it with the active
                    /// model run (if any).
                    pub fn new(value: $value) -> Self {
                        $name {
                            value: <$std>::new(value),
                            id: ObjectId::register(|| rt::Object::Atomic {
                                release: rt::VClock::default(),
                            }),
                        }
                    }

                    /// Atomic load; `Acquire` and stronger joins the
                    /// location's release clock into this thread.
                    pub fn load(&self, ordering: Ordering) -> $value {
                        match rt::current() {
                            Some(exec) => exec.atomic_load(
                                self.id.in_exec(&exec),
                                is_acquire(ordering),
                                || self.value.load(Ordering::SeqCst),
                            ),
                            None => self.value.load(ordering),
                        }
                    }

                    /// Atomic store; `Release` and stronger publishes this
                    /// thread's clock, `Relaxed` starts a fresh,
                    /// synchronization-free release sequence.
                    pub fn store(&self, value: $value, ordering: Ordering) {
                        match rt::current() {
                            Some(exec) => exec.atomic_store(
                                self.id.in_exec(&exec),
                                is_release(ordering),
                                || self.value.store(value, Ordering::SeqCst),
                            ),
                            None => self.value.store(value, ordering),
                        }
                    }

                    /// Atomic swap (a read-modify-write: the claim order is
                    /// the schedule order).
                    pub fn swap(&self, value: $value, ordering: Ordering) -> $value {
                        match rt::current() {
                            Some(exec) => exec.atomic_rmw(
                                self.id.in_exec(&exec),
                                is_acquire(ordering),
                                is_release(ordering),
                                || self.value.swap(value, Ordering::SeqCst),
                            ),
                            None => self.value.swap(value, ordering),
                        }
                    }
                }
            };
        }

        instrumented_atomic!(AtomicUsize, StdAtomicUsize, usize);
        instrumented_atomic!(AtomicBool, StdAtomicBool, bool);

        impl AtomicUsize {
            /// Atomic fetch-add (a read-modify-write; a relaxed RMW still
            /// continues an existing release sequence, as in C11).
            pub fn fetch_add(&self, value: usize, ordering: Ordering) -> usize {
                match rt::current() {
                    Some(exec) => exec.atomic_rmw(
                        self.id.in_exec(&exec),
                        is_acquire(ordering),
                        is_release(ordering),
                        || self.value.fetch_add(value, Ordering::SeqCst),
                    ),
                    None => self.value.fetch_add(value, ordering),
                }
            }
        }
    }

    /// An instrumented mutex. Lock acquisition is a blocking visible
    /// operation; the protected value itself lives in a real `std` mutex
    /// (always uncontended under a model, because the scheduler serialises
    /// visible operations). Poisoning is not modelled: `lock` always
    /// returns `Ok`, and a poisoned passthrough lock is recovered.
    #[derive(Debug)]
    pub struct Mutex<T> {
        id: ObjectId,
        data: std::sync::Mutex<T>,
    }

    /// Guard returned by [`Mutex::lock`]; releasing it is a visible
    /// operation that publishes the holder's clock to the next locker.
    pub struct MutexGuard<'a, T> {
        lock: &'a Mutex<T>,
        exec: Option<std::sync::Arc<rt::Execution>>,
        oid: usize,
        inner: Option<std::sync::MutexGuard<'a, T>>,
    }

    impl<T> Mutex<T> {
        /// Creates the mutex, registering it with the active model run.
        pub fn new(data: T) -> Mutex<T> {
            Mutex {
                id: ObjectId::register(|| rt::Object::Mutex {
                    locked_by: None,
                    clock: rt::VClock::default(),
                }),
                data: std::sync::Mutex::new(data),
            }
        }

        /// Acquires the mutex (never poisoned — always `Ok`).
        pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
            match rt::current() {
                Some(exec) => {
                    let oid = self.id.in_exec(&exec);
                    exec.mutex_lock(oid);
                    let inner = self.data.lock().unwrap_or_else(PoisonError::into_inner);
                    Ok(MutexGuard { lock: self, exec: Some(exec), oid, inner: Some(inner) })
                }
                None => {
                    let inner = self.data.lock().unwrap_or_else(PoisonError::into_inner);
                    Ok(MutexGuard { lock: self, exec: None, oid: usize::MAX, inner: Some(inner) })
                }
            }
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard still holds the lock")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard still holds the lock")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Release the real lock before the model-level unlock: the
            // model may hand the mutex to another thread at the unlock
            // decision, and that thread must not block on the real lock.
            drop(self.inner.take());
            if let Some(exec) = self.exec.take() {
                exec.mutex_unlock(self.oid);
            }
        }
    }

    /// An instrumented condition variable. Waits and notifies are visible
    /// operations; `notify_one` wakes the longest-parked waiter, and there
    /// are **no spurious wakeups** under a model (both documented
    /// simplifications of the real primitive).
    #[derive(Debug)]
    pub struct Condvar {
        id: ObjectId,
        real: std::sync::Condvar,
    }

    impl Default for Condvar {
        fn default() -> Condvar {
            Condvar::new()
        }
    }

    impl Condvar {
        /// Creates the condvar, registering it with the active model run.
        pub fn new() -> Condvar {
            Condvar {
                id: ObjectId::register(|| rt::Object::Condvar { waiters: Vec::new() }),
                real: std::sync::Condvar::new(),
            }
        }

        /// Releases the guard's mutex, parks until notified, reacquires.
        pub fn wait<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
        ) -> std::sync::LockResult<MutexGuard<'a, T>> {
            let mut guard = std::mem::ManuallyDrop::new(guard);
            let exec = guard.exec.take();
            let inner = guard.inner.take();
            let lock = guard.lock;
            let mutex_oid = guard.oid;
            match exec {
                Some(exec) => {
                    // Drop the real guard before parking; the model-level
                    // wait releases the model mutex itself.
                    drop(inner);
                    let cv_oid = self.id.in_exec(&exec);
                    exec.condvar_wait(cv_oid, mutex_oid);
                    let inner = lock.data.lock().unwrap_or_else(PoisonError::into_inner);
                    Ok(MutexGuard { lock, exec: Some(exec), oid: mutex_oid, inner: Some(inner) })
                }
                None => {
                    let inner = self
                        .real
                        .wait(inner.expect("guard still holds the lock"))
                        .unwrap_or_else(PoisonError::into_inner);
                    Ok(MutexGuard { lock, exec: None, oid: mutex_oid, inner: Some(inner) })
                }
            }
        }

        /// Wakes the longest-parked waiter, if any.
        pub fn notify_one(&self) {
            match rt::current() {
                Some(exec) => exec.condvar_notify(self.id.in_exec(&exec), false),
                None => self.real.notify_one(),
            }
        }

        /// Wakes every parked waiter.
        pub fn notify_all(&self) {
            match rt::current() {
                Some(exec) => exec.condvar_notify(self.id.in_exec(&exec), true),
                None => self.real.notify_all(),
            }
        }
    }

    /// An instrumented `Arc`: handle drops release the dropper's clock into
    /// the control block and the final drop acquires the join of all of
    /// them — the synchronization the real `Arc`'s reference count
    /// provides.
    #[derive(Debug)]
    pub struct Arc<T> {
        inner: std::sync::Arc<ArcBox<T>>,
    }

    #[derive(Debug)]
    struct ArcBox<T> {
        id: ObjectId,
        value: T,
    }

    impl<T> Arc<T> {
        /// Allocates a new instrumented `Arc`.
        pub fn new(value: T) -> Arc<T> {
            Arc {
                inner: std::sync::Arc::new(ArcBox {
                    id: ObjectId::register(|| rt::Object::Arc { clock: rt::VClock::default() }),
                    value,
                }),
            }
        }
    }

    impl<T> Clone for Arc<T> {
        fn clone(&self) -> Arc<T> {
            Arc { inner: std::sync::Arc::clone(&self.inner) }
        }
    }

    impl<T> std::ops::Deref for Arc<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner.value
        }
    }

    impl<T> Drop for Arc<T> {
        fn drop(&mut self) {
            if let Some(exec) = rt::current() {
                let oid = self.inner.id.in_exec(&exec);
                let last = std::sync::Arc::strong_count(&self.inner) == 1;
                exec.arc_drop(oid, last);
            }
        }
    }
}

/// The loom-style checked cell.
pub mod cell {
    use super::*;

    /// An `UnsafeCell` whose accesses are race-checked under a model: a
    /// `with` access records a read, a `with_mut` access records a write,
    /// and any access not ordered (happens-before) after every conflicting
    /// earlier access fails the model with a data-race diagnostic.
    ///
    /// The access closures receive the raw pointer, exactly like upstream
    /// loom; dereferencing it is the caller's `unsafe` obligation.
    #[derive(Debug)]
    pub struct UnsafeCell<T> {
        id: ObjectId,
        data: std::cell::UnsafeCell<T>,
    }

    // SAFETY: under a model, accesses are serialised by the scheduler (the
    // closure runs while its thread holds the execution token) and
    // unsynchronized concurrent accesses are detected and reported; outside
    // a model the cell is a plain `UnsafeCell` and the `with`/`with_mut`
    // callers carry the aliasing obligations, as documented.
    unsafe impl<T: Send> Send for UnsafeCell<T> {}
    // SAFETY: as above — shared references only hand out raw pointers, and
    // the checked discipline (or the caller's unsafe contract, outside a
    // model) rules out unsynchronized conflicting access.
    unsafe impl<T: Send> Sync for UnsafeCell<T> {}

    impl<T> UnsafeCell<T> {
        /// Creates the cell, registering it with the active model run.
        pub fn new(data: T) -> UnsafeCell<T> {
            UnsafeCell {
                id: ObjectId::register(|| rt::Object::Cell {
                    writes: rt::VClock::default(),
                    reads: rt::VClock::default(),
                }),
                data: std::cell::UnsafeCell::new(data),
            }
        }

        /// Immutable access: records a read and race-checks it.
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            match rt::current() {
                Some(exec) => exec.cell_access(
                    self.id.in_exec(&exec),
                    false,
                    std::any::type_name::<T>(),
                    || f(self.data.get()),
                ),
                None => f(self.data.get()),
            }
        }

        /// Mutable access: records a write and race-checks it.
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            match rt::current() {
                Some(exec) => exec.cell_access(
                    self.id.in_exec(&exec),
                    true,
                    std::any::type_name::<T>(),
                    || f(self.data.get()),
                ),
                None => f(self.data.get()),
            }
        }

        /// Consumes the cell.
        pub fn into_inner(self) -> T {
            self.data.into_inner()
        }
    }
}

/// Model threads.
pub mod thread {
    use super::*;
    use std::sync::PoisonError;

    /// Handle to a spawned model thread; joining is a visible (blocking)
    /// operation establishing the usual join synchronization edge.
    pub struct JoinHandle<T> {
        tid: usize,
        result: std::sync::Arc<std::sync::Mutex<Option<T>>>,
        exec: std::sync::Arc<rt::Execution>,
    }

    /// Spawns a model thread. Panics when called outside a model run —
    /// unlike the other wrappers there is no meaningful passthrough, since
    /// the scheduler owns thread lifecycles.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let exec = rt::current().expect("loom::thread::spawn requires an active model run");
        let result = std::sync::Arc::new(std::sync::Mutex::new(None));
        let slot = std::sync::Arc::clone(&result);
        let tid = exec.spawn_thread(Box::new(move || {
            let value = f();
            *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
        }));
        JoinHandle { tid, result, exec }
    }

    impl<T> JoinHandle<T> {
        /// Blocks until the thread finishes and returns its result.
        pub fn join(self) -> std::thread::Result<T> {
            self.exec.join_thread(self.tid);
            let value = self.result.lock().unwrap_or_else(PoisonError::into_inner).take();
            match value {
                Some(value) => Ok(value),
                // The thread panicked; the model also records this as a
                // failure, so this path is rarely observed.
                None => Err(Box::new("model thread panicked before producing a result")),
            }
        }
    }
}
