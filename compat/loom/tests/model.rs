//! Selftests for the vendored model checker: the checker must both *accept*
//! correct protocols and *reject* the canonical broken ones with the right
//! diagnostic, otherwise the pool suite in `tests/tests/loom_pool.rs` proves
//! nothing.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};

use loom::cell::UnsafeCell;
use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};

/// Runs `f` expecting the model to fail, with the default panic hook
/// silenced so the *intentional* failure does not spam the test log, and
/// returns the failure message.
fn model_failure<F: Fn() + 'static>(f: F) -> String {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = catch_unwind(AssertUnwindSafe(|| loom::model(f)));
    std::panic::set_hook(hook);
    let payload = outcome.expect_err("the model should have failed");
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        panic!("model failure carried a non-string payload");
    }
}

#[test]
fn release_acquire_publication_is_accepted() {
    loom::model(|| {
        let slot = Arc::new(UnsafeCell::new(0u64));
        let ready = Arc::new(AtomicBool::new(false));
        let writer = {
            let slot = Arc::clone(&slot);
            let ready = Arc::clone(&ready);
            loom::thread::spawn(move || {
                // SAFETY: the cell is written before `ready` is released and
                // only read after an acquire of `ready`; the model verifies
                // exactly this ordering.
                slot.with_mut(|p| unsafe { *p = 42 });
                ready.store(true, Ordering::Release);
            })
        };
        if ready.load(Ordering::Acquire) {
            // SAFETY: guarded by the acquire-load of `ready` above.
            let value = slot.with(|p| unsafe { *p });
            assert_eq!(value, 42);
        }
        writer.join().unwrap();
    });
}

#[test]
fn relaxed_publication_race_is_caught() {
    let message = model_failure(|| {
        let slot = Arc::new(UnsafeCell::new(0u64));
        let ready = Arc::new(AtomicBool::new(false));
        let writer = {
            let slot = Arc::clone(&slot);
            let ready = Arc::clone(&ready);
            loom::thread::spawn(move || {
                // SAFETY: intentionally broken — the Relaxed store below
                // publishes no ordering, which the checker must report.
                slot.with_mut(|p| unsafe { *p = 42 });
                ready.store(true, Ordering::Relaxed);
            })
        };
        if ready.load(Ordering::Acquire) {
            // SAFETY: intentionally racy read; see above.
            slot.with(|p| unsafe { *p });
        }
        writer.join().unwrap();
    });
    assert!(message.contains("data race"), "unexpected diagnostic: {message}");
}

#[test]
fn relaxed_load_of_release_store_race_is_caught() {
    let message = model_failure(|| {
        let slot = Arc::new(UnsafeCell::new(0u64));
        let ready = Arc::new(AtomicBool::new(false));
        let writer = {
            let slot = Arc::clone(&slot);
            let ready = Arc::clone(&ready);
            loom::thread::spawn(move || {
                // SAFETY: intentionally broken — the reader side uses
                // Relaxed, so this release edge is never acquired.
                slot.with_mut(|p| unsafe { *p = 42 });
                ready.store(true, Ordering::Release);
            })
        };
        if ready.load(Ordering::Relaxed) {
            // SAFETY: intentionally racy read; see above.
            slot.with(|p| unsafe { *p });
        }
        writer.join().unwrap();
    });
    assert!(message.contains("data race"), "unexpected diagnostic: {message}");
}

#[test]
fn rmw_modification_order_is_total() {
    loom::model(|| {
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                loom::thread::spawn(move || counter.fetch_add(1, Ordering::Relaxed))
            })
            .collect();
        let mut observed: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        observed.sort_unstable();
        // Each RMW observes a distinct previous value: no lost updates.
        assert_eq!(observed, vec![0, 1]);
        assert_eq!(counter.load(Ordering::Acquire), 2);
    });
}

#[test]
fn swap_claim_is_exactly_once() {
    loom::model(|| {
        let claimed = Arc::new(AtomicBool::new(false));
        let wins = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let claimed = Arc::clone(&claimed);
                let wins = Arc::clone(&wins);
                loom::thread::spawn(move || {
                    if !claimed.swap(true, Ordering::AcqRel) {
                        wins.fetch_add(1, Ordering::AcqRel);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(wins.load(Ordering::Acquire), 1);
    });
}

#[test]
fn mutex_increments_never_lose_updates() {
    loom::model(|| {
        let counter = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                loom::thread::spawn(move || {
                    let mut guard = counter.lock().unwrap();
                    *guard += 1;
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(*counter.lock().unwrap(), 2);
    });
}

#[test]
fn condvar_predicate_wait_is_never_lost() {
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let notifier = {
            let pair = Arc::clone(&pair);
            loom::thread::spawn(move || {
                let (flag, cv) = (&pair.0, &pair.1);
                *flag.lock().unwrap() = true;
                cv.notify_one();
            })
        };
        let (flag, cv) = (&pair.0, &pair.1);
        let mut guard = flag.lock().unwrap();
        while !*guard {
            guard = cv.wait(guard).unwrap();
        }
        drop(guard);
        notifier.join().unwrap();
    });
}

#[test]
fn abba_deadlock_is_detected() {
    let message = model_failure(|| {
        let locks = Arc::new((Mutex::new(()), Mutex::new(())));
        let forward = {
            let locks = Arc::clone(&locks);
            loom::thread::spawn(move || {
                let _a = locks.0.lock().unwrap();
                let _b = locks.1.lock().unwrap();
            })
        };
        let backward = {
            let locks = Arc::clone(&locks);
            loom::thread::spawn(move || {
                let _b = locks.1.lock().unwrap();
                let _a = locks.0.lock().unwrap();
            })
        };
        forward.join().unwrap();
        backward.join().unwrap();
    });
    assert!(message.contains("deadlock"), "unexpected diagnostic: {message}");
}

#[test]
fn thread_panic_is_reported_with_its_payload() {
    let message = model_failure(|| {
        let worker = loom::thread::spawn(|| panic!("boom from a model thread"));
        let _ = worker.join();
    });
    assert!(message.contains("boom from a model thread"), "unexpected diagnostic: {message}");
}

#[test]
fn unsynchronized_cell_writes_race() {
    let message = model_failure(|| {
        let slot = Arc::new(UnsafeCell::new(0u64));
        let writer = {
            let slot = Arc::clone(&slot);
            // SAFETY: intentionally racy concurrent writes; the test asserts
            // the checker reports them.
            loom::thread::spawn(move || slot.with_mut(|p| unsafe { *p = 1 }))
        };
        // SAFETY: intentionally racy; see above.
        slot.with_mut(|p| unsafe { *p = 2 });
        writer.join().unwrap();
    });
    assert!(message.contains("data race"), "unexpected diagnostic: {message}");
}

/// Scheduler-regression canaries: the pinned iteration counts are the size
/// of the bounded schedule space for two tiny fixed models. A scheduler or
/// bounding change that silently *shrinks* exploration would show up here as
/// a smaller count (and a larger one as more). Update deliberately, never to
/// make CI pass.
#[test]
fn exploration_canary_two_increments() {
    let stats = loom::Builder::default().check(|| {
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                loom::thread::spawn(move || {
                    counter.fetch_add(1, Ordering::AcqRel);
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Acquire), 2);
    });
    assert_eq!(stats.iterations, CANARY_TWO_INCREMENTS);
}

/// See `exploration_canary_two_increments`.
#[test]
fn exploration_canary_publication() {
    let stats = loom::Builder::default().check(|| {
        let slot = Arc::new(UnsafeCell::new(0u64));
        let ready = Arc::new(AtomicBool::new(false));
        let writer = {
            let slot = Arc::clone(&slot);
            let ready = Arc::clone(&ready);
            loom::thread::spawn(move || {
                // SAFETY: release-published below, acquire-guarded read.
                slot.with_mut(|p| unsafe { *p = 7 });
                ready.store(true, Ordering::Release);
            })
        };
        if ready.load(Ordering::Acquire) {
            // SAFETY: guarded by the acquire load above.
            slot.with(|p| unsafe { *p });
        }
        writer.join().unwrap();
    });
    assert_eq!(stats.iterations, CANARY_PUBLICATION);
}

/// Pinned schedule-space sizes for the canary models (see above), at the
/// default preemption bound of 2.
const CANARY_TWO_INCREMENTS: usize = 69;
const CANARY_PUBLICATION: usize = 11;

/// Outside a model every wrapper degrades to the std primitive.
#[test]
fn passthrough_outside_model() {
    let flag = AtomicBool::new(false);
    assert!(!flag.swap(true, Ordering::AcqRel));
    assert!(flag.load(Ordering::Acquire));
    let counter = AtomicUsize::new(3);
    assert_eq!(counter.fetch_add(2, Ordering::AcqRel), 3);
    counter.store(9, Ordering::Release);
    assert_eq!(counter.load(Ordering::Acquire), 9);

    let lock = Mutex::new(5u32);
    *lock.lock().unwrap() += 1;
    assert_eq!(*lock.lock().unwrap(), 6);

    let cell = UnsafeCell::new(1u8);
    // SAFETY: single-threaded passthrough access.
    cell.with_mut(|p| unsafe { *p = 2 });
    // SAFETY: single-threaded passthrough access.
    assert_eq!(cell.with(|p| unsafe { *p }), 2);
    assert_eq!(cell.into_inner(), 2);
}

/// `StdAtomicUsize` is deliberately usable alongside the instrumented types
/// (e.g. out-of-model bookkeeping inside a test); make sure the import isn't
/// shadowed by the loom preludes.
#[test]
fn std_atomics_coexist() {
    let plain = StdAtomicUsize::new(0);
    plain.fetch_add(1, StdOrdering::Relaxed);
    assert_eq!(plain.load(StdOrdering::Relaxed), 1);
}
