//! In-tree stand-in for the subset of the [`rand`](https://crates.io/crates/rand)
//! crate this workspace uses.
//!
//! The build environment has no access to a crate registry, so the workspace
//! vendors the tiny API surface it needs: [`rngs::StdRng`] (a xoshiro256++
//! generator seeded through SplitMix64), the [`Rng`] / [`SeedableRng`] traits
//! with `gen_range` / `gen_bool`, and [`seq::SliceRandom::shuffle`]
//! (Fisher–Yates).
//!
//! The streams are deterministic per seed but are **not** bit-compatible with
//! upstream `rand`; nothing in the workspace depends on the exact stream, only
//! on reproducibility from a seed.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (which must be non-empty).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(&mut || self.next_u64())
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability must be in [0, 1]");
        // 53 uniform mantissa bits, the same resolution f64 offers.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample using the supplied 64-bit source.
    fn sample_from(self, bits: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, bits: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                // The modulo bias over a 64-bit source is negligible for the
                // range sizes used in this workspace.
                self.start + (bits() % span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, bits: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let unit = (bits() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Random-number generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++ with
    /// SplitMix64 seed expansion.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            StdRng {
                state: [
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Uniformly permutes the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..1 << 40)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..1 << 40)).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..1 << 40)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-0.0f64..1.0);
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle is astronomically unlikely to be the identity");
    }
}
