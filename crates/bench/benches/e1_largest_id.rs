//! E1 — largest-ID on the cycle: simulator throughput for the workload whose
//! *results* (average Θ(log n) vs worst case Θ(n)) are printed by the
//! `experiments` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use avglocal::prelude::*;

fn bench_largest_id_random(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_largest_id_random_ids");
    group.sample_size(10);
    for &n in &[256usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let assignment = IdAssignment::Shuffled { seed: 1 };
            b.iter(|| {
                let profile = run_on_cycle(Problem::LargestId, n, &assignment).unwrap();
                black_box(profile.average())
            });
        });
    }
    group.finish();
}

fn bench_largest_id_identity(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_largest_id_identity_ids");
    group.sample_size(10);
    for &n in &[256usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let profile = run_on_cycle(Problem::LargestId, n, &IdAssignment::Identity).unwrap();
                black_box(profile.total())
            });
        });
    }
    group.finish();
}

fn bench_full_info_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_full_information_baseline");
    group.sample_size(10);
    for &n in &[64usize, 128, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let assignment = IdAssignment::Shuffled { seed: 1 };
            b.iter(|| {
                let profile = run_on_cycle(Problem::FullInfoLargestId, n, &assignment).unwrap();
                black_box(profile.max())
            });
        });
    }
    group.finish();
}

criterion_group!(e1, bench_largest_id_random, bench_largest_id_identity, bench_full_info_baseline);
criterion_main!(e1);
