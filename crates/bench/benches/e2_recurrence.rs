//! E2 — the worst-case total-radius recurrence `a(n)`, OEIS A000788, and the
//! adversarial searches that try to reach it on the simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use avglocal::analysis::{a000788, recurrence};
use avglocal::prelude::*;

fn bench_recurrence_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_recurrence_dynamic_program");
    for &n in &[256usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(recurrence::segment_worst_totals(n)));
        });
    }
    group.finish();
}

fn bench_a000788(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_a000788_closed_form");
    for &n in &[1u64 << 10, 1 << 20, 1 << 40] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(a000788::total_bit_count(n)));
        });
    }
    group.finish();
}

fn bench_exhaustive_adversary(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_exhaustive_adversary");
    group.sample_size(10);
    for &n in &[5usize, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let search = AdversarySearch::new(Problem::LargestId, Measure::Total);
                black_box(search.exhaustive(n).unwrap().objective)
            });
        });
    }
    group.finish();
}

fn bench_hill_climb_adversary(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_hill_climb_adversary");
    group.sample_size(10);
    for &n in &[32usize, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let search = AdversarySearch::new(Problem::LargestId, Measure::Total);
                black_box(search.hill_climb(n, 1, 30, 7).unwrap().objective)
            });
        });
    }
    group.finish();
}

criterion_group!(
    e2,
    bench_recurrence_dp,
    bench_a000788,
    bench_exhaustive_adversary,
    bench_hill_climb_adversary
);
criterion_main!(e2);
