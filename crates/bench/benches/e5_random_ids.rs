//! E5 — the Section 4 question: both measures under uniformly random
//! identifier permutations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use avglocal::prelude::*;

fn bench_random_permutation_study(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_random_permutation_study");
    group.sample_size(10);
    for &n in &[256usize, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let study = random_permutation_study(Problem::LargestId, n, 5, 1).unwrap();
                black_box(study.average_radius.mean)
            });
        });
    }
    group.finish();
}

fn bench_expected_radius_formula(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_expected_radius_formula");
    for &n in &[1usize << 12, 1 << 20] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(theory::largest_id_random_average(n)));
        });
    }
    group.finish();
}

fn bench_coloring_under_random_ids(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_coloring_random_ids");
    group.sample_size(10);
    for &n in &[1024usize, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let study = random_permutation_study(Problem::LandmarkColoring, n, 3, 2).unwrap();
                black_box(study.average_radius.mean)
            });
        });
    }
    group.finish();
}

criterion_group!(
    e5,
    bench_random_permutation_study,
    bench_expected_radius_formula,
    bench_coloring_under_random_ids
);
criterion_main!(e5);
