//! E4 — the Theorem 1 lower-bound machinery: the Section 3 slice construction
//! and the hill-climbing adversary for colouring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use avglocal::prelude::*;

fn bench_section3_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_section3_construction");
    group.sample_size(10);
    for &n in &[64usize, 128, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let assignment = section3_assignment(Problem::LandmarkColoring, n).unwrap();
                black_box(assignment)
            });
        });
    }
    group.finish();
}

fn bench_adversarial_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_adversarial_average");
    group.sample_size(10);
    for &n in &[128usize, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let assignment = section3_assignment(Problem::LandmarkColoring, n).unwrap();
            b.iter(|| {
                let profile = run_on_cycle(Problem::LandmarkColoring, n, &assignment).unwrap();
                black_box(profile.average())
            });
        });
    }
    group.finish();
}

fn bench_hill_climb_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_hill_climb_coloring");
    group.sample_size(10);
    group.bench_function("landmark_n128", |b| {
        b.iter(|| {
            let search = AdversarySearch::new(Problem::LandmarkColoring, Measure::NodeAveraged);
            black_box(search.hill_climb(128, 1, 20, 5).unwrap().objective)
        });
    });
    group.finish();
}

criterion_group!(
    e4,
    bench_section3_construction,
    bench_adversarial_evaluation,
    bench_hill_climb_coloring
);
criterion_main!(e4);
