//! E3 — Cole–Vishkin 3-colouring and the landmark colouring across ring
//! sizes: the upper-bound side of Theorem 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use avglocal::prelude::*;

fn bench_cole_vishkin(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_cole_vishkin_pipeline");
    group.sample_size(10);
    for &n in &[1024usize, 4096, 16384] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let assignment = IdAssignment::Shuffled { seed: 3 };
            b.iter(|| {
                let profile = run_on_cycle(Problem::ThreeColoring, n, &assignment).unwrap();
                black_box(profile.max())
            });
        });
    }
    group.finish();
}

fn bench_landmark_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_landmark_coloring");
    group.sample_size(10);
    for &n in &[1024usize, 4096, 16384] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let assignment = IdAssignment::Shuffled { seed: 3 };
            b.iter(|| {
                let profile = run_on_cycle(Problem::LandmarkColoring, n, &assignment).unwrap();
                black_box(profile.average())
            });
        });
    }
    group.finish();
}

fn bench_mis_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_mis_pipeline");
    group.sample_size(10);
    for &n in &[1024usize, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let assignment = IdAssignment::Shuffled { seed: 3 };
            b.iter(|| {
                let profile = run_on_cycle(Problem::Mis, n, &assignment).unwrap();
                black_box(profile.max())
            });
        });
    }
    group.finish();
}

criterion_group!(e3, bench_cole_vishkin, bench_landmark_coloring, bench_mis_pipeline);
criterion_main!(e3);
