//! E6 — the motivating applications: parallel replay scheduling and
//! dynamic-update cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use avglocal::prelude::*;

fn profile_for(n: usize) -> RadiusProfile {
    run_on_cycle(Problem::LargestId, n, &IdAssignment::Shuffled { seed: 31 })
        .expect("largest ID runs on every cycle")
}

fn bench_list_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_list_scheduling");
    for &workers in &[4usize, 16, 64] {
        let profile = profile_for(4096);
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| black_box(schedule_radii(&profile, w).makespan));
        });
    }
    group.finish();
}

fn bench_dynamic_update_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_dynamic_update_cost");
    for &n in &[1024usize, 4096] {
        let profile = profile_for(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(expected_invalidated_nodes(&profile)));
        });
    }
    group.finish();
}

fn bench_end_to_end_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_end_to_end_replay");
    group.sample_size(10);
    for &n in &[512usize, 2048] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let profile =
                    run_on_cycle(Problem::LargestId, n, &IdAssignment::Shuffled { seed: 7 })
                        .unwrap();
                black_box(schedule_radii(&profile, 16).makespan)
            });
        });
    }
    group.finish();
}

criterion_group!(e6, bench_list_scheduling, bench_dynamic_update_cost, bench_end_to_end_replay);
criterion_main!(e6);
