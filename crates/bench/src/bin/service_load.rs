//! Standalone load generator for the resilient radius-query service.
//!
//! Runs the sustained reader load of `avglocal_bench::load` at a few sizes
//! and prints queries/sec and latency quantiles for the service path next
//! to the bare frozen-session baseline, then the **batched** query path
//! next to the single-query path. The same numbers feed the `service` and
//! `service_batch` blocks of `BENCH_e1.json` (via `bench_e1`); this binary
//! is the dedicated knob-turning harness.
//!
//! ```text
//! cargo run --release -p avglocal-bench --bin service_load             # full sizes
//! cargo run --release -p avglocal-bench --bin service_load -- --quick  # smoke run
//! cargo run --release -p avglocal-bench --bin service_load -- --check  # gate overhead
//! ```
//!
//! `--check` exits non-zero if the service's per-query overhead exceeds its
//! 3x budget at any size, or if any two paths disagree on a total radius
//! (single, batched and raw must be bit-identical).

use std::env;
use std::process::ExitCode;

use avglocal_bench::load::{raw_probe_load, service_batch_load, service_load, LoadConfig};

/// Per-query overhead budget: the service path must sustain at least a
/// third of the raw probe loop's throughput.
const OVERHEAD_BUDGET: f64 = 3.0;

fn main() -> ExitCode {
    let quick = env::args().any(|a| a == "--quick");
    let check = env::args().any(|a| a == "--check");
    let configs: &[LoadConfig] = if quick {
        &[LoadConfig { nodes: 256, readers: 2, queries_per_reader: 256 }]
    } else {
        &[
            LoadConfig { nodes: 256, readers: 2, queries_per_reader: 1024 },
            LoadConfig { nodes: 1024, readers: 4, queries_per_reader: 1024 },
            LoadConfig { nodes: 4096, readers: 8, queries_per_reader: 512 },
        ]
    };

    println!("service load: sustained queries through the radius-query service vs raw probes");
    println!(
        "{:>6} {:>8} {:>9} {:>12} {:>12} {:>8} {:>8} {:>8} {:>9}",
        "nodes",
        "readers",
        "queries",
        "service qps",
        "raw qps",
        "p50 us",
        "p99 us",
        "max us",
        "overhead"
    );
    let mut failed = false;
    for config in configs {
        let service = service_load(config);
        let raw = raw_probe_load(config);
        let overhead = raw.qps / service.qps;
        if service.total_radius != raw.total_radius {
            eprintln!(
                "service answers diverged from raw probes at n={} ({} vs {})",
                config.nodes, service.total_radius, raw.total_radius
            );
            failed = true;
        }
        if overhead > OVERHEAD_BUDGET {
            failed = true;
        }
        println!(
            "{:>6} {:>8} {:>9} {:>12.0} {:>12.0} {:>8} {:>8} {:>8} {:>8.2}x",
            config.nodes,
            config.readers,
            service.completed,
            service.qps,
            raw.qps,
            service.p50_us,
            service.p99_us,
            service.max_us,
            overhead
        );
    }

    // The batched path: one reader splitting the same population into
    // whole-population batches, against one reader issuing single queries.
    // The speedup column is the batching win the `service_batch` BENCH
    // block gates (≥ 2x, on machines with real parallelism).
    println!();
    println!("batched load: query_batch sharding one reader's population across the pool");
    println!(
        "{:>6} {:>8} {:>9} {:>12} {:>12} {:>10} {:>10} {:>9}",
        "nodes", "batch", "entries", "batch qps", "single qps", "b p99 us", "s p99 us", "speedup"
    );
    for config in configs {
        let single_config = LoadConfig { readers: 1, ..*config };
        let batch = config.nodes;
        let batched = service_batch_load(&single_config, batch);
        let single = service_load(&single_config);
        if batched.total_radius != single.total_radius {
            eprintln!(
                "batched answers diverged from single queries at n={} ({} vs {})",
                config.nodes, batched.total_radius, single.total_radius
            );
            failed = true;
        }
        println!(
            "{:>6} {:>8} {:>9} {:>12.0} {:>12.0} {:>10} {:>10} {:>8.2}x",
            config.nodes,
            batch,
            batched.completed,
            batched.qps,
            single.qps,
            batched.p99_us,
            single.p99_us,
            batched.qps / single.qps
        );
    }

    if failed {
        eprintln!("service overhead exceeded its {OVERHEAD_BUDGET}x budget or answers diverged");
        if check {
            return ExitCode::FAILURE;
        }
        panic!("service load gates failed (run with --check for a non-panicking exit)");
    }
    ExitCode::SUCCESS
}
