//! E1 perf trajectory: wall time of the largest-ID radius sweep on the
//! adversarial identity assignment, incremental engine vs the from-scratch
//! baseline — plus the single-node probe loop (session reuse vs per-call
//! freeze), the **skewed scheduling block** (clustered adversarial
//! assignment, work-stealing vs static chunks vs the sequential reference),
//! the **pool block** (many small trials on the persistent pool vs the
//! spawn-per-call baseline), the **freeze block** (parallel vs serial
//! `Graph::freeze`, bit-identical by assertion) and the **hub block** (the
//! E9 hub adversary on the committed preferential-attachment family: sweep
//! wall time plus the measured edge/node detachment, gated at the
//! regular-family sandwich bound of 2), the **service block** (sustained
//! query load through the resilient radius-query service vs the bare frozen
//! session, recording qps and p99 latency, overhead gated at 3x) and the
//! **service_batch block** (one reader's whole population through
//! `query_batch`, sharded across the pool, vs the same population as single
//! queries; total radii bit-identical by assertion and the batched qps
//! gated at 2x the single-query qps on machines with real parallelism) and
//! the **sampling block** (the node-averaged measure from a seeded 10%
//! uniform sample vs the exact sweep — relative error gated at a 25%
//! budget, wall-time speedup gated at 5x with real cores — plus frontier
//! rows extending the curve an order of magnitude past the largest exact
//! sweep).
//!
//! Writes `BENCH_e1.json` (next to the current working directory) so the
//! repository keeps a perf trajectory across PRs, and exits non-zero if any
//! two engines or schedules disagree on a radius or output.
//!
//! ```text
//! cargo run --release -p avglocal-bench --bin bench_e1                # full sizes
//! cargo run --release -p avglocal-bench --bin bench_e1 -- --quick     # smoke run
//! cargo run --release -p avglocal-bench --bin bench_e1 -- --quick --check  # CI gate
//! AVG_LOCAL_THREADS=4 ./bench.sh                                      # pinned pool
//! ```
//!
//! `--check` evaluates the full regression-gate table (one speedup gate per
//! recorded block) and exits non-zero if any gate regresses below its
//! threshold — this is the step CI runs on every push. Gates that only
//! develop their full separation with real cores underneath the pool
//! (skewed scheduling, freeze speedup) use their full threshold on
//! `>= 4`-core machines in full mode and a relaxed *sanity* threshold
//! elsewhere; the pool-reuse gate degrades only on a 1-participant pool
//! (where both paths run inline), since its win comes from reusing workers,
//! not from real parallelism. Every block is gated on every run.
//!
//! The worker-pool size is recorded in every block: scheduling comparisons
//! only show wall-clock separation when the pool has real cores underneath
//! (`available_parallelism` is recorded too, so a 1-core container's ~1×
//! ratios are self-explanatory).

use std::env;
use std::fmt::Write as _;
use std::fs;
use std::process::ExitCode;
use std::time::Instant;

use avglocal::algorithms::{KnowTheLeader, LargestId};
use avglocal::analysis::recurrence::clustered_adversarial_arrangement;
use avglocal::graph::CsrGraph;
use avglocal::prelude::*;
use avglocal::runtime::{
    BallExecution, BallExecutor, FrozenExecutor, Knowledge, NodeBatchOptions, Scheduling,
};
use avglocal_bench::load::{raw_probe_load, service_batch_load, service_load, LoadConfig};

/// Repetitions per measurement; the minimum is reported.
const REPS: usize = 3;

struct Row {
    n: usize,
    total_radius: usize,
    incremental_ms: f64,
    baseline_ms: f64,
}

struct ProbeRow {
    n: usize,
    session_ms: f64,
    refreeze_ms: f64,
}

struct SkewRow {
    n: usize,
    total_radius: usize,
    sequential_ms: f64,
    static_ms: f64,
    stealing_ms: f64,
}

struct PoolRow {
    n: usize,
    trials: usize,
    pool_ms: f64,
    spawn_ms: f64,
}

struct FreezeRow {
    n: usize,
    edges: usize,
    serial_ms: f64,
    parallel_ms: f64,
}

struct HubRow {
    n: usize,
    edges: usize,
    hub_degree: usize,
    edge_node_ratio: f64,
    assignment_ms: f64,
    sweep_ms: f64,
}

struct SnapshotRow {
    n: usize,
    edges: usize,
    bytes: usize,
    bytes_per_edge: f64,
    encode_ms: f64,
    decode_ms: f64,
}

struct SamplingRow {
    n: usize,
    budget: usize,
    exact: f64,
    estimate: f64,
    half_width: f64,
    rel_error: f64,
    exact_ms: f64,
    sampled_ms: f64,
}

struct FrontierRow {
    n: usize,
    budget: usize,
    estimate: f64,
    half_width: f64,
    sampled_ms: f64,
}

/// One regression gate of the `--check` suite: the measured speedup of a
/// recorded block must stay at or above its threshold. Gates whose full
/// separation needs real cores underneath the pool fall back to a relaxed
/// *sanity* threshold elsewhere (quick mode, undersized machines), so every
/// recorded block is gated on every run — a pathological regression can
/// never hide behind a SKIP.
struct Gate {
    name: &'static str,
    speedup: f64,
    threshold: f64,
    sanity: bool,
}

impl Gate {
    /// A gate that always applies at its full threshold.
    fn full(name: &'static str, speedup: f64, threshold: f64) -> Gate {
        Gate { name, speedup, threshold, sanity: false }
    }

    /// A gate with its full threshold when `strong` holds and the relaxed
    /// `sanity_threshold` otherwise.
    fn scaled(
        name: &'static str,
        speedup: f64,
        strong: bool,
        full_threshold: f64,
        sanity_threshold: f64,
    ) -> Gate {
        Gate {
            name,
            speedup,
            threshold: if strong { full_threshold } else { sanity_threshold },
            sanity: !strong,
        }
    }
}

/// The scheduler-adversarial identifier assignment (see
/// [`clustered_adversarial_arrangement`]): a worst-case `a(p)` block on one
/// quarter of the ring, so a static contiguous partition hands one thread
/// `Θ(n log n)` work while the others get `Θ(n)`.
fn clustered_adversarial(n: usize) -> IdAssignment {
    let ids = clustered_adversarial_arrangement(n).iter().map(|&id| id as usize).collect();
    IdAssignment::from_vec(ids).expect("clustered adversarial ids form a permutation")
}

/// Times one pass of `probe` over every node of `graph`; the minimum over
/// [`REPS`] passes is reported. Returns `(total radius, best ms)`.
fn measure_probe_loop(graph: &Graph, mut probe: impl FnMut(NodeId) -> usize) -> (usize, f64) {
    let mut best = f64::INFINITY;
    let mut total = 0usize;
    for _ in 0..REPS {
        let start = Instant::now();
        total = graph.nodes().map(&mut probe).sum();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    (total, best)
}

fn measure(executor: &BallExecutor, graph: &Graph) -> (BallExecution<bool>, f64) {
    let mut best = f64::INFINITY;
    let mut run = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let result = executor
            .run(graph, &LargestId, Knowledge::none())
            .expect("largest-ID terminates on every cycle");
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        run = Some(result);
    }
    (run.expect("REPS >= 1"), best)
}

/// Times `body` [`REPS`] times and returns `(last result, best ms)`.
fn measure_ms<T>(mut body: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..REPS {
        let start = Instant::now();
        result = Some(body());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    (result.expect("REPS >= 1"), best)
}

fn main() -> ExitCode {
    let quick = env::args().any(|a| a == "--quick");
    let check = env::args().any(|a| a == "--check");
    let sizes: &[usize] = if quick { &[256, 1024] } else { &[256, 1024, 4096] };
    let threads = rayon::current_num_threads();
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    println!("pool: {threads} thread(s), machine: {cores} core(s)\n");

    println!("E1 largest-ID on the identity cycle: incremental vs from-scratch baseline");
    println!(
        "{:>6} {:>14} {:>16} {:>13} {:>9}",
        "n", "total radius", "incremental ms", "baseline ms", "speedup"
    );

    let mut rows = Vec::new();
    for &n in sizes {
        let graph = cycle_with_assignment(n, &IdAssignment::Identity)
            .expect("cycles of the benchmarked sizes are valid");
        let (fast, incremental_ms) = measure(&BallExecutor::new(), &graph);
        let (slow, baseline_ms) = measure(&BallExecutor::from_scratch_baseline(), &graph);
        assert_eq!(fast.radii(), slow.radii(), "engines disagree on radii at n={n}");
        assert_eq!(fast.outputs(), slow.outputs(), "engines disagree on outputs at n={n}");
        println!(
            "{:>6} {:>14} {:>16.3} {:>13.3} {:>8.1}x",
            n,
            fast.total_radius(),
            incremental_ms,
            baseline_ms,
            baseline_ms / incremental_ms
        );
        rows.push(Row { n, total_radius: fast.total_radius(), incremental_ms, baseline_ms });
    }

    // The run_node datapoint: probe every node individually, reusing one
    // frozen session vs freezing a fresh snapshot per call.
    println!("\nE1 run_node probes: frozen session reuse vs per-call refreeze");
    println!("{:>6} {:>12} {:>13} {:>9}", "n", "session ms", "refreeze ms", "speedup");
    let mut probe_rows = Vec::new();
    for &n in sizes {
        let graph = cycle_with_assignment(n, &IdAssignment::Identity)
            .expect("cycles of the benchmarked sizes are valid");
        let session = FrozenExecutor::new(&graph);
        let (session_total, session_ms) = measure_probe_loop(&graph, |v| {
            session.run_node(v, &LargestId, Knowledge::none()).expect("largest-ID terminates").1
        });
        let per_call = BallExecutor::new();
        let (refreeze_total, refreeze_ms) = measure_probe_loop(&graph, |v| {
            per_call
                .run_node(&graph, v, &LargestId, Knowledge::none())
                .expect("largest-ID terminates")
                .1
        });
        assert_eq!(session_total, refreeze_total, "probe engines disagree at n={n}");
        println!(
            "{:>6} {:>12.3} {:>13.3} {:>8.1}x",
            n,
            session_ms,
            refreeze_ms,
            refreeze_ms / session_ms
        );
        probe_rows.push(ProbeRow { n, session_ms, refreeze_ms });
    }

    // The skewed scheduling datapoint: clustered adversarial assignment,
    // dynamic work-stealing chunks vs the static contiguous partition vs the
    // sequential reference — all three must agree bit for bit.
    let skew_sizes: &[usize] = if quick { &[256, 1024] } else { &[1024, 4096, 16384] };
    println!("\nE1 skewed scheduling: clustered adversarial assignment, {threads} thread(s)");
    println!(
        "{:>6} {:>14} {:>14} {:>11} {:>13} {:>14}",
        "n", "total radius", "sequential ms", "static ms", "stealing ms", "static/steal"
    );
    let mut skew_rows = Vec::new();
    for &n in skew_sizes {
        let graph = cycle_with_assignment(n, &clustered_adversarial(n))
            .expect("cycles of the benchmarked sizes are valid");
        let csr = graph.freeze();
        let sequential_exec = BallExecutor::new();
        let (sequential, sequential_ms) = measure_ms(|| {
            sequential_exec
                .run_frozen_sequential(&csr, &LargestId, Knowledge::none())
                .expect("largest-ID terminates")
        });
        let static_exec = BallExecutor::new().with_scheduling(Scheduling::StaticChunks);
        let (static_run, static_ms) = measure_ms(|| {
            static_exec.run_frozen(&csr, &LargestId, Knowledge::none()).expect("terminates")
        });
        let stealing_exec = BallExecutor::new().with_scheduling(Scheduling::WorkStealing);
        let (stealing_run, stealing_ms) = measure_ms(|| {
            stealing_exec.run_frozen(&csr, &LargestId, Knowledge::none()).expect("terminates")
        });
        assert_eq!(stealing_run.radii(), sequential.radii(), "stealing diverged at n={n}");
        assert_eq!(stealing_run.outputs(), sequential.outputs(), "stealing diverged at n={n}");
        assert_eq!(static_run.radii(), sequential.radii(), "static diverged at n={n}");
        assert_eq!(static_run.outputs(), sequential.outputs(), "static diverged at n={n}");
        println!(
            "{:>6} {:>14} {:>14.3} {:>11.3} {:>13.3} {:>13.2}x",
            n,
            sequential.total_radius(),
            sequential_ms,
            static_ms,
            stealing_ms,
            static_ms / stealing_ms
        );
        skew_rows.push(SkewRow {
            n,
            total_radius: sequential.total_radius(),
            sequential_ms,
            static_ms,
            stealing_ms,
        });
    }

    // The pool datapoint: many small full runs — the persistent pool reuses
    // its workers across calls, the baseline spawns scoped threads per call.
    let (pool_n, pool_trials) = if quick { (128, 64) } else { (256, 512) };
    println!("\nE1 pool reuse: {pool_trials} small runs at n={pool_n}, pool vs spawn-per-call");
    let pool_graph = cycle_with_assignment(pool_n, &IdAssignment::Identity)
        .expect("cycles of the benchmarked sizes are valid");
    let pool_csr = pool_graph.freeze();
    let ws_exec = BallExecutor::new();
    let (pool_total, pool_ms) = measure_ms(|| {
        (0..pool_trials)
            .map(|_| {
                ws_exec
                    .run_frozen(&pool_csr, &LargestId, Knowledge::none())
                    .expect("terminates")
                    .total_radius()
            })
            .sum::<usize>()
    });
    let static_exec = BallExecutor::new().with_scheduling(Scheduling::StaticChunks);
    let (spawn_total, spawn_ms) = measure_ms(|| {
        (0..pool_trials)
            .map(|_| {
                static_exec
                    .run_frozen(&pool_csr, &LargestId, Knowledge::none())
                    .expect("terminates")
                    .total_radius()
            })
            .sum::<usize>()
    });
    assert_eq!(pool_total, spawn_total, "pool and spawn paths disagree on total radius");
    println!(
        "{:>6} {:>8} {:>10.3} {:>10.3} {:>8.1}x",
        pool_n,
        pool_trials,
        pool_ms,
        spawn_ms,
        spawn_ms / pool_ms
    );
    let pool_row = PoolRow { n: pool_n, trials: pool_trials, pool_ms, spawn_ms };

    // The freeze datapoint: parallel vs serial `Graph::freeze` (degree
    // count, offset prefix sum, adjacency scatter and the connected-
    // components labelling pass) — the last O(n + m) serial step in front of
    // every parallel sweep. The two snapshots must be bit-identical (CSR
    // arrays, identifiers and component labels).
    let freeze_sizes: &[usize] = if quick { &[1 << 14, 1 << 16] } else { &[1 << 16, 1 << 18] };
    println!("\nE1 freeze: parallel vs serial Graph::freeze, {threads} thread(s)");
    println!(
        "{:>8} {:>8} {:>11} {:>13} {:>9}",
        "n", "edges", "serial ms", "parallel ms", "speedup"
    );
    let mut freeze_rows = Vec::new();
    for &n in freeze_sizes {
        let graph = cycle_with_assignment(n, &IdAssignment::Identity)
            .expect("cycles of the benchmarked sizes are valid");
        let (serial, serial_ms) = measure_ms(|| graph.freeze_serial());
        let (parallel, parallel_ms) = measure_ms(|| graph.freeze_parallel());
        assert_eq!(serial, parallel, "parallel freeze diverged from serial at n={n}");
        println!(
            "{:>8} {:>8} {:>11.3} {:>13.3} {:>8.2}x",
            n,
            serial.edge_count(),
            serial_ms,
            parallel_ms,
            serial_ms / parallel_ms
        );
        freeze_rows.push(FreezeRow { n, edges: serial.edge_count(), serial_ms, parallel_ms });
    }

    // The snapshot datapoint: the versioned binary codec around `CsrGraph`
    // (`to_bytes` / validating `from_bytes`). Decoding re-establishes every
    // structural invariant from untrusted bytes (checksum, offsets, symmetry,
    // component relabelling), so its throughput is the price of the trust
    // boundary; the bytes-per-edge density is a deterministic property of the
    // format and is gated exactly.
    println!("\nE1 snapshot codec: encode vs validating decode, cycle instances");
    println!(
        "{:>8} {:>8} {:>10} {:>11} {:>11} {:>11} {:>12}",
        "n", "edges", "bytes", "bytes/edge", "encode ms", "decode ms", "decode MB/s"
    );
    let mut snapshot_rows = Vec::new();
    for &n in freeze_sizes {
        let graph = cycle_with_assignment(n, &IdAssignment::Identity)
            .expect("cycles of the benchmarked sizes are valid");
        let csr = graph.freeze();
        let (bytes, encode_ms) = measure_ms(|| csr.to_bytes());
        let (decoded, decode_ms) =
            measure_ms(|| CsrGraph::from_bytes(&bytes).expect("own snapshots decode cleanly"));
        assert_eq!(decoded, csr, "snapshot round trip diverged at n={n}");
        assert_eq!(decoded.components(), csr.components(), "labels diverged at n={n}");
        let bytes_per_edge = bytes.len() as f64 / csr.edge_count() as f64;
        println!(
            "{:>8} {:>8} {:>10} {:>11.1} {:>11.3} {:>11.3} {:>12.1}",
            n,
            csr.edge_count(),
            bytes.len(),
            bytes_per_edge,
            encode_ms,
            decode_ms,
            bytes.len() as f64 / decode_ms / 1e3
        );
        snapshot_rows.push(SnapshotRow {
            n,
            edges: csr.edge_count(),
            bytes: bytes.len(),
            bytes_per_edge,
            encode_ms,
            decode_ms,
        });
    }

    // The hub datapoint: the E9 acceptance configuration — the hub
    // adversary on the committed preferential-attachment tree — timed
    // through the sweep harness, with the measured edge/node detachment
    // recorded and gated (a connected family must escape the regular-family
    // sandwich bound of 2). Everything here is deterministic (fixed family
    // seed, fixed assignment), so the ratio gate is exact, not statistical.
    let hub_sizes: &[usize] = if quick { &[64] } else { &[64, 128, 256] };
    let hub_topology = Topology::PreferentialAttachment { m: 1, seed: 13 };
    println!("\nE1 hub detachment: hub adversary on {hub_topology}, edge/node ratio gate >= 2");
    println!(
        "{:>6} {:>8} {:>11} {:>11} {:>14} {:>10}",
        "n", "edges", "hub degree", "edge/node", "assignment ms", "sweep ms"
    );
    let mut hub_rows = Vec::new();
    for &n in hub_sizes {
        let base = hub_topology.build(n).expect("the committed hub family stays connected");
        let (assignment, assignment_ms) = measure_ms(|| {
            hub_adversarial_assignment(&base).expect("the hub adversary works on non-empty graphs")
        });
        let (row, sweep_ms) = measure_ms(|| {
            let result = Sweep::on(Problem::LargestId, hub_topology.clone(), vec![n])
                .with_policy(AssignmentPolicy::Fixed(assignment.clone()))
                .run()
                .expect("largest-ID sweeps run on connected hub families");
            let mut rows = result.rows;
            rows.remove(0)
        });
        let hub_degree = base.max_degree().expect("hub instances are non-empty");
        let edge_node_ratio = row.edge_averaged / row.average;
        println!(
            "{:>6} {:>8} {:>11} {:>10.2}x {:>14.3} {:>10.3}",
            n,
            base.edge_count(),
            hub_degree,
            edge_node_ratio,
            assignment_ms,
            sweep_ms
        );
        hub_rows.push(HubRow {
            n,
            edges: base.edge_count(),
            hub_degree,
            edge_node_ratio,
            assignment_ms,
            sweep_ms,
        });
    }

    // The service datapoint: the same reader scripts driven once through the
    // resilient radius-query service (admission, deadline bookkeeping, epoch
    // pinning on every query) and once straight on the shared frozen session.
    // Total radii must agree bit for bit; the qps ratio is the service
    // layer's per-query overhead and is gated at a 3x budget.
    let load_config = if quick {
        LoadConfig { nodes: 256, readers: 2, queries_per_reader: 256 }
    } else {
        LoadConfig { nodes: 1024, readers: 4, queries_per_reader: 1024 }
    };
    println!(
        "\nE1 service load: {} readers x {} queries on an n={} generation",
        load_config.readers, load_config.queries_per_reader, load_config.nodes
    );
    println!(
        "{:>12} {:>12} {:>10} {:>10} {:>10} {:>9}",
        "service qps", "raw qps", "p50 us", "p99 us", "max us", "overhead"
    );
    let mut service_run = service_load(&load_config);
    let mut raw_run = raw_probe_load(&load_config);
    for _ in 1..REPS {
        let service_again = service_load(&load_config);
        if service_again.qps > service_run.qps {
            service_run = service_again;
        }
        let raw_again = raw_probe_load(&load_config);
        if raw_again.qps > raw_run.qps {
            raw_run = raw_again;
        }
    }
    assert_eq!(
        service_run.total_radius, raw_run.total_radius,
        "service answers diverged from raw probes"
    );
    let service_overhead = raw_run.qps / service_run.qps;
    println!(
        "{:>12.0} {:>12.0} {:>10} {:>10} {:>10} {:>8.2}x",
        service_run.qps,
        raw_run.qps,
        service_run.p50_us,
        service_run.p99_us,
        service_run.max_us,
        service_overhead
    );

    // The batched datapoint: one reader's whole population issued as
    // `query_batch` requests (one admission slot and one generation pin per
    // batch, node set sharded across the persistent pool) against the same
    // population as sequential single queries. Total radii must agree bit
    // for bit; the qps ratio is the batching win, gated at 2x wherever the
    // pool has real cores underneath.
    let batch_config = if quick {
        LoadConfig { nodes: 256, readers: 1, queries_per_reader: 256 }
    } else {
        LoadConfig { nodes: 4096, readers: 1, queries_per_reader: 4096 }
    };
    let batch_size = batch_config.nodes;
    println!(
        "\nE1 batched load: 1 reader x {} queries in batches of {} on an n={} generation",
        batch_config.queries_per_reader, batch_size, batch_config.nodes
    );
    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>9}",
        "batch qps", "single qps", "batch p99 us", "single p99 us", "speedup"
    );
    let mut batch_run = service_batch_load(&batch_config, batch_size);
    let mut single_run = service_load(&batch_config);
    for _ in 1..REPS {
        let batch_again = service_batch_load(&batch_config, batch_size);
        if batch_again.qps > batch_run.qps {
            batch_run = batch_again;
        }
        let single_again = service_load(&batch_config);
        if single_again.qps > single_run.qps {
            single_run = single_again;
        }
    }
    assert_eq!(
        batch_run.total_radius, single_run.total_radius,
        "batched answers diverged from single queries"
    );
    let batch_speedup = batch_run.qps / single_run.qps;
    println!(
        "{:>12.0} {:>12.0} {:>12} {:>13} {:>8.2}x",
        batch_run.qps, single_run.qps, batch_run.p99_us, single_run.p99_us, batch_speedup
    );

    // The sampling datapoint: the node-averaged measure estimated from a 10%
    // uniform sample (one drawn set, one sharded probe pass) against the
    // exact full sweep on the same instance. On the common sizes both run,
    // recording the estimate's relative error and the wall-time speedup;
    // past the exact frontier only the sampled estimator runs, extending the
    // E7-style curve at least an order of magnitude beyond the largest exact
    // sweep. The family is the shuffled grid under `KnowTheLeader` — leader
    // distances spread over many values, so a 10% sample is genuinely
    // informative (ring `LargestId` radii hide half the mean in one extreme
    // node, which no 10% sample can estimate — that regime belongs to the
    // stratified MSE test, not a relative-error gate). Draws are seeded, so
    // every recorded value is deterministic.
    let sampling_sizes: &[usize] = if quick { &[256, 1024] } else { &[256, 1024, 4096] };
    let frontier_sizes: &[usize] = if quick { &[4096, 16384] } else { &[16384, 65536] };
    println!("\nE1 sampling: 10% uniform sample vs exact know-the-leader sweep, shuffled grid");
    println!(
        "{:>6} {:>7} {:>10} {:>10} {:>10} {:>10} {:>11} {:>9}",
        "n", "budget", "exact", "estimate", "rel err", "exact ms", "sampled ms", "speedup"
    );
    let sampled_estimate = |csr: &CsrGraph, session: &FrozenExecutor, plan: SamplePlan| {
        let sample = plan.draw(csr, plan.seed_for(42, 0));
        let probed = Problem::KnowTheLeader
            .probe_radii(session, sample.nodes(), &NodeBatchOptions::new())
            .expect("know-the-leader terminates on every probed node");
        sample.estimate(&probed).node_averaged.expect("uniform plans estimate the node average")
    };
    let sampling_graph = |n: usize| {
        let mut graph = Topology::Grid.build(n).expect("grids of the benchmarked sizes are valid");
        IdAssignment::Shuffled { seed: 5 }.apply(&mut graph).expect("shuffles are permutations");
        graph.freeze()
    };
    let mut sampling_rows = Vec::new();
    for &n in sampling_sizes {
        let csr = sampling_graph(n);
        let session = FrozenExecutor::from_csr(csr.clone());
        let exec = BallExecutor::new();
        let (exact_run, exact_ms) = measure_ms(|| {
            exec.run_frozen(&csr, &KnowTheLeader, Knowledge::none()).expect("terminates")
        });
        let exact =
            MeasureSet::of_csr(&RadiusProfile::new(exact_run.radii().to_vec()), &csr).node_averaged;
        let plan = SamplePlan::Uniform { budget: n / 10 };
        let (estimate, sampled_ms) = measure_ms(|| sampled_estimate(&csr, &session, plan));
        let rel_error = (estimate.value - exact).abs() / exact;
        println!(
            "{:>6} {:>7} {:>10.3} {:>10.3} {:>10.4} {:>10.3} {:>11.3} {:>8.1}x",
            n,
            plan.budget(),
            exact,
            estimate.value,
            rel_error,
            exact_ms,
            sampled_ms,
            exact_ms / sampled_ms
        );
        sampling_rows.push(SamplingRow {
            n,
            budget: plan.budget(),
            exact,
            estimate: estimate.value,
            half_width: estimate.half_width_95,
            rel_error,
            exact_ms,
            sampled_ms,
        });
    }
    println!("  -- past the exact frontier (sampled only) --");
    let mut frontier_rows = Vec::new();
    for &n in frontier_sizes {
        let csr = sampling_graph(n);
        let session = FrozenExecutor::from_csr(csr.clone());
        let plan = SamplePlan::Uniform { budget: n / 10 };
        let (estimate, sampled_ms) = measure_ms(|| sampled_estimate(&csr, &session, plan));
        println!(
            "{:>6} {:>7} {:>10} {:>10.3} {:>10} {:>10} {:>11.3}",
            n,
            plan.budget(),
            "-",
            estimate.value,
            "-",
            "-",
            sampled_ms
        );
        frontier_rows.push(FrontierRow {
            n,
            budget: plan.budget(),
            estimate: estimate.value,
            half_width: estimate.half_width_95,
            sampled_ms,
        });
    }

    let mut json = String::from("{\n  \"experiment\": \"e1_largest_id_identity\",\n");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"available_parallelism\": {cores},");
    json.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"total_radius\": {}, \"incremental_ms\": {:.3}, \"baseline_ms\": {:.3}, \"speedup\": {:.1}}}{}",
            row.n,
            row.total_radius,
            row.incremental_ms,
            row.baseline_ms,
            row.baseline_ms / row.incremental_ms,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"run_node\": {\n");
    json.push_str(
        "    \"description\": \"per-node probes: FrozenExecutor session reuse vs \
         BallExecutor::run_node freezing per call\",\n",
    );
    let _ = writeln!(json, "    \"threads\": {threads},");
    json.push_str("    \"rows\": [\n");
    for (i, row) in probe_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"n\": {}, \"session_ms\": {:.3}, \"refreeze_ms\": {:.3}, \"speedup\": {:.1}}}{}",
            row.n,
            row.session_ms,
            row.refreeze_ms,
            row.refreeze_ms / row.session_ms,
            if i + 1 == probe_rows.len() { "" } else { "," }
        );
    }
    json.push_str("    ]\n  },\n  \"skewed\": {\n");
    json.push_str(
        "    \"description\": \"clustered adversarial largest-ID assignment (worst-case \
         a(p) block on a quarter of the ring): dynamic work-stealing chunks vs the static \
         contiguous partition vs the sequential reference; outputs bit-identical across \
         all three\",\n",
    );
    let _ = writeln!(json, "    \"threads\": {threads},");
    json.push_str("    \"rows\": [\n");
    for (i, row) in skew_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"n\": {}, \"total_radius\": {}, \"sequential_ms\": {:.3}, \"static_ms\": {:.3}, \"stealing_ms\": {:.3}, \"static_over_stealing\": {:.2}}}{}",
            row.n,
            row.total_radius,
            row.sequential_ms,
            row.static_ms,
            row.stealing_ms,
            row.static_ms / row.stealing_ms,
            if i + 1 == skew_rows.len() { "" } else { "," }
        );
    }
    json.push_str("    ]\n  },\n  \"pool\": {\n");
    json.push_str(
        "    \"description\": \"many small full runs: persistent worker pool (reused across \
         calls) vs the spawn-per-call static baseline of the old shim\",\n",
    );
    let _ = writeln!(json, "    \"threads\": {threads},");
    let _ = writeln!(
        json,
        "    \"rows\": [\n      {{\"n\": {}, \"trials\": {}, \"pool_ms\": {:.3}, \"spawn_ms\": {:.3}, \"speedup\": {:.1}}}\n    ]",
        pool_row.n,
        pool_row.trials,
        pool_row.pool_ms,
        pool_row.spawn_ms,
        pool_row.spawn_ms / pool_row.pool_ms
    );
    json.push_str("  },\n  \"freeze\": {\n");
    json.push_str(
        "    \"description\": \"Graph::freeze parallel vs serial: degree count, offset prefix \
         sum, adjacency scatter and connected-components labelling; snapshots bit-identical \
         by assertion\",\n",
    );
    let _ = writeln!(json, "    \"threads\": {threads},");
    json.push_str("    \"rows\": [\n");
    for (i, row) in freeze_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"n\": {}, \"edges\": {}, \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \"speedup\": {:.2}}}{}",
            row.n,
            row.edges,
            row.serial_ms,
            row.parallel_ms,
            row.serial_ms / row.parallel_ms,
            if i + 1 == freeze_rows.len() { "" } else { "," }
        );
    }
    json.push_str("    ]\n  },\n  \"snapshot\": {\n");
    json.push_str(
        "    \"description\": \"versioned binary CsrGraph snapshots: to_bytes vs the validating \
         from_bytes (checksum, offsets, endpoint bounds, symmetry, canonical component \
         relabelling re-established from untrusted bytes); round trips bit-identical by \
         assertion\",\n",
    );
    let _ = writeln!(json, "    \"threads\": {threads},");
    json.push_str("    \"rows\": [\n");
    for (i, row) in snapshot_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"n\": {}, \"edges\": {}, \"bytes\": {}, \"bytes_per_edge\": {:.1}, \"encode_ms\": {:.3}, \"decode_ms\": {:.3}, \"decode_mb_s\": {:.1}}}{}",
            row.n,
            row.edges,
            row.bytes,
            row.bytes_per_edge,
            row.encode_ms,
            row.decode_ms,
            row.bytes as f64 / row.decode_ms / 1e3,
            if i + 1 == snapshot_rows.len() { "" } else { "," }
        );
    }
    json.push_str("    ]\n  },\n  \"hub\": {\n");
    json.push_str(
        "    \"description\": \"E9 hub detachment: the hub adversary on the committed \
         preferential-attachment tree (m=1, seed=13) through the sweep harness; \
         edge_node_ratio is the edge-averaged/node-averaged detachment of the connected \
         instance and is gated at >= 2 (the regular-family sandwich bound)\",\n",
    );
    let _ = writeln!(json, "    \"threads\": {threads},");
    json.push_str("    \"rows\": [\n");
    for (i, row) in hub_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"n\": {}, \"edges\": {}, \"hub_degree\": {}, \"edge_node_ratio\": {:.2}, \"assignment_ms\": {:.3}, \"sweep_ms\": {:.3}}}{}",
            row.n,
            row.edges,
            row.hub_degree,
            row.edge_node_ratio,
            row.assignment_ms,
            row.sweep_ms,
            if i + 1 == hub_rows.len() { "" } else { "," }
        );
    }
    json.push_str("    ]\n  },\n  \"service\": {\n");
    json.push_str(
        "    \"description\": \"sustained query load through the resilient radius-query \
         service (admission, deadlines, epoch pinning) vs the same reader scripts on the \
         bare frozen session; total radii bit-identical by assertion, overhead gated at a \
         3x per-query budget\",\n",
    );
    let _ = writeln!(json, "    \"threads\": {threads},");
    let _ = writeln!(
        json,
        "    \"rows\": [\n      {{\"nodes\": {}, \"readers\": {}, \"queries\": {}, \"service_qps\": {:.0}, \"raw_qps\": {:.0}, \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}, \"overhead\": {:.2}}}\n    ]",
        load_config.nodes,
        load_config.readers,
        service_run.completed,
        service_run.qps,
        raw_run.qps,
        service_run.p50_us,
        service_run.p99_us,
        service_run.max_us,
        service_overhead
    );
    json.push_str("  },\n  \"service_batch\": {\n");
    json.push_str(
        "    \"description\": \"batched query path: one reader's whole population through \
         query_batch (one admission slot and one generation pin per batch, node set sharded \
         across the persistent pool) vs the same population as sequential single queries; \
         total radii bit-identical by assertion, batched qps gated at 2x the single-query \
         qps on machines with real parallelism\",\n",
    );
    let _ = writeln!(json, "    \"threads\": {threads},");
    let _ = writeln!(
        json,
        "    \"rows\": [\n      {{\"nodes\": {}, \"batch_size\": {}, \"entries\": {}, \"batch_qps\": {:.0}, \"single_qps\": {:.0}, \"batch_p99_us\": {}, \"single_p99_us\": {}, \"speedup\": {:.2}}}\n    ]",
        batch_config.nodes,
        batch_size,
        batch_run.completed,
        batch_run.qps,
        single_run.qps,
        batch_run.p99_us,
        single_run.p99_us,
        batch_speedup
    );
    json.push_str("  },\n  \"sampling\": {\n");
    json.push_str(
        "    \"description\": \"sampled estimation: the node-averaged know-the-leader \
         measure from a 10% uniform sample (seeded draw, one sharded probe pass) vs the \
         exact full sweep on the shuffled grid; rel_error is gated at a 25% budget and \
         the sampled path must beat the exact sweep 5x wherever the pool has real cores \
         underneath; frontier rows extend the curve an order of magnitude past the \
         largest exact sweep\",\n",
    );
    let _ = writeln!(json, "    \"threads\": {threads},");
    json.push_str("    \"rows\": [\n");
    for (i, row) in sampling_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"n\": {}, \"budget\": {}, \"exact\": {:.6}, \"estimate\": {:.6}, \"half_width_95\": {:.6}, \"rel_error\": {:.6}, \"exact_ms\": {:.3}, \"sampled_ms\": {:.3}, \"speedup\": {:.1}}}{}",
            row.n,
            row.budget,
            row.exact,
            row.estimate,
            row.half_width,
            row.rel_error,
            row.exact_ms,
            row.sampled_ms,
            row.exact_ms / row.sampled_ms,
            if i + 1 == sampling_rows.len() { "" } else { "," }
        );
    }
    json.push_str("    ],\n    \"frontier\": [\n");
    for (i, row) in frontier_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"n\": {}, \"budget\": {}, \"estimate\": {:.6}, \"half_width_95\": {:.6}, \"sampled_ms\": {:.3}}}{}",
            row.n,
            row.budget,
            row.estimate,
            row.half_width,
            row.sampled_ms,
            if i + 1 == frontier_rows.len() { "" } else { "," }
        );
    }
    json.push_str("    ]\n  }\n}\n");
    fs::write("BENCH_e1.json", &json).expect("BENCH_e1.json must be writable");
    println!("\nwrote BENCH_e1.json");

    // The regression-gate table: one gate per recorded block, evaluated on
    // every run. The scheduling separation and the freeze speedup only
    // develop their full ratios with >= 4 real cores underneath the pool and
    // full-size inputs, so elsewhere (quick mode, undersized machines) they
    // gate at a relaxed sanity threshold instead — enough to catch a
    // pathological regression without flaking on shared CI runners. The
    // pool-reuse gate degrades the same way on a 1-participant pool, where
    // both paths run inline and there is no spawn overhead to save.
    let machine_parallel = threads >= 4 && cores >= 4;
    let strong_separation = !quick && machine_parallel;
    let mut gates = Vec::new();
    if let Some(last) = rows.last() {
        gates.push(Gate::full(
            "rows: incremental engine vs from-scratch baseline",
            last.baseline_ms / last.incremental_ms,
            10.0,
        ));
    }
    if let Some(last) = probe_rows.last() {
        gates.push(Gate::full(
            "run_node: frozen session vs per-call refreeze",
            last.refreeze_ms / last.session_ms,
            5.0,
        ));
    }
    gates.push(Gate::scaled(
        "pool: persistent pool vs spawn-per-call",
        pool_row.spawn_ms / pool_row.pool_ms,
        threads >= 2,
        1.5,
        0.5,
    ));
    if let Some(last) = skew_rows.last() {
        gates.push(Gate::scaled(
            "skewed: work-stealing vs static chunks",
            last.static_ms / last.stealing_ms,
            strong_separation,
            1.5,
            0.33,
        ));
    }
    if let Some(last) = freeze_rows.last() {
        gates.push(Gate::scaled(
            "freeze: parallel vs serial Graph::freeze",
            last.serial_ms / last.parallel_ms,
            strong_separation,
            1.15,
            0.25,
        ));
    }
    // The snapshot gates: format density is a deterministic property of the
    // byte layout (a cycle costs ~24 bytes/edge in version 1), so it gates
    // exactly everywhere; the validating-decode throughput is machine time
    // and gates at a relaxed sanity bound that still catches an accidental
    // quadratic slip in the validators.
    if let Some(last) = snapshot_rows.last() {
        gates.push(Gate::full(
            "snapshot: format density (40 bytes/edge budget)",
            40.0 / last.bytes_per_edge,
            1.0,
        ));
        gates.push(Gate::full(
            "snapshot: validating decode vs encode (50x budget)",
            50.0 * last.encode_ms / last.decode_ms,
            1.0,
        ));
    }
    // The service gate: admission bookkeeping, a clock read per ball-growth
    // step and the generation pin must cost at most 3x the bare probe loop.
    // The ratio is machine time but compares two runs of the same process on
    // the same machine, so it holds at full strength on every leg.
    gates.push(Gate::full(
        "service: per-query overhead vs raw probes (3x budget)",
        3.0 / service_overhead,
        1.0,
    ));
    // The batch gate: sharding one reader's population across the pool must
    // beat sequential single queries by 2x wherever the pool has >= 4 real
    // cores underneath (the pinned-4 CI leg included — the win is pool
    // fan-out plus amortised admission, present in quick mode too). On a
    // 1-core container the batch runs inline and only the amortisation
    // remains, so the gate relaxes to a 0.5x sanity bound there.
    gates.push(Gate::scaled(
        "service_batch: batched vs single-query qps",
        batch_speedup,
        machine_parallel,
        2.0,
        0.5,
    ));
    // The sampling gates: the draws are seeded, so the relative error of the
    // 10% estimate is a deterministic property of (family seed, plan seed)
    // and gates exactly at a 25% budget — generous against the measured
    // values (a few percent) but tight enough to catch a broken estimator or
    // a silently re-seeded stream. The wall-time speedup comes from probing
    // a tenth of the population through the same pool as the exact sweep, so
    // it holds near-10x with real cores and still well above 1.5x inline.
    let max_rel_error = sampling_rows.iter().map(|r| r.rel_error).fold(0.0f64, f64::max);
    gates.push(Gate::full(
        "sampling: node-average relative error (25% budget)",
        if max_rel_error == 0.0 { f64::INFINITY } else { 0.25 / max_rel_error },
        1.0,
    ));
    if let Some(last) = sampling_rows.last() {
        gates.push(Gate::scaled(
            "sampling: sampled vs exact sweep wall time",
            last.exact_ms / last.sampled_ms,
            machine_parallel,
            5.0,
            1.5,
        ));
    }
    // The hub gate is deterministic (fixed family seed + fixed assignment),
    // so it applies at full strength everywhere — quick mode, 1-core
    // containers, every leg of the thread matrix.
    let min_hub_ratio = hub_rows.iter().map(|r| r.edge_node_ratio).fold(f64::INFINITY, f64::min);
    gates.push(Gate::full(
        "hub: edge/node detachment on the connected pa tree",
        min_hub_ratio,
        2.0,
    ));

    println!("\nregression gates ({threads} thread(s), {cores} core(s)):");
    let mut failed = false;
    for gate in &gates {
        let status = if gate.speedup >= gate.threshold {
            "PASS"
        } else {
            failed = true;
            "FAIL"
        };
        let kind = if gate.sanity { "sanity gate" } else { "gate" };
        println!(
            "  [{status}] {:<48} {:>7.2}x ({kind} {:.2}x)",
            gate.name, gate.speedup, gate.threshold
        );
    }
    if failed {
        eprintln!("a recorded speedup block regressed below its gate");
        if check {
            return ExitCode::FAILURE;
        }
        panic!("regression gates failed (run with --check for a non-panicking exit)");
    }
    ExitCode::SUCCESS
}
