//! E1 perf trajectory: wall time of the largest-ID radius sweep on the
//! adversarial identity assignment, incremental engine vs the from-scratch
//! baseline — plus the single-node probe loop, session reuse
//! ([`FrozenExecutor`]) vs a per-call freeze ([`BallExecutor::run_node`]).
//!
//! Writes `BENCH_e1.json` (next to the current working directory) so the
//! repository keeps a perf trajectory across PRs, and exits non-zero if the
//! two engines disagree on any radius or output.
//!
//! ```text
//! cargo run --release -p avglocal-bench --bin bench_e1              # full sizes
//! cargo run --release -p avglocal-bench --bin bench_e1 -- --quick   # smoke run
//! ```

use std::env;
use std::fmt::Write as _;
use std::fs;
use std::time::Instant;

use avglocal::algorithms::LargestId;
use avglocal::prelude::*;
use avglocal::runtime::{BallExecution, BallExecutor, FrozenExecutor, Knowledge};

/// Repetitions per measurement; the minimum is reported.
const REPS: usize = 3;

struct Row {
    n: usize,
    total_radius: usize,
    incremental_ms: f64,
    baseline_ms: f64,
}

struct ProbeRow {
    n: usize,
    session_ms: f64,
    refreeze_ms: f64,
}

/// Times one pass of `probe` over every node of `graph`; the minimum over
/// [`REPS`] passes is reported. Returns `(total radius, best ms)`.
fn measure_probe_loop(graph: &Graph, mut probe: impl FnMut(NodeId) -> usize) -> (usize, f64) {
    let mut best = f64::INFINITY;
    let mut total = 0usize;
    for _ in 0..REPS {
        let start = Instant::now();
        total = graph.nodes().map(&mut probe).sum();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    (total, best)
}

fn measure(executor: &BallExecutor, graph: &Graph) -> (BallExecution<bool>, f64) {
    let mut best = f64::INFINITY;
    let mut run = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let result = executor
            .run(graph, &LargestId, Knowledge::none())
            .expect("largest-ID terminates on every cycle");
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        run = Some(result);
    }
    (run.expect("REPS >= 1"), best)
}

fn main() {
    let quick = env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick { &[256, 1024] } else { &[256, 1024, 4096] };

    println!("E1 largest-ID on the identity cycle: incremental vs from-scratch baseline");
    println!(
        "{:>6} {:>14} {:>16} {:>13} {:>9}",
        "n", "total radius", "incremental ms", "baseline ms", "speedup"
    );

    let mut rows = Vec::new();
    for &n in sizes {
        let graph = cycle_with_assignment(n, &IdAssignment::Identity)
            .expect("cycles of the benchmarked sizes are valid");
        let (fast, incremental_ms) = measure(&BallExecutor::new(), &graph);
        let (slow, baseline_ms) = measure(&BallExecutor::from_scratch_baseline(), &graph);
        assert_eq!(fast.radii(), slow.radii(), "engines disagree on radii at n={n}");
        assert_eq!(fast.outputs(), slow.outputs(), "engines disagree on outputs at n={n}");
        println!(
            "{:>6} {:>14} {:>16.3} {:>13.3} {:>8.1}x",
            n,
            fast.total_radius(),
            incremental_ms,
            baseline_ms,
            baseline_ms / incremental_ms
        );
        rows.push(Row { n, total_radius: fast.total_radius(), incremental_ms, baseline_ms });
    }

    // The run_node datapoint: probe every node individually, reusing one
    // frozen session vs freezing a fresh snapshot per call.
    println!("\nE1 run_node probes: frozen session reuse vs per-call refreeze");
    println!("{:>6} {:>12} {:>13} {:>9}", "n", "session ms", "refreeze ms", "speedup");
    let mut probe_rows = Vec::new();
    for &n in sizes {
        let graph = cycle_with_assignment(n, &IdAssignment::Identity)
            .expect("cycles of the benchmarked sizes are valid");
        let mut session = FrozenExecutor::new(&graph);
        let (session_total, session_ms) = measure_probe_loop(&graph, |v| {
            session.run_node(v, &LargestId, Knowledge::none()).expect("largest-ID terminates").1
        });
        let per_call = BallExecutor::new();
        let (refreeze_total, refreeze_ms) = measure_probe_loop(&graph, |v| {
            per_call
                .run_node(&graph, v, &LargestId, Knowledge::none())
                .expect("largest-ID terminates")
                .1
        });
        assert_eq!(session_total, refreeze_total, "probe engines disagree at n={n}");
        println!(
            "{:>6} {:>12.3} {:>13.3} {:>8.1}x",
            n,
            session_ms,
            refreeze_ms,
            refreeze_ms / session_ms
        );
        probe_rows.push(ProbeRow { n, session_ms, refreeze_ms });
    }

    let mut json =
        String::from("{\n  \"experiment\": \"e1_largest_id_identity\",\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"total_radius\": {}, \"incremental_ms\": {:.3}, \"baseline_ms\": {:.3}, \"speedup\": {:.1}}}{}",
            row.n,
            row.total_radius,
            row.incremental_ms,
            row.baseline_ms,
            row.baseline_ms / row.incremental_ms,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"run_node\": {\n");
    json.push_str(
        "    \"description\": \"per-node probes: FrozenExecutor session reuse vs \
         BallExecutor::run_node freezing per call\",\n    \"rows\": [\n",
    );
    for (i, row) in probe_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"n\": {}, \"session_ms\": {:.3}, \"refreeze_ms\": {:.3}, \"speedup\": {:.1}}}{}",
            row.n,
            row.session_ms,
            row.refreeze_ms,
            row.refreeze_ms / row.session_ms,
            if i + 1 == probe_rows.len() { "" } else { "," }
        );
    }
    json.push_str("    ]\n  }\n}\n");
    fs::write("BENCH_e1.json", &json).expect("BENCH_e1.json must be writable");
    println!("\nwrote BENCH_e1.json");

    if let Some(last) = rows.last() {
        let speedup = last.baseline_ms / last.incremental_ms;
        assert!(
            speedup >= 10.0,
            "acceptance: incremental engine must be >= 10x the baseline at n={} (got {speedup:.1}x)",
            last.n
        );
    }
    if let Some(last) = probe_rows.last() {
        let speedup = last.refreeze_ms / last.session_ms;
        assert!(
            speedup >= 5.0,
            "acceptance: the frozen session must be >= 5x per-call freezing at n={} (got {speedup:.1}x)",
            last.n
        );
    }
}
