//! Prints the result tables of experiments E1–E8 (see `EXPERIMENTS.md`).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p avglocal-bench --bin experiments             # all experiments
//! cargo run --release -p avglocal-bench --bin experiments -- --e3    # only E3
//! cargo run --release -p avglocal-bench --bin experiments -- --e7    # cross-topology sweep
//! cargo run --release -p avglocal-bench --bin experiments -- --e8    # measure comparison
//! cargo run --release -p avglocal-bench --bin experiments -- --e9    # hub-weighted families
//! cargo run --release -p avglocal-bench --bin experiments -- --quick # reduced sizes
//! cargo run --release -p avglocal-bench --bin experiments -- --csv   # CSV output
//! ```

use std::env;

use avglocal_bench::tables;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let selected: Vec<usize> =
        (1..=9).filter(|i| args.iter().any(|a| a == &format!("--e{i}"))).collect();
    let run_all = selected.is_empty();

    type TableBuilder = fn(bool) -> avglocal::report::Table;
    let builders: [(usize, TableBuilder); 9] = [
        (1, tables::table_e1),
        (2, tables::table_e2),
        (3, tables::table_e3),
        (4, tables::table_e4),
        (5, tables::table_e5),
        (6, tables::table_e6),
        (7, tables::table_e7),
        (8, tables::table_e8),
        (9, tables::table_e9),
    ];

    println!("avglocal experiment harness ({} sizes)\n", if quick { "quick" } else { "full" });
    for (id, build) in builders {
        if run_all || selected.contains(&id) {
            let table = build(quick);
            if csv {
                println!("# {}", table.title());
                println!("{}", table.to_csv());
            } else {
                println!("{table}");
            }
        }
    }

    // The figures accompany E1, E3, E7 and E8; skip them in CSV mode.
    if !csv {
        if run_all || selected.contains(&1) {
            println!("{}", avglocal_bench::figure_f1(quick));
        }
        if run_all || selected.contains(&3) {
            println!("{}", avglocal_bench::figure_f2(quick));
        }
        if run_all || selected.contains(&7) {
            println!("{}", avglocal_bench::figure_f3(quick));
        }
        if run_all || selected.contains(&8) {
            println!("{}", avglocal_bench::figure_f4(quick));
        }
        if run_all || selected.contains(&9) {
            println!("{}", avglocal_bench::figure_f5(quick));
        }
    }
}
