//! The result tables of experiments E1–E6.
//!
//! Each function builds one table; the `experiments` binary prints them. The
//! `quick` flag shrinks the instance sizes so the same code can run inside
//! `cargo test` in seconds; the full sizes are meant for
//! `cargo run --release`.

use avglocal::analysis::fit::{best_model, GrowthModel};
use avglocal::analysis::{a000788, recurrence};
use avglocal::prelude::*;
use avglocal::report::fmt_float;
use avglocal::SweepRow;

/// E1 — the exponential separation for the largest-ID problem (Section 2).
///
/// For each ring size: the average radius under random and under identity
/// (adversarial-for-the-average) identifier assignments, the Section 2
/// prediction `(a(n-1) + n/2)/n`, and the worst-case radius `n/2`.
#[must_use]
pub fn table_e1(quick: bool) -> Table {
    let exponents: Vec<u32> =
        if quick { vec![4, 6, 8] } else { vec![4, 5, 6, 7, 8, 9, 10, 11, 12] };
    let trials = if quick { 2 } else { 5 };
    let mut table = Table::new(
        "E1: largest ID on the n-cycle — average vs worst case",
        &[
            "n",
            "avg radius (random ids)",
            "avg radius (identity ids)",
            "worst-case avg (theory)",
            "worst-case radius",
            "separation (worst/avg)",
        ],
    );
    let mut ns = Vec::new();
    let mut averages = Vec::new();
    for &k in &exponents {
        let n = 1usize << k;
        let random = Sweep::new(Problem::LargestId, vec![n])
            .with_policy(AssignmentPolicy::Random { base_seed: 1 })
            .with_trials(trials)
            .run()
            .expect("largest-ID sweep cannot fail on cycles");
        let identity = run_on_cycle(Problem::LargestId, n, &IdAssignment::Identity)
            .expect("largest-ID run cannot fail on cycles");
        let row = &random.rows[0];
        ns.push(n as f64);
        averages.push(row.average);
        table.push_row(vec![
            n.to_string(),
            fmt_float(row.average),
            fmt_float(identity.average()),
            fmt_float(theory::largest_id_worst_average(n)),
            format!("{}", theory::largest_id_worst_case(n)),
            format!("{:.1}x", row.separation()),
        ]);
    }
    let model = best_model(&ns, &averages);
    table.push_row(vec![
        "best-fit growth of the measured average".to_string(),
        model.name().to_string(),
    ]);
    table
}

/// E2 — the worst-case total radius recurrence `a(n)` (Section 2).
///
/// Checks that the dynamic program, OEIS A000788 and the `½·n·log2 n`
/// envelope agree, and that the simulator's adversarial search reaches the
/// predicted worst-case total `a(n-1) + ⌊n/2⌋`.
#[must_use]
pub fn table_e2(quick: bool) -> Table {
    let sizes: Vec<usize> =
        if quick { vec![4, 16, 64] } else { vec![4, 8, 16, 32, 64, 256, 1024, 4096] };
    let mut table = Table::new(
        "E2: the recurrence a(n) for the worst-case total radius",
        &[
            "n",
            "a(n) (recurrence)",
            "A000788(n)",
            "0.5 n log2 n",
            "worst total on n-cycle (theory)",
            "worst total found by search",
        ],
    );
    let max_n = *sizes.iter().max().expect("sizes is non-empty");
    let a = recurrence::segment_worst_totals(max_n);
    for &n in &sizes {
        let searched = if n <= 7 {
            let result = AdversarySearch::new(Problem::LargestId, Measure::Total)
                .exhaustive(n)
                .expect("exhaustive search works for n <= 8");
            format!("{} (exhaustive)", result.objective)
        } else if n <= 64 {
            let result = AdversarySearch::new(Problem::LargestId, Measure::Total)
                .hill_climb(n, 2, if quick { 40 } else { 200 }, 17)
                .expect("hill climbing works for n >= 3");
            format!("{} (hill climb)", result.objective)
        } else {
            "-".to_string()
        };
        table.push_row(vec![
            n.to_string(),
            a[n].to_string(),
            a000788::total_bit_count(n as u64).to_string(),
            fmt_float(a000788::asymptotic_estimate(n as u64)),
            theory::largest_id_worst_total(n).to_string(),
            searched,
        ]);
    }
    table
}

/// E3 — the Cole–Vishkin upper bound for 3-colouring (Section 3).
///
/// Shows that both measures stay bounded by the `log*`-type constant over
/// four orders of magnitude of `n`, while the landmark colouring (variable
/// radius) stays small on average but not in the worst case.
#[must_use]
pub fn table_e3(quick: bool) -> Table {
    let exponents: Vec<u32> = if quick { vec![4, 6, 8] } else { vec![4, 6, 8, 10, 12, 14, 16] };
    let mut table = Table::new(
        "E3: 3-colouring the n-ring — radii vs log* n",
        &[
            "n",
            "CV avg radius",
            "CV max radius",
            "landmark avg",
            "landmark max",
            "log*(n)",
            "lower bound (Thm 1)",
            "CV upper bound",
        ],
    );
    for &k in &exponents {
        let n = 1usize << k;
        let assignment = IdAssignment::Shuffled { seed: 3 };
        let cv = run_on_cycle(Problem::ThreeColoring, n, &assignment)
            .expect("Cole-Vishkin runs on every cycle");
        let landmark = run_on_cycle(Problem::LandmarkColoring, n, &assignment)
            .expect("landmark colouring runs on every cycle");
        table.push_row(vec![
            n.to_string(),
            fmt_float(cv.average()),
            cv.max().to_string(),
            fmt_float(landmark.average()),
            landmark.max().to_string(),
            theory::log_star_of(n).to_string(),
            fmt_float(theory::coloring_average_lower_bound(n)),
            theory::cole_vishkin_upper_bound(64).to_string(),
        ]);
    }
    table
}

/// E4 — the Theorem 1 lower bound: adversarial identifier assignments cannot
/// push the average colouring radius below `Ω(log* n)`, and the Section 3
/// slice construction produces such hard assignments.
#[must_use]
pub fn table_e4(quick: bool) -> Table {
    let sizes: Vec<usize> = if quick { vec![32, 64] } else { vec![64, 128, 256, 512] };
    let mut table = Table::new(
        "E4: adversarial assignments for colouring (Theorem 1)",
        &[
            "n",
            "algorithm",
            "avg radius (random ids)",
            "avg radius (section 3 pi)",
            "avg radius (hill climb)",
            "lower bound 0.5 log*(n/2)",
        ],
    );
    for &n in &sizes {
        for problem in [Problem::LandmarkColoring, Problem::ThreeColoring] {
            let random = random_permutation_study(problem, n, if quick { 3 } else { 8 }, 5)
                .expect("random study runs on cycles");
            let section3 = section3_assignment(problem, n)
                .and_then(|a| run_on_cycle(problem, n, &a))
                .expect("section 3 construction runs on cycles");
            let climbed = AdversarySearch::new(problem, Measure::NodeAveraged)
                .hill_climb(n, 1, if quick { 20 } else { 80 }, 11)
                .expect("hill climbing runs on cycles");
            table.push_row(vec![
                n.to_string(),
                problem.to_string(),
                fmt_float(random.average_radius.mean),
                fmt_float(section3.average()),
                fmt_float(climbed.objective),
                fmt_float(theory::coloring_average_lower_bound(n)),
            ]);
        }
    }
    table
}

/// E5 — the Section 4 "further work" question: both measures under uniformly
/// random identifier permutations.
#[must_use]
pub fn table_e5(quick: bool) -> Table {
    let exponents: Vec<u32> = if quick { vec![5, 7] } else { vec![6, 8, 10, 12] };
    let samples = if quick { 5 } else { 20 };
    let mut table = Table::new(
        "E5: largest ID under uniformly random identifiers",
        &[
            "n",
            "samples",
            "mean avg radius",
            "95% CI",
            "expected (theory)",
            "mean worst-case radius",
            "worst-case avg (adversarial theory)",
        ],
    );
    for &k in &exponents {
        let n = 1usize << k;
        let study = random_permutation_study(Problem::LargestId, n, samples, 23)
            .expect("largest-ID study runs on cycles");
        table.push_row(vec![
            n.to_string(),
            samples.to_string(),
            fmt_float(study.average_radius.mean),
            format!("±{}", fmt_float(study.average_radius.confidence_95())),
            fmt_float(theory::largest_id_random_average(n)),
            fmt_float(study.worst_case_radius.mean),
            fmt_float(theory::largest_id_worst_average(n)),
        ]);
    }
    table
}

/// E6 — the motivating applications of Section 1: parallel replay makespan
/// and dynamic-update cost, per algorithm.
#[must_use]
pub fn table_e6(quick: bool) -> Table {
    let n = if quick { 64 } else { 256 };
    let workers = 16;
    let assignment = IdAssignment::Shuffled { seed: 31 };
    let mut table = Table::new(
        "E6: applications — parallel replay and dynamic updates",
        &[
            "algorithm",
            "avg radius",
            "max radius",
            "makespan (16 workers)",
            "makespan lower bound",
            "expected invalidated nodes",
        ],
    );
    for problem in [
        Problem::LargestId,
        Problem::FullInfoLargestId,
        Problem::ThreeColoring,
        Problem::LandmarkColoring,
        Problem::KnowTheLeader,
    ] {
        let profile = run_on_cycle(problem, n, &assignment).expect("all problems run on cycles");
        let outcome = schedule_radii(&profile, workers);
        table.push_row(vec![
            problem.to_string(),
            fmt_float(profile.average()),
            profile.max().to_string(),
            outcome.makespan.to_string(),
            outcome.lower_bound.to_string(),
            fmt_float(expected_invalidated_nodes(&profile)),
        ]);
    }
    table
}

/// A named topology family, parameterised by the instance size (so `G(n, p)`
/// can scale its edge probability with `n`).
type TopologyFamily = (&'static str, fn(usize) -> Topology);

/// The topology families swept by E7, with a `G(n, p)` family seeded above
/// the connectivity threshold for every size the table uses.
fn e7_topologies() -> Vec<TopologyFamily> {
    vec![
        ("cycle", |_n| Topology::Cycle),
        ("path", |_n| Topology::Path),
        ("tree", |_n| Topology::CompleteBinaryTree),
        ("grid", |_n| Topology::Grid),
        ("torus", |_n| Topology::Torus),
        ("gnp", |n| Topology::gnp_connected(n, 7)),
    ]
}

/// E7 — node-averaged complexity beyond the ring (the BGKO line).
///
/// The paper proves its separation on the cycle; the follow-up work
/// (Feuilloley 2017, Rozhoň 2023) asks how the node-averaged measure behaves
/// on trees, grids and general graphs. For each topology family and size:
/// the average and worst-case radius of the largest-ID problem under random
/// identifiers, and the separation factor. Low-diameter families (trees,
/// `G(n, p)`) compress the worst case, so the separation shrinks — the
/// qualitative shape the table is after.
#[must_use]
pub fn table_e7(quick: bool) -> Table {
    let sizes: Vec<usize> = if quick { vec![16, 64] } else { vec![64, 256, 1024] };
    let trials = if quick { 2 } else { 5 };
    let mut table = Table::new(
        "E7: largest ID across topologies — node-averaged vs worst case",
        &[
            "topology",
            "n",
            "avg radius (random ids)",
            "worst-case radius",
            "total radius",
            "separation (worst/avg)",
        ],
    );
    for (name, family) in e7_topologies() {
        for &n in &sizes {
            let topology = family(n);
            let result = Sweep::on(Problem::LargestId, topology, vec![n])
                .with_policy(AssignmentPolicy::Random { base_seed: 11 })
                .with_trials(trials)
                .run()
                .expect("largest-ID sweep runs on every connected E7 topology");
            let row = &result.rows[0];
            table.push_row(vec![
                name.to_string(),
                n.to_string(),
                fmt_float(row.average),
                fmt_float(row.worst_case),
                fmt_float(row.total),
                format!("{:.1}x", row.separation()),
            ]);
        }
    }
    table
}

/// Figure F3 — the E7 node-averaged curves: the average largest-ID radius per
/// topology family as the size grows. The ring and the path sit on the
/// paper's logarithmic curve; the low-diameter families stay flat.
#[must_use]
pub fn figure_f3(quick: bool) -> String {
    let sizes: Vec<usize> = if quick { vec![16, 64] } else { vec![64, 256, 1024] };
    let labels: Vec<String> = sizes.iter().map(ToString::to_string).collect();
    let mut series = Vec::new();
    for (name, family) in e7_topologies() {
        let mut averages = Vec::new();
        for &n in &sizes {
            let profile = run_on_topology(
                Problem::LargestId,
                &family(n),
                n,
                &IdAssignment::Shuffled { seed: 1 },
            )
            .expect("largest ID runs on every connected E7 topology");
            averages.push(profile.average());
        }
        series.push(avglocal::figure::Series::new(format!("{name} average radius"), averages));
    }
    avglocal::figure::AsciiChart::new("F3: largest-ID average radius across topologies", labels)
        .with_height(12)
        .render(&series)
}

/// Figure F1 — the E1 separation as an ASCII chart: the measured average
/// radius (random identifiers) versus the worst-case-over-permutations
/// average and the classical worst case, on a shared linear scale. The
/// worst-case curve dwarfing the two average curves *is* the paper's
/// exponential separation.
#[must_use]
pub fn figure_f1(quick: bool) -> String {
    let exponents: Vec<u32> = if quick { vec![4, 6, 8] } else { vec![4, 6, 8, 10, 12] };
    let mut labels = Vec::new();
    let mut measured = Vec::new();
    let mut theory_avg = Vec::new();
    let mut worst = Vec::new();
    for &k in &exponents {
        let n = 1usize << k;
        labels.push(format!("2^{k}"));
        let profile = run_on_cycle(Problem::LargestId, n, &IdAssignment::Shuffled { seed: 1 })
            .expect("largest ID runs on every cycle");
        measured.push(profile.average());
        theory_avg.push(theory::largest_id_worst_average(n));
        worst.push(theory::largest_id_worst_case(n) as f64);
    }
    avglocal::figure::AsciiChart::new("F1: largest ID — average vs worst case", labels)
        .with_height(14)
        .render(&[
            avglocal::figure::Series::new("measured average (random ids)", measured),
            avglocal::figure::Series::new("worst-case average (theory)", theory_avg),
            avglocal::figure::Series::new("worst-case radius n/2", worst),
        ])
}

/// Figure F2 — the E3 curves: Cole–Vishkin and landmark-colouring radii stay
/// flat next to `log* n` while the ring grows by orders of magnitude.
#[must_use]
pub fn figure_f2(quick: bool) -> String {
    let exponents: Vec<u32> = if quick { vec![4, 6, 8] } else { vec![4, 7, 10, 13, 16] };
    let mut labels = Vec::new();
    let mut cv = Vec::new();
    let mut landmark = Vec::new();
    let mut logstar = Vec::new();
    for &k in &exponents {
        let n = 1usize << k;
        labels.push(format!("2^{k}"));
        let assignment = IdAssignment::Shuffled { seed: 3 };
        cv.push(
            run_on_cycle(Problem::ThreeColoring, n, &assignment)
                .expect("Cole-Vishkin runs on every cycle")
                .average(),
        );
        landmark.push(
            run_on_cycle(Problem::LandmarkColoring, n, &assignment)
                .expect("landmark colouring runs on every cycle")
                .average(),
        );
        logstar.push(f64::from(theory::log_star_of(n)));
    }
    avglocal::figure::AsciiChart::new("F2: 3-colouring radii vs log* n", labels)
        .with_height(10)
        .render(&[
            avglocal::figure::Series::new("Cole-Vishkin average radius", cv),
            avglocal::figure::Series::new("landmark-colouring average radius", landmark),
            avglocal::figure::Series::new("log*(n)", logstar),
        ])
}

/// The E8 sizes of the adversarial-cycle section.
fn e8_exponents(quick: bool) -> Vec<u32> {
    if quick {
        vec![4, 6, 8]
    } else {
        vec![4, 6, 8, 10, 12]
    }
}

/// Formats the `worst/node` separation column.
fn fmt_ratio(numerator: f64, denominator: f64) -> String {
    if denominator == 0.0 {
        "-".to_string()
    } else {
        format!("{:.1}x", numerator / denominator)
    }
}

/// One E8 table row: every measure of a sweep row under the given setting
/// label. Single definition, so the table's columns cannot drift between
/// the three sections.
fn e8_row(setting: String, row: &SweepRow) -> Vec<String> {
    vec![
        setting,
        row.n.to_string(),
        fmt_float(row.average),
        fmt_float(row.edge_averaged),
        fmt_float(row.median),
        fmt_float(row.worst_case),
        fmt_ratio(row.worst_case, row.average),
        fmt_ratio(row.edge_averaged, row.average),
        row.components.to_string(),
    ]
}

/// E8 — the measure layer: node-averaged vs edge-averaged vs worst case.
///
/// Three sections, all fed by **one execution per row** (the sweep layer
/// folds every measure out of the same radius vector):
///
/// 1. *Adversarial cycle* (identity identifiers): the worst case grows as
///    `Θ(n)` (the winner sees half the ring) while the node-averaged,
///    edge-averaged and median radii all stay `O(1)` — the cycle is
///    2-regular, so the edge average is sandwiched within a factor of two of
///    the node average and inherits the paper's separation against the worst
///    case.
/// 2. *Topology families* under random identifiers: the `edge/node` column
///    stays in `[1, 2]` for the regular families (cycle, torus) and drifts
///    inside the same band for the others — bounded degree keeps the two
///    averages glued together.
/// 3. *Subcritical `G(n, p)`* in per-component mode: isolated nodes dilute
///    the node average but not the edge average, so `edge/node` detaches —
///    the measures genuinely disagree once the instance falls apart.
#[must_use]
pub fn table_e8(quick: bool) -> Table {
    let mut table = Table::new(
        "E8: measures compared — node-averaged vs edge-averaged vs worst case",
        &[
            "setting",
            "n",
            "node avg",
            "edge avg (max)",
            "median",
            "worst case",
            "worst/node",
            "edge/node",
            "components",
        ],
    );
    // Section 1: the adversarial identity cycle.
    for &k in &e8_exponents(quick) {
        let n = 1usize << k;
        let result = Sweep::new(Problem::LargestId, vec![n])
            .with_policy(AssignmentPolicy::Fixed(IdAssignment::Identity))
            .run()
            .expect("largest-ID sweep cannot fail on cycles");
        table.push_row(e8_row("cycle, identity ids".to_string(), &result.rows[0]));
    }
    // Section 2: every topology family under random identifiers.
    let n = if quick { 64 } else { 1024 };
    let trials = if quick { 2 } else { 3 };
    for (name, family) in e7_topologies() {
        let result = Sweep::on(Problem::LargestId, family(n), vec![n])
            .with_policy(AssignmentPolicy::Random { base_seed: 17 })
            .with_trials(trials)
            .run()
            .expect("largest-ID sweep runs on every connected E8 topology");
        table.push_row(e8_row(format!("{name}, random ids"), &result.rows[0]));
    }
    // Section 3: subcritical G(n, p), per-component semantics.
    let n = if quick { 64 } else { 256 };
    let p = 1.0 / n as f64; // well below the ln(n)/n connectivity threshold
    let result = Sweep::on(Problem::LargestId, Topology::Gnp { p, seed: 13 }, vec![n])
        .with_policy(AssignmentPolicy::Random { base_seed: 23 })
        .with_trials(trials)
        .with_component_mode(ComponentMode::PerComponent)
        .run()
        .expect("per-component sweeps accept disconnected G(n, p)");
    table.push_row(e8_row("gnp subcritical, per-component".to_string(), &result.rows[0]));
    table
}

/// Figure F4 — the E8 separation: on the adversarial identity cycle the
/// worst-case radius grows linearly while the node-averaged, edge-averaged
/// and median radii all stay flat. The averaged curves hugging the x-axis
/// under the worst-case diagonal *is* the measure-layer separation.
#[must_use]
pub fn figure_f4(quick: bool) -> String {
    let mut labels = Vec::new();
    let mut node_avg = Vec::new();
    let mut edge_avg = Vec::new();
    let mut median = Vec::new();
    let mut worst = Vec::new();
    for &k in &e8_exponents(quick) {
        let n = 1usize << k;
        labels.push(format!("2^{k}"));
        let result = Sweep::new(Problem::LargestId, vec![n])
            .with_policy(AssignmentPolicy::Fixed(IdAssignment::Identity))
            .run()
            .expect("largest-ID sweep cannot fail on cycles");
        let row = &result.rows[0];
        node_avg.push(row.average);
        edge_avg.push(row.edge_averaged);
        median.push(row.median);
        worst.push(row.worst_case);
    }
    avglocal::figure::AsciiChart::new(
        "F4: measures on the adversarial cycle — averages flat, worst case linear",
        labels,
    )
    .with_height(14)
    .render(&[
        avglocal::figure::Series::new("node-averaged radius", node_avg),
        avglocal::figure::Series::new("edge-averaged radius (max)", edge_avg),
        avglocal::figure::Series::new("median radius", median),
        avglocal::figure::Series::new("worst-case radius", worst),
    ])
}

/// The two hub-weighted families E9 studies, with the seeds committed after
/// a determinism scan: both build **connected** instances at every size the
/// table uses (preferential attachment by construction, the configuration
/// model through the redraw loop), and both detach the averaged measures
/// under the hub adversary.
fn e9_families() -> Vec<(&'static str, Topology, Vec<usize>, Vec<usize>)> {
    vec![
        // (label, family, quick sizes, full sizes)
        (
            "pa tree",
            Topology::PreferentialAttachment { m: 1, seed: 13 },
            vec![64],
            vec![64, 128, 256],
        ),
        (
            "powerlaw",
            Topology::PowerLawConfiguration { gamma: 2.5, seed: 11 },
            vec![64],
            vec![64, 128],
        ),
    ]
}

/// One E9 row from a [`SweepRow`]: the measure columns plus the
/// hub-specific ones (the max-degree node's degree and radius, and the
/// degree-weighted node average — which is exactly the mean-endpoint edge
/// average).
fn e9_row(setting: String, row: &SweepRow, hub_degree: usize, hub_radius: usize) -> Vec<String> {
    vec![
        setting,
        row.n.to_string(),
        fmt_float(row.average),
        fmt_float(row.edge_averaged),
        fmt_ratio(row.edge_averaged, row.average),
        fmt_float(row.edge_averaged_mean),
        hub_degree.to_string(),
        hub_radius.to_string(),
        fmt_float(row.median),
        fmt_float(row.worst_case),
        row.components.to_string(),
    ]
}

/// The [`e9_row`] shape from a single-execution [`MeasureSet`] (the hub
/// adversary is one fixed assignment, so its rows are one run each). The
/// instance came from `Topology::build`, which guarantees connectivity —
/// the components column is 1 by contract.
fn e9_measure_row(
    setting: String,
    set: &MeasureSet,
    hub_degree: usize,
    hub_radius: usize,
) -> Vec<String> {
    vec![
        setting,
        set.nodes.to_string(),
        fmt_float(set.node_averaged),
        fmt_float(set.edge_averaged),
        fmt_ratio(set.edge_averaged, set.node_averaged),
        fmt_float(set.edge_averaged_mean),
        hub_degree.to_string(),
        hub_radius.to_string(),
        fmt_float(set.median),
        fmt_float(set.worst_case),
        "1".to_string(),
    ]
}

/// Runs the hub adversary once on one instance of `topology` and folds
/// every measure (including the CDF) out of the single execution: one
/// build, one run — the same fold a one-trial sweep performs, without
/// re-building the deterministic instance. Returns the measures together
/// with the hub's degree and radius.
fn e9_hub_sweep(topology: &Topology, n: usize) -> (MeasureSet, usize, usize) {
    let mut graph =
        topology.build(n).expect("E9 families build connected instances at table sizes");
    // The adversary module owns the crowning rule; the report must describe
    // the same node that receives the maximum identifier.
    let hub = top_hub(&graph).expect("E9 instances are non-empty");
    let hub_degree = graph.degree(hub);
    let assignment =
        hub_adversarial_assignment(&graph).expect("the hub adversary works on non-empty graphs");
    assignment.apply(&mut graph).expect("the hub adversary is a valid permutation");
    let profile =
        Problem::LargestId.run(&graph).expect("largest ID runs on every connected family");
    let hub_radius = profile.radius(hub).expect("the hub has a radius");
    (MeasureSet::of(&profile, &graph), hub_degree, hub_radius)
}

/// E9 — hub-weighted families: the node/edge-averaged detachment while
/// connected.
///
/// Every family E7/E8 sweep is near-regular, so the bounded-degree sandwich
/// pins the edge-averaged measure within `[1, 2]x` the node-averaged one;
/// the only detachment E8 could show needed a *disconnected* instance
/// (isolated nodes dilute the node average). E9 closes the gap from the
/// other side, exactly as the BGKO line predicts: on a **connected**
/// hub-weighted family the two averages detach because a hub weighs once in
/// the node average but `deg(hub)` times in the edge average.
///
/// Three sections:
///
/// 1. *Hub adversary on hub families* ([`hub_adversarial_assignment`]): the
///    top identifiers sit on pairwise-far hubs, so every non-hub node stops
///    at radius 1 while each hub pays its separation (the top hub its full
///    eccentricity). The `edge/node` column exceeds the sandwich bound of 2
///    with a single connected component — the acceptance row.
/// 2. *The same adversary on the cycle*: 2-regularity keeps the ratio inside
///    `[1, 2]` no matter how adversarial the assignment — the sandwich is a
///    property of the family, not of the adversary.
/// 3. *Hub families under random identifiers*: hubs see a huge radius-1
///    neighbourhood and stop almost immediately, so the degree-weighted
///    average drops *below* the node average — the opposite-signed
///    detachment, also invisible on regular families.
#[must_use]
pub fn table_e9(quick: bool) -> Table {
    let mut table = Table::new(
        "E9: hub-weighted families — edge/node detachment while connected",
        &[
            "setting",
            "n",
            "node avg",
            "edge avg (max)",
            "edge/node",
            "deg-wtd avg",
            "hub degree",
            "hub radius",
            "median",
            "worst case",
            "components",
        ],
    );
    // Section 1: the hub adversary on the hub-weighted families.
    for (name, topology, quick_sizes, full_sizes) in e9_families() {
        for &n in if quick { &quick_sizes } else { &full_sizes } {
            let (set, hub_degree, hub_radius) = e9_hub_sweep(&topology, n);
            table.push_row(e9_measure_row(
                format!("{name}, hub adversary"),
                &set,
                hub_degree,
                hub_radius,
            ));
        }
    }
    // Section 2: the same adversary cannot escape the sandwich on the cycle.
    let n = if quick { 64 } else { 256 };
    let (set, hub_degree, hub_radius) = e9_hub_sweep(&Topology::Cycle, n);
    table.push_row(e9_measure_row(
        "cycle, hub adversary".to_string(),
        &set,
        hub_degree,
        hub_radius,
    ));
    // Section 3: random identifiers on the hub families — hubs decide early,
    // the degree-weighted average drops below the node average. The hub
    // radius column comes from trial 0 of the SAME policy the sweep runs
    // (`assignment_for_trial` derives the per-trial seed), so it is one of
    // the executions the averaged columns actually aggregate.
    let trials = if quick { 2 } else { 3 };
    let policy = AssignmentPolicy::Random { base_seed: 29 };
    for (name, topology, quick_sizes, full_sizes) in e9_families() {
        let n = *if quick { &quick_sizes } else { &full_sizes }.last().expect("sizes non-empty");
        let base = topology.build(n).expect("E9 families build connected instances");
        let hub = top_hub(&base).expect("E9 instances are non-empty");
        let profile =
            run_on_topology(Problem::LargestId, &topology, n, &policy.assignment_for_trial(0))
                .expect("largest ID runs on every connected family");
        let result = Sweep::on(Problem::LargestId, topology.clone(), vec![n])
            .with_policy(policy.clone())
            .with_trials(trials)
            .run()
            .expect("largest-ID sweeps run on every connected family");
        table.push_row(e9_row(
            format!("{name}, random ids"),
            &result.rows[0],
            base.degree(hub),
            profile.radius(hub).expect("the hub has a radius"),
        ));
    }
    table
}

/// Figure F5 — radius CDF curves across families at a fixed size: the full
/// distribution behind every scalar column of E7/E8/E9. Regular families
/// rise in lock-step; the hub-adversary curve jumps to ~1 at radius 1 and
/// then shelves — the handful of far-apart hubs still running long after
/// the whole network has finished *is* the hub detachment, seen as a
/// distribution instead of a ratio.
#[must_use]
pub fn figure_f5(quick: bool) -> String {
    let n = if quick { 64 } else { 256 };
    let trials = if quick { 2 } else { 3 };
    let mut curves: Vec<(String, avglocal::RadiusCdf)> = Vec::new();
    for (name, family) in [
        ("cycle", Topology::Cycle),
        ("tree", Topology::CompleteBinaryTree),
        ("grid", Topology::Grid),
    ] {
        let result = Sweep::on(Problem::LargestId, family, vec![n])
            .with_policy(AssignmentPolicy::Random { base_seed: 31 })
            .with_trials(trials)
            .run()
            .expect("largest-ID sweeps run on every deterministic family");
        let mut rows = result.rows;
        curves.push((format!("{name} (random ids)"), rows.remove(0).cdf));
    }
    let pa = Topology::PreferentialAttachment { m: 1, seed: 13 };
    let result = Sweep::on(Problem::LargestId, pa.clone(), vec![n])
        .with_policy(AssignmentPolicy::Random { base_seed: 31 })
        .with_trials(trials)
        .run()
        .expect("largest-ID sweeps run on preferential attachment");
    let mut rows = result.rows;
    curves.push(("pa tree (random ids)".to_string(), rows.remove(0).cdf));
    let (set, _, _) = e9_hub_sweep(&pa, n);
    curves.push(("pa tree (hub adversary)".to_string(), set.cdf));
    let series: Vec<(String, &avglocal::RadiusCdf)> =
        curves.iter().map(|(name, cdf)| (name.clone(), cdf)).collect();
    avglocal::figure::cdf_chart(&format!("F5: radius CDFs across families at n = {n}"), &series, 14)
}

/// All tables, in experiment order.
#[must_use]
pub fn all_tables(quick: bool) -> Vec<Table> {
    vec![
        table_e1(quick),
        table_e2(quick),
        table_e3(quick),
        table_e4(quick),
        table_e5(quick),
        table_e6(quick),
        table_e7(quick),
        table_e8(quick),
        table_e9(quick),
    ]
}

/// The growth model the E1 average column is expected to follow.
#[must_use]
pub fn expected_e1_model() -> GrowthModel {
    GrowthModel::Logarithmic
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_quick_has_expected_shape() {
        let t = table_e1(true);
        assert!(t.row_count() >= 4);
        assert!(t.to_text().contains("E1"));
    }

    #[test]
    fn e2_quick_matches_oeis() {
        let t = table_e2(true);
        let csv = t.to_csv();
        // a(16) = A000788(16) = 33 appears in both columns.
        assert!(csv.contains("16,33,33"));
    }

    #[test]
    fn e3_quick_contains_log_star() {
        let t = table_e3(true);
        assert_eq!(t.row_count(), 3);
        assert!(t.to_text().contains("log*"));
    }

    #[test]
    fn e5_and_e6_quick_render() {
        assert!(table_e5(true).row_count() >= 2);
        assert_eq!(table_e6(true).row_count(), 5);
    }

    #[test]
    fn e7_quick_covers_every_topology() {
        let t = table_e7(true);
        // Two sizes per family.
        assert_eq!(t.row_count(), 12);
        let text = t.to_text();
        for name in ["cycle", "path", "tree", "grid", "torus", "gnp"] {
            assert!(text.contains(name), "missing {name}");
        }
    }

    #[test]
    fn e7_cycle_rows_match_the_independent_cycle_run() {
        // The cross-topology sweep on Topology::Cycle must agree with an
        // independently reconstructed per-trial aggregate built from the
        // cycle-only run_on_cycle entry point. (The full bit-for-bit property
        // test lives in tests/tests/topology_sweeps.rs.)
        let n = 16;
        let policy = AssignmentPolicy::Random { base_seed: 11 };
        let via_topology = Sweep::on(Problem::LargestId, Topology::Cycle, vec![n])
            .with_policy(policy.clone())
            .with_trials(2)
            .run()
            .unwrap();
        let mut worst_sum = 0.0;
        let mut average_sum = 0.0;
        for trial in 0..2 {
            let profile =
                run_on_cycle(Problem::LargestId, n, &policy.assignment_for_trial(trial)).unwrap();
            worst_sum += profile.max() as f64;
            average_sum += profile.average();
        }
        assert_eq!(via_topology.rows[0].worst_case, worst_sum / 2.0);
        assert_eq!(via_topology.rows[0].average, average_sum / 2.0);
    }

    #[test]
    fn e1_expected_model_is_logarithmic() {
        assert_eq!(expected_e1_model(), GrowthModel::Logarithmic);
    }

    #[test]
    fn e8_shows_the_measure_separation() {
        let t = table_e8(true);
        // 3 identity-cycle sizes + 6 families + 1 per-component row.
        assert_eq!(t.row_count(), 10);
        let text = t.to_text();
        assert!(text.contains("per-component"));
        assert!(text.contains("identity"));
        // The adversarial identity cycle: worst case grows linearly with n
        // while node average, edge average and median stay O(1) — check the
        // numbers directly on the underlying sweep.
        let mut last_separation = 0.0;
        for &k in &[4u32, 6, 8] {
            let n = 1usize << k;
            let result = Sweep::new(Problem::LargestId, vec![n])
                .with_policy(AssignmentPolicy::Fixed(IdAssignment::Identity))
                .run()
                .unwrap();
            let row = &result.rows[0];
            assert_eq!(row.worst_case, (n / 2) as f64, "worst case is Θ(n)");
            assert!(row.average < 2.0, "node average stays O(1), got {}", row.average);
            assert!(row.edge_averaged < 3.0, "edge average stays O(1) on the 2-regular cycle");
            assert_eq!(row.median, 1.0, "the ordinary node stops at radius 1");
            // The 2-regular sandwich: node avg <= edge avg (max) <= 2x.
            assert!(row.edge_averaged >= row.average - 1e-12);
            assert!(row.edge_averaged <= 2.0 * row.average + 1e-12);
            // The worst/average separation grows with n.
            assert!(row.separation() > last_separation);
            last_separation = row.separation();
        }
    }

    #[test]
    fn e8_per_component_row_detaches_the_averages() {
        // Subcritical G(n, p): isolated nodes dilute the node average but
        // not the edge average, so the edge/node ratio exceeds the
        // bounded-degree sandwich bound of 2. (p = 0.5/n leaves a good half
        // of the nodes isolated.)
        let n = 64;
        let result =
            Sweep::on(Problem::LargestId, Topology::Gnp { p: 0.5 / n as f64, seed: 13 }, vec![n])
                .with_policy(AssignmentPolicy::Random { base_seed: 23 })
                .with_trials(2)
                .with_component_mode(ComponentMode::PerComponent)
                .run()
                .unwrap();
        let row = &result.rows[0];
        assert!(row.components > 1, "the subcritical instance must fall apart");
        assert!(
            row.edge_averaged > 2.0 * row.average,
            "isolated nodes must detach the averages: edge {} vs node {}",
            row.edge_averaged,
            row.average
        );
    }

    #[test]
    fn e9_detaches_the_averages_on_connected_hub_families() {
        // The acceptance row of the hub line: on every committed
        // hub-weighted family the edge/node ratio escapes the regular-family
        // sandwich bound of 2 with a SINGLE connected component, at every
        // size the quick table uses.
        for (name, topology, quick_sizes, _) in e9_families() {
            for &n in &quick_sizes {
                // Topology::build promises connectivity for these families;
                // verify it — the whole point of E9 is a detachment WITHOUT
                // falling apart.
                let instance = topology.build(n).unwrap();
                assert!(
                    avglocal::graph::traversal::is_connected(&instance),
                    "{name} must stay connected at n={n}"
                );
                let (set, hub_degree, hub_radius) = e9_hub_sweep(&topology, n);
                assert_eq!(set.nodes, n);
                assert!(
                    set.edge_averaged > 2.0 * set.node_averaged,
                    "{name} at n={n} must escape the sandwich: edge {} vs node {}",
                    set.edge_averaged,
                    set.node_averaged
                );
                // The hub genuinely is a hub and genuinely pays: its degree
                // dwarfs the tree's mean of ~2 and its radius is its full
                // eccentricity (>= the enforced hub separation).
                assert!(hub_degree >= 10, "{name} hub degree {hub_degree}");
                assert!(
                    hub_radius >= avglocal::adversary::HUB_ADVERSARY_SEPARATION,
                    "{name} hub radius {hub_radius}"
                );
                // The execution's distribution tells the same story: almost
                // every node has output by radius 1, yet a few hubs run on.
                assert!(set.cdf.fraction_within(1) > 0.8, "{name}");
                assert_eq!(set.cdf.max_radius(), set.worst_case as usize);
                assert!(set.worst_case as usize >= hub_radius);
            }
        }
        // The same adversary cannot escape the 2-regular sandwich.
        let (set, _, _) = e9_hub_sweep(&Topology::Cycle, 64);
        assert!(set.edge_averaged <= 2.0 * set.node_averaged + 1e-9);
        assert!(set.edge_averaged >= set.node_averaged - 1e-9);
    }

    #[test]
    fn e9_random_ids_detach_in_the_opposite_direction() {
        // Under random identifiers the hubs decide almost immediately (their
        // radius-1 ball is huge), so the degree-weighted average — the
        // mean-endpoint edge average — drops BELOW the node average: the
        // opposite-signed detachment, equally invisible on regular families.
        let topology = Topology::PreferentialAttachment { m: 1, seed: 13 };
        let result = Sweep::on(Problem::LargestId, topology, vec![64])
            .with_policy(AssignmentPolicy::Random { base_seed: 29 })
            .with_trials(2)
            .run()
            .unwrap();
        let row = &result.rows[0];
        assert!(
            row.edge_averaged_mean < row.average,
            "hubs decide early: deg-weighted {} vs node {}",
            row.edge_averaged_mean,
            row.average
        );
    }

    #[test]
    fn e9_quick_table_has_every_section() {
        let t = table_e9(true);
        // 2 hub-adversary rows + 1 cycle row + 2 random-id rows.
        assert_eq!(t.row_count(), 5);
        let text = t.to_text();
        for needle in ["pa tree, hub adversary", "powerlaw, hub adversary", "cycle", "random ids"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn figures_render_in_quick_mode() {
        let f1 = figure_f1(true);
        assert!(f1.contains("F1"));
        assert!(f1.contains("worst-case radius n/2"));
        let f2 = figure_f2(true);
        assert!(f2.contains("F2"));
        assert!(f2.contains("log*(n)"));
        let f3 = figure_f3(true);
        assert!(f3.contains("F3"));
        assert!(f3.contains("grid average radius"));
        let f4 = figure_f4(true);
        assert!(f4.contains("F4"));
        assert!(f4.contains("edge-averaged radius (max)"));
        assert!(f4.contains("worst-case radius"));
        let f5 = figure_f5(true);
        assert!(f5.contains("F5"));
        assert!(f5.contains("F(r) pa tree (hub adversary)"));
        assert!(f5.contains("F(r) cycle (random ids)"));
    }
}
