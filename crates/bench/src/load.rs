//! Sustained-load generator for the resilient radius-query service.
//!
//! Drives a fixed number of reader threads through a fixed per-reader query
//! script, against the [`RadiusQueryService`] single-query path, its
//! **batched** path ([`service_batch_load`]: the script chunked into
//! `query_batch` requests sharded across the persistent pool), or the bare
//! [`FrozenExecutor`] session the service wraps. All paths walk the same
//! node sequences, so their total radii must agree bit for bit — the
//! single-vs-raw qps gap is the service layer's per-query overhead (the
//! `service` block of `BENCH_e1.json`), and the batched-vs-single gap is
//! the batching win (the `service_batch` block).
//!
//! All timing flows through the service's [`WallClock`] (microsecond ticks
//! behind the audited [`Clock`] seam), so this module itself stays free of
//! direct wall-clock reads.

use std::sync::Arc;

use avglocal::algorithms::LargestId;
use avglocal::graph::{generators, NodeId};
use avglocal::runtime::{FrozenExecutor, Knowledge};
use avglocal_service::{
    Clock, QueryOptions, QueryRequest, RadiusQueryService, ServiceConfig, WallClock,
};

/// Shape of one load run: `readers` threads each issue
/// `queries_per_reader` queries, round-robin over the nodes of a
/// `nodes`-cycle (reader `r` walks nodes `r, r + readers, r + 2·readers, …`
/// modulo `nodes`).
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Cycle size the generation is built on.
    pub nodes: usize,
    /// Number of concurrent reader threads.
    pub readers: usize,
    /// Queries each reader issues.
    pub queries_per_reader: usize,
}

/// Outcome of one load run.
#[derive(Debug, Clone, Copy)]
pub struct LoadReport {
    /// Node queries that completed with an answer (batched runs count every
    /// batch entry).
    pub completed: u64,
    /// Sum of the returned ball radii (the cross-path agreement check).
    pub total_radius: u64,
    /// Wall time of the whole run, in clock ticks (µs).
    pub elapsed_us: u64,
    /// Sustained completed node queries per second (batch entries count
    /// individually, so single and batched runs are directly comparable).
    pub qps: f64,
    /// Median per-request latency, µs (per batch in batched runs).
    pub p50_us: u64,
    /// 99th-percentile per-request latency, µs (per batch in batched runs).
    pub p99_us: u64,
    /// Worst per-request latency, µs.
    pub max_us: u64,
}

/// The node sequence reader `r` walks under `config`.
fn reader_script(config: &LoadConfig, reader: usize) -> impl Iterator<Item = NodeId> + '_ {
    let nodes = config.nodes;
    (0..config.queries_per_reader).map(move |q| NodeId::new((reader + q * config.readers) % nodes))
}

/// Nearest-rank quantile of an already-sorted latency list.
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn report(
    clock: &WallClock,
    started_us: u64,
    mut latencies: Vec<u64>,
    total_radius: u64,
    completed: u64,
) -> LoadReport {
    let elapsed_us = clock.now().saturating_sub(started_us).max(1);
    latencies.sort_unstable();
    LoadReport {
        completed,
        total_radius,
        elapsed_us,
        qps: completed as f64 / (elapsed_us as f64 / 1e6),
        p50_us: quantile(&latencies, 0.50),
        p99_us: quantile(&latencies, 0.99),
        max_us: latencies.last().copied().unwrap_or(0),
    }
}

/// Runs the load through the full service layer: admission, deadline
/// bookkeeping and epoch pinning on every query.
///
/// # Panics
///
/// Panics if the cycle cannot be built or any query fails — under this
/// load shape (`max_in_flight >= readers`, unbounded deadline) every query
/// must complete.
#[must_use]
pub fn service_load(config: &LoadConfig) -> LoadReport {
    let csr = generators::cycle(config.nodes).expect("load cycles are valid").freeze();
    let service_config =
        ServiceConfig { max_in_flight: config.readers.max(1) * 2, ..ServiceConfig::default() };
    let clock = WallClock::new();
    let service = RadiusQueryService::new(
        LargestId,
        Knowledge::none(),
        csr,
        Arc::new(WallClock::new()),
        service_config,
    );
    let started = clock.now();
    let per_reader = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.readers)
            .map(|reader| {
                let service = &service;
                let clock = &clock;
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(config.queries_per_reader);
                    let mut total_radius = 0u64;
                    for node in reader_script(config, reader) {
                        let before = clock.now();
                        let reply = service.query(node).expect("load queries complete");
                        latencies.push(clock.now().saturating_sub(before));
                        total_radius += reply.radius as u64;
                    }
                    (latencies, total_radius)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load readers do not panic"))
            .collect::<Vec<_>>()
    });
    let mut latencies = Vec::new();
    let mut total_radius = 0u64;
    for (reader_latencies, reader_radius) in per_reader {
        latencies.extend(reader_latencies);
        total_radius += reader_radius;
    }
    let completed = latencies.len() as u64;
    report(&clock, started, latencies, total_radius, completed)
}

/// Runs the same per-reader node scripts through the **batched** query
/// path: each reader splits its script into batches of `batch_size` nodes
/// and issues one [`RadiusQueryService::query_batch`] per batch — one
/// admission slot and one generation pin per batch, the node set sharded
/// across the persistent pool.
///
/// The walked node multiset is identical to [`service_load`] on the same
/// config, so `total_radius` must agree bit for bit across the two paths;
/// the qps difference is the batching win the `service_batch` block of
/// `BENCH_e1.json` records and gates.
///
/// # Panics
///
/// Panics if the cycle cannot be built, a batch is shed, or any batch
/// entry fails — under this load shape (unbounded deadline, in-bounds
/// nodes) every entry must complete.
#[must_use]
pub fn service_batch_load(config: &LoadConfig, batch_size: usize) -> LoadReport {
    let csr = generators::cycle(config.nodes).expect("load cycles are valid").freeze();
    let service_config =
        ServiceConfig { max_in_flight: config.readers.max(1) * 2, ..ServiceConfig::default() };
    let clock = WallClock::new();
    let service = RadiusQueryService::new(
        LargestId,
        Knowledge::none(),
        csr,
        Arc::new(WallClock::new()),
        service_config,
    );
    let batch_size = batch_size.max(1);
    let started = clock.now();
    let per_reader = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.readers)
            .map(|reader| {
                let service = &service;
                let clock = &clock;
                scope.spawn(move || {
                    let script: Vec<NodeId> = reader_script(config, reader).collect();
                    let mut latencies = Vec::with_capacity(script.len().div_ceil(batch_size));
                    let mut total_radius = 0u64;
                    let mut completed = 0u64;
                    for chunk in script.chunks(batch_size) {
                        let request = QueryRequest::nodes(chunk.to_vec(), QueryOptions::new());
                        let before = clock.now();
                        let reply = service.query_batch(&request).expect("load batches admit");
                        latencies.push(clock.now().saturating_sub(before));
                        let radii = reply.radii().expect("load batch entries complete");
                        total_radius += radii.iter().map(|&r| r as u64).sum::<u64>();
                        completed += radii.len() as u64;
                    }
                    (latencies, total_radius, completed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load readers do not panic"))
            .collect::<Vec<_>>()
    });
    let mut latencies = Vec::new();
    let mut total_radius = 0u64;
    let mut completed = 0u64;
    for (reader_latencies, reader_radius, reader_completed) in per_reader {
        latencies.extend(reader_latencies);
        total_radius += reader_radius;
        completed += reader_completed;
    }
    report(&clock, started, latencies, total_radius, completed)
}

/// Runs the identical load straight on a shared [`FrozenExecutor`] session:
/// no admission, no deadlines, no generation bookkeeping. The baseline the
/// service's overhead is measured against.
///
/// # Panics
///
/// Panics if the cycle cannot be built or a probe fails.
#[must_use]
pub fn raw_probe_load(config: &LoadConfig) -> LoadReport {
    let csr = generators::cycle(config.nodes).expect("load cycles are valid").freeze();
    let session = FrozenExecutor::from_csr(csr);
    let clock = WallClock::new();
    let started = clock.now();
    let per_reader = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.readers)
            .map(|reader| {
                let session = &session;
                let clock = &clock;
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(config.queries_per_reader);
                    let mut total_radius = 0u64;
                    for node in reader_script(config, reader) {
                        let before = clock.now();
                        let (_, radius) = session
                            .run_node_with_cancel(node, &LargestId, Knowledge::none(), &mut |_| {
                                false
                            })
                            .expect("load probes complete");
                        latencies.push(clock.now().saturating_sub(before));
                        total_radius += radius as u64;
                    }
                    (latencies, total_radius)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load readers do not panic"))
            .collect::<Vec<_>>()
    });
    let mut latencies = Vec::new();
    let mut total_radius = 0u64;
    for (reader_latencies, reader_radius) in per_reader {
        latencies.extend(reader_latencies);
        total_radius += reader_radius;
    }
    let completed = latencies.len() as u64;
    report(&clock, started, latencies, total_radius, completed)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: LoadConfig = LoadConfig { nodes: 32, readers: 2, queries_per_reader: 16 };

    #[test]
    fn service_and_raw_paths_agree_on_total_radius() {
        let service = service_load(&SMALL);
        let raw = raw_probe_load(&SMALL);
        assert_eq!(service.total_radius, raw.total_radius);
        assert_eq!(service.completed, 32);
        assert_eq!(raw.completed, 32);
    }

    #[test]
    fn batched_path_agrees_with_the_single_query_path() {
        let single = service_load(&SMALL);
        for batch_size in [1usize, 5, 16, 100] {
            let batched = service_batch_load(&SMALL, batch_size);
            assert_eq!(batched.total_radius, single.total_radius, "batch_size {batch_size}");
            assert_eq!(batched.completed, 32, "batch_size {batch_size}");
        }
    }

    #[test]
    fn reports_are_internally_consistent() {
        let run = service_load(&SMALL);
        assert!(run.qps > 0.0);
        assert!(run.p50_us <= run.p99_us);
        assert!(run.p99_us <= run.max_us);
        assert!(run.elapsed_us >= 1);
    }

    #[test]
    fn reader_scripts_cover_disjoint_residues() {
        let config = LoadConfig { nodes: 12, readers: 3, queries_per_reader: 4 };
        let walked: Vec<_> = reader_script(&config, 1).map(NodeId::index).collect();
        assert_eq!(walked, vec![1, 4, 7, 10]);
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile(&sorted, 0.50), 50);
        assert_eq!(quantile(&sorted, 0.99), 99);
        assert_eq!(quantile(&[], 0.99), 0);
        assert_eq!(quantile(&[7], 0.50), 7);
    }
}
