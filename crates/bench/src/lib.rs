//! # avglocal-bench
//!
//! Benchmark harness for the `avglocal` reproduction of
//! *"Brief Announcement: Average Complexity for the LOCAL Model"*.
//!
//! The paper is a theory brief announcement with no tables or figures, so the
//! "evaluation" reproduced here is the set of quantitative claims E1–E6
//! defined in `EXPERIMENTS.md`:
//!
//! | Experiment | Claim | Bench target |
//! |---|---|---|
//! | E1 | largest-ID: worst case Θ(n) vs average Θ(log n) | `benches/e1_largest_id.rs` |
//! | E2 | the recurrence `a(n)` = A000788 = Θ(n log n) | `benches/e2_recurrence.rs` |
//! | E3 | Cole–Vishkin 3-colouring: O(log* n) everywhere | `benches/e3_cole_vishkin.rs` |
//! | E4 | Theorem 1: average colouring radius Ω(log* n) | `benches/e4_lower_bound.rs` |
//! | E5 | random identifiers (Section 4 further work) | `benches/e5_random_ids.rs` |
//! | E6 | motivating applications (Section 1) | `benches/e6_applications.rs` |
//! | E7 | node-averaged complexity beyond the ring (BGKO line) | `bin/experiments.rs --e7` |
//! | E8 | node- vs edge-averaged vs worst-case measures | `bin/experiments.rs --e8` |
//! | E9 | hub-weighted families: edge/node detachment while connected | `bin/experiments.rs --e9` |
//! | — | radius-query service under sustained load (qps, p99, overhead) | `bin/service_load.rs` |
//!
//! The Criterion benches measure the *simulator's* throughput on each
//! experiment workload; the actual result tables (who wins, by how much) are
//! printed by the `experiments` binary:
//!
//! ```text
//! cargo run --release -p avglocal-bench --bin experiments            # all tables
//! cargo run --release -p avglocal-bench --bin experiments -- --e1    # one table
//! ```

pub mod load;
pub mod tables;

pub use tables::{
    all_tables, figure_f1, figure_f2, figure_f3, figure_f4, figure_f5, table_e1, table_e2,
    table_e3, table_e4, table_e5, table_e6, table_e7, table_e8, table_e9,
};
