//! The complexity measures compared by the paper.

use std::fmt;

use crate::profile::RadiusProfile;

/// A way of collapsing a radius profile into a single number.
///
/// * [`Measure::WorstCase`] is the classical LOCAL running time
///   `max_v r(v)`;
/// * [`Measure::Average`] is the paper's new measure `Σ_v r(v) / n`;
/// * [`Measure::Total`] is the un-normalised sum `Σ_v r(v)`, the quantity the
///   Section 2 recurrence bounds directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Measure {
    /// `max_v r(v)` — the classical measure.
    WorstCase,
    /// `Σ_v r(v) / n` — the paper's measure.
    Average,
    /// `Σ_v r(v)`.
    Total,
}

impl Measure {
    /// All measures, in display order.
    pub const ALL: [Measure; 3] = [Measure::WorstCase, Measure::Average, Measure::Total];

    /// Evaluates the measure on a radius profile.
    #[must_use]
    pub fn evaluate(&self, profile: &RadiusProfile) -> f64 {
        match self {
            Measure::WorstCase => profile.max() as f64,
            Measure::Average => profile.average(),
            Measure::Total => profile.total() as f64,
        }
    }

    /// Short machine-friendly name (used in CSV headers).
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            Measure::WorstCase => "worst_case",
            Measure::Average => "average",
            Measure::Total => "total",
        }
    }
}

impl fmt::Display for Measure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Measure::WorstCase => "worst-case radius",
            Measure::Average => "average radius",
            Measure::Total => "total radius",
        };
        f.write_str(name)
    }
}

/// The two headline measures evaluated side by side, as reported in every
/// experiment table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasurePair {
    /// `max_v r(v)`.
    pub worst_case: f64,
    /// `Σ_v r(v) / n`.
    pub average: f64,
}

impl MeasurePair {
    /// Evaluates both measures on a profile.
    #[must_use]
    pub fn of(profile: &RadiusProfile) -> Self {
        MeasurePair {
            worst_case: Measure::WorstCase.evaluate(profile),
            average: Measure::Average.evaluate(profile),
        }
    }

    /// The separation factor `worst_case / average` the paper's Section 2 is
    /// about (`∞` when the average is 0 but the worst case is not, 1.0 when
    /// both are 0).
    #[must_use]
    pub fn separation(&self) -> f64 {
        if self.average == 0.0 {
            if self.worst_case == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.worst_case / self.average
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_evaluate_correctly() {
        let p = RadiusProfile::new(vec![1, 2, 3, 10]);
        assert_eq!(Measure::WorstCase.evaluate(&p), 10.0);
        assert_eq!(Measure::Average.evaluate(&p), 4.0);
        assert_eq!(Measure::Total.evaluate(&p), 16.0);
    }

    #[test]
    fn display_and_keys_are_distinct() {
        let mut names: Vec<String> = Measure::ALL.iter().map(|m| m.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 3);
        let mut keys: Vec<&str> = Measure::ALL.iter().map(Measure::key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 3);
    }

    #[test]
    fn pair_and_separation() {
        let p = RadiusProfile::new(vec![1, 1, 1, 1, 16]);
        let pair = MeasurePair::of(&p);
        assert_eq!(pair.worst_case, 16.0);
        assert_eq!(pair.average, 4.0);
        assert_eq!(pair.separation(), 4.0);
    }

    #[test]
    fn separation_edge_cases() {
        let zero = MeasurePair { worst_case: 0.0, average: 0.0 };
        assert_eq!(zero.separation(), 1.0);
        let degenerate = MeasurePair { worst_case: 5.0, average: 0.0 };
        assert!(degenerate.separation().is_infinite());
    }
}
