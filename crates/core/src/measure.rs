//! The complexity measures compared by the paper and its follow-up line.
//!
//! The paper's headline object is the **node-averaged** running time
//! `Σ_v r(v) / n`; the classical measure is the worst case `max_v r(v)`.
//! The follow-up work (Feuilloley 2017) contrasts both with the
//! **edge-averaged** measure, where every edge is weighted by the output
//! rounds of its two endpoints, and with per-quantile statements ("when does
//! an *ordinary* node output?"). This module makes all of them first-class:
//!
//! * [`Measure`] names a single measure (for search objectives, CSV columns
//!   and table headers);
//! * [`MeasureSet`] evaluates **every** measure in one pass over a radius
//!   vector and an edge stream — the shape the sweep harness threads through
//!   its rows, so one trial execution feeds all measures at once;
//! * [`ComponentMeasures`] scopes a [`MeasureSet`] to each connected
//!   component and aggregates, the reporting shape of the per-component
//!   experiment mode for disconnected families.
//!
//! On a `d`-regular graph the edge-averaged measure is sandwiched within a
//! factor of two of the node-averaged one (`Σ_e max(r_u, r_v)` is between
//! `½ Σ_v d·r(v)` and `Σ_v d·r(v)`, and `m = n·d/2`), so on the paper's
//! cycle it inherits the node-averaged asymptotics — the separation that
//! survives is *averaged measures vs worst case*. The two averages detach on
//! hub-heavy or disconnected instances: a high-degree node counts once in
//! the node average but `deg(v)` times in the edge average, and an isolated
//! node dilutes only the node average (it has no edges). Both effects are
//! exercised by E8/E9 and the measure property tests.
//!
//! # Examples
//!
//! One radius vector, every measure — including the full distribution:
//!
//! ```
//! use avglocal::prelude::*;
//!
//! # fn main() -> Result<(), avglocal::CoreError> {
//! // A 4-cycle whose winner saw half the ring; everyone else stopped at 1.
//! let graph = generators::cycle(4)?;
//! let profile = RadiusProfile::new(vec![1, 1, 1, 2]);
//! let set = MeasureSet::of(&profile, &graph);
//!
//! assert_eq!(set.worst_case, 2.0);
//! assert_eq!(set.node_averaged, 1.25);
//! assert_eq!(set.median, 1.0);
//! // Each of the 4 edges is weighted by its slower endpoint; the winner
//! // has two incident edges, so the edge average is (2 + 2 + 1 + 1) / 4.
//! assert_eq!(set.edge_averaged, 1.5);
//! // The scalar columns are all points of the retained distribution.
//! assert_eq!(set.cdf.fraction_within(1), 0.75);
//! assert_eq!(set.cdf.quantile(500), set.median);
//!
//! // Any single measure can be looked up or evaluated directly.
//! assert_eq!(set.get(Measure::WorstCase), Some(2.0));
//! assert_eq!(Measure::NodeAveraged.evaluate_on(&profile, &graph), 1.25);
//! # Ok(())
//! # }
//! ```

use std::fmt;

use avglocal_graph::{ComponentLabels, CsrGraph, Graph};

use crate::cdf::RadiusCdf;
use crate::profile::RadiusProfile;

/// How an edge aggregates the output radii of its two endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeWeight {
    /// The edge is done when its **last** endpoint outputs: `max(r_u, r_v)`.
    Max,
    /// The midpoint of the endpoints' output rounds: `(r_u + r_v) / 2`.
    Mean,
}

/// A way of collapsing an execution's radius profile into a single number.
///
/// * [`Measure::WorstCase`] is the classical LOCAL running time
///   `max_v r(v)`;
/// * [`Measure::NodeAveraged`] is the paper's measure `Σ_v r(v) / n`;
/// * [`Measure::Total`] is the un-normalised sum `Σ_v r(v)`, the quantity the
///   Section 2 recurrence bounds directly;
/// * [`Measure::EdgeAveraged`] averages over the **edges**, each weighted by
///   its endpoints' radii ([`EdgeWeight`] picks max or mean);
/// * [`Measure::Quantile`] is the nearest-rank radius quantile (`per_mille =
///   500` is the median — the "ordinary node" of the follow-up question).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Measure {
    /// `max_v r(v)` — the classical measure.
    WorstCase,
    /// `Σ_v r(v) / n` — the paper's measure.
    NodeAveraged,
    /// `Σ_v r(v)`.
    Total,
    /// `Σ_e w(e) / m` with `w` given by the [`EdgeWeight`].
    EdgeAveraged {
        /// How an edge aggregates its endpoints' radii.
        weight: EdgeWeight,
    },
    /// The nearest-rank quantile of the radii, in thousandths (`500` =
    /// median, `900` = 90th percentile). Values are clamped to `0..=1000`.
    Quantile {
        /// The quantile in thousandths.
        per_mille: u16,
    },
}

/// The median radius — the headline [`Measure::Quantile`].
pub const MEDIAN: Measure = Measure::Quantile { per_mille: 500 };

impl Measure {
    /// The canonical measures, in display order (the median stands in for
    /// the quantile family).
    pub const ALL: [Measure; 6] = [
        Measure::WorstCase,
        Measure::NodeAveraged,
        Measure::Total,
        Measure::EdgeAveraged { weight: EdgeWeight::Max },
        Measure::EdgeAveraged { weight: EdgeWeight::Mean },
        MEDIAN,
    ];

    /// Evaluates the measure on a radius profile alone.
    ///
    /// Returns `None` for [`Measure::EdgeAveraged`], which needs the graph
    /// structure — use [`Measure::evaluate_on`] or [`MeasureSet`] for those.
    #[must_use]
    pub fn evaluate(&self, profile: &RadiusProfile) -> Option<f64> {
        match self {
            Measure::WorstCase => Some(profile.max() as f64),
            Measure::NodeAveraged => Some(profile.average()),
            Measure::Total => Some(profile.total() as f64),
            Measure::Quantile { per_mille } => Some(profile.quantile(*per_mille)),
            Measure::EdgeAveraged { .. } => None,
        }
    }

    /// Evaluates the measure on a radius profile together with the graph it
    /// was measured on; supports every measure.
    ///
    /// # Panics
    ///
    /// Panics when `profile` does not cover every node of `graph`.
    #[must_use]
    pub fn evaluate_on(&self, profile: &RadiusProfile, graph: &Graph) -> f64 {
        assert_eq!(
            profile.len(),
            graph.node_count(),
            "the profile must cover every node of the graph"
        );
        match self.evaluate(profile) {
            Some(value) => value,
            None => {
                let Measure::EdgeAveraged { weight } = self else { unreachable!() };
                let radii = profile.radii();
                let m = graph.edge_count();
                if m == 0 {
                    return 0.0;
                }
                let sum: f64 = graph
                    .edges()
                    .map(|(u, v)| edge_value(*weight, radii[u.index()], radii[v.index()]))
                    .sum();
                sum / m as f64
            }
        }
    }

    /// Short machine-friendly name (used in CSV headers). Non-median
    /// quantiles encode their level (`quantile_900`), so two distinct
    /// quantile measures never collide in keyed output.
    #[must_use]
    pub fn key(&self) -> String {
        match self {
            Measure::WorstCase => "worst_case".to_string(),
            Measure::NodeAveraged => "node_averaged".to_string(),
            Measure::Total => "total".to_string(),
            Measure::EdgeAveraged { weight: EdgeWeight::Max } => "edge_averaged_max".to_string(),
            Measure::EdgeAveraged { weight: EdgeWeight::Mean } => "edge_averaged_mean".to_string(),
            Measure::Quantile { per_mille: 500 } => "median".to_string(),
            Measure::Quantile { per_mille } => format!("quantile_{per_mille}"),
        }
    }
}

impl fmt::Display for Measure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Measure::WorstCase => f.write_str("worst-case radius"),
            Measure::NodeAveraged => f.write_str("node-averaged radius"),
            Measure::Total => f.write_str("total radius"),
            Measure::EdgeAveraged { weight: EdgeWeight::Max } => {
                f.write_str("edge-averaged radius (max endpoint)")
            }
            Measure::EdgeAveraged { weight: EdgeWeight::Mean } => {
                f.write_str("edge-averaged radius (mean endpoint)")
            }
            Measure::Quantile { per_mille: 500 } => f.write_str("median radius"),
            Measure::Quantile { per_mille } => {
                write!(f, "{:.3}-quantile radius", f64::from(*per_mille) / 1000.0)
            }
        }
    }
}

/// The weight an edge with endpoint radii `ru`, `rv` contributes.
fn edge_value(weight: EdgeWeight, ru: usize, rv: usize) -> f64 {
    match weight {
        EdgeWeight::Max => ru.max(rv) as f64,
        EdgeWeight::Mean => (ru + rv) as f64 / 2.0,
    }
}

/// The two headline measures evaluated side by side, as reported in every
/// experiment table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasurePair {
    /// `max_v r(v)`.
    pub worst_case: f64,
    /// `Σ_v r(v) / n`.
    pub average: f64,
}

impl MeasurePair {
    /// Evaluates both measures on a profile.
    #[must_use]
    pub fn of(profile: &RadiusProfile) -> Self {
        MeasurePair { worst_case: profile.max() as f64, average: profile.average() }
    }

    /// The separation factor `worst_case / average` the paper's Section 2 is
    /// about (`∞` when the average is 0 but the worst case is not, 1.0 when
    /// both are 0).
    #[must_use]
    pub fn separation(&self) -> f64 {
        if self.average == 0.0 {
            if self.worst_case == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.worst_case / self.average
        }
    }
}

/// Every measure of one execution, evaluated in a single pass over the
/// radius vector and the edge stream.
///
/// This is the unit the sweep harness threads through its rows: one trial
/// produces one `MeasureSet`, and row aggregation is a per-field mean over
/// the trials — except for [`MeasureSet::cdf`], which merges exactly
/// (pooling the observations) instead of averaging.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MeasureSet {
    /// Number of nodes measured.
    pub nodes: usize,
    /// Number of edges measured.
    pub edges: usize,
    /// `max_v r(v)`.
    pub worst_case: f64,
    /// `Σ_v r(v)`.
    pub total: f64,
    /// `Σ_v r(v) / n` (0 when there are no nodes).
    pub node_averaged: f64,
    /// `Σ_e max(r_u, r_v) / m` (0 when there are no edges).
    pub edge_averaged: f64,
    /// `Σ_e (r_u + r_v) / 2 / m` (0 when there are no edges).
    pub edge_averaged_mean: f64,
    /// The nearest-rank median radius.
    pub median: f64,
    /// The full radius distribution of the execution — the exact ECDF every
    /// scalar quantile above is a point of.
    pub cdf: RadiusCdf,
}

impl MeasureSet {
    /// Evaluates every measure from a radius vector and an edge stream of
    /// `(u, v)` node indices (each undirected edge listed once).
    ///
    /// # Panics
    ///
    /// Panics when an edge endpoint is out of range of `radii`.
    #[must_use]
    pub fn compute(radii: &[usize], edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let nodes = radii.len();
        let mut worst = 0usize;
        let mut total = 0usize;
        for &r in radii {
            worst = worst.max(r);
            total += r;
        }
        let mut edge_count = 0usize;
        let mut edge_max_sum = 0.0f64;
        let mut edge_mean_sum = 0.0f64;
        for (u, v) in edges {
            edge_count += 1;
            edge_max_sum += radii[u].max(radii[v]) as f64;
            edge_mean_sum += (radii[u] + radii[v]) as f64 / 2.0;
        }
        // The distribution is folded from the same radius vector; the median
        // column is its 500-per-mille point (the same nearest-rank
        // definition the old selection-based median used, bit for bit).
        let cdf = RadiusCdf::from_radii(radii);
        let median = cdf.quantile(500);
        MeasureSet {
            nodes,
            edges: edge_count,
            worst_case: worst as f64,
            total: total as f64,
            node_averaged: if nodes == 0 { 0.0 } else { total as f64 / nodes as f64 },
            edge_averaged: if edge_count == 0 { 0.0 } else { edge_max_sum / edge_count as f64 },
            edge_averaged_mean: if edge_count == 0 {
                0.0
            } else {
                edge_mean_sum / edge_count as f64
            },
            median,
            cdf,
        }
    }

    /// Evaluates every measure of `profile` on `graph`.
    ///
    /// # Panics
    ///
    /// Panics when `profile` does not cover every node of `graph`.
    #[must_use]
    pub fn of(profile: &RadiusProfile, graph: &Graph) -> Self {
        assert_eq!(
            profile.len(),
            graph.node_count(),
            "the profile must cover every node of the graph"
        );
        MeasureSet::compute(profile.radii(), graph.edges().map(|(u, v)| (u.index(), v.index())))
    }

    /// Evaluates every measure of `profile` on a frozen snapshot.
    ///
    /// # Panics
    ///
    /// Panics when `profile` does not cover every node of `csr`.
    #[must_use]
    pub fn of_csr(profile: &RadiusProfile, csr: &CsrGraph) -> Self {
        assert_eq!(
            profile.len(),
            csr.node_count(),
            "the profile must cover every node of the snapshot"
        );
        MeasureSet::compute(profile.radii(), csr.edges().map(|(u, v)| (u as usize, v as usize)))
    }

    /// The headline pair (worst case, node average) of this set.
    #[must_use]
    pub fn pair(&self) -> MeasurePair {
        MeasurePair { worst_case: self.worst_case, average: self.node_averaged }
    }

    /// The separation factor `worst_case / node_averaged` (see
    /// [`MeasurePair::separation`]).
    #[must_use]
    pub fn separation(&self) -> f64 {
        self.pair().separation()
    }

    /// Looks up a [`Measure`] in this set. Every quantile is answerable from
    /// the retained [`MeasureSet::cdf`], not just the median.
    #[must_use]
    pub fn get(&self, measure: Measure) -> Option<f64> {
        match measure {
            Measure::WorstCase => Some(self.worst_case),
            Measure::NodeAveraged => Some(self.node_averaged),
            Measure::Total => Some(self.total),
            Measure::EdgeAveraged { weight: EdgeWeight::Max } => Some(self.edge_averaged),
            Measure::EdgeAveraged { weight: EdgeWeight::Mean } => Some(self.edge_averaged_mean),
            Measure::Quantile { per_mille: 500 } => Some(self.median),
            Measure::Quantile { per_mille } => Some(self.cdf.quantile(per_mille)),
        }
    }
}

/// Nearest-rank quantile of a scratch slice: the value at index
/// `round(q · (len - 1))` of the sorted order (0 for the empty slice).
///
/// Selects in `O(len)` via `select_nth_unstable` instead of sorting — this
/// runs once per sweep trial, inside the hot per-trial loop. The slice is
/// reordered in place.
pub(crate) fn nearest_rank(values: &mut [usize], per_mille: u16) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let q = usize::from(per_mille.min(1000));
    let index = (q * (values.len() - 1) + 500) / 1000;
    *values.select_nth_unstable(index).1 as f64
}

/// A [`MeasureSet`] per connected component plus the whole-graph aggregate —
/// the reporting shape of the per-component experiment mode.
///
/// The aggregate averages over **all** nodes and **all** edges of the graph:
/// an isolated node therefore dilutes the aggregate node average while
/// leaving the edge average untouched, which is exactly the divergence the
/// per-component mode exists to expose.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentMeasures {
    /// The whole-graph measures (all nodes, all edges).
    pub aggregate: MeasureSet,
    /// One measure set per component, indexed by component label (components
    /// are numbered in order of their smallest node index).
    pub per_component: Vec<MeasureSet>,
}

impl ComponentMeasures {
    /// Evaluates the per-component and aggregate measures of `profile` on
    /// `graph` under the given labelling.
    ///
    /// # Panics
    ///
    /// Panics when `profile` or `labels` do not cover every node of `graph`.
    #[must_use]
    pub fn of(profile: &RadiusProfile, graph: &Graph, labels: &ComponentLabels) -> Self {
        assert_eq!(
            labels.node_count(),
            graph.node_count(),
            "the labelling must cover every node of the graph"
        );
        let aggregate = MeasureSet::of(profile, graph);
        let radii = profile.radii();
        let count = labels.count();
        let mut component_radii: Vec<Vec<usize>> = vec![Vec::new(); count];
        // Node index -> index within its component's radius vector, so edges
        // can be rebased into component-local indices.
        let mut local_index: Vec<usize> = Vec::with_capacity(radii.len());
        for v in graph.nodes() {
            let c = labels.label(v) as usize;
            local_index.push(component_radii[c].len());
            component_radii[c].push(radii[v.index()]);
        }
        let mut component_edges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); count];
        for (u, v) in graph.edges() {
            let c = labels.label(u) as usize;
            debug_assert_eq!(c, labels.label(v) as usize, "edges never cross components");
            component_edges[c].push((local_index[u.index()], local_index[v.index()]));
        }
        let per_component = component_radii
            .iter()
            .zip(&component_edges)
            .map(|(radii, edges)| MeasureSet::compute(radii, edges.iter().copied()))
            .collect();
        ComponentMeasures { aggregate, per_component }
    }

    /// Number of components.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.per_component.len()
    }

    /// The measures of the component with the most nodes, if any.
    #[must_use]
    pub fn largest_component(&self) -> Option<&MeasureSet> {
        self.per_component.iter().max_by_key(|m| m.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avglocal_graph::{generators, Identifier, NodeId};

    #[test]
    fn measures_evaluate_correctly() {
        let p = RadiusProfile::new(vec![1, 2, 3, 10]);
        assert_eq!(Measure::WorstCase.evaluate(&p), Some(10.0));
        assert_eq!(Measure::NodeAveraged.evaluate(&p), Some(4.0));
        assert_eq!(Measure::Total.evaluate(&p), Some(16.0));
        assert_eq!(MEDIAN.evaluate(&p), Some(3.0));
        assert_eq!(Measure::EdgeAveraged { weight: EdgeWeight::Max }.evaluate(&p), None);
    }

    #[test]
    fn edge_averaged_evaluates_on_graphs() {
        // A path 0-1-2-3 with radii [1, 2, 3, 10]: edge maxima are
        // [2, 3, 10], edge means are [1.5, 2.5, 6.5].
        let g = generators::path(4).unwrap();
        let p = RadiusProfile::new(vec![1, 2, 3, 10]);
        let max = Measure::EdgeAveraged { weight: EdgeWeight::Max }.evaluate_on(&p, &g);
        assert!((max - 5.0).abs() < 1e-12);
        let mean = Measure::EdgeAveraged { weight: EdgeWeight::Mean }.evaluate_on(&p, &g);
        assert!((mean - 3.5).abs() < 1e-12);
        // Profile-only measures agree between the two entry points.
        assert_eq!(Measure::WorstCase.evaluate_on(&p, &g), 10.0);
    }

    #[test]
    fn display_and_keys_are_distinct() {
        let mut names: Vec<String> = Measure::ALL.iter().map(|m| m.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), Measure::ALL.len());
        let mut keys: Vec<String> = Measure::ALL.iter().map(Measure::key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), Measure::ALL.len());
        // Non-median quantiles display and key their level, so distinct
        // levels never collide in keyed output.
        let q9 = Measure::Quantile { per_mille: 900 };
        assert!(q9.to_string().contains("0.900"));
        assert_eq!(q9.key(), "quantile_900");
        assert_ne!(q9.key(), Measure::Quantile { per_mille: 250 }.key());
    }

    #[test]
    fn pair_and_separation() {
        let p = RadiusProfile::new(vec![1, 1, 1, 1, 16]);
        let pair = MeasurePair::of(&p);
        assert_eq!(pair.worst_case, 16.0);
        assert_eq!(pair.average, 4.0);
        assert_eq!(pair.separation(), 4.0);
    }

    #[test]
    fn separation_edge_cases() {
        let zero = MeasurePair { worst_case: 0.0, average: 0.0 };
        assert_eq!(zero.separation(), 1.0);
        let degenerate = MeasurePair { worst_case: 5.0, average: 0.0 };
        assert!(degenerate.separation().is_infinite());
    }

    #[test]
    fn measure_set_computes_every_measure_at_once() {
        let g = generators::cycle(4).unwrap();
        let p = RadiusProfile::new(vec![1, 1, 1, 5]);
        let set = MeasureSet::of(&p, &g);
        assert_eq!(set.nodes, 4);
        assert_eq!(set.edges, 4);
        assert_eq!(set.worst_case, 5.0);
        assert_eq!(set.total, 8.0);
        assert_eq!(set.node_averaged, 2.0);
        // Edges (0,1), (1,2), (2,3), (0,3): maxima [1, 1, 5, 5] -> 3.0.
        assert_eq!(set.edge_averaged, 3.0);
        assert_eq!(set.edge_averaged_mean, 2.0);
        assert_eq!(set.median, 1.0);
        assert_eq!(set.pair(), MeasurePair::of(&p));
        assert_eq!(set.separation(), 2.5);
        // The lookup agrees with every individually evaluated measure.
        for measure in Measure::ALL {
            assert_eq!(set.get(measure), Some(measure.evaluate_on(&p, &g)), "{measure}");
        }
        // Non-median quantiles are answered from the retained distribution.
        let q9 = Measure::Quantile { per_mille: 900 };
        assert_eq!(set.get(q9), Some(q9.evaluate_on(&p, &g)));
        assert_eq!(set.cdf.observations(), 4);
        assert_eq!(set.cdf.quantile(500), set.median);
    }

    #[test]
    fn empty_and_edgeless_measure_sets() {
        let empty = MeasureSet::compute(&[], std::iter::empty());
        assert_eq!(empty, MeasureSet::default());
        let mut g = Graph::new();
        g.add_node(Identifier::new(0));
        let one = MeasureSet::of(&RadiusProfile::new(vec![3]), &g);
        assert_eq!(one.node_averaged, 3.0);
        assert_eq!(one.edge_averaged, 0.0);
        assert_eq!(one.edges, 0);
    }

    #[test]
    fn csr_and_graph_measure_sets_agree() {
        let g = generators::grid(3, 4).unwrap();
        let p = RadiusProfile::new((0..12).map(|i| i % 5).collect());
        assert_eq!(MeasureSet::of(&p, &g), MeasureSet::of_csr(&p, &g.freeze()));
    }

    #[test]
    fn nearest_rank_quantiles() {
        // Deliberately unsorted: selection handles any order.
        assert_eq!(nearest_rank(&mut [4usize, 1, 3, 2], 0), 1.0);
        assert_eq!(nearest_rank(&mut [4usize, 1, 3, 2], 500), 3.0); // round(0.5 * 3) = 2
        assert_eq!(nearest_rank(&mut [4usize, 1, 3, 2], 1000), 4.0);
        assert_eq!(nearest_rank(&mut [], 500), 0.0);
        assert_eq!(nearest_rank(&mut [7], 250), 7.0);
    }

    #[test]
    fn component_measures_scope_and_aggregate() {
        // Component 0: path 0-1 with radii [2, 4]; component 1: isolated
        // node 2 with radius 0.
        let mut g = Graph::new();
        for i in 0..3 {
            g.add_node(Identifier::new(i));
        }
        g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        let labels = ComponentLabels::of_graph(&g);
        let p = RadiusProfile::new(vec![2, 4, 0]);
        let cm = ComponentMeasures::of(&p, &g, &labels);
        assert_eq!(cm.component_count(), 2);
        assert_eq!(cm.per_component[0].node_averaged, 3.0);
        assert_eq!(cm.per_component[0].edge_averaged, 4.0);
        assert_eq!(cm.per_component[1].nodes, 1);
        assert_eq!(cm.per_component[1].node_averaged, 0.0);
        // The aggregate is over all nodes and all edges: the isolated node
        // dilutes the node average but not the edge average.
        assert_eq!(cm.aggregate.node_averaged, 2.0);
        assert_eq!(cm.aggregate.edge_averaged, 4.0);
        assert_eq!(cm.aggregate.worst_case, 4.0);
        assert_eq!(cm.largest_component().unwrap().nodes, 2);
        // Totals are additive across components.
        let total: f64 = cm.per_component.iter().map(|m| m.total).sum();
        assert_eq!(total, cm.aggregate.total);
    }

    #[test]
    fn regular_graph_sandwich_bounds_the_edge_average() {
        // On a d-regular graph the edge-averaged (max) measure lies within
        // [1, 2] x the node-averaged one.
        for g in [generators::cycle(16).unwrap(), generators::torus(4, 4).unwrap()] {
            let p = RadiusProfile::new((0..g.node_count()).map(|i| 1 + (i * 7) % 9).collect());
            let set = MeasureSet::of(&p, &g);
            assert!(set.edge_averaged >= set.node_averaged - 1e-12);
            assert!(set.edge_averaged <= 2.0 * set.node_averaged + 1e-12);
        }
    }
}
