//! Adversarial search over identifier assignments.
//!
//! The paper's measures are worst-case over the identifier permutation, so a
//! faithful reproduction needs a way to *find* bad permutations. Three
//! strategies are provided, in increasing scalability:
//!
//! * exhaustive enumeration (`n ≤ 8`), which is exact;
//! * random restarts with greedy swap-based hill climbing;
//! * the paper's own Section 3 slice construction
//!   ([`avglocal_algorithms::SliceConstruction`]), re-exported through
//!   [`section3_assignment`] with the threshold set to `½·log*(n/2)` as in
//!   the proof of Theorem 1.

use avglocal_analysis::logstar::linial_threshold;
use avglocal_graph::{IdAssignment, Permutation};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::error::{CoreError, Result};
use crate::measure::Measure;
use crate::problem::Problem;
use crate::profile::RadiusProfile;

/// The outcome of an adversarial search.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversaryResult {
    /// The worst assignment found.
    pub assignment: IdAssignment,
    /// The value of the objective measure under that assignment.
    pub objective: f64,
    /// The radius profile under that assignment.
    pub profile: RadiusProfile,
    /// Number of candidate assignments evaluated.
    pub evaluations: usize,
}

/// Searches for the identifier assignment of an `n`-cycle that maximises
/// `measure` for `problem`.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversarySearch {
    problem: Problem,
    measure: Measure,
}

impl AdversarySearch {
    /// Creates a search maximising `measure` for `problem`.
    #[must_use]
    pub fn new(problem: Problem, measure: Measure) -> Self {
        AdversarySearch { problem, measure }
    }

    fn evaluate(&self, n: usize, assignment: &IdAssignment) -> Result<(f64, RadiusProfile)> {
        // Build the cycle explicitly so the objective can be *any* measure,
        // including the edge-averaged ones that need the graph structure.
        let graph = crate::experiment::cycle_with_assignment(n, assignment)?;
        let profile = self.problem.run(&graph)?;
        Ok((self.measure.evaluate_on(&profile, &graph), profile))
    }

    /// Exhaustively enumerates every identifier permutation of the `n`-cycle.
    /// Exact but limited to `n ≤ 8` (already 40 320 executions).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] when `n < 3` or `n > 8`,
    /// and propagates execution errors.
    pub fn exhaustive(&self, n: usize) -> Result<AdversaryResult> {
        if !(3..=8).contains(&n) {
            return Err(CoreError::InvalidConfiguration {
                reason: format!("exhaustive search requires 3 <= n <= 8, got {n}"),
            });
        }
        let mut best: Option<AdversaryResult> = None;
        let mut evaluations = 0usize;
        for perm in Permutation::enumerate_all(n)? {
            let assignment = IdAssignment::Explicit(perm);
            let (value, profile) = self.evaluate(n, &assignment)?;
            evaluations += 1;
            if best.as_ref().is_none_or(|b| value > b.objective) {
                best = Some(AdversaryResult { assignment, objective: value, profile, evaluations });
            }
        }
        let mut result = best.expect("at least one permutation was evaluated");
        result.evaluations = evaluations;
        Ok(result)
    }

    /// Hill climbing with random restarts: starting from random permutations,
    /// repeatedly applies the best improving transposition found among a
    /// random sample of swaps.
    ///
    /// This is a heuristic lower bound on the true worst case; for the
    /// largest-ID problem it reliably rediscovers the monotone (identity-like)
    /// arrangements predicted by the Section 2 recurrence.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] when `n < 3`, `restarts ==
    /// 0`, or `steps == 0`, and propagates execution errors.
    pub fn hill_climb(
        &self,
        n: usize,
        restarts: usize,
        steps: usize,
        seed: u64,
    ) -> Result<AdversaryResult> {
        if n < 3 || restarts == 0 || steps == 0 {
            return Err(CoreError::InvalidConfiguration {
                reason: format!(
                    "hill climbing needs n >= 3, restarts >= 1, steps >= 1 (got n={n}, restarts={restarts}, steps={steps})"
                ),
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut best: Option<AdversaryResult> = None;
        let mut evaluations = 0usize;
        for _ in 0..restarts {
            let mut current = Permutation::random(n, &mut rng);
            let (mut current_value, mut current_profile) =
                self.evaluate(n, &IdAssignment::Explicit(current.clone()))?;
            evaluations += 1;
            for _ in 0..steps {
                // Propose a random transposition.
                let i = rng.gen_range(0..n);
                let j = rng.gen_range(0..n);
                if i == j {
                    continue;
                }
                let mut candidate = current.clone();
                candidate.swap(i, j);
                let (value, profile) =
                    self.evaluate(n, &IdAssignment::Explicit(candidate.clone()))?;
                evaluations += 1;
                if value > current_value {
                    current = candidate;
                    current_value = value;
                    current_profile = profile;
                }
            }
            if best.as_ref().is_none_or(|b| current_value > b.objective) {
                best = Some(AdversaryResult {
                    assignment: IdAssignment::Explicit(current),
                    objective: current_value,
                    profile: current_profile,
                    evaluations,
                });
            }
        }
        let mut result = best.expect("at least one restart was evaluated");
        result.evaluations = evaluations;
        Ok(result)
    }
}

/// The paper's Section 3 construction with the threshold `½·log*(n/2)` used
/// in the proof of Theorem 1, specialised to `problem`.
///
/// # Errors
///
/// Propagates execution errors from the radius oracle runs.
pub fn section3_assignment(problem: Problem, n: usize) -> Result<IdAssignment> {
    let threshold = linial_threshold(n as u64) as usize;
    let construction = avglocal_algorithms::SliceConstruction::new(n, threshold.max(1));
    let oracle = move |arrangement: &[u64]| -> Vec<usize> {
        let graph = avglocal_algorithms::cycle_with_arrangement(arrangement);
        problem
            .run(&graph)
            .map(crate::profile::RadiusProfile::into_radii)
            .unwrap_or_else(|_| vec![0; arrangement.len()])
    };
    Ok(construction.build_assignment(&oracle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use avglocal_analysis::a000788::total_bit_count;

    #[test]
    fn exhaustive_matches_the_recurrence_for_small_n() {
        // The exact worst-case total radius over all permutations of the
        // n-cycle is a(n-1) + floor(n/2): the winner contributes n/2 and the
        // remaining segment of n-1 nodes contributes at most a(n-1).
        for n in [4usize, 5, 6, 7] {
            let search = AdversarySearch::new(Problem::LargestId, Measure::Total);
            let result = search.exhaustive(n).unwrap();
            let expected = total_bit_count(n as u64 - 1) + (n as u64 / 2);
            assert_eq!(result.objective as u64, expected, "n = {n}");
            assert_eq!(result.evaluations, (1..=n).product::<usize>());
        }
    }

    #[test]
    fn exhaustive_validates_bounds() {
        let search = AdversarySearch::new(Problem::LargestId, Measure::NodeAveraged);
        assert!(search.exhaustive(2).is_err());
        assert!(search.exhaustive(9).is_err());
    }

    #[test]
    fn hill_climbing_reaches_at_least_the_random_baseline() {
        let search = AdversarySearch::new(Problem::LargestId, Measure::NodeAveraged);
        let n = 16;
        let result = search.hill_climb(n, 2, 30, 11).unwrap();
        // Any random assignment is a lower bound for the hill-climbed value.
        let random = crate::experiment::run_on_cycle(
            Problem::LargestId,
            n,
            &IdAssignment::Shuffled { seed: 0 },
        )
        .unwrap();
        assert!(result.objective >= random.average() * 0.99);
        assert!(result.evaluations >= 2);
        assert_eq!(result.profile.len(), n);
    }

    #[test]
    fn hill_climbing_validates_configuration() {
        let search = AdversarySearch::new(Problem::LargestId, Measure::NodeAveraged);
        assert!(search.hill_climb(2, 1, 1, 0).is_err());
        assert!(search.hill_climb(8, 0, 1, 0).is_err());
        assert!(search.hill_climb(8, 1, 0, 0).is_err());
    }

    #[test]
    fn hill_climbing_is_deterministic_per_seed() {
        let search = AdversarySearch::new(Problem::LargestId, Measure::NodeAveraged);
        let a = search.hill_climb(12, 2, 20, 3).unwrap();
        let b = search.hill_climb(12, 2, 20, 3).unwrap();
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn section3_assignment_is_a_valid_permutation() {
        let assignment = section3_assignment(Problem::LandmarkColoring, 32).unwrap();
        let graph = crate::experiment::cycle_with_assignment(32, &assignment).unwrap();
        assert!(graph.has_unique_identifiers());
        // The profile under the adversarial assignment is at least as bad as
        // under a fixed random one.
        let adv = Problem::LandmarkColoring.run(&graph).unwrap();
        let rnd = crate::experiment::run_on_cycle(
            Problem::LandmarkColoring,
            32,
            &IdAssignment::Shuffled { seed: 1 },
        )
        .unwrap();
        assert!(adv.average() >= rnd.average() * 0.8);
    }
}
