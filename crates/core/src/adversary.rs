//! Adversarial search over identifier assignments.
//!
//! The paper's measures are worst-case over the identifier permutation, so a
//! faithful reproduction needs a way to *find* bad permutations. Three
//! strategies are provided, in increasing scalability:
//!
//! * exhaustive enumeration (`n ≤ 8`), which is exact;
//! * random restarts with greedy swap-based hill climbing;
//! * the paper's own Section 3 slice construction
//!   ([`avglocal_algorithms::SliceConstruction`]), re-exported through
//!   [`section3_assignment`] with the threshold set to `½·log*(n/2)` as in
//!   the proof of Theorem 1.

use avglocal_analysis::logstar::linial_threshold;
use avglocal_graph::{traversal, Graph, IdAssignment, Permutation};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::error::{CoreError, Result};
use crate::measure::Measure;
use crate::problem::Problem;
use crate::profile::RadiusProfile;

/// The outcome of an adversarial search.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversaryResult {
    /// The worst assignment found.
    pub assignment: IdAssignment,
    /// The value of the objective measure under that assignment.
    pub objective: f64,
    /// The radius profile under that assignment.
    pub profile: RadiusProfile,
    /// Number of candidate assignments evaluated.
    pub evaluations: usize,
}

/// Searches for the identifier assignment of an `n`-cycle that maximises
/// `measure` for `problem`.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversarySearch {
    problem: Problem,
    measure: Measure,
}

impl AdversarySearch {
    /// Creates a search maximising `measure` for `problem`.
    #[must_use]
    pub fn new(problem: Problem, measure: Measure) -> Self {
        AdversarySearch { problem, measure }
    }

    fn evaluate(&self, n: usize, assignment: &IdAssignment) -> Result<(f64, RadiusProfile)> {
        // Build the cycle explicitly so the objective can be *any* measure,
        // including the edge-averaged ones that need the graph structure.
        let graph = crate::experiment::cycle_with_assignment(n, assignment)?;
        let profile = self.problem.run(&graph)?;
        Ok((self.measure.evaluate_on(&profile, &graph), profile))
    }

    /// Exhaustively enumerates every identifier permutation of the `n`-cycle.
    /// Exact but limited to `n ≤ 8` (already 40 320 executions).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] when `n < 3` or `n > 8`,
    /// and propagates execution errors.
    pub fn exhaustive(&self, n: usize) -> Result<AdversaryResult> {
        if !(3..=8).contains(&n) {
            return Err(CoreError::InvalidConfiguration {
                reason: format!("exhaustive search requires 3 <= n <= 8, got {n}"),
            });
        }
        let mut best: Option<AdversaryResult> = None;
        let mut evaluations = 0usize;
        for perm in Permutation::enumerate_all(n)? {
            let assignment = IdAssignment::Explicit(perm);
            let (value, profile) = self.evaluate(n, &assignment)?;
            evaluations += 1;
            if best.as_ref().is_none_or(|b| value > b.objective) {
                best = Some(AdversaryResult { assignment, objective: value, profile, evaluations });
            }
        }
        let mut result = best.expect("at least one permutation was evaluated");
        result.evaluations = evaluations;
        Ok(result)
    }

    /// Hill climbing with random restarts: starting from random permutations,
    /// repeatedly applies the best improving transposition found among a
    /// random sample of swaps.
    ///
    /// This is a heuristic lower bound on the true worst case; for the
    /// largest-ID problem it reliably rediscovers the monotone (identity-like)
    /// arrangements predicted by the Section 2 recurrence.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] when `n < 3`, `restarts ==
    /// 0`, or `steps == 0`, and propagates execution errors.
    pub fn hill_climb(
        &self,
        n: usize,
        restarts: usize,
        steps: usize,
        seed: u64,
    ) -> Result<AdversaryResult> {
        if n < 3 || restarts == 0 || steps == 0 {
            return Err(CoreError::InvalidConfiguration {
                reason: format!(
                    "hill climbing needs n >= 3, restarts >= 1, steps >= 1 (got n={n}, restarts={restarts}, steps={steps})"
                ),
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut best: Option<AdversaryResult> = None;
        let mut evaluations = 0usize;
        for _ in 0..restarts {
            let mut current = Permutation::random(n, &mut rng);
            let (mut current_value, mut current_profile) =
                self.evaluate(n, &IdAssignment::Explicit(current.clone()))?;
            evaluations += 1;
            for _ in 0..steps {
                // Propose a random transposition.
                let i = rng.gen_range(0..n);
                let j = rng.gen_range(0..n);
                if i == j {
                    continue;
                }
                let mut candidate = current.clone();
                candidate.swap(i, j);
                let (value, profile) =
                    self.evaluate(n, &IdAssignment::Explicit(candidate.clone()))?;
                evaluations += 1;
                if value > current_value {
                    current = candidate;
                    current_value = value;
                    current_profile = profile;
                }
            }
            if best.as_ref().is_none_or(|b| current_value > b.objective) {
                best = Some(AdversaryResult {
                    assignment: IdAssignment::Explicit(current),
                    objective: current_value,
                    profile: current_profile,
                    evaluations,
                });
            }
        }
        let mut result = best.expect("at least one restart was evaluated");
        result.evaluations = evaluations;
        Ok(result)
    }
}

/// The paper's Section 3 construction with the threshold `½·log*(n/2)` used
/// in the proof of Theorem 1, specialised to `problem`.
///
/// # Errors
///
/// Propagates execution errors from the radius oracle runs.
pub fn section3_assignment(problem: Problem, n: usize) -> Result<IdAssignment> {
    let threshold = linial_threshold(n as u64) as usize;
    let construction = avglocal_algorithms::SliceConstruction::new(n, threshold.max(1));
    let oracle = move |arrangement: &[u64]| -> Vec<usize> {
        let graph = avglocal_algorithms::cycle_with_arrangement(arrangement);
        problem
            .run(&graph)
            .map(crate::profile::RadiusProfile::into_radii)
            .unwrap_or_else(|_| vec![0; arrangement.len()])
    };
    Ok(construction.build_assignment(&oracle))
}

/// The minimum pairwise distance [`hub_adversarial_assignment`] keeps
/// between its selected hubs — and therefore a lower bound on every
/// selected hub's largest-ID radius (the nearest larger identifier always
/// sits on another selected hub).
pub const HUB_ADVERSARY_SEPARATION: usize = 3;

/// The node [`hub_adversarial_assignment`] crowns: the maximum-degree node,
/// ties broken by smallest node index. This is the hub that receives the
/// **maximum** identifier and therefore pays its full eccentricity under
/// the largest-ID problem — reporting layers (E9's `hub degree` /
/// `hub radius` columns) should identify the hub through this function
/// rather than re-deriving the rule. Returns `None` for the empty graph.
#[must_use]
pub fn top_hub(graph: &Graph) -> Option<avglocal_graph::NodeId> {
    graph.nodes().max_by_key(|&v| (graph.degree(v), std::cmp::Reverse(v.index())))
}

/// The hub adversary: the identifier assignment under which a hub-weighted
/// family detaches the edge-averaged measure from the node-averaged one
/// **while staying connected** (E9).
///
/// The construction selects a set of high-degree hubs that are pairwise at
/// distance at least [`HUB_ADVERSARY_SEPARATION`] (greedily, in decreasing
/// degree order, among nodes whose degree clearly exceeds the mean), gives
/// them the **top** identifiers (the highest-degree hub the maximum), and
/// assigns the remaining identifiers in strictly decreasing order of BFS
/// distance from the hub set (closer nodes get larger identifiers; ties
/// broken by node index). Three consequences for the largest-ID problem:
///
/// * every non-hub node has a BFS parent strictly closer to the hub set
///   carrying a strictly larger identifier — it stops at radius exactly 1;
/// * every hub except the top one runs until it meets a *larger* hub, which
///   the selection keeps at least [`HUB_ADVERSARY_SEPARATION`] hops away;
/// * the top hub holds the maximum and must saturate the graph — its radius
///   is its full eccentricity.
///
/// The whole cost of the execution is thus concentrated on exactly the
/// nodes with the most incident edges. The node average hardly notices
/// (each hub adds `(r - 1)/n`) while the edge average pays each hub's
/// radius once per incident edge — on a family whose hubs hold a constant
/// fraction of the edges, the `edge/node` ratio escapes the `[1, 2]`
/// bounded-degree sandwich that pins every near-regular family.
///
/// On a disconnected graph the nodes unreachable from the hub set are
/// ordered after the reachable ones (smallest identifiers, same index
/// tie-break); the construction stays a valid permutation but the hub story
/// only applies to the hubs' components.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfiguration`] for the empty graph.
pub fn hub_adversarial_assignment(graph: &Graph) -> Result<IdAssignment> {
    use avglocal_graph::NodeId;

    let n = graph.node_count();
    let lead = top_hub(graph).ok_or_else(|| CoreError::InvalidConfiguration {
        reason: "the hub adversary needs a non-empty graph".to_string(),
    })?;
    // Hub candidates: degree well above the mean (and at least 3), in
    // decreasing degree order with index tie-breaks for determinism — the
    // same ordering whose first element [`top_hub`] exposes.
    let mean_degree = 2.0 * graph.edge_count() as f64 / n as f64;
    let degree_floor = ((2.0 * mean_degree).ceil() as usize).max(3);
    let mut by_degree: Vec<NodeId> = graph.nodes().collect();
    by_degree.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v.index()));
    debug_assert_eq!(by_degree[0], lead, "top_hub is the head of the candidate order");

    // Greedy far-apart selection: the top-degree node always leads; later
    // candidates join only if they keep the pairwise separation. BFS from
    // each accepted hub maintains `dist_to_hubs` = min distance to the set.
    let mut hubs: Vec<NodeId> = vec![lead];
    let mut dist_to_hubs: Vec<Option<usize>> = {
        let bfs = traversal::bfs(graph, lead);
        (0..n).map(|i| bfs.distance(NodeId::new(i))).collect()
    };
    for &candidate in by_degree.iter().skip(1) {
        if graph.degree(candidate) < degree_floor {
            break;
        }
        let far_enough =
            dist_to_hubs[candidate.index()].is_none_or(|d| d >= HUB_ADVERSARY_SEPARATION);
        if far_enough {
            hubs.push(candidate);
            let bfs = traversal::bfs(graph, candidate);
            for (slot, i) in dist_to_hubs.iter_mut().zip(0..n) {
                *slot = match (*slot, bfs.distance(NodeId::new(i))) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
        }
    }

    // Identifiers: hubs take the top |hubs| in selection order, everyone
    // else follows in decreasing distance rank from the hub set (closer =
    // larger; unreachable nodes last; ties by index).
    let is_hub: Vec<bool> = {
        let mut flags = vec![false; n];
        for &h in &hubs {
            flags[h.index()] = true;
        }
        flags
    };
    let mut rest: Vec<usize> = (0..n).filter(|&i| !is_hub[i]).collect();
    rest.sort_by_key(|&i| (dist_to_hubs[i].unwrap_or(usize::MAX), i));
    let mut ids = vec![0usize; n];
    let ranked = hubs.iter().map(|h| h.index()).chain(rest);
    for (rank, node) in ranked.enumerate() {
        ids[node] = n - 1 - rank;
    }
    IdAssignment::from_vec(ids).map_err(CoreError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use avglocal_analysis::a000788::total_bit_count;

    #[test]
    fn exhaustive_matches_the_recurrence_for_small_n() {
        // The exact worst-case total radius over all permutations of the
        // n-cycle is a(n-1) + floor(n/2): the winner contributes n/2 and the
        // remaining segment of n-1 nodes contributes at most a(n-1).
        for n in [4usize, 5, 6, 7] {
            let search = AdversarySearch::new(Problem::LargestId, Measure::Total);
            let result = search.exhaustive(n).unwrap();
            let expected = total_bit_count(n as u64 - 1) + (n as u64 / 2);
            assert_eq!(result.objective as u64, expected, "n = {n}");
            assert_eq!(result.evaluations, (1..=n).product::<usize>());
        }
    }

    #[test]
    fn exhaustive_validates_bounds() {
        let search = AdversarySearch::new(Problem::LargestId, Measure::NodeAveraged);
        assert!(search.exhaustive(2).is_err());
        assert!(search.exhaustive(9).is_err());
    }

    #[test]
    fn hill_climbing_reaches_at_least_the_random_baseline() {
        let search = AdversarySearch::new(Problem::LargestId, Measure::NodeAveraged);
        let n = 16;
        let result = search.hill_climb(n, 2, 30, 11).unwrap();
        // Any random assignment is a lower bound for the hill-climbed value.
        let random = crate::experiment::run_on_cycle(
            Problem::LargestId,
            n,
            &IdAssignment::Shuffled { seed: 0 },
        )
        .unwrap();
        assert!(result.objective >= random.average() * 0.99);
        assert!(result.evaluations >= 2);
        assert_eq!(result.profile.len(), n);
    }

    #[test]
    fn hill_climbing_validates_configuration() {
        let search = AdversarySearch::new(Problem::LargestId, Measure::NodeAveraged);
        assert!(search.hill_climb(2, 1, 1, 0).is_err());
        assert!(search.hill_climb(8, 0, 1, 0).is_err());
        assert!(search.hill_climb(8, 1, 0, 0).is_err());
    }

    #[test]
    fn hill_climbing_is_deterministic_per_seed() {
        let search = AdversarySearch::new(Problem::LargestId, Measure::NodeAveraged);
        let a = search.hill_climb(12, 2, 20, 3).unwrap();
        let b = search.hill_climb(12, 2, 20, 3).unwrap();
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn hub_adversary_concentrates_the_cost_on_the_hubs() {
        // On a star, the hub adversary gives the centre the largest id: its
        // radius is its eccentricity (1), every leaf stops at 1 too.
        let mut star = avglocal_graph::generators::star(8).unwrap();
        let assignment = hub_adversarial_assignment(&star).unwrap();
        assignment.apply(&mut star).unwrap();
        assert!(star.has_unique_identifiers());
        let centre = star.nodes().max_by_key(|&v| star.degree(v)).unwrap();
        assert_eq!(star.identifier(centre).value(), 7, "the centre holds the largest identifier");
        // On a hub-weighted tree (a caterpillar: star centres strung on a
        // spine): the top hub saturates (radius = eccentricity), every other
        // node either stops at radius 1 (it has a closer-to-the-hubs
        // neighbour with a larger id) or is itself a selected hub paying at
        // least the enforced separation.
        let mut g = avglocal_graph::generators::caterpillar(5, 3).unwrap();
        let assignment = hub_adversarial_assignment(&g).unwrap();
        assignment.apply(&mut g).unwrap();
        let profile = Problem::LargestId.run(&g).unwrap();
        let top = g.max_identifier_node().unwrap();
        assert_eq!(
            g.degree(top),
            g.max_degree().unwrap(),
            "the maximum identifier sits on a maximum-degree node"
        );
        assert_eq!(
            profile.radius(top).unwrap(),
            traversal::eccentricity(&g, top),
            "the top hub pays its full eccentricity"
        );
        let mut selected_hubs = 0usize;
        for v in g.nodes() {
            if v == top {
                continue;
            }
            let r = profile.radius(v).unwrap();
            if r > 1 {
                selected_hubs += 1;
                assert!(
                    r >= HUB_ADVERSARY_SEPARATION,
                    "a selected hub never meets a larger id before the separation"
                );
                assert!(g.degree(v) >= 3, "only high-degree nodes pay more than radius 1");
            }
        }
        // The caterpillar has spine hubs far enough apart for the greedy
        // selection to pick more than just the top one.
        assert!(selected_hubs >= 1, "the multi-hub selection found a second hub");
    }

    #[test]
    fn hub_adversary_is_deterministic_and_rejects_the_empty_graph() {
        let g = avglocal_graph::generators::complete_binary_tree(15).unwrap();
        assert_eq!(
            hub_adversarial_assignment(&g).unwrap(),
            hub_adversarial_assignment(&g).unwrap()
        );
        assert!(hub_adversarial_assignment(&Graph::new()).is_err());
    }

    #[test]
    fn section3_assignment_is_a_valid_permutation() {
        let assignment = section3_assignment(Problem::LandmarkColoring, 32).unwrap();
        let graph = crate::experiment::cycle_with_assignment(32, &assignment).unwrap();
        assert!(graph.has_unique_identifiers());
        // The profile under the adversarial assignment is at least as bad as
        // under a fixed random one.
        let adv = Problem::LandmarkColoring.run(&graph).unwrap();
        let rnd = crate::experiment::run_on_cycle(
            Problem::LandmarkColoring,
            32,
            &IdAssignment::Shuffled { seed: 1 },
        )
        .unwrap();
        assert!(adv.average() >= rnd.average() * 0.8);
    }
}
