//! Aggregate service endpoints: whole-population measurements as one call.
//!
//! Feuilloley's question — "how long does it take for an *ordinary* node
//! with an ordinary ID to output?" — is a claim about the **population** of
//! nodes, not any single one. The service layer's batched query path
//! ([`RadiusQueryService::query_batch`]) shards a whole generation across
//! the persistent pool in one admitted request; this module folds that
//! sharded radius vector through the measurement layer ([`MeasureSet`],
//! [`RadiusCdf`]) so a complete E-style distributional measurement — CDF,
//! quantile, or the full measure set — becomes **one service call on one
//! pinned epoch**.
//!
//! The fold happens on the reply's own pinned generation: the
//! [`BatchReply`] keeps its epoch's frozen snapshot alive, so the measures
//! are computed against exactly the graph that produced the radii, however
//! many publishes land in between.
//!
//! The endpoints live in this crate (not `avglocal-service`) because the
//! measurement layer sits above the service layer in the dependency order;
//! they are provided as an extension trait, [`AggregateQueries`], blanket
//! implemented for every batch-capable service.

use avglocal_runtime::BallAlgorithm;
use avglocal_service::{QueryOptions, QueryRequest, RadiusQueryService};

use crate::cdf::RadiusCdf;
use crate::measure::MeasureSet;
use crate::profile::RadiusProfile;

#[cfg(doc)]
use avglocal_service::BatchReply;

/// The radius distribution of a whole generation, from one batched call.
#[derive(Debug, Clone, PartialEq)]
pub struct CdfReply {
    /// Epoch of the generation the distribution describes.
    pub epoch: u64,
    /// Exact ECDF over every node's decision radius.
    pub cdf: RadiusCdf,
}

/// One quantile of a generation's radius distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileReply {
    /// Epoch of the generation the quantile describes.
    pub epoch: u64,
    /// The requested quantile, in per-mille (500 = median, 990 = p99).
    pub per_mille: u16,
    /// The radius at that quantile (nearest-rank, as a float to match
    /// [`RadiusCdf::quantile`]).
    pub radius: f64,
}

/// The full measure set of a generation, from one batched call.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuresReply {
    /// Epoch of the generation the measures describe.
    pub epoch: u64,
    /// Worst-case, average, median and weighted measures over the
    /// generation's radius profile.
    pub measures: MeasureSet,
}

/// Aggregate endpoints over a batch-capable [`RadiusQueryService`]: fold a
/// whole pinned generation's sharded radius vector into the paper's
/// distributional measures in one admitted service call.
///
/// Each endpoint issues one [`QueryRequest::all`] batch (one admission
/// slot, one shared deadline budget) and requires every entry to complete:
/// a deadline expiring mid-batch surfaces as the same typed
/// [`ServiceError::DeadlineExceeded`](avglocal_service::ServiceError::DeadlineExceeded)
/// a single query would report, via [`BatchReply::radii`].
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use avglocal::prelude::*;
/// use avglocal::service::{QueryOptions, RadiusQueryService, ServiceConfig, TestClock};
/// use avglocal::AggregateQueries;
/// use avglocal::runtime::examples::NaiveLargestId;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ring = generators::cycle(64)?;
/// IdAssignment::Shuffled { seed: 7 }.apply(&mut ring)?;
/// let service = RadiusQueryService::new(
///     NaiveLargestId,
///     Knowledge::none(),
///     ring.freeze(),
///     Arc::new(TestClock::new()),
///     ServiceConfig::default(),
/// );
/// // The paper's separation, measured through the service in one call:
/// let reply = service.query_measures(QueryOptions::new())?;
/// assert_eq!(reply.measures.pair().worst_case, 32.0);
/// assert!(reply.measures.pair().average < 8.0);
/// # Ok(())
/// # }
/// ```
pub trait AggregateQueries {
    /// The exact radius ECDF of the pinned generation's whole population.
    ///
    /// # Errors
    ///
    /// Same as [`RadiusQueryService::query_batch`], plus the typed
    /// deadline/probe error of the first incomplete entry when the shared
    /// budget expired mid-batch.
    fn query_cdf(&self, options: QueryOptions) -> avglocal_service::Result<CdfReply>;

    /// One nearest-rank quantile (in per-mille) of the generation's radius
    /// distribution.
    ///
    /// # Errors
    ///
    /// Same as [`AggregateQueries::query_cdf`].
    fn query_quantile(
        &self,
        per_mille: u16,
        options: QueryOptions,
    ) -> avglocal_service::Result<QuantileReply>;

    /// The full [`MeasureSet`] — worst-case, average, median, weighted —
    /// of the pinned generation, computed against the reply's own snapshot.
    ///
    /// # Errors
    ///
    /// Same as [`AggregateQueries::query_cdf`].
    fn query_measures(&self, options: QueryOptions) -> avglocal_service::Result<MeasuresReply>;
}

impl<A> AggregateQueries for RadiusQueryService<A>
where
    A: BallAlgorithm + Sync,
    A::Output: Send,
{
    fn query_cdf(&self, options: QueryOptions) -> avglocal_service::Result<CdfReply> {
        let reply = self.query_batch(&QueryRequest::all(options))?;
        let radii = reply.radii()?;
        Ok(CdfReply { epoch: reply.epoch(), cdf: RadiusCdf::from_radii(&radii) })
    }

    fn query_quantile(
        &self,
        per_mille: u16,
        options: QueryOptions,
    ) -> avglocal_service::Result<QuantileReply> {
        let cdf = self.query_cdf(options)?;
        Ok(QuantileReply { epoch: cdf.epoch, per_mille, radius: cdf.cdf.quantile(per_mille) })
    }

    fn query_measures(&self, options: QueryOptions) -> avglocal_service::Result<MeasuresReply> {
        let reply = self.query_batch(&QueryRequest::all(options))?;
        let radii = reply.radii()?;
        let profile = RadiusProfile::new(radii);
        let measures = MeasureSet::of_csr(&profile, reply.generation().session().csr());
        Ok(MeasuresReply { epoch: reply.epoch(), measures })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use avglocal_graph::{generators, IdAssignment, NodeId};
    use avglocal_runtime::examples::NaiveLargestId;
    use avglocal_runtime::{BallExecutor, Knowledge};
    use avglocal_service::{ServiceConfig, ServiceError, TestClock};

    fn service_on_shuffled_cycle(n: usize, seed: u64) -> RadiusQueryService<NaiveLargestId> {
        let mut g = generators::cycle(n).unwrap();
        IdAssignment::Shuffled { seed }.apply(&mut g).unwrap();
        RadiusQueryService::new(
            NaiveLargestId,
            Knowledge::none(),
            g.freeze(),
            Arc::new(TestClock::new()),
            ServiceConfig::default(),
        )
    }

    #[test]
    fn aggregate_replies_match_the_sequential_measurement() {
        let service = service_on_shuffled_cycle(48, 11);
        let pinned = service.pin();
        let reference = BallExecutor::new()
            .run_frozen_sequential(pinned.session().csr(), &NaiveLargestId, Knowledge::none())
            .unwrap();
        let radii: Vec<usize> = (0..48).map(|v| reference.radius(NodeId::new(v))).collect();
        let profile = RadiusProfile::new(radii.clone());

        let cdf = service.query_cdf(QueryOptions::new()).unwrap();
        assert_eq!(cdf.epoch, 1);
        assert_eq!(cdf.cdf, RadiusCdf::from_radii(&radii));

        let median = service.query_quantile(500, QueryOptions::new()).unwrap();
        assert_eq!(median.radius, RadiusCdf::from_radii(&radii).quantile(500));
        assert_eq!(median.per_mille, 500);

        let measures = service.query_measures(QueryOptions::new()).unwrap();
        assert_eq!(measures.epoch, 1);
        assert_eq!(measures.measures, MeasureSet::of_csr(&profile, pinned.session().csr()));
    }

    #[test]
    fn aggregates_pin_one_epoch_across_swaps() {
        let service = service_on_shuffled_cycle(36, 5);
        service.publish_csr(generators::cycle(36).unwrap().freeze()).unwrap();
        let cdf = service.query_cdf(QueryOptions::new()).unwrap();
        assert_eq!(cdf.epoch, 2, "aggregates serve the currently pinned generation");
    }

    #[test]
    fn expired_aggregate_surfaces_the_single_query_deadline_error() {
        // An autoticking clock with a zero budget cancels every probe at
        // radius 0; the aggregate must refuse to fold a partial vector.
        let mut g = generators::cycle(32).unwrap();
        IdAssignment::Shuffled { seed: 2 }.apply(&mut g).unwrap();
        let service = RadiusQueryService::new(
            NaiveLargestId,
            Knowledge::none(),
            g.freeze(),
            Arc::new(TestClock::with_autotick(1)),
            ServiceConfig::default(),
        );
        let err = service.query_cdf(QueryOptions::new().with_deadline(0)).unwrap_err();
        assert!(matches!(err, ServiceError::DeadlineExceeded { budget: 0, radius: 0 }), "{err:?}");
    }
}
