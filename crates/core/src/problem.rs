//! A uniform interface over the problems studied in the experiments.
//!
//! Each [`Problem`] bundles an algorithm, the executor that drives it, and
//! the verifier that checks its output, so the experiment harness can sweep
//! over problems without caring about their output types.

use std::fmt;

use avglocal_algorithms::{
    run_mis, run_three_coloring, verify, FullInfoColoring, FullInfoLargestId, KnowTheLeader,
    LandmarkColoring, LargestId,
};
use avglocal_graph::{ComponentLabels, Graph};
use avglocal_runtime::{BallAlgorithm, BallExecution, BallExecutor, FrozenExecutor, Knowledge};

use crate::error::{CoreError, Result};
use crate::profile::RadiusProfile;

/// The problems (algorithm + verifier) available to the experiment harness.
///
/// All of them run on cycles; [`Problem::LargestId`], [`Problem::KnowTheLeader`]
/// and the full-information baselines also run on arbitrary connected graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Problem {
    /// The paper's Section 2 problem with its ball-growing algorithm.
    LargestId,
    /// Largest ID solved by the lazy full-information baseline.
    FullInfoLargestId,
    /// Every node must name the leader — no early stopping is possible.
    KnowTheLeader,
    /// 3-colouring of the oriented ring via Cole–Vishkin.
    ThreeColoring,
    /// Variable-radius 4-colouring via landmarks (Lemma 2 style).
    LandmarkColoring,
    /// 3-colouring by the full-information baseline.
    FullInfoColoring,
    /// Maximal independent set on the ring via 3-colouring.
    Mis,
    /// Maximal matching on the ring via 3-colouring and successor-edge claims.
    Matching,
}

impl Problem {
    /// All problems, in display order.
    pub const ALL: [Problem; 8] = [
        Problem::LargestId,
        Problem::FullInfoLargestId,
        Problem::KnowTheLeader,
        Problem::ThreeColoring,
        Problem::LandmarkColoring,
        Problem::FullInfoColoring,
        Problem::Mis,
        Problem::Matching,
    ];

    /// Short machine-friendly name.
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            Problem::LargestId => "largest_id",
            Problem::FullInfoLargestId => "full_info_largest_id",
            Problem::KnowTheLeader => "know_the_leader",
            Problem::ThreeColoring => "three_coloring",
            Problem::LandmarkColoring => "landmark_coloring",
            Problem::FullInfoColoring => "full_info_coloring",
            Problem::Mis => "mis",
            Problem::Matching => "matching",
        }
    }

    /// Returns `true` when the problem's algorithm requires the graph to be a
    /// cycle.
    #[must_use]
    pub fn requires_cycle(&self) -> bool {
        matches!(
            self,
            Problem::ThreeColoring
                | Problem::LandmarkColoring
                | Problem::FullInfoColoring
                | Problem::Mis
                | Problem::Matching
        )
    }

    /// Returns `true` when the problem's algorithm runs through the ball
    /// view ([`BallExecutor`] / [`FrozenExecutor`]) — these are the problems
    /// whose sweep trials can share one frozen adjacency snapshot.
    ///
    /// The match is deliberately exhaustive (no wildcard) and mirrors which
    /// arms of `run_inner` go through `ball_run`: adding a variant forces
    /// both places to classify it.
    #[must_use]
    pub fn uses_ball_view(&self) -> bool {
        match self {
            Problem::LargestId
            | Problem::FullInfoLargestId
            | Problem::KnowTheLeader
            | Problem::LandmarkColoring
            | Problem::FullInfoColoring => true,
            Problem::ThreeColoring | Problem::Mis | Problem::Matching => false,
        }
    }

    /// Runs the problem's algorithm on `graph`, verifies the output, and
    /// returns the radius profile.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Runtime`] when the execution fails (for example
    /// when a ring-only algorithm is run on another topology) and
    /// [`CoreError::InvalidOutput`] when the verifier rejects the output —
    /// the latter should never happen and indicates a bug.
    pub fn run(&self, graph: &Graph) -> Result<RadiusProfile> {
        self.run_inner(graph, None, None)
    }

    /// Like [`Problem::run`], but with explicit per-component semantics:
    /// `graph` may be disconnected, every ball saturates at its component
    /// boundary, and outputs are verified **per component** (e.g. largest-ID
    /// elects one winner per component, not one global winner).
    ///
    /// `labels` must be the component labelling of `graph` (usually taken
    /// from the frozen snapshot's
    /// [`avglocal_graph::CsrGraph::components`] or computed with
    /// [`ComponentLabels::of_graph`]). On a connected graph this is
    /// equivalent to [`Problem::run`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Problem::run`]; ring-only problems additionally
    /// fail on any disconnected (hence non-cycle) instance.
    ///
    /// # Panics
    ///
    /// Panics when `labels` does not cover every node of `graph`.
    pub fn run_per_component(
        &self,
        graph: &Graph,
        labels: &ComponentLabels,
    ) -> Result<RadiusProfile> {
        assert_eq!(
            labels.node_count(),
            graph.node_count(),
            "the component labelling must cover every node of the graph"
        );
        self.run_inner(graph, None, Some(labels))
    }

    /// Like [`Problem::run`], but ball-view problems execute on `session`'s
    /// frozen snapshot instead of freezing `graph` per call. The session must
    /// mirror `graph` (same adjacency and identifiers) — the sweep harness
    /// maintains this by cloning one frozen base per size and swapping the
    /// identifier table per trial. Round-based problems fall back to the
    /// graph; results are identical either way.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Problem::run`].
    ///
    /// # Panics
    ///
    /// Panics when `session` and `graph` disagree on the node count.
    pub fn run_with_session(
        &self,
        graph: &Graph,
        session: &FrozenExecutor,
    ) -> Result<RadiusProfile> {
        assert_eq!(
            session.node_count(),
            graph.node_count(),
            "the frozen session must mirror the graph it stands in for"
        );
        self.run_inner(graph, Some(session), None)
    }

    /// The general entry point the sweep harness uses: an optional frozen
    /// session *and* optional per-component semantics.
    pub(crate) fn run_with(
        &self,
        graph: &Graph,
        session: Option<&FrozenExecutor>,
        components: Option<&ComponentLabels>,
    ) -> Result<RadiusProfile> {
        self.run_inner(graph, session, components)
    }

    fn run_inner(
        &self,
        graph: &Graph,
        session: Option<&FrozenExecutor>,
        components: Option<&ComponentLabels>,
    ) -> Result<RadiusProfile> {
        /// Runs a ball algorithm on the session when one is available,
        /// freezing the graph per call otherwise.
        fn ball_run<A>(
            graph: &Graph,
            session: Option<&FrozenExecutor>,
            algorithm: &A,
            knowledge: Knowledge,
        ) -> avglocal_runtime::Result<BallExecution<A::Output>>
        where
            A: BallAlgorithm + Sync,
            A::Output: Send,
        {
            match session {
                Some(frozen) => frozen.run(algorithm, knowledge),
                None => BallExecutor::new().run(graph, algorithm, knowledge),
            }
        }

        let knowledge = Knowledge::none();
        // Outputs of ball algorithms are scoped to the component the ball
        // saturates in, so the per-component entry points swap in the
        // component-wise verifiers; on a connected graph the two coincide.
        match self {
            Problem::LargestId => {
                let run = ball_run(graph, session, &LargestId, knowledge)?;
                self.check(match components {
                    Some(labels) => {
                        verify::is_correct_largest_id_per_component(graph, labels, run.outputs())
                    }
                    None => verify::is_correct_largest_id(graph, run.outputs()),
                })?;
                Ok(RadiusProfile::from_ball_execution(&run))
            }
            Problem::FullInfoLargestId => {
                let run = ball_run(graph, session, &FullInfoLargestId, knowledge)?;
                self.check(match components {
                    Some(labels) => {
                        verify::is_correct_largest_id_per_component(graph, labels, run.outputs())
                    }
                    None => verify::is_correct_largest_id(graph, run.outputs()),
                })?;
                Ok(RadiusProfile::from_ball_execution(&run))
            }
            Problem::KnowTheLeader => {
                let run = ball_run(graph, session, &KnowTheLeader, knowledge)?;
                match components {
                    Some(labels) => {
                        self.check(verify::is_component_leader_output(
                            graph,
                            labels,
                            run.outputs(),
                        ))?;
                    }
                    None => {
                        let expected = graph
                            .max_identifier_node()
                            .map(|v| graph.identifier(v))
                            .ok_or_else(|| CoreError::InvalidConfiguration {
                                reason: "cannot elect a leader on an empty graph".to_string(),
                            })?;
                        self.check(run.outputs().iter().all(|&id| id == expected))?;
                    }
                }
                Ok(RadiusProfile::from_ball_execution(&run))
            }
            Problem::ThreeColoring => {
                let (colors, rounds) = run_three_coloring(graph)?;
                self.check(verify::is_proper_coloring(graph, &colors, 3))?;
                Ok(RadiusProfile::new(rounds))
            }
            Problem::LandmarkColoring => {
                let run = ball_run(graph, session, &LandmarkColoring, knowledge)?;
                self.check(verify::is_proper_coloring(graph, run.outputs(), 4))?;
                Ok(RadiusProfile::from_ball_execution(&run))
            }
            Problem::FullInfoColoring => {
                let run = ball_run(graph, session, &FullInfoColoring, knowledge)?;
                self.check(verify::is_proper_coloring(graph, run.outputs(), 3))?;
                Ok(RadiusProfile::from_ball_execution(&run))
            }
            Problem::Mis => {
                let in_set = run_mis(graph)?;
                self.check(verify::is_maximal_independent_set(graph, &in_set))?;
                // The MIS radii come from the round-based pipeline; re-run via
                // the executor to obtain decision rounds.
                let orientation = avglocal_algorithms::RingOrientation::trace(graph)?;
                let algo = avglocal_algorithms::MisRing::new(orientation);
                let run = avglocal_runtime::SyncExecutor::new().run(graph, &algo, knowledge)?;
                RadiusProfile::from_execution(&run)
            }
            Problem::Matching => {
                let orientation = avglocal_algorithms::RingOrientation::trace(graph)?;
                let algo = avglocal_algorithms::MatchingRing::new(orientation);
                let run = avglocal_runtime::SyncExecutor::new().run(graph, &algo, knowledge)?;
                let matched: Vec<Option<usize>> = run
                    .outputs()
                    .into_iter()
                    .map(|partner| {
                        partner.and_then(|id| graph.node_by_identifier(id).map(|v| v.index()))
                    })
                    .collect();
                self.check(verify::is_maximal_matching(graph, &matched))?;
                RadiusProfile::from_execution(&run)
            }
        }
    }

    /// Probes the decision radii of an explicit node subset on a frozen
    /// session — the engine of the sampling estimators.
    ///
    /// Results come back positionally aligned with `nodes` through the
    /// index-addressed batch path
    /// ([`FrozenExecutor::run_nodes_with`]), so they are bit-identical
    /// across schedulings and thread counts. Unlike the full-sweep entry
    /// points this **skips output verification**: global predicates (one
    /// leader, proper colouring) are not checkable on a sampled subset, and
    /// the statistical suite pins sampled radii against verified full
    /// sweeps instead.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfiguration`] for round-based problems (no
    /// per-node ball probes exist; see [`Problem::uses_ball_view`]);
    /// [`CoreError::Runtime`] with the first failing probe in node order
    /// otherwise.
    pub fn probe_radii(
        &self,
        session: &FrozenExecutor,
        nodes: &[avglocal_graph::NodeId],
        options: &avglocal_runtime::NodeBatchOptions<'_>,
    ) -> Result<Vec<usize>> {
        fn probe<A>(
            session: &FrozenExecutor,
            algorithm: &A,
            nodes: &[avglocal_graph::NodeId],
            options: &avglocal_runtime::NodeBatchOptions<'_>,
        ) -> Result<Vec<usize>>
        where
            A: BallAlgorithm + Sync,
            A::Output: Send,
        {
            session
                .run_nodes_with(nodes, algorithm, Knowledge::none(), options)
                .into_iter()
                .map(|r| r.map(|(_, radius)| radius).map_err(CoreError::from))
                .collect()
        }

        match self {
            Problem::LargestId => probe(session, &LargestId, nodes, options),
            Problem::FullInfoLargestId => probe(session, &FullInfoLargestId, nodes, options),
            Problem::KnowTheLeader => probe(session, &KnowTheLeader, nodes, options),
            Problem::LandmarkColoring => probe(session, &LandmarkColoring, nodes, options),
            Problem::FullInfoColoring => probe(session, &FullInfoColoring, nodes, options),
            Problem::ThreeColoring | Problem::Mis | Problem::Matching => {
                Err(CoreError::InvalidConfiguration {
                    reason: format!(
                        "sampled probes need a ball-view problem; '{}' is round-based",
                        self.key()
                    ),
                })
            }
        }
    }

    fn check(&self, valid: bool) -> Result<()> {
        if valid {
            Ok(())
        } else {
            Err(CoreError::InvalidOutput { problem: self.key().to_string() })
        }
    }
}

impl fmt::Display for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Problem::LargestId => "largest ID (ball-growing)",
            Problem::FullInfoLargestId => "largest ID (full information)",
            Problem::KnowTheLeader => "know the leader",
            Problem::ThreeColoring => "3-colouring (Cole-Vishkin)",
            Problem::LandmarkColoring => "4-colouring (landmarks)",
            Problem::FullInfoColoring => "3-colouring (full information)",
            Problem::Mis => "maximal independent set",
            Problem::Matching => "maximal matching",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avglocal_graph::{generators, IdAssignment};

    fn ring(n: usize, seed: u64) -> Graph {
        let mut g = generators::cycle(n).unwrap();
        IdAssignment::Shuffled { seed }.apply(&mut g).unwrap();
        g
    }

    #[test]
    fn every_problem_runs_on_a_ring() {
        let g = ring(24, 7);
        for problem in Problem::ALL {
            let profile = problem.run(&g).expect("problem should run on a ring");
            assert_eq!(profile.len(), 24, "{problem}");
            assert!(profile.max() <= 24, "{problem}");
        }
    }

    #[test]
    fn largest_id_has_smaller_average_than_baseline() {
        let g = ring(40, 3);
        let smart = Problem::LargestId.run(&g).unwrap();
        let lazy = Problem::FullInfoLargestId.run(&g).unwrap();
        assert!(smart.average() < lazy.average());
        assert_eq!(smart.max(), lazy.max());
    }

    #[test]
    fn coloring_beats_know_the_leader_on_average() {
        let g = ring(64, 9);
        let coloring = Problem::ThreeColoring.run(&g).unwrap();
        let leader = Problem::KnowTheLeader.run(&g).unwrap();
        assert!(coloring.average() < leader.average());
        assert!(coloring.max() < leader.max());
    }

    #[test]
    fn ring_only_problems_fail_on_other_topologies() {
        let mut star = generators::star(8).unwrap();
        IdAssignment::Shuffled { seed: 1 }.apply(&mut star).unwrap();
        assert!(Problem::ThreeColoring.run(&star).is_err());
        assert!(Problem::Mis.run(&star).is_err());
        assert!(Problem::Matching.run(&star).is_err());
        // Topology-agnostic problems still work.
        assert!(Problem::LargestId.run(&star).is_ok());
        assert!(Problem::KnowTheLeader.run(&star).is_ok());
    }

    #[test]
    fn per_component_runs_on_disconnected_graphs() {
        // Two disjoint rings: the global run rejects the two winners, the
        // per-component run accepts them and scopes every radius to the
        // component.
        let mut g = Graph::new();
        for i in 0..12 {
            g.add_node(avglocal_graph::Identifier::new(i));
        }
        let v = avglocal_graph::NodeId::new;
        for c in [0usize, 6] {
            for i in 0..6 {
                g.add_edge(v(c + i), v(c + (i + 1) % 6)).unwrap();
            }
        }
        let labels = ComponentLabels::of_graph(&g);
        assert_eq!(labels.count(), 2);
        for problem in [Problem::LargestId, Problem::FullInfoLargestId, Problem::KnowTheLeader] {
            assert!(problem.run(&g).is_err(), "{problem} must reject global verification");
            let profile = problem.run_per_component(&g, &labels).unwrap();
            assert_eq!(profile.len(), 12, "{problem}");
            // No ball ever needs to leave its 6-node component.
            assert!(profile.max() <= 3, "{problem}");
        }
    }

    #[test]
    fn per_component_equals_global_on_connected_graphs() {
        let g = ring(20, 11);
        let labels = ComponentLabels::of_graph(&g);
        for problem in [Problem::LargestId, Problem::KnowTheLeader] {
            assert_eq!(problem.run(&g).unwrap(), problem.run_per_component(&g, &labels).unwrap());
        }
    }

    #[test]
    fn keys_and_names_are_distinct() {
        let mut keys: Vec<&str> = Problem::ALL.iter().map(Problem::key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), Problem::ALL.len());
        let mut names: Vec<String> = Problem::ALL.iter().map(|p| p.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), Problem::ALL.len());
    }

    #[test]
    fn requires_cycle_classification() {
        assert!(!Problem::LargestId.requires_cycle());
        assert!(Problem::ThreeColoring.requires_cycle());
        assert!(Problem::Mis.requires_cycle());
        assert!(Problem::Matching.requires_cycle());
        assert!(!Problem::KnowTheLeader.requires_cycle());
    }
}
