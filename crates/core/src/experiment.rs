//! The experiment harness: sweeps over sizes and identifier assignments.
//!
//! Every experiment in `EXPERIMENTS.md` is a sweep: pick a problem, a list of
//! ring sizes, and a policy for assigning identifiers; run the algorithm;
//! record the worst-case and average radii. The harness keeps the runs
//! deterministic (seeds are explicit) so the reported tables are exactly
//! reproducible.

use avglocal_analysis::Summary;
use avglocal_graph::{generators, Graph, IdAssignment};
use rayon::prelude::*;

use crate::error::{CoreError, Result};
use crate::measure::MeasurePair;
use crate::problem::Problem;
use crate::profile::RadiusProfile;

/// How identifiers are assigned to the nodes in a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AssignmentPolicy {
    /// Identifiers follow the node order (`0, 1, …, n-1` around the cycle) —
    /// the adversarial case for the largest-ID average.
    Identity,
    /// Identifiers in reverse node order.
    Reversed,
    /// One uniformly random permutation per trial, derived from `base_seed`.
    Random {
        /// Seed from which per-trial seeds are derived.
        base_seed: u64,
    },
    /// A fixed explicit assignment used for every trial.
    Fixed(IdAssignment),
}

impl AssignmentPolicy {
    /// The assignment used for trial number `trial`.
    #[must_use]
    pub fn assignment_for_trial(&self, trial: usize) -> IdAssignment {
        match self {
            AssignmentPolicy::Identity => IdAssignment::Identity,
            AssignmentPolicy::Reversed => IdAssignment::Reversed,
            AssignmentPolicy::Random { base_seed } => {
                IdAssignment::Shuffled { seed: base_seed.wrapping_add(trial as u64) }
            }
            AssignmentPolicy::Fixed(a) => a.clone(),
        }
    }
}

/// One row of a sweep: a single ring size, aggregated over the trials.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Number of nodes.
    pub n: usize,
    /// Number of trials aggregated in this row.
    pub trials: usize,
    /// Mean (over trials) of the worst-case radius.
    pub worst_case: f64,
    /// Mean (over trials) of the average radius.
    pub average: f64,
    /// Summary of the per-trial average radii (for confidence intervals).
    pub average_summary: Summary,
    /// Mean (over trials) of the total radius.
    pub total: f64,
}

impl SweepRow {
    /// The separation factor `worst_case / average` of this row.
    #[must_use]
    pub fn separation(&self) -> f64 {
        if self.average == 0.0 {
            1.0
        } else {
            self.worst_case / self.average
        }
    }
}

/// The outcome of a sweep: one row per requested size.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// The problem that was swept.
    pub problem: Problem,
    /// One row per size, in the order the sizes were given.
    pub rows: Vec<SweepRow>,
}

impl SweepResult {
    /// The sizes of the sweep.
    #[must_use]
    pub fn sizes(&self) -> Vec<usize> {
        self.rows.iter().map(|r| r.n).collect()
    }

    /// The average-radius column as `f64`s (for model fitting).
    #[must_use]
    pub fn average_column(&self) -> Vec<f64> {
        self.rows.iter().map(|r| r.average).collect()
    }

    /// The worst-case-radius column as `f64`s (for model fitting).
    #[must_use]
    pub fn worst_case_column(&self) -> Vec<f64> {
        self.rows.iter().map(|r| r.worst_case).collect()
    }
}

/// Configuration of a sweep experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    problem: Problem,
    sizes: Vec<usize>,
    policy: AssignmentPolicy,
    trials: usize,
}

impl Sweep {
    /// Creates a sweep of `problem` over the given ring sizes.
    #[must_use]
    pub fn new(problem: Problem, sizes: Vec<usize>) -> Self {
        Sweep { problem, sizes, policy: AssignmentPolicy::Random { base_seed: 0 }, trials: 1 }
    }

    /// Sets the identifier-assignment policy (default: random with seed 0).
    #[must_use]
    pub fn with_policy(mut self, policy: AssignmentPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the number of trials per size (default: 1).
    #[must_use]
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Runs the sweep.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for an empty size list or
    /// zero trials, and propagates any execution or validation error.
    pub fn run(&self) -> Result<SweepResult> {
        if self.sizes.is_empty() {
            return Err(CoreError::InvalidConfiguration {
                reason: "sweep needs at least one size".to_string(),
            });
        }
        if self.trials == 0 {
            return Err(CoreError::InvalidConfiguration {
                reason: "sweep needs at least one trial".to_string(),
            });
        }
        let mut rows = Vec::with_capacity(self.sizes.len());
        for &n in &self.sizes {
            // Trials are independent and their seeds explicit, so they run in
            // parallel; results are collected in trial order, keeping every
            // aggregate bit-for-bit identical to a sequential sweep.
            let per_trial: Vec<Result<(f64, f64, f64)>> = (0..self.trials)
                .into_par_iter()
                .map(|trial| {
                    let assignment = self.policy.assignment_for_trial(trial);
                    let profile = run_on_cycle(self.problem, n, &assignment)?;
                    let pair = MeasurePair::of(&profile);
                    Ok((pair.worst_case, pair.average, profile.total() as f64))
                })
                .collect();
            let mut worst = Vec::with_capacity(self.trials);
            let mut averages = Vec::with_capacity(self.trials);
            let mut totals = Vec::with_capacity(self.trials);
            for result in per_trial {
                let (w, a, t) = result?;
                worst.push(w);
                averages.push(a);
                totals.push(t);
            }
            let average_summary = Summary::from_values(&averages);
            rows.push(SweepRow {
                n,
                trials: self.trials,
                worst_case: mean(&worst),
                average: average_summary.mean,
                average_summary,
                total: mean(&totals),
            });
        }
        Ok(SweepResult { problem: self.problem, rows })
    }
}

/// Runs `problem` on an `n`-cycle with the given identifier assignment and
/// returns the radius profile.
///
/// # Errors
///
/// Propagates graph-construction and execution errors.
pub fn run_on_cycle(
    problem: Problem,
    n: usize,
    assignment: &IdAssignment,
) -> Result<RadiusProfile> {
    let graph = cycle_with_assignment(n, assignment)?;
    problem.run(&graph)
}

/// Builds an `n`-cycle and applies `assignment` to it.
///
/// # Errors
///
/// Propagates graph-construction errors (for example `n < 3`).
pub fn cycle_with_assignment(n: usize, assignment: &IdAssignment) -> Result<Graph> {
    let mut graph = generators::cycle(n)?;
    assignment.apply(&mut graph)?;
    Ok(graph)
}

/// The Section 4 "further work" study: the distribution of both measures when
/// the identifier permutation is uniformly random.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomPermutationStudy {
    /// Ring size.
    pub n: usize,
    /// Number of sampled permutations.
    pub samples: usize,
    /// Summary of the per-sample average radii.
    pub average_radius: Summary,
    /// Summary of the per-sample worst-case radii.
    pub worst_case_radius: Summary,
}

/// Samples `samples` uniformly random identifier permutations of an
/// `n`-cycle, runs `problem` on each, and summarises both measures.
///
/// # Errors
///
/// Propagates execution errors; returns [`CoreError::InvalidConfiguration`]
/// when `samples == 0`.
pub fn random_permutation_study(
    problem: Problem,
    n: usize,
    samples: usize,
    base_seed: u64,
) -> Result<RandomPermutationStudy> {
    if samples == 0 {
        return Err(CoreError::InvalidConfiguration {
            reason: "the random-permutation study needs at least one sample".to_string(),
        });
    }
    let per_sample: Vec<Result<(f64, f64)>> = (0..samples)
        .into_par_iter()
        .map(|i| {
            let assignment = IdAssignment::Shuffled { seed: base_seed.wrapping_add(i as u64) };
            let profile = run_on_cycle(problem, n, &assignment)?;
            Ok((profile.average(), profile.max() as f64))
        })
        .collect();
    let mut averages = Vec::with_capacity(samples);
    let mut worsts = Vec::with_capacity(samples);
    for result in per_sample {
        let (average, worst) = result?;
        averages.push(average);
        worsts.push(worst);
    }
    Ok(RandomPermutationStudy {
        n,
        samples,
        average_radius: Summary::from_values(&averages),
        worst_case_radius: Summary::from_values(&worsts),
    })
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_one_row_per_size() {
        let result = Sweep::new(Problem::LargestId, vec![8, 16, 32])
            .with_policy(AssignmentPolicy::Random { base_seed: 1 })
            .with_trials(3)
            .run()
            .unwrap();
        assert_eq!(result.rows.len(), 3);
        assert_eq!(result.sizes(), vec![8, 16, 32]);
        for row in &result.rows {
            assert_eq!(row.trials, 3);
            assert!(row.worst_case >= row.average);
            assert!(row.separation() >= 1.0);
        }
        // Worst case grows linearly with n for largest ID.
        assert_eq!(result.rows[2].worst_case, 16.0);
    }

    #[test]
    fn sweep_validates_configuration() {
        assert!(Sweep::new(Problem::LargestId, vec![]).run().is_err());
        assert!(Sweep::new(Problem::LargestId, vec![8]).with_trials(0).run().is_err());
    }

    #[test]
    fn identity_policy_is_deterministic() {
        let a = Sweep::new(Problem::LargestId, vec![16])
            .with_policy(AssignmentPolicy::Identity)
            .run()
            .unwrap();
        let b = Sweep::new(Problem::LargestId, vec![16])
            .with_policy(AssignmentPolicy::Identity)
            .run()
            .unwrap();
        assert_eq!(a, b);
        // Identity: n-1 nodes stop at radius 1, the winner at n/2.
        assert!((a.rows[0].average - (15.0 + 8.0) / 16.0).abs() < 1e-12);
    }

    #[test]
    fn policies_produce_expected_assignments() {
        assert_eq!(AssignmentPolicy::Identity.assignment_for_trial(3), IdAssignment::Identity);
        assert_eq!(AssignmentPolicy::Reversed.assignment_for_trial(0), IdAssignment::Reversed);
        assert_eq!(
            AssignmentPolicy::Random { base_seed: 10 }.assignment_for_trial(2),
            IdAssignment::Shuffled { seed: 12 }
        );
        let fixed = AssignmentPolicy::Fixed(IdAssignment::Rotated { shift: 1 });
        assert_eq!(fixed.assignment_for_trial(5), IdAssignment::Rotated { shift: 1 });
    }

    #[test]
    fn random_study_brackets_the_measures() {
        let study = random_permutation_study(Problem::LargestId, 64, 10, 7).unwrap();
        assert_eq!(study.samples, 10);
        // The worst-case radius is always n/2 = 32 for largest ID.
        assert_eq!(study.worst_case_radius.mean, 32.0);
        assert!(study.average_radius.mean < 10.0);
        assert!(study.average_radius.min >= 1.0);
    }

    #[test]
    fn random_study_rejects_zero_samples() {
        assert!(random_permutation_study(Problem::LargestId, 16, 0, 0).is_err());
    }

    #[test]
    fn sweep_columns_align_with_rows() {
        let result = Sweep::new(Problem::ThreeColoring, vec![8, 32])
            .with_policy(AssignmentPolicy::Random { base_seed: 5 })
            .run()
            .unwrap();
        assert_eq!(result.average_column().len(), 2);
        assert_eq!(result.worst_case_column(), vec![7.0, 7.0]);
    }
}
