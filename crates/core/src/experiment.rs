//! The experiment harness: sweeps over sizes, topologies and identifier
//! assignments.
//!
//! Every experiment in `EXPERIMENTS.md` is a sweep: pick a problem, a
//! [`Topology`], a list of sizes, and a policy for assigning identifiers; run
//! the algorithm; record the worst-case and average radii. The harness keeps
//! the runs deterministic (seeds are explicit) so the reported tables are
//! exactly reproducible.
//!
//! The paper states its results on the ring, so the cycle-specific entry
//! points ([`run_on_cycle`], [`cycle_with_assignment`],
//! [`random_permutation_study`]) remain as thin wrappers over the
//! topology-parameterised API; they produce bit-for-bit the same values as
//! before the generalisation.
//!
//! Within a sweep, the topology instance is built **once per size** and only
//! the identifier assignment varies across trials — for random graphs this is
//! a semantic requirement, not just an optimisation: the trials of a row must
//! measure identifier randomness on one fixed graph, not mix draws of the
//! graph itself.
//!
//! # Examples
//!
//! A two-size sweep over a hub-weighted family, reading both the scalar
//! measure columns and the full radius distribution of a row:
//!
//! ```
//! use avglocal::prelude::*;
//!
//! # fn main() -> Result<(), avglocal::CoreError> {
//! let result = Sweep::on(
//!     Problem::LargestId,
//!     Topology::PreferentialAttachment { m: 2, seed: 7 },
//!     vec![32, 64],
//! )
//! .with_policy(AssignmentPolicy::Random { base_seed: 1 })
//! .with_trials(3)
//! .run()?;
//!
//! assert_eq!(result.sizes(), vec![32, 64]);
//! let row = &result.rows[1];
//! assert_eq!(row.trials, 3);
//! assert!(row.worst_case >= row.average);
//! // The row's distribution pools all trials: 3 x 64 observations.
//! assert_eq!(row.cdf.observations(), 3 * 64);
//! assert_eq!(row.cdf.fraction_within(row.cdf.max_radius()), 1.0);
//! assert!(row.cdf.quantile(500) <= row.cdf.quantile(900));
//! # Ok(())
//! # }
//! ```

use avglocal_analysis::Summary;
use avglocal_graph::{
    derive_seed, ComponentLabels, ComponentMode, CsrGraph, Graph, IdAssignment, Topology,
};
use avglocal_runtime::{FrozenExecutor, NodeBatchOptions};
use rayon::prelude::*;

use crate::cdf::RadiusCdf;
use crate::error::{CoreError, Result};
use crate::measure::{ComponentMeasures, MeasureSet};
use crate::problem::Problem;
use crate::profile::RadiusProfile;
use crate::sampling::{Estimate, SamplePlan, SampledMeasureSet};

/// How identifiers are assigned to the nodes in a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AssignmentPolicy {
    /// Identifiers follow the node order (`0, 1, …, n-1` around the cycle) —
    /// the adversarial case for the largest-ID average.
    Identity,
    /// Identifiers in reverse node order.
    Reversed,
    /// One uniformly random permutation per trial, derived from `base_seed`.
    Random {
        /// Seed from which per-trial seeds are derived.
        base_seed: u64,
    },
    /// A fixed explicit assignment used for every trial.
    Fixed(IdAssignment),
}

impl AssignmentPolicy {
    /// The assignment used for trial number `trial`.
    ///
    /// Per-trial seeds are a SplitMix64-style mix of `(base_seed, trial)`
    /// (see [`derive_seed`]), so adjacent base seeds draw unrelated
    /// permutation streams — under the old additive derivation, base 0 /
    /// trial 1 and base 1 / trial 0 were the *same* permutation.
    #[must_use]
    pub fn assignment_for_trial(&self, trial: usize) -> IdAssignment {
        match self {
            AssignmentPolicy::Identity => IdAssignment::Identity,
            AssignmentPolicy::Reversed => IdAssignment::Reversed,
            AssignmentPolicy::Random { base_seed } => {
                IdAssignment::Shuffled { seed: derive_seed(*base_seed, trial as u64) }
            }
            AssignmentPolicy::Fixed(a) => a.clone(),
        }
    }
}

/// One row of a sweep: a single size, every measure aggregated over the
/// trials.
///
/// All measures of a trial come from **one** execution: the per-node radius
/// vector is folded into a [`MeasureSet`] (node-averaged, edge-averaged,
/// worst-case, median, total) in a single pass, so adding measures never
/// re-runs the algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// The topology the row was measured on.
    pub topology: Topology,
    /// Number of nodes.
    pub n: usize,
    /// Number of trials aggregated in this row.
    pub trials: usize,
    /// Number of connected components of the instance (1 unless the sweep
    /// runs in [`ComponentMode::PerComponent`]).
    pub components: usize,
    /// Mean (over trials) of the worst-case radius.
    pub worst_case: f64,
    /// Mean (over trials) of the node-averaged radius.
    pub average: f64,
    /// Summary of the per-trial node-averaged radii (for confidence
    /// intervals).
    pub average_summary: Summary,
    /// Mean (over trials) of the total radius.
    pub total: f64,
    /// Mean (over trials) of the edge-averaged radius with
    /// [`crate::measure::EdgeWeight::Max`] endpoints.
    pub edge_averaged: f64,
    /// Mean (over trials) of the edge-averaged radius with
    /// [`crate::measure::EdgeWeight::Mean`] endpoints.
    pub edge_averaged_mean: f64,
    /// Mean (over trials) of the per-trial median radius.
    pub median: f64,
    /// The pooled radius distribution of the row: every trial's radius
    /// vector merged exactly (`trials x n` observations), so any quantile —
    /// not just the scalar columns above — can be read off after the sweep.
    ///
    /// In a sampled sweep this pools the **raw sampled** radii (the
    /// observations actually probed) — unweighted, so biased for stratified
    /// and edge-endpoint designs; read quantile estimates off
    /// [`SweepRow::sampled`] instead.
    pub cdf: RadiusCdf,
    /// The sampling estimates when the sweep ran with
    /// [`Sweep::with_sample_plan`]; `None` for an exact sweep. When set,
    /// the scalar columns above hold the estimated values for the measures
    /// the plan supports and `0.0` for the rest — the typed [`SampledRow`]
    /// is the authoritative record of what was (and was not) estimated.
    pub sampled: Option<SampledRow>,
}

/// The per-size record of a sampled sweep: combined estimates with their
/// confidence half-widths, plus every trial's full [`SampledMeasureSet`].
#[derive(Debug, Clone, PartialEq)]
pub struct SampledRow {
    /// The plan the sweep sampled with.
    pub plan: SamplePlan,
    /// Nodes probed per trial (constant across trials of one row).
    pub probes: usize,
    /// Whether the budget covered the whole population (estimates are then
    /// exact, bit-identical to an exact sweep's measures).
    pub census: bool,
    /// Trial-combined node-averaged estimate ([`Estimate::mean_of`]), when
    /// the plan estimates it.
    pub node_averaged: Option<Estimate>,
    /// Trial-combined edge-averaged (max-endpoint) estimate.
    pub edge_averaged: Option<Estimate>,
    /// Trial-combined edge-averaged (mean-endpoint) estimate.
    pub edge_averaged_mean: Option<Estimate>,
    /// Mean over trials of the estimated median radius, when the plan
    /// estimates quantiles.
    pub median: Option<f64>,
    /// Every trial's estimate, in trial order.
    pub per_trial: Vec<SampledMeasureSet>,
}

impl SweepRow {
    /// The separation factor `worst_case / average` of this row.
    #[must_use]
    pub fn separation(&self) -> f64 {
        if self.average == 0.0 {
            1.0
        } else {
            self.worst_case / self.average
        }
    }
}

/// The outcome of a sweep: one row per requested size.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// The problem that was swept.
    pub problem: Problem,
    /// The topology the sweep ran on.
    pub topology: Topology,
    /// One row per size, in the order the sizes were given.
    pub rows: Vec<SweepRow>,
}

impl SweepResult {
    /// The sizes of the sweep.
    #[must_use]
    pub fn sizes(&self) -> Vec<usize> {
        self.rows.iter().map(|r| r.n).collect()
    }

    /// The average-radius column as `f64`s (for model fitting).
    #[must_use]
    pub fn average_column(&self) -> Vec<f64> {
        self.rows.iter().map(|r| r.average).collect()
    }

    /// The worst-case-radius column as `f64`s (for model fitting).
    #[must_use]
    pub fn worst_case_column(&self) -> Vec<f64> {
        self.rows.iter().map(|r| r.worst_case).collect()
    }

    /// The edge-averaged-radius column (max-endpoint weighting) as `f64`s.
    #[must_use]
    pub fn edge_averaged_column(&self) -> Vec<f64> {
        self.rows.iter().map(|r| r.edge_averaged).collect()
    }

    /// The median-radius column as `f64`s.
    #[must_use]
    pub fn median_column(&self) -> Vec<f64> {
        self.rows.iter().map(|r| r.median).collect()
    }

    /// An arbitrary quantile column, read off each row's pooled radius
    /// distribution (`per_mille` in thousandths, `500` = median). Unlike
    /// [`SweepResult::median_column`] — the mean of per-trial medians — this
    /// is the quantile of the **pooled** observations of the row.
    #[must_use]
    pub fn quantile_column(&self, per_mille: u16) -> Vec<f64> {
        self.rows.iter().map(|r| r.cdf.quantile(per_mille)).collect()
    }
}

/// Configuration of a sweep experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    problem: Problem,
    topology: Topology,
    sizes: Vec<usize>,
    policy: AssignmentPolicy,
    trials: usize,
    mode: ComponentMode,
    sample: Option<SamplePlan>,
    sample_seed: u64,
}

impl Sweep {
    /// Creates a sweep of `problem` over the given ring sizes (the paper's
    /// setting; use [`Sweep::on`] or [`Sweep::with_topology`] for other
    /// families).
    #[must_use]
    pub fn new(problem: Problem, sizes: Vec<usize>) -> Self {
        Sweep::on(problem, Topology::Cycle, sizes)
    }

    /// Creates a sweep of `problem` over the given sizes of `topology`.
    #[must_use]
    pub fn on(problem: Problem, topology: Topology, sizes: Vec<usize>) -> Self {
        Sweep {
            problem,
            topology,
            sizes,
            policy: AssignmentPolicy::Random { base_seed: 0 },
            trials: 1,
            mode: ComponentMode::RequireConnected,
            sample: None,
            sample_seed: 0,
        }
    }

    /// Sets the topology family (default: the cycle).
    #[must_use]
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Sets the identifier-assignment policy (default: random with seed 0).
    #[must_use]
    pub fn with_policy(mut self, policy: AssignmentPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the number of trials per size (default: 1).
    #[must_use]
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets how disconnected instances are handled (default:
    /// [`ComponentMode::RequireConnected`]).
    ///
    /// In [`ComponentMode::PerComponent`] a disconnected family — e.g.
    /// `G(n, p)` below the connectivity threshold — is a supported
    /// configuration instead of a hard error: the first draw is used as-is
    /// (no redraw loop), outputs are verified per component, every ball
    /// saturates at its component boundary, and the row reports the
    /// aggregated measures plus the component count.
    #[must_use]
    pub fn with_component_mode(mut self, mode: ComponentMode) -> Self {
        self.mode = mode;
        self
    }

    /// Switches the sweep to **sampled estimation**: instead of probing
    /// every node every trial, each trial probes only the subset `plan`
    /// draws and the rows report estimates with confidence half-widths
    /// ([`SweepRow::sampled`]). This is what extends E-style curves past
    /// the exact-sweep frontier — probe cost drops from Θ(n) balls per
    /// trial to Θ(budget).
    ///
    /// The sample set of trial `t` is a pure function of
    /// `(sample seed, t, plan)` and the instance (see
    /// [`SamplePlan::seed_for`]), so sampled sweeps keep the exact sweep's
    /// determinism contract: bit-identical results across runs,
    /// schedulings and thread counts. Only ball-view problems support
    /// per-node probes, and only whole-population (connected) sweeps are
    /// estimable; [`Sweep::run`] rejects other configurations.
    #[must_use]
    pub fn with_sample_plan(mut self, plan: SamplePlan) -> Self {
        self.sample = Some(plan);
        self
    }

    /// Sets the base seed of the sample streams (default 0). Kept separate
    /// from the id-assignment policy seed so resampling never perturbs the
    /// identifier draw and vice versa.
    #[must_use]
    pub fn with_sample_seed(mut self, seed: u64) -> Self {
        self.sample_seed = seed;
        self
    }

    /// Runs the sweep.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for an empty size list,
    /// zero trials, or a ring-only problem on a non-cycle topology, and
    /// propagates any construction, execution or validation error (including
    /// [`avglocal_graph::GraphError::Disconnected`] when a `G(n, p)` family
    /// cannot produce a connected instance).
    pub fn run(&self) -> Result<SweepResult> {
        if self.sizes.is_empty() {
            return Err(CoreError::InvalidConfiguration {
                reason: "sweep needs at least one size".to_string(),
            });
        }
        if self.trials == 0 {
            return Err(CoreError::InvalidConfiguration {
                reason: "sweep needs at least one trial".to_string(),
            });
        }
        check_problem_supports_topology(self.problem, &self.topology)?;
        if let Some(plan) = self.sample {
            if !self.problem.uses_ball_view() {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!(
                        "sampled sweeps need a ball-view problem; '{}' is round-based",
                        self.problem.key()
                    ),
                });
            }
            if self.mode == ComponentMode::PerComponent {
                return Err(CoreError::InvalidConfiguration {
                    reason: "sampled sweeps estimate whole-population measures; \
                             per-component mode is not supported"
                        .to_string(),
                });
            }
            let mut rows = Vec::with_capacity(self.sizes.len());
            for &n in &self.sizes {
                rows.push(self.sampled_row(n, plan)?);
            }
            return Ok(SweepResult {
                problem: self.problem,
                topology: self.topology.clone(),
                rows,
            });
        }
        let mut rows = Vec::with_capacity(self.sizes.len());
        for &n in &self.sizes {
            // One instance per size: trials vary the identifiers, never the
            // graph (essential for random families, cheaper for all). For
            // ball-view problems the adjacency is also frozen once; each
            // trial clones the flat snapshot and swaps the identifier table
            // instead of re-freezing. In per-component mode the instance is
            // the first draw (no connectivity redraws) and the component
            // labelling — discovered at freeze time, or by a BFS sweep for
            // round-based problems — scopes verification to the components.
            let base = self.topology.build_for(n, self.mode)?;
            let frozen_base = self.problem.uses_ball_view().then(|| base.freeze());
            let label_storage = (self.mode == ComponentMode::PerComponent && frozen_base.is_none())
                .then(|| ComponentLabels::of_graph(&base));
            let labels: Option<&ComponentLabels> = match self.mode {
                ComponentMode::RequireConnected => None,
                ComponentMode::PerComponent => Some(match &frozen_base {
                    Some(csr) => csr.components(),
                    None => label_storage.as_ref().expect("computed above"),
                }),
            };
            // Trials are independent and their seeds explicit, so they run on
            // the work-stealing pool: the pool claims trials dynamically (a
            // slow trial stalls only itself) and each participant keeps one
            // session alive across every trial it steals — the snapshot is
            // cloned once per participant, then each trial only swaps the
            // identifier table. Results are collected in trial order, keeping
            // every aggregate bit-for-bit identical to a sequential sweep.
            let per_trial: Vec<Result<MeasureSet>> = (0..self.trials)
                .into_par_iter()
                .map_init(
                    || None,
                    |session, trial| {
                        let assignment = self.policy.assignment_for_trial(trial);
                        let mut graph = base.clone();
                        assignment.apply(&mut graph)?;
                        let profile =
                            run_trial(self.problem, &graph, frozen_base.as_ref(), session, labels)?;
                        // One pass over the radius vector and the (shared)
                        // edge structure produces every measure of the trial.
                        Ok(match &frozen_base {
                            Some(csr) => MeasureSet::of_csr(&profile, csr),
                            None => MeasureSet::of(&profile, &base),
                        })
                    },
                )
                .collect();
            let mut sets = Vec::with_capacity(self.trials);
            for result in per_trial {
                sets.push(result?);
            }
            let averages: Vec<f64> = sets.iter().map(|s| s.node_averaged).collect();
            let average_summary = Summary::from_values(&averages);
            // Scalar measures average over the trials; the distribution
            // merges exactly (in trial order, for determinism by
            // construction rather than by commutativity).
            let mut cdf = RadiusCdf::empty();
            for set in &sets {
                cdf.merge(&set.cdf);
            }
            rows.push(SweepRow {
                topology: self.topology.clone(),
                n,
                trials: self.trials,
                components: labels.map_or(1, ComponentLabels::count),
                worst_case: mean_of(&sets, |s| s.worst_case),
                average: average_summary.mean,
                average_summary,
                total: mean_of(&sets, |s| s.total),
                edge_averaged: mean_of(&sets, |s| s.edge_averaged),
                edge_averaged_mean: mean_of(&sets, |s| s.edge_averaged_mean),
                median: mean_of(&sets, |s| s.median),
                cdf,
                sampled: None,
            });
        }
        Ok(SweepResult { problem: self.problem, topology: self.topology.clone(), rows })
    }

    /// One size of a sampled sweep: per trial, draw the plan's sample from
    /// the frozen instance, probe exactly that subset through the
    /// index-addressed batch path, and fold the radii into estimates.
    ///
    /// The trial loop mirrors the exact path — one instance per size, one
    /// frozen snapshot shared across trials, one persistent-pool session per
    /// participant, results collected in trial order — so sampled sweeps
    /// inherit the exact path's bit-reproducibility.
    fn sampled_row(&self, n: usize, plan: SamplePlan) -> Result<SweepRow> {
        let base = self.topology.build_for(n, self.mode)?;
        let frozen_base = base.freeze();
        let per_trial: Vec<Result<(SampledMeasureSet, RadiusCdf, f64)>> = (0..self.trials)
            .into_par_iter()
            .map_init(
                || None,
                |session: &mut Option<FrozenExecutor>, trial| {
                    let assignment = self.policy.assignment_for_trial(trial);
                    let mut graph = base.clone();
                    assignment.apply(&mut graph)?;
                    let session = session
                        .get_or_insert_with(|| FrozenExecutor::from_csr(frozen_base.clone()));
                    let identifiers: Vec<_> = graph.identifiers().collect();
                    session.set_identifiers(&identifiers);
                    let sample = plan.draw(&frozen_base, plan.seed_for(self.sample_seed, trial));
                    let radii = self.problem.probe_radii(
                        session,
                        sample.nodes(),
                        &NodeBatchOptions::new(),
                    )?;
                    // The raw sampled observations: pooled into the row cdf,
                    // and their maximum is a certified lower bound on the
                    // trial's worst case.
                    let worst = radii.iter().copied().max().unwrap_or(0) as f64;
                    let cdf = RadiusCdf::from_radii(&radii);
                    Ok((sample.estimate(&radii), cdf, worst))
                },
            )
            .collect();
        let mut estimates = Vec::with_capacity(self.trials);
        let mut cdf = RadiusCdf::empty();
        let mut worst_sum = 0.0;
        for result in per_trial {
            let (estimate, trial_cdf, worst) = result?;
            cdf.merge(&trial_cdf);
            worst_sum += worst;
            estimates.push(estimate);
        }
        let collect = |f: &dyn Fn(&SampledMeasureSet) -> Option<Estimate>| {
            let per: Vec<Estimate> = estimates.iter().filter_map(f).collect();
            if per.len() == estimates.len() {
                Estimate::mean_of(&per)
            } else {
                None
            }
        };
        let node_averaged = collect(&|e| e.node_averaged);
        let edge_averaged = collect(&|e| e.edge_averaged);
        let edge_averaged_mean = collect(&|e| e.edge_averaged_mean);
        let medians: Vec<f64> = estimates.iter().filter_map(SampledMeasureSet::median).collect();
        let median = (medians.len() == estimates.len())
            .then(|| medians.iter().sum::<f64>() / medians.len() as f64);
        let averages: Vec<f64> =
            estimates.iter().filter_map(|e| e.node_averaged.map(|est| est.value)).collect();
        let average_summary = Summary::from_values(&averages);
        let sampled = SampledRow {
            plan,
            probes: estimates.first().map_or(0, |e| e.probes),
            census: estimates.iter().all(|e| e.census),
            node_averaged,
            edge_averaged,
            edge_averaged_mean,
            median,
            per_trial: estimates,
        };
        Ok(SweepRow {
            topology: self.topology.clone(),
            n,
            trials: self.trials,
            components: 1,
            worst_case: worst_sum / self.trials as f64,
            average: node_averaged.map_or(0.0, |e| e.value),
            average_summary,
            total: node_averaged.map_or(0.0, |e| e.value * n as f64),
            edge_averaged: edge_averaged.map_or(0.0, |e| e.value),
            edge_averaged_mean: edge_averaged_mean.map_or(0.0, |e| e.value),
            median: median.unwrap_or(0.0),
            cdf,
            sampled: Some(sampled),
        })
    }
}

/// Runs `problem` on a size-`n` instance of `topology` with the given
/// identifier assignment and returns the radius profile.
///
/// # Errors
///
/// Propagates graph-construction and execution errors.
pub fn run_on_topology(
    problem: Problem,
    topology: &Topology,
    n: usize,
    assignment: &IdAssignment,
) -> Result<RadiusProfile> {
    check_problem_supports_topology(problem, topology)?;
    let graph = topology_with_assignment(topology, n, assignment)?;
    problem.run(&graph)
}

/// Runs `problem` on a size-`n` instance of `topology` with **per-component
/// semantics**: the instance is the first draw of the family (no
/// connectivity redraws — a disconnected instance is the object of study,
/// not an error), outputs are verified per component, and the returned
/// [`ComponentMeasures`] carries one [`MeasureSet`] per component plus the
/// whole-graph aggregate.
///
/// # Errors
///
/// Propagates graph-construction and execution errors.
pub fn run_on_topology_per_component(
    problem: Problem,
    topology: &Topology,
    n: usize,
    assignment: &IdAssignment,
) -> Result<(RadiusProfile, ComponentMeasures)> {
    check_problem_supports_topology(problem, topology)?;
    let mut graph = topology.build_for(n, ComponentMode::PerComponent)?;
    assignment.apply(&mut graph)?;
    // Ball-view problems freeze the graph anyway, and freezing discovers the
    // component labelling — freeze once here and reuse both, instead of
    // labelling separately and re-freezing inside the run. Round-based
    // problems never freeze, so they label with the BFS sweep.
    let frozen = problem.uses_ball_view().then(|| graph.freeze());
    let label_storage = frozen.is_none().then(|| ComponentLabels::of_graph(&graph));
    let labels: &ComponentLabels = match &frozen {
        Some(csr) => csr.components(),
        None => label_storage.as_ref().expect("computed above"),
    };
    let profile = match &frozen {
        Some(csr) => {
            let session = FrozenExecutor::from_csr(csr.clone());
            problem.run_with(&graph, Some(&session), Some(labels))?
        }
        None => problem.run_with(&graph, None, Some(labels))?,
    };
    let measures = ComponentMeasures::of(&profile, &graph, labels);
    Ok((profile, measures))
}

/// Rejects ring-only problems on non-cycle topologies, so every entry point
/// of the harness fails with the same clear configuration error instead of
/// letting a ring-only algorithm loose on the wrong family.
fn check_problem_supports_topology(problem: Problem, topology: &Topology) -> Result<()> {
    if problem.requires_cycle() && !topology.is_cycle() {
        return Err(CoreError::InvalidConfiguration {
            reason: format!("problem '{}' only runs on cycles, not on '{topology}'", problem.key()),
        });
    }
    Ok(())
}

/// Runs `problem` on an `n`-cycle with the given identifier assignment and
/// returns the radius profile.
///
/// # Errors
///
/// Propagates graph-construction and execution errors.
pub fn run_on_cycle(
    problem: Problem,
    n: usize,
    assignment: &IdAssignment,
) -> Result<RadiusProfile> {
    run_on_topology(problem, &Topology::Cycle, n, assignment)
}

/// Builds a size-`n` instance of `topology` and applies `assignment` to it.
///
/// # Errors
///
/// Propagates graph-construction errors.
pub fn topology_with_assignment(
    topology: &Topology,
    n: usize,
    assignment: &IdAssignment,
) -> Result<Graph> {
    let mut graph = topology.build(n)?;
    assignment.apply(&mut graph)?;
    Ok(graph)
}

/// Builds an `n`-cycle and applies `assignment` to it.
///
/// # Errors
///
/// Propagates graph-construction errors (for example `n < 3`).
pub fn cycle_with_assignment(n: usize, assignment: &IdAssignment) -> Result<Graph> {
    topology_with_assignment(&Topology::Cycle, n, assignment)
}

/// The Section 4 "further work" study: the distribution of both measures when
/// the identifier permutation is uniformly random.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomPermutationStudy {
    /// The topology the permutations were sampled on.
    pub topology: Topology,
    /// Instance size.
    pub n: usize,
    /// Number of sampled permutations.
    pub samples: usize,
    /// Summary of the per-sample node-averaged radii.
    pub average_radius: Summary,
    /// Summary of the per-sample worst-case radii.
    pub worst_case_radius: Summary,
    /// Summary of the per-sample edge-averaged radii (max-endpoint
    /// weighting).
    pub edge_averaged_radius: Summary,
    /// Summary of the per-sample median radii.
    pub median_radius: Summary,
    /// The pooled radius distribution over all samples
    /// (`samples x n` observations).
    pub cdf: RadiusCdf,
}

/// Samples `samples` uniformly random identifier permutations of a size-`n`
/// instance of `topology`, runs `problem` on each, and summarises both
/// measures. All samples share the same instance; only the identifiers vary.
///
/// # Errors
///
/// Propagates construction and execution errors; returns
/// [`CoreError::InvalidConfiguration`] when `samples == 0`.
pub fn random_permutation_study_on(
    problem: Problem,
    topology: &Topology,
    n: usize,
    samples: usize,
    base_seed: u64,
) -> Result<RandomPermutationStudy> {
    if samples == 0 {
        return Err(CoreError::InvalidConfiguration {
            reason: "the random-permutation study needs at least one sample".to_string(),
        });
    }
    check_problem_supports_topology(problem, topology)?;
    let base = topology.build(n)?;
    let frozen_base = problem.uses_ball_view().then(|| base.freeze());
    // Same machinery as `Sweep::run`: samples are claimed dynamically from
    // the pool, each participant reuses one session across its samples, and
    // one pass per sample feeds every measure.
    let per_sample: Vec<Result<MeasureSet>> = (0..samples)
        .into_par_iter()
        .map_init(
            || None,
            |session, i| {
                let assignment = IdAssignment::Shuffled { seed: derive_seed(base_seed, i as u64) };
                let mut graph = base.clone();
                assignment.apply(&mut graph)?;
                let profile = run_trial(problem, &graph, frozen_base.as_ref(), session, None)?;
                Ok(match &frozen_base {
                    Some(csr) => MeasureSet::of_csr(&profile, csr),
                    None => MeasureSet::of(&profile, &base),
                })
            },
        )
        .collect();
    let mut sets = Vec::with_capacity(samples);
    for result in per_sample {
        sets.push(result?);
    }
    let collect = |f: fn(&MeasureSet) -> f64| -> Vec<f64> { sets.iter().map(f).collect() };
    let mut cdf = RadiusCdf::empty();
    for set in &sets {
        cdf.merge(&set.cdf);
    }
    Ok(RandomPermutationStudy {
        topology: topology.clone(),
        n,
        samples,
        average_radius: Summary::from_values(&collect(|s| s.node_averaged)),
        worst_case_radius: Summary::from_values(&collect(|s| s.worst_case)),
        edge_averaged_radius: Summary::from_values(&collect(|s| s.edge_averaged)),
        median_radius: Summary::from_values(&collect(|s| s.median)),
        cdf,
    })
}

/// Samples `samples` uniformly random identifier permutations of an
/// `n`-cycle, runs `problem` on each, and summarises both measures.
///
/// # Errors
///
/// Propagates execution errors; returns [`CoreError::InvalidConfiguration`]
/// when `samples == 0`.
pub fn random_permutation_study(
    problem: Problem,
    n: usize,
    samples: usize,
    base_seed: u64,
) -> Result<RandomPermutationStudy> {
    random_permutation_study_on(problem, &Topology::Cycle, n, samples, base_seed)
}

/// Runs one trial of `problem` on `graph`, routing ball-view problems
/// through a [`FrozenExecutor`] session kept in `session` across the trials
/// a pool participant claims. The session is created at most once per
/// participant (cloning the [`CsrGraph`] shares the frozen adjacency and
/// copies only the `O(n)` identifier table); each trial then swaps the
/// identifier table in place, so per-trial setup neither re-freezes the
/// `O(n + m)` structure nor re-clones the snapshot, and the session's
/// grower scratch stays warm from trial to trial.
fn run_trial(
    problem: Problem,
    graph: &Graph,
    frozen_base: Option<&CsrGraph>,
    session: &mut Option<FrozenExecutor>,
    components: Option<&ComponentLabels>,
) -> Result<RadiusProfile> {
    match frozen_base {
        Some(csr) => {
            let session = session.get_or_insert_with(|| FrozenExecutor::from_csr(csr.clone()));
            let identifiers: Vec<_> = graph.identifiers().collect();
            session.set_identifiers(&identifiers);
            problem.run_with(graph, Some(session), components)
        }
        None => problem.run_with(graph, None, components),
    }
}

/// Mean of one measure over the per-trial sets (0 for no trials).
fn mean_of(sets: &[MeasureSet], f: impl Fn(&MeasureSet) -> f64) -> f64 {
    if sets.is_empty() {
        0.0
    } else {
        sets.iter().map(f).sum::<f64>() / sets.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_one_row_per_size() {
        let result = Sweep::new(Problem::LargestId, vec![8, 16, 32])
            .with_policy(AssignmentPolicy::Random { base_seed: 1 })
            .with_trials(3)
            .run()
            .unwrap();
        assert_eq!(result.rows.len(), 3);
        assert_eq!(result.sizes(), vec![8, 16, 32]);
        assert_eq!(result.topology, Topology::Cycle);
        for row in &result.rows {
            assert_eq!(row.trials, 3);
            assert_eq!(row.topology, Topology::Cycle);
            assert!(row.worst_case >= row.average);
            assert!(row.separation() >= 1.0);
        }
        // Worst case grows linearly with n for largest ID.
        assert_eq!(result.rows[2].worst_case, 16.0);
    }

    #[test]
    fn sampled_sweep_with_full_budget_matches_the_exact_sweep() {
        // A census budget degenerates the estimator to the exact
        // measurement: every shared column must be bit-identical.
        let exact = Sweep::new(Problem::LargestId, vec![32])
            .with_policy(AssignmentPolicy::Random { base_seed: 9 })
            .with_trials(3)
            .run()
            .unwrap();
        let sampled = Sweep::new(Problem::LargestId, vec![32])
            .with_policy(AssignmentPolicy::Random { base_seed: 9 })
            .with_trials(3)
            .with_sample_plan(SamplePlan::Uniform { budget: 32 })
            .run()
            .unwrap();
        let (e, s) = (&exact.rows[0], &sampled.rows[0]);
        let record = s.sampled.as_ref().unwrap();
        assert!(record.census);
        assert_eq!(record.probes, 32);
        assert_eq!(s.average, e.average);
        assert_eq!(s.median, e.median);
        assert_eq!(s.worst_case, e.worst_case);
        assert_eq!(s.total, e.total);
        assert_eq!(s.cdf, e.cdf);
        assert_eq!(record.node_averaged.unwrap().half_width_95, 0.0);
    }

    #[test]
    fn sampled_sweep_is_bit_reproducible_and_budget_bounded() {
        let build = || {
            Sweep::new(Problem::LargestId, vec![64])
                .with_policy(AssignmentPolicy::Random { base_seed: 3 })
                .with_trials(4)
                .with_sample_plan(SamplePlan::Uniform { budget: 12 })
                .with_sample_seed(77)
                .run()
                .unwrap()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "sampled sweeps are bit-reproducible");
        let record = a.rows[0].sampled.as_ref().unwrap();
        assert_eq!(record.probes, 12);
        assert!(!record.census);
        let est = record.node_averaged.unwrap();
        assert!(est.half_width_95.is_finite() && est.half_width_95 > 0.0);
        // The trial-pooled cdf holds exactly trials x budget observations.
        assert_eq!(a.rows[0].cdf.observations(), 4 * 12);
    }

    #[test]
    fn sampled_sweep_rejects_unsupported_configurations() {
        // Round-based problems have no per-node probe.
        let err = Sweep::new(Problem::ThreeColoring, vec![16])
            .with_sample_plan(SamplePlan::Uniform { budget: 8 })
            .run()
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfiguration { .. }), "{err:?}");
        // Per-component mode estimates nothing meaningful from a sample.
        let err = Sweep::new(Problem::LargestId, vec![16])
            .with_component_mode(ComponentMode::PerComponent)
            .with_sample_plan(SamplePlan::Uniform { budget: 8 })
            .run()
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfiguration { .. }), "{err:?}");
    }

    #[test]
    fn sweep_validates_configuration() {
        assert!(Sweep::new(Problem::LargestId, vec![]).run().is_err());
        assert!(Sweep::new(Problem::LargestId, vec![8]).with_trials(0).run().is_err());
    }

    #[test]
    fn ring_only_problems_reject_other_topologies() {
        let err = Sweep::on(Problem::ThreeColoring, Topology::Grid, vec![16]).run().unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfiguration { .. }));
        assert!(err.to_string().contains("only runs on cycles"));
        // Every entry point of the harness enforces the same guard.
        let err = run_on_topology(Problem::Mis, &Topology::Grid, 16, &IdAssignment::Identity)
            .unwrap_err();
        assert!(err.to_string().contains("only runs on cycles"));
        let err = random_permutation_study_on(
            Problem::LandmarkColoring,
            &Topology::CompleteBinaryTree,
            16,
            2,
            0,
        )
        .unwrap_err();
        assert!(err.to_string().contains("only runs on cycles"));
        // The cycle variant of the same configuration is fine.
        assert!(Sweep::on(Problem::ThreeColoring, Topology::Cycle, vec![16]).run().is_ok());
    }

    #[test]
    fn sweep_runs_on_every_deterministic_topology() {
        for topology in Topology::DETERMINISTIC {
            let n = if topology == Topology::Torus { 16 } else { 15 };
            let result = Sweep::on(Problem::LargestId, topology.clone(), vec![n])
                .with_policy(AssignmentPolicy::Random { base_seed: 2 })
                .with_trials(2)
                .run()
                .unwrap();
            assert_eq!(result.rows.len(), 1, "{topology}");
            assert_eq!(result.rows[0].n, n, "{topology}");
            assert_eq!(result.rows[0].topology, topology);
            assert!(result.rows[0].worst_case >= result.rows[0].average, "{topology}");
        }
    }

    #[test]
    fn disconnected_gnp_family_fails_loudly() {
        let err = Sweep::on(Problem::LargestId, Topology::Gnp { p: 0.0, seed: 1 }, vec![8])
            .run()
            .unwrap_err();
        assert!(matches!(err, CoreError::Graph(avglocal_graph::GraphError::Disconnected { .. })));
    }

    #[test]
    fn per_component_mode_supports_disconnected_gnp() {
        // The same subcritical family that is a hard error in the default
        // mode is a supported configuration in per-component mode.
        let topology = Topology::Gnp { p: 0.05, seed: 3 };
        let result = Sweep::on(Problem::LargestId, topology.clone(), vec![24])
            .with_policy(AssignmentPolicy::Random { base_seed: 4 })
            .with_trials(2)
            .with_component_mode(ComponentMode::PerComponent)
            .run()
            .unwrap();
        let row = &result.rows[0];
        // The drawn instance is genuinely disconnected (that is the point of
        // the mode) and the row records its component count.
        let instance = topology.build_unchecked(24).unwrap();
        let labels = ComponentLabels::of_graph(&instance);
        assert!(labels.count() > 1, "p = 0.05 at n = 24 must fall apart");
        assert_eq!(row.components, labels.count());
        assert!(row.worst_case >= row.average);
        // p = 0 degenerates to isolated nodes: every radius is 0.
        let isolated = Sweep::on(Problem::LargestId, Topology::Gnp { p: 0.0, seed: 1 }, vec![8])
            .with_component_mode(ComponentMode::PerComponent)
            .run()
            .unwrap();
        assert_eq!(isolated.rows[0].components, 8);
        assert_eq!(isolated.rows[0].worst_case, 0.0);
        assert_eq!(isolated.rows[0].edge_averaged, 0.0);
    }

    #[test]
    fn per_component_mode_is_identical_on_connected_instances() {
        // On a deterministic (always connected) family, the mode changes the
        // verification path but never the numbers.
        let run = |mode: ComponentMode| {
            Sweep::on(Problem::LargestId, Topology::Grid, vec![12])
                .with_policy(AssignmentPolicy::Random { base_seed: 9 })
                .with_trials(3)
                .with_component_mode(mode)
                .run()
                .unwrap()
        };
        let connected = run(ComponentMode::RequireConnected);
        let per_component = run(ComponentMode::PerComponent);
        assert_eq!(connected.rows[0].worst_case, per_component.rows[0].worst_case);
        assert_eq!(connected.rows[0].average, per_component.rows[0].average);
        assert_eq!(connected.rows[0].edge_averaged, per_component.rows[0].edge_averaged);
        assert_eq!(connected.rows[0].components, 1);
        assert_eq!(per_component.rows[0].components, 1);
    }

    #[test]
    fn sweep_rows_carry_every_measure() {
        let result = Sweep::new(Problem::LargestId, vec![16])
            .with_policy(AssignmentPolicy::Identity)
            .run()
            .unwrap();
        let row = &result.rows[0];
        // Identity on the 16-cycle: 15 nodes stop at radius 1, the winner at
        // 8. Node average (15 + 8)/16; edge maxima: the winner's two edges
        // weigh 8, the other 14 weigh 1.
        assert!((row.average - 23.0 / 16.0).abs() < 1e-12);
        assert!((row.edge_averaged - (2.0 * 8.0 + 14.0) / 16.0).abs() < 1e-12);
        assert!((row.edge_averaged_mean - (2.0 * 4.5 + 14.0) / 16.0).abs() < 1e-12);
        assert_eq!(row.median, 1.0);
        assert_eq!(row.worst_case, 8.0);
        assert_eq!(row.total, 23.0);
        assert_eq!(result.edge_averaged_column().len(), 1);
        assert_eq!(result.median_column(), vec![1.0]);
    }

    #[test]
    fn sweep_rows_carry_the_full_distribution() {
        // Identity ids on the 16-cycle, one trial: 15 nodes stop at radius
        // 1, the winner at 8 — the row's distribution is exactly that.
        let result = Sweep::new(Problem::LargestId, vec![16])
            .with_policy(AssignmentPolicy::Identity)
            .run()
            .unwrap();
        let row = &result.rows[0];
        assert_eq!(row.cdf.observations(), 16);
        assert_eq!(row.cdf.count_at(1), 15);
        assert_eq!(row.cdf.count_at(8), 1);
        assert_eq!(row.cdf.max_radius(), 8);
        assert!((row.cdf.fraction_within(1) - 15.0 / 16.0).abs() < 1e-12);
        // With one trial the pooled median is bit-identical to the median
        // column, and the pooled mean to the node average.
        assert_eq!(row.cdf.quantile(500), row.median);
        assert_eq!(row.cdf.mean(), row.average);
        assert_eq!(result.quantile_column(1000), vec![8.0]);
        // Across trials the distribution pools: trials x n observations.
        let result = Sweep::new(Problem::LargestId, vec![16])
            .with_policy(AssignmentPolicy::Random { base_seed: 3 })
            .with_trials(4)
            .run()
            .unwrap();
        assert_eq!(result.rows[0].cdf.observations(), 4 * 16);
    }

    #[test]
    fn sweeps_run_on_hub_weighted_families() {
        // Preferential attachment is always connected, so it runs in the
        // default mode.
        let pa = Topology::PreferentialAttachment { m: 2, seed: 7 };
        let result = Sweep::on(Problem::LargestId, pa.clone(), vec![40])
            .with_policy(AssignmentPolicy::Random { base_seed: 5 })
            .with_trials(2)
            .run()
            .unwrap();
        assert_eq!(result.rows[0].n, 40);
        assert_eq!(result.rows[0].components, 1);
        assert!(result.rows[0].worst_case >= result.rows[0].average);
        // The power-law configuration model may disconnect; per-component
        // mode accepts the first draw as-is.
        let plc = Topology::PowerLawConfiguration { gamma: 2.5, seed: 3 };
        let result = Sweep::on(Problem::LargestId, plc, vec![40])
            .with_policy(AssignmentPolicy::Random { base_seed: 5 })
            .with_component_mode(ComponentMode::PerComponent)
            .run()
            .unwrap();
        assert_eq!(result.rows[0].n, 40);
        assert!(result.rows[0].components >= 1);
    }

    #[test]
    fn study_distribution_pools_all_samples() {
        let study = random_permutation_study(Problem::LargestId, 32, 5, 11).unwrap();
        assert_eq!(study.cdf.observations(), 5 * 32);
        // The pooled mean is the mean of per-sample node averages (equal
        // sample sizes), up to floating-point reassociation.
        assert!((study.cdf.mean() - study.average_radius.mean).abs() < 1e-9);
        // Every sample's winner saw half the ring (a diametrically placed
        // runner-up can add a second radius-16 observation).
        assert!(study.cdf.count_at(16) >= 5);
    }

    #[test]
    fn per_component_topology_run_reports_component_measures() {
        let (profile, measures) = run_on_topology_per_component(
            Problem::LargestId,
            &Topology::Gnp { p: 0.0, seed: 5 },
            6,
            &IdAssignment::Reversed,
        )
        .unwrap();
        // Six isolated nodes: six components, all radii 0.
        assert_eq!(profile.len(), 6);
        assert_eq!(measures.component_count(), 6);
        assert_eq!(measures.aggregate.worst_case, 0.0);
        assert!(measures.per_component.iter().all(|m| m.nodes == 1 && m.edges == 0));
        // A connected instance degenerates to the plain run.
        let (profile, measures) = run_on_topology_per_component(
            Problem::LargestId,
            &Topology::Cycle,
            12,
            &IdAssignment::Identity,
        )
        .unwrap();
        let plain =
            run_on_topology(Problem::LargestId, &Topology::Cycle, 12, &IdAssignment::Identity)
                .unwrap();
        assert_eq!(profile, plain);
        assert_eq!(measures.component_count(), 1);
        assert_eq!(measures.aggregate, measures.per_component[0]);
    }

    #[test]
    fn identity_policy_is_deterministic() {
        let a = Sweep::new(Problem::LargestId, vec![16])
            .with_policy(AssignmentPolicy::Identity)
            .run()
            .unwrap();
        let b = Sweep::new(Problem::LargestId, vec![16])
            .with_policy(AssignmentPolicy::Identity)
            .run()
            .unwrap();
        assert_eq!(a, b);
        // Identity: n-1 nodes stop at radius 1, the winner at n/2.
        assert!((a.rows[0].average - (15.0 + 8.0) / 16.0).abs() < 1e-12);
    }

    #[test]
    fn policies_produce_expected_assignments() {
        assert_eq!(AssignmentPolicy::Identity.assignment_for_trial(3), IdAssignment::Identity);
        assert_eq!(AssignmentPolicy::Reversed.assignment_for_trial(0), IdAssignment::Reversed);
        assert_eq!(
            AssignmentPolicy::Random { base_seed: 10 }.assignment_for_trial(2),
            IdAssignment::Shuffled { seed: derive_seed(10, 2) }
        );
        let fixed = AssignmentPolicy::Fixed(IdAssignment::Rotated { shift: 1 });
        assert_eq!(fixed.assignment_for_trial(5), IdAssignment::Rotated { shift: 1 });
    }

    #[test]
    fn adjacent_base_seeds_draw_unrelated_streams() {
        // The additive scheme aliased base b / trial t with base b+1 /
        // trial t-1; the mixed derivation must keep every such pair distinct.
        for base in 0u64..8 {
            for trial in 1usize..8 {
                let a = AssignmentPolicy::Random { base_seed: base }.assignment_for_trial(trial);
                let b = AssignmentPolicy::Random { base_seed: base + 1 }
                    .assignment_for_trial(trial - 1);
                assert_ne!(a, b, "base {base}, trial {trial}");
            }
        }
    }

    #[test]
    fn random_study_brackets_the_measures() {
        let study = random_permutation_study(Problem::LargestId, 64, 10, 7).unwrap();
        assert_eq!(study.samples, 10);
        assert_eq!(study.topology, Topology::Cycle);
        // The worst-case radius is always n/2 = 32 for largest ID.
        assert_eq!(study.worst_case_radius.mean, 32.0);
        assert!(study.average_radius.mean < 10.0);
        assert!(study.average_radius.min >= 1.0);
    }

    #[test]
    fn random_study_runs_off_ring() {
        let study = random_permutation_study_on(
            Problem::LargestId,
            &Topology::CompleteBinaryTree,
            31,
            6,
            3,
        )
        .unwrap();
        assert_eq!(study.samples, 6);
        assert_eq!(study.topology, Topology::CompleteBinaryTree);
        // On a depth-4 complete binary tree the eccentricity is at most 8.
        assert!(study.worst_case_radius.max <= 8.0);
        assert!(study.average_radius.mean <= study.worst_case_radius.mean);
    }

    #[test]
    fn random_study_rejects_zero_samples() {
        assert!(random_permutation_study(Problem::LargestId, 16, 0, 0).is_err());
    }

    #[test]
    fn sweep_columns_align_with_rows() {
        let result = Sweep::new(Problem::ThreeColoring, vec![8, 32])
            .with_policy(AssignmentPolicy::Random { base_seed: 5 })
            .run()
            .unwrap();
        assert_eq!(result.average_column().len(), 2);
        // Exact deterministic values for base seed 5 under derive_seed-based
        // trial seeds (every node of these Cole-Vishkin runs stops at 7).
        assert_eq!(result.worst_case_column(), vec![7.0, 7.0]);
        assert_eq!(result.average_column(), vec![7.0, 7.0]);
    }
}
