//! Plain-text and CSV report tables.
//!
//! The benchmark harness prints every experiment as a table; this module
//! keeps the formatting in one place so the output of
//! `cargo run -p avglocal-bench --bin experiments` is consistent.

use std::fmt;

/// A simple table: a title, a header row, and data rows.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    #[must_use]
    pub fn new<S: Into<String>>(title: S, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. The row is padded or truncated to the header width.
    pub fn push_row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders the table as aligned plain text.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let header: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:width$}", h, width = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1))),
        );
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            out.push_str(&cells.join("  "));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (headers included, fields quoted only when
    /// they contain a comma).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let quote = |s: &str| {
            if s.contains(',') {
                format!("\"{s}\"")
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| quote(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// Formats a float with three decimal places — the convention used across the
/// experiment tables.
#[must_use]
pub fn fmt_float(value: f64) -> String {
    format!("{value:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["n", "average", "worst"]);
        t.push_row(vec!["16".into(), "2.125".into(), "8".into()]);
        t.push_row(vec!["32".into(), "2.781".into(), "16".into()]);
        t
    }

    #[test]
    fn text_rendering_contains_everything() {
        let text = sample().to_text();
        assert!(text.contains("== demo =="));
        assert!(text.contains("average"));
        assert!(text.contains("2.781"));
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    fn csv_rendering() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "n,average,worst");
        assert_eq!(lines[1], "16,2.125,8");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new("q", &["a"]);
        t.push_row(vec!["x,y".into()]);
        assert!(t.to_csv().contains("\"x,y\""));
    }

    #[test]
    fn rows_are_padded_and_truncated() {
        let mut t = Table::new("pad", &["a", "b"]);
        t.push_row(vec!["1".into()]);
        t.push_row(vec!["1".into(), "2".into(), "3".into()]);
        assert_eq!(t.row_count(), 2);
        let csv = t.to_csv();
        assert!(csv.contains("1,\n") || csv.contains("1,"));
        assert!(!csv.contains("3"));
    }

    #[test]
    fn display_matches_text() {
        let t = sample();
        assert_eq!(format!("{t}"), t.to_text());
        assert_eq!(t.title(), "demo");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_float(1.0), "1.000");
        assert_eq!(fmt_float(2.71881), "2.719");
    }
}
