//! ASCII line charts for the experiment "figures".
//!
//! The paper contains no figures, but the experiment harness renders the two
//! curves that would naturally accompany it — the largest-ID separation (E1)
//! and the colouring radii versus `log* n` (E3) — as terminal-friendly ASCII
//! charts so the shapes can be eyeballed without any plotting dependency.
//! [`cdf_chart`] renders full radius distributions ([`crate::RadiusCdf`])
//! the same way: one cumulative curve per family, on a shared radius axis.

use crate::cdf::RadiusCdf;

/// One named data series of a chart.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// One value per x position.
    pub values: Vec<f64>,
}

impl Series {
    /// Creates a series from a label and values.
    #[must_use]
    pub fn new<S: Into<String>>(name: S, values: Vec<f64>) -> Self {
        Series {
            name: name.into(),
            values: values.into_iter().map(|v| if v.is_finite() { v } else { 0.0 }).collect(),
        }
    }
}

/// A simple ASCII chart: series are plotted column by column on a shared
/// y-axis, each series with its own marker character.
#[derive(Debug, Clone, PartialEq)]
pub struct AsciiChart {
    title: String,
    height: usize,
    x_labels: Vec<String>,
}

const MARKERS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

impl AsciiChart {
    /// Creates a chart with the given title and x-axis labels (one per data
    /// column).
    #[must_use]
    pub fn new<S: Into<String>>(title: S, x_labels: Vec<String>) -> Self {
        AsciiChart { title: title.into(), height: 12, x_labels }
    }

    /// Sets the number of character rows of the plot area (minimum 4).
    #[must_use]
    pub fn with_height(mut self, height: usize) -> Self {
        self.height = height.max(4);
        self
    }

    /// Renders the chart with the given series.
    ///
    /// Series longer than the x-label list are truncated; shorter ones simply
    /// stop early. Returns a multi-line string ending in a newline.
    #[must_use]
    pub fn render(&self, series: &[Series]) -> String {
        let columns = self.x_labels.len();
        let max_value = series
            .iter()
            .flat_map(|s| s.values.iter().take(columns))
            .fold(0.0f64, |acc, &v| acc.max(v))
            .max(1e-12);

        // Grid of (height rows) x (columns), filled with markers.
        let mut grid = vec![vec![' '; columns]; self.height];
        for (si, s) in series.iter().enumerate() {
            let marker = MARKERS[si % MARKERS.len()];
            for (ci, &v) in s.values.iter().take(columns).enumerate() {
                let scaled = (v / max_value * (self.height as f64 - 1.0)).round() as usize;
                let row = self.height - 1 - scaled.min(self.height - 1);
                grid[row][ci] = marker;
            }
        }

        let col_width = self.x_labels.iter().map(String::len).max().unwrap_or(1).max(3) + 1;
        let mut out = String::new();
        out.push_str(&format!("-- {} --\n", self.title));
        for (ri, row) in grid.iter().enumerate() {
            // y-axis label: the value this row corresponds to.
            let value = max_value * (self.height - 1 - ri) as f64 / (self.height as f64 - 1.0);
            out.push_str(&format!("{value:>9.2} |"));
            for &cell in row {
                out.push_str(&format!("{:^width$}", cell, width = col_width));
            }
            out.push('\n');
        }
        out.push_str(&format!("{:>9} +{}\n", "", "-".repeat(col_width * columns)));
        out.push_str(&format!("{:>9}  ", ""));
        for label in &self.x_labels {
            out.push_str(&format!("{:^width$}", label, width = col_width));
        }
        out.push('\n');
        for (si, s) in series.iter().enumerate() {
            out.push_str(&format!("{:>9}  {} = {}\n", "", MARKERS[si % MARKERS.len()], s.name));
        }
        out
    }
}

/// Renders a panel of radius CDFs as an ASCII chart: one series per named
/// distribution, x axis = radius (0 to the largest observed radius of any
/// series), y axis = cumulative fraction of nodes that have output.
///
/// A curve hugging the top-left corner is a family whose ordinary node
/// outputs almost immediately; a long flat shelf below 1.0 is the paper's
/// separation — a small set of nodes (the winner, the hub) still running
/// long after the rest of the network has finished.
#[must_use]
pub fn cdf_chart(title: &str, series: &[(String, &RadiusCdf)], height: usize) -> String {
    let max_radius = series.iter().map(|(_, cdf)| cdf.max_radius()).max().unwrap_or(0);
    let labels: Vec<String> = (0..=max_radius).map(|r| r.to_string()).collect();
    let plotted: Vec<Series> = series
        .iter()
        .map(|(name, cdf)| {
            // Extend every curve to the shared axis: a saturated CDF stays
            // at 1.0 past its own maximum radius.
            let mut values = cdf.curve();
            values.resize(max_radius + 1, if cdf.is_empty() { 0.0 } else { 1.0 });
            Series::new(format!("F(r) {name}"), values)
        })
        .collect();
    AsciiChart::new(title, labels).with_height(height).render(&plotted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("x{i}")).collect()
    }

    #[test]
    fn chart_contains_title_labels_and_legend() {
        let chart = AsciiChart::new("demo", labels(4));
        let out = chart.render(&[
            Series::new("rising", vec![1.0, 2.0, 3.0, 4.0]),
            Series::new("flat", vec![2.0, 2.0, 2.0, 2.0]),
        ]);
        assert!(out.contains("-- demo --"));
        assert!(out.contains("x3"));
        assert!(out.contains("* = rising"));
        assert!(out.contains("o = flat"));
        // The largest value sits on the top row.
        let first_plot_row = out.lines().nth(1).unwrap();
        assert!(first_plot_row.contains('*'));
    }

    #[test]
    fn height_is_respected_and_clamped() {
        let chart = AsciiChart::new("h", labels(2)).with_height(6);
        let out = chart.render(&[Series::new("s", vec![1.0, 2.0])]);
        // title + 6 plot rows + axis + labels + 1 legend line
        assert_eq!(out.lines().count(), 1 + 6 + 2 + 1);
        let tiny = AsciiChart::new("h", labels(2)).with_height(1);
        let out = tiny.render(&[Series::new("s", vec![1.0, 2.0])]);
        assert!(out.lines().count() >= 4 + 4);
    }

    #[test]
    fn non_finite_and_empty_inputs_are_harmless() {
        let chart = AsciiChart::new("e", labels(3));
        let out = chart.render(&[Series::new("weird", vec![f64::NAN, f64::INFINITY, 1.0])]);
        assert!(out.contains("weird"));
        let out = chart.render(&[]);
        assert!(out.contains("-- e --"));
        let empty = AsciiChart::new("none", Vec::new());
        let out = empty.render(&[Series::new("s", vec![])]);
        assert!(out.contains("-- none --"));
    }

    #[test]
    fn cdf_chart_shares_the_radius_axis() {
        let fast = RadiusCdf::from_radii(&[1, 1, 1, 1]);
        let slow = RadiusCdf::from_radii(&[1, 2, 3, 6]);
        let out =
            cdf_chart("demo CDFs", &[("fast".to_string(), &fast), ("slow".to_string(), &slow)], 8);
        assert!(out.contains("-- demo CDFs --"));
        assert!(out.contains("F(r) fast"));
        assert!(out.contains("F(r) slow"));
        // The shared x axis runs to the slow family's maximum radius.
        assert!(out.contains('6'));
        // The saturated fast curve sits on the top row all the way across
        // (radii 1..=6 all at 1.0; the slow curve overdraws the last column).
        let top_row = out.lines().nth(1).unwrap();
        assert!(top_row.matches('*').count() >= 5);
    }

    #[test]
    fn cdf_chart_handles_empty_panels() {
        let out = cdf_chart("none", &[], 6);
        assert!(out.contains("-- none --"));
        let empty = RadiusCdf::empty();
        let out = cdf_chart("empty", &[("e".to_string(), &empty)], 6);
        assert!(out.contains("F(r) e"));
    }

    #[test]
    fn flat_series_is_drawn_at_the_top_of_its_own_scale() {
        let chart = AsciiChart::new("f", labels(3)).with_height(5);
        let out = chart.render(&[Series::new("const", vec![7.0, 7.0, 7.0])]);
        let first_plot_row = out.lines().nth(1).unwrap();
        assert_eq!(first_plot_row.matches('*').count(), 3);
    }
}
