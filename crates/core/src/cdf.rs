//! The full radius distribution of an experiment: an exact, mergeable ECDF.
//!
//! A single quantile column (the median of `Measure::Quantile`) answers "when
//! does the ordinary node output?" at one point; the ROADMAP's quantile
//! *curve* question needs the whole distribution. [`RadiusCdf`] is that
//! report: an exact empirical CDF folded from a per-trial radius vector in
//! one pass, mergeable across trials (and across components), with
//! nearest-rank quantile, mean and tail accessors. The sweep layer threads
//! one through every [`crate::MeasureSet`], so a full-distribution column
//! costs nothing beyond the counts vector.
//!
//! Radii are small non-negative integers (bounded by the graph diameter), so
//! the CDF is stored as an exact histogram `counts[r]` — no binning, no
//! floating-point accumulation, and merging is element-wise addition.
//!
//! # Examples
//!
//! ```
//! use avglocal::RadiusCdf;
//!
//! let mut cdf = RadiusCdf::from_radii(&[1, 1, 1, 5]);
//! assert_eq!(cdf.observations(), 4);
//! assert_eq!(cdf.fraction_within(1), 0.75); // F(1): three of four nodes
//! assert_eq!(cdf.tail(1), 0.25);            // the winner is still running
//! assert_eq!(cdf.quantile(500), 1.0);       // the ordinary node
//! assert_eq!(cdf.mean(), 2.0);
//!
//! // Trials merge exactly: the pooled distribution of two trials.
//! cdf.merge(&RadiusCdf::from_radii(&[2, 2, 2, 2]));
//! assert_eq!(cdf.observations(), 8);
//! assert_eq!(cdf.max_radius(), 5);
//! ```

use std::fmt;

/// An exact empirical CDF over per-node radii, mergeable across trials.
///
/// `counts[r]` is the number of observations with radius exactly `r`; the
/// CDF at `r` is the normalised prefix sum. The default value is the empty
/// distribution (no observations), which merges as the identity.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RadiusCdf {
    /// `counts[r]` = number of observed nodes with radius exactly `r`.
    counts: Vec<u64>,
    /// Total number of observations (`counts.iter().sum()`, cached).
    total: u64,
}

impl RadiusCdf {
    /// The empty distribution — the identity of [`RadiusCdf::merge`].
    #[must_use]
    pub fn empty() -> Self {
        RadiusCdf::default()
    }

    /// Folds a radius vector into its exact distribution in one pass.
    #[must_use]
    pub fn from_radii(radii: &[usize]) -> Self {
        let mut counts = vec![0u64; radii.iter().max().map_or(0, |&m| m + 1)];
        for &r in radii {
            counts[r] += 1;
        }
        RadiusCdf { counts, total: radii.len() as u64 }
    }

    /// Adds every observation of `other` to this distribution.
    ///
    /// Merging is exact (integer counts), commutative and associative, so
    /// per-trial distributions fold into a per-row distribution in any
    /// order — the sweep layer merges in trial order for determinism anyway.
    pub fn merge(&mut self, other: &RadiusCdf) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// Number of observations folded in so far (`trials x nodes` for a sweep
    /// row).
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.total
    }

    /// Returns `true` when no observation has been folded in.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The largest observed radius (0 for the empty distribution).
    #[must_use]
    pub fn max_radius(&self) -> usize {
        self.counts.iter().rposition(|&c| c > 0).unwrap_or(0)
    }

    /// The number of observations with radius exactly `r`.
    #[must_use]
    pub fn count_at(&self, r: usize) -> u64 {
        self.counts.get(r).copied().unwrap_or(0)
    }

    /// The CDF value `F(r)`: the fraction of observations with radius
    /// `<= r` (0.0 for the empty distribution).
    ///
    /// As an ECDF this is right-continuous and non-decreasing in `r`, with a
    /// step of `count_at(r) / observations()` at every observed radius.
    #[must_use]
    pub fn fraction_within(&self, r: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let within: u64 = self.counts.iter().take(r.saturating_add(1)).sum();
        within as f64 / self.total as f64
    }

    /// The tail `1 - F(r)`: the fraction of observations with radius
    /// strictly greater than `r` — "how much of the network is still
    /// running after round `r`".
    #[must_use]
    pub fn tail(&self, r: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        1.0 - self.fraction_within(r)
    }

    /// Nearest-rank quantile in thousandths (`500` = median, `900` = 90th
    /// percentile; clamped to `0..=1000`). 0.0 for the empty distribution.
    ///
    /// Uses the same nearest-rank definition as
    /// [`crate::RadiusProfile::quantile`] — the value at sorted index
    /// `round(q * (total - 1))` — so for a single trial the distribution's
    /// median is bit-identical to the `Measure::Quantile { per_mille: 500 }`
    /// column. Walks the counts instead of selecting, `O(max radius)`.
    #[must_use]
    pub fn quantile(&self, per_mille: u16) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = u64::from(per_mille.min(1000));
        let index = (q * (self.total - 1) + 500) / 1000;
        let mut seen = 0u64;
        for (r, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > index {
                return r as f64;
            }
        }
        self.max_radius() as f64
    }

    /// The mean radius of the distribution (0.0 when empty). For a merged
    /// sweep row this is the **pooled** mean over `trials x nodes`
    /// observations, which for equal-sized trials equals the row's mean of
    /// per-trial node averages.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self.counts.iter().enumerate().map(|(r, &c)| r as u64 * c).sum();
        sum as f64 / self.total as f64
    }

    /// The support points of the distribution with their cumulative
    /// fractions: one `(radius, F(radius))` pair per radius with at least
    /// one observation, in increasing radius order. This is the step
    /// sequence a CDF plot draws.
    pub fn steps(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        let total = self.total as f64;
        let mut seen = 0u64;
        self.counts.iter().enumerate().filter_map(move |(r, &c)| {
            seen += c;
            (c > 0).then_some((r, seen as f64 / total))
        })
    }

    /// Samples the CDF at every radius from 0 to `max_radius()` inclusive —
    /// the dense form the ASCII figure panel plots. Empty distributions
    /// produce a single 0.0 sample.
    #[must_use]
    pub fn curve(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0];
        }
        let total = self.total as f64;
        let mut seen = 0u64;
        self.counts[..=self.max_radius()]
            .iter()
            .map(|&c| {
                seen += c;
                seen as f64 / total
            })
            .collect()
    }
}

impl fmt::Display for RadiusCdf {
    /// A compact `radius:fraction` rendering of the support, e.g.
    /// `1:0.750 5:1.000`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("(empty)");
        }
        let mut first = true;
        for (r, fraction) in self.steps() {
            if !first {
                f.write_str(" ")?;
            }
            write!(f, "{r}:{fraction:.3}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_distribution_is_harmless() {
        let cdf = RadiusCdf::empty();
        assert!(cdf.is_empty());
        assert_eq!(cdf.observations(), 0);
        assert_eq!(cdf.max_radius(), 0);
        assert_eq!(cdf.fraction_within(3), 0.0);
        assert_eq!(cdf.tail(3), 0.0);
        assert_eq!(cdf.quantile(500), 0.0);
        assert_eq!(cdf.mean(), 0.0);
        assert_eq!(cdf.curve(), vec![0.0]);
        assert_eq!(cdf.to_string(), "(empty)");
        assert_eq!(RadiusCdf::from_radii(&[]), cdf);
    }

    #[test]
    fn single_trial_statistics_are_exact() {
        let cdf = RadiusCdf::from_radii(&[1, 2, 3, 10]);
        assert_eq!(cdf.observations(), 4);
        assert_eq!(cdf.max_radius(), 10);
        assert_eq!(cdf.count_at(2), 1);
        assert_eq!(cdf.count_at(4), 0);
        assert_eq!(cdf.count_at(99), 0);
        assert_eq!(cdf.mean(), 4.0);
        assert_eq!(cdf.fraction_within(0), 0.0);
        assert_eq!(cdf.fraction_within(2), 0.5);
        assert_eq!(cdf.fraction_within(10), 1.0);
        assert_eq!(cdf.fraction_within(usize::MAX), 1.0);
        assert_eq!(cdf.tail(2), 0.5);
        // Nearest rank: index = round(0.5 * 3) = 2 -> the value 3.
        assert_eq!(cdf.quantile(500), 3.0);
        assert_eq!(cdf.quantile(0), 1.0);
        assert_eq!(cdf.quantile(1000), 10.0);
    }

    #[test]
    fn cdf_is_monotone_and_right_continuous() {
        let cdf = RadiusCdf::from_radii(&[0, 1, 1, 4, 4, 4, 7]);
        let mut previous = -1.0;
        for r in 0..=cdf.max_radius() {
            let f = cdf.fraction_within(r);
            assert!(f >= previous, "CDF must be non-decreasing at {r}");
            // Right continuity of a step function: the value AT r includes
            // the step at r.
            let step = cdf.count_at(r) as f64 / cdf.observations() as f64;
            let left_limit = if r == 0 { 0.0 } else { cdf.fraction_within(r - 1) };
            assert!((f - (left_limit + step)).abs() < 1e-12, "step height at {r}");
            previous = f;
        }
        assert_eq!(previous, 1.0);
    }

    #[test]
    fn merge_pools_observations_exactly() {
        let mut a = RadiusCdf::from_radii(&[1, 1, 2]);
        let b = RadiusCdf::from_radii(&[2, 5]);
        a.merge(&b);
        assert_eq!(a, RadiusCdf::from_radii(&[1, 1, 2, 2, 5]));
        // Merging the empty distribution is the identity, both ways.
        let before = a.clone();
        a.merge(&RadiusCdf::empty());
        assert_eq!(a, before);
        let mut empty = RadiusCdf::empty();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn merge_is_commutative() {
        let parts = [vec![0usize, 3, 3], vec![1, 1, 1, 9], vec![2]];
        let mut forward = RadiusCdf::empty();
        for p in &parts {
            forward.merge(&RadiusCdf::from_radii(p));
        }
        let mut backward = RadiusCdf::empty();
        for p in parts.iter().rev() {
            backward.merge(&RadiusCdf::from_radii(p));
        }
        assert_eq!(forward, backward);
        let pooled: Vec<usize> = parts.iter().flatten().copied().collect();
        assert_eq!(forward, RadiusCdf::from_radii(&pooled));
    }

    #[test]
    fn steps_and_curve_agree() {
        let cdf = RadiusCdf::from_radii(&[1, 1, 1, 5]);
        let steps: Vec<(usize, f64)> = cdf.steps().collect();
        assert_eq!(steps, vec![(1, 0.75), (5, 1.0)]);
        let curve = cdf.curve();
        assert_eq!(curve.len(), 6);
        assert_eq!(curve[0], 0.0);
        assert_eq!(curve[1], 0.75);
        assert_eq!(curve[4], 0.75);
        assert_eq!(curve[5], 1.0);
        assert_eq!(cdf.to_string(), "1:0.750 5:1.000");
    }

    #[test]
    fn quantile_matches_sorted_nearest_rank_on_pooled_data() {
        let data = [3usize, 0, 7, 7, 1, 2, 2, 2, 9, 4];
        let cdf = RadiusCdf::from_radii(&data);
        let mut sorted = data;
        sorted.sort_unstable();
        for per_mille in [0u16, 100, 250, 500, 750, 900, 1000] {
            let index = (usize::from(per_mille) * (data.len() - 1) + 500) / 1000;
            assert_eq!(cdf.quantile(per_mille), sorted[index] as f64, "q={per_mille}");
        }
        // Clamped above 1000.
        assert_eq!(cdf.quantile(u16::MAX), 9.0);
    }
}
