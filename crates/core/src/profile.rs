//! Radius profiles: the per-node costs an execution produced.

use avglocal_analysis::{histogram, Summary};
use avglocal_graph::NodeId;
use avglocal_runtime::{BallExecution, Execution};

use crate::error::{CoreError, Result};

/// The per-node radii `r(v)` of one execution, in node order.
///
/// This is the raw material of both of the paper's measures: the classical
/// worst case is the maximum entry, the paper's measure is the mean.
///
/// # Examples
///
/// ```
/// use avglocal::RadiusProfile;
///
/// let profile = RadiusProfile::new(vec![1, 1, 1, 5]);
/// assert_eq!(profile.max(), 5);
/// assert_eq!(profile.average(), 2.0);
/// assert_eq!(profile.total(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RadiusProfile {
    radii: Vec<usize>,
}

impl RadiusProfile {
    /// Wraps a vector of per-node radii.
    #[must_use]
    pub fn new(radii: Vec<usize>) -> Self {
        RadiusProfile { radii }
    }

    /// Extracts the profile of a ball-view execution.
    #[must_use]
    pub fn from_ball_execution<O>(execution: &BallExecution<O>) -> Self {
        RadiusProfile { radii: execution.radii().to_vec() }
    }

    /// Extracts the profile of a round-based execution (the decision rounds).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidOutput`] if some node never decided.
    pub fn from_execution<O: Clone>(execution: &Execution<O>) -> Result<Self> {
        if !execution.is_complete() {
            return Err(CoreError::InvalidOutput { problem: "incomplete execution".to_string() });
        }
        Ok(RadiusProfile { radii: execution.decision_rounds() })
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.radii.len()
    }

    /// Returns `true` for the empty profile.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.radii.is_empty()
    }

    /// Radius of a specific node.
    #[must_use]
    pub fn radius(&self, node: NodeId) -> Option<usize> {
        self.radii.get(node.index()).copied()
    }

    /// The raw radii, in node order.
    #[must_use]
    pub fn radii(&self) -> &[usize] {
        &self.radii
    }

    /// The classical measure: `max_v r(v)` (0 for the empty profile).
    #[must_use]
    pub fn max(&self) -> usize {
        self.radii.iter().copied().max().unwrap_or(0)
    }

    /// The smallest radius (0 for the empty profile).
    #[must_use]
    pub fn min(&self) -> usize {
        self.radii.iter().copied().min().unwrap_or(0)
    }

    /// The total cost `Σ_v r(v)`.
    #[must_use]
    pub fn total(&self) -> usize {
        self.radii.iter().sum()
    }

    /// The paper's measure: `Σ_v r(v) / n` (0.0 for the empty profile).
    #[must_use]
    pub fn average(&self) -> f64 {
        if self.radii.is_empty() {
            0.0
        } else {
            self.total() as f64 / self.radii.len() as f64
        }
    }

    /// Nearest-rank quantile of the radii, in thousandths (`500` = median,
    /// `900` = 90th percentile; values above 1000 are clamped). Returns 0.0
    /// for the empty profile. `O(n)` — selection, not a sort.
    #[must_use]
    pub fn quantile(&self, per_mille: u16) -> f64 {
        let mut scratch = self.radii.clone();
        crate::measure::nearest_rank(&mut scratch, per_mille)
    }

    /// The exact radius distribution of the profile (see
    /// [`crate::RadiusCdf`]): every quantile and tail of the execution in
    /// one mergeable report.
    #[must_use]
    pub fn cdf(&self) -> crate::RadiusCdf {
        crate::RadiusCdf::from_radii(&self.radii)
    }

    /// Fraction of nodes with radius at most `r`.
    #[must_use]
    pub fn fraction_within(&self, r: usize) -> f64 {
        if self.radii.is_empty() {
            return 0.0;
        }
        self.radii.iter().filter(|&&x| x <= r).count() as f64 / self.radii.len() as f64
    }

    /// Summary statistics of the radii.
    #[must_use]
    pub fn summary(&self) -> Summary {
        Summary::from_integers(&self.radii)
    }

    /// Histogram of the radii (`result[r]` = number of nodes with radius `r`).
    #[must_use]
    pub fn histogram(&self) -> Vec<usize> {
        histogram(&self.radii)
    }

    /// Consumes the profile and returns the radii.
    #[must_use]
    pub fn into_radii(self) -> Vec<usize> {
        self.radii
    }
}

impl From<Vec<usize>> for RadiusProfile {
    fn from(radii: Vec<usize>) -> Self {
        RadiusProfile::new(radii)
    }
}

impl FromIterator<usize> for RadiusProfile {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        RadiusProfile::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avglocal_algorithms::LargestId;
    use avglocal_graph::{generators, IdAssignment};
    use avglocal_runtime::{BallExecutor, GatherAdapter, Knowledge, SyncExecutor};

    #[test]
    fn basic_statistics() {
        let p = RadiusProfile::new(vec![2, 4, 6]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.max(), 6);
        assert_eq!(p.min(), 2);
        assert_eq!(p.total(), 12);
        assert_eq!(p.average(), 4.0);
        assert_eq!(p.radius(NodeId::new(1)), Some(4));
        assert_eq!(p.radius(NodeId::new(9)), None);
        assert_eq!(p.histogram()[2], 1);
        assert_eq!(p.summary().count, 3);
    }

    #[test]
    fn empty_profile() {
        let p = RadiusProfile::new(vec![]);
        assert!(p.is_empty());
        assert_eq!(p.max(), 0);
        assert_eq!(p.min(), 0);
        assert_eq!(p.average(), 0.0);
        assert_eq!(p.fraction_within(10), 0.0);
    }

    #[test]
    fn quantiles_are_nearest_rank() {
        let p = RadiusProfile::new(vec![5, 1, 3, 2, 4]);
        assert_eq!(p.quantile(0), 1.0);
        assert_eq!(p.quantile(500), 3.0);
        assert_eq!(p.quantile(1000), 5.0);
        assert_eq!(RadiusProfile::new(vec![]).quantile(500), 0.0);
    }

    #[test]
    fn fraction_within_is_a_cdf() {
        let p = RadiusProfile::new(vec![1, 2, 3, 4]);
        assert_eq!(p.fraction_within(0), 0.0);
        assert_eq!(p.fraction_within(2), 0.5);
        assert_eq!(p.fraction_within(4), 1.0);
        assert_eq!(p.fraction_within(100), 1.0);
        // The full distribution report agrees point by point.
        let cdf = p.cdf();
        for r in 0..=5 {
            assert_eq!(cdf.fraction_within(r), p.fraction_within(r), "r={r}");
        }
        for per_mille in [0u16, 250, 500, 750, 1000] {
            assert_eq!(cdf.quantile(per_mille), p.quantile(per_mille), "q={per_mille}");
        }
    }

    #[test]
    fn conversions() {
        let p: RadiusProfile = vec![1, 2].into();
        assert_eq!(p.total(), 3);
        let q: RadiusProfile = [3usize, 4].into_iter().collect();
        assert_eq!(q.total(), 7);
        assert_eq!(q.into_radii(), vec![3, 4]);
    }

    #[test]
    fn profiles_from_both_executors_agree() {
        let mut g = generators::cycle(15).unwrap();
        IdAssignment::Shuffled { seed: 2 }.apply(&mut g).unwrap();
        let ball = BallExecutor::new().run(&g, &LargestId, Knowledge::none()).unwrap();
        let rounds =
            SyncExecutor::new().run(&g, &GatherAdapter::new(LargestId), Knowledge::none()).unwrap();
        let p1 = RadiusProfile::from_ball_execution(&ball);
        let p2 = RadiusProfile::from_execution(&rounds).unwrap();
        assert_eq!(p1, p2);
    }
}
