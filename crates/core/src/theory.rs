//! The paper's predictions, as executable formulas.
//!
//! Each experiment compares a measured curve against the growth shape the
//! paper proves or cites. This module centralises those reference curves so
//! benches, examples and tests all use the same ones.

use avglocal_analysis::a000788::total_bit_count;
use avglocal_analysis::logstar::{linial_threshold, log_star};
use avglocal_analysis::sequences::expected_random_radius_largest_id;

/// Worst-case (over identifier permutations) **total** radius of the
/// largest-ID algorithm on the `n`-cycle, as bounded in Section 2:
/// `a(n-1) + ⌊n/2⌋` (the segment left after removing the winner, plus the
/// winner's own cost).
#[must_use]
pub fn largest_id_worst_total(n: usize) -> u64 {
    if n == 0 {
        return 0;
    }
    total_bit_count(n as u64 - 1) + (n as u64) / 2
}

/// Worst-case **average** radius of the largest-ID algorithm on the
/// `n`-cycle: [`largest_id_worst_total`] divided by `n`. The paper proves
/// this is `Θ(log n)`.
#[must_use]
pub fn largest_id_worst_average(n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    largest_id_worst_total(n) as f64 / n as f64
}

/// Worst-case radius of the largest-ID problem under the classical measure:
/// `⌊n/2⌋` (the winner must see the whole cycle). This is the `Θ(n)` side of
/// the paper's exponential separation.
#[must_use]
pub fn largest_id_worst_case(n: usize) -> usize {
    n / 2
}

/// Expected average radius of the largest-ID algorithm when identifiers are a
/// uniformly random permutation (the Section 4 question): `≈ ½·ln n + O(1)`.
#[must_use]
pub fn largest_id_random_average(n: usize) -> f64 {
    expected_random_radius_largest_id(n as u64)
}

/// The paper's Theorem 1 lower bound on the average radius of 3-colouring
/// the `n`-ring: `Ω(log* n)`, instantiated with the constant of the proof,
/// `½·log*(n/2)`.
#[must_use]
pub fn coloring_average_lower_bound(n: usize) -> f64 {
    f64::from(linial_threshold(n as u64))
}

/// The Cole–Vishkin upper bound on every node's radius for 3-colouring with
/// `bits`-bit identifiers: the number of colour-shrinking iterations plus the
/// three reduction rounds. With 64-bit identifiers this is 7.
#[must_use]
pub fn cole_vishkin_upper_bound(bits: u32) -> usize {
    avglocal_algorithms::cole_vishkin::cv_iterations_for_bits(bits) + 3
}

/// `log*` of `n`, re-exported for plotting convenience.
#[must_use]
pub fn log_star_of(n: usize) -> u32 {
    log_star(n as u64)
}

/// A single theory-versus-measurement comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Instance size.
    pub n: usize,
    /// The value the paper's analysis predicts.
    pub predicted: f64,
    /// The value the simulator measured.
    pub measured: f64,
}

impl Comparison {
    /// Ratio `measured / predicted` (`NaN` when the prediction is 0).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.measured / self.predicted
    }

    /// Returns `true` when the measurement is within a multiplicative
    /// `factor` of the prediction in both directions.
    #[must_use]
    pub fn within_factor(&self, factor: f64) -> bool {
        if self.predicted == 0.0 {
            return self.measured == 0.0;
        }
        let r = self.ratio();
        r <= factor && r >= 1.0 / factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_total_small_values() {
        // a(n-1) + n/2 for n = 4: a(3) = 4, plus 2.
        assert_eq!(largest_id_worst_total(4), 6);
        assert_eq!(largest_id_worst_total(5), 7);
        assert_eq!(largest_id_worst_total(0), 0);
        assert_eq!(largest_id_worst_total(1), 0);
    }

    #[test]
    fn worst_average_is_logarithmic() {
        let a1k = largest_id_worst_average(1 << 10);
        let a1m = largest_id_worst_average(1 << 20);
        // Doubling the exponent roughly doubles the average (Θ(log n)).
        assert!(a1m / a1k > 1.7 && a1m / a1k < 2.3, "ratio {}", a1m / a1k);
        // And it is exponentially smaller than the worst case.
        assert!(a1m < largest_id_worst_case(1 << 20) as f64 / 1000.0);
    }

    #[test]
    fn random_average_is_below_worst_average() {
        for k in [6u32, 10, 14] {
            let n = 1usize << k;
            assert!(largest_id_random_average(n) <= largest_id_worst_average(n));
        }
    }

    #[test]
    fn coloring_bound_and_upper_bound() {
        assert!(coloring_average_lower_bound(1 << 16) >= 2.0);
        assert!(coloring_average_lower_bound(16) >= 1.0);
        assert_eq!(cole_vishkin_upper_bound(64), 7);
        assert_eq!(cole_vishkin_upper_bound(8), 6);
        // The upper bound dominates the lower bound for every realistic n.
        for k in [4u32, 8, 16, 20] {
            let n = 1usize << k;
            assert!(cole_vishkin_upper_bound(64) as f64 >= coloring_average_lower_bound(n));
        }
    }

    #[test]
    fn log_star_wrapper() {
        assert_eq!(log_star_of(65_536), 4);
        assert_eq!(log_star_of(16), 3);
    }

    #[test]
    fn comparison_ratios() {
        let c = Comparison { n: 100, predicted: 4.0, measured: 5.0 };
        assert!((c.ratio() - 1.25).abs() < 1e-12);
        assert!(c.within_factor(1.5));
        assert!(!c.within_factor(1.1));
        let zero = Comparison { n: 10, predicted: 0.0, measured: 0.0 };
        assert!(zero.within_factor(2.0));
        let bad = Comparison { n: 10, predicted: 0.0, measured: 1.0 };
        assert!(!bad.within_factor(2.0));
    }
}
