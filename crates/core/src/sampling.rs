//! Sampling estimators for the paper's distributional measures.
//!
//! Every exact experiment probes **every** node every trial — Θ(Σ ball) per
//! trial — which caps the sweeps far below the scales where the paper's
//! average-vs-worst-case separation is most interesting. This module answers
//! the node-averaged, edge-averaged and quantile measures from a **sampled
//! subset** of nodes instead, with honest confidence intervals from
//! `avglocal_analysis::stats`, so E-style curves extend one to two orders of
//! magnitude past the exact-sweep frontier:
//!
//! * [`SamplePlan::Uniform`] — a without-replacement uniform node sample;
//!   the sample mean estimates the node-averaged complexity, the sampled
//!   ECDF its quantiles, both with finite-population-corrected intervals.
//! * [`SamplePlan::EdgeEndpoint`] — a without-replacement uniform sample of
//!   **edges** whose endpoints are probed; each sampled edge contributes its
//!   endpoint radii exactly as the exact edge-averaged measures weight them
//!   (`max(r_u, r_v)` and `(r_u + r_v)/2`), so the sample mean estimates the
//!   BGKO edge-averaged complexities.
//! * [`SamplePlan::StratifiedByDegree`] — nodes stratified into geometric
//!   degree classes with proportional allocation. On hub families the
//!   heavy-degree tail is a vanishing fraction of nodes but carries the
//!   interesting radii; stratification guarantees every degree class is
//!   represented and removes the between-stratum variance term, so it beats
//!   uniform sampling on mean-squared error at equal budget.
//!
//! # Determinism contract
//!
//! The sample set is a pure function of `(base_seed, trial, plan)` and the
//! graph: [`SamplePlan::seed_for`] derives a stream seed by the same
//! splitmix mixing the id-assignment layer uses ([`derive_seed`]), tagged
//! per plan variant and budget so distinct plans draw disjoint streams.
//! Draws use Floyd's without-replacement algorithm over ordered sets —
//! never hash iteration — so the sampled node list is bit-reproducible
//! across runs, schedulings, and thread counts; probing it through the
//! index-addressed executor keeps the whole estimate bit-reproducible.
//!
//! # Census degeneration
//!
//! A plan whose budget covers the whole population degenerates to the exact
//! measurement: [`SampleSet::is_census`] turns true and the estimates are
//! computed by the same arithmetic, in the same order, as
//! [`MeasureSet`](crate::measure::MeasureSet) — bit-identical values with
//! zero half-width. The statistical suite pins this equivalence.

use std::collections::BTreeSet;

use avglocal_analysis::stats::{fpc_half_width_95, stratified_mean_ci, StratumStat, Summary};
use avglocal_graph::{derive_seed, CsrGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cdf::RadiusCdf;

/// How to choose the probed subset, and how large it may be.
///
/// The `budget` is counted in **node probes** — the unit of work the
/// executor actually spends. Edge-endpoint sampling therefore draws about
/// `budget / 2` edges, since each edge costs its two endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplePlan {
    /// Uniform without-replacement node sample; estimates the node-averaged
    /// measure and the radius quantiles.
    Uniform {
        /// Maximum number of nodes to probe.
        budget: usize,
    },
    /// Uniform without-replacement **edge** sample, probing both endpoints
    /// of every sampled edge; estimates the edge-averaged measures.
    EdgeEndpoint {
        /// Maximum number of node probes (≈ 2 per sampled edge).
        budget: usize,
    },
    /// Node sample stratified into geometric degree classes with
    /// proportional allocation; estimates the node-averaged measure and
    /// weighted quantiles with the stratified variance.
    StratifiedByDegree {
        /// Maximum number of nodes to probe.
        budget: usize,
    },
}

impl SamplePlan {
    /// The probe budget the plan was configured with.
    #[must_use]
    pub fn budget(&self) -> usize {
        match *self {
            SamplePlan::Uniform { budget }
            | SamplePlan::EdgeEndpoint { budget }
            | SamplePlan::StratifiedByDegree { budget } => budget,
        }
    }

    /// A short stable key naming the plan (used by benches and corpus
    /// filenames): `uniform_<budget>`, `edge_<budget>`, `strata_<budget>`.
    #[must_use]
    pub fn key(&self) -> String {
        match *self {
            SamplePlan::Uniform { budget } => format!("uniform_{budget}"),
            SamplePlan::EdgeEndpoint { budget } => format!("edge_{budget}"),
            SamplePlan::StratifiedByDegree { budget } => format!("strata_{budget}"),
        }
    }

    /// Per-variant stream tag, kept in the low 32 bits so the budget
    /// (rotated into the high bits) can never alias two variants.
    fn tag(&self) -> u64 {
        match self {
            SamplePlan::Uniform { .. } => 0x5A11_0001,
            SamplePlan::EdgeEndpoint { .. } => 0x5A11_0002,
            SamplePlan::StratifiedByDegree { .. } => 0x5A11_0003,
        }
    }

    /// The stream seed for this plan at `(base_seed, trial)`.
    ///
    /// Derived with the same splitmix finaliser as per-trial id assignments:
    /// distinct `(base_seed, trial, plan)` triples give unrelated streams,
    /// so a sampled sweep's trials draw disjoint sample sets and two plans
    /// at the same trial never share one.
    #[must_use]
    pub fn seed_for(&self, base_seed: u64, trial: usize) -> u64 {
        let trial_seed = derive_seed(base_seed, trial as u64);
        derive_seed(trial_seed, self.tag() ^ (self.budget() as u64).rotate_left(32))
    }

    /// Draws the sample set for this plan on `csr` from `seed`.
    ///
    /// Pure and deterministic: the same `(plan, csr, seed)` always yields
    /// the same [`SampleSet`], independent of scheduling or thread count.
    #[must_use]
    pub fn draw(&self, csr: &CsrGraph, seed: u64) -> SampleSet {
        let n = csr.node_count();
        let m = csr.edge_count();
        let mut rng = StdRng::seed_from_u64(seed);
        let design = match *self {
            SamplePlan::Uniform { budget } => {
                let k = budget.min(n);
                Design::Uniform { nodes: sample_indices(&mut rng, n, k) }
            }
            SamplePlan::EdgeEndpoint { budget } => {
                let e = (budget / 2).max(1).min(m);
                let picked = if m == 0 { Vec::new() } else { sample_indices(&mut rng, m, e) };
                // Materialise the picked edge indices in edge-stream order —
                // the same `csr.edges()` order the exact measures fold over.
                let mut edges = Vec::with_capacity(picked.len());
                let mut want = picked.iter().copied();
                let mut next = want.next();
                for (index, edge) in csr.edges().enumerate() {
                    match next {
                        Some(w) if w as usize == index => {
                            edges.push(edge);
                            next = want.next();
                        }
                        Some(_) => {}
                        None => break,
                    }
                }
                Design::EdgeEndpoint { edges }
            }
            SamplePlan::StratifiedByDegree { budget } => {
                Design::Stratified { strata: draw_stratified(&mut rng, csr, budget) }
            }
        };
        let nodes = design.probe_nodes();
        SampleSet { plan: *self, seed, population_nodes: n, population_edges: m, nodes, design }
    }
}

/// Floyd's without-replacement sample of `k` indices out of `0..n`,
/// returned in ascending order. Uses an ordered set — deterministic
/// iteration, no hash containers.
fn sample_indices(rng: &mut StdRng, n: usize, k: usize) -> Vec<u32> {
    debug_assert!(k <= n);
    if k >= n {
        return (0..n as u32).collect();
    }
    let mut chosen = BTreeSet::new();
    for j in (n - k)..n {
        let t = rng.gen_range(0..j + 1) as u32;
        if !chosen.insert(t) {
            chosen.insert(j as u32);
        }
    }
    chosen.into_iter().collect()
}

/// Geometric degree class of a node: 0 for isolated nodes, otherwise
/// `⌊log₂ degree⌋ + 1`, so class `b ≥ 1` holds degrees in `[2^(b−1), 2^b)`.
fn degree_class(degree: usize) -> usize {
    (usize::BITS - degree.leading_zeros()) as usize
}

/// One degree stratum of a stratified sample.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SampleStratum {
    /// Number of population nodes in this degree class (`N_h`).
    population: usize,
    /// The sampled node indices, ascending (`k_h` of them).
    members: Vec<u32>,
}

/// Stratifies nodes by [`degree_class`], allocates the budget
/// proportionally (largest-remainder rounding, then a deterministic repair
/// pass that lifts every stratum toward two draws so its variance is
/// estimable), and Floyd-samples within each stratum.
fn draw_stratified(rng: &mut StdRng, csr: &CsrGraph, budget: usize) -> Vec<SampleStratum> {
    let n = csr.node_count();
    let mut classes: Vec<Vec<u32>> = Vec::new();
    for v in 0..n as u32 {
        let class = degree_class(csr.degree(v));
        if classes.len() <= class {
            classes.resize_with(class + 1, Vec::new);
        }
        classes[class].push(v);
    }
    let classes: Vec<Vec<u32>> = classes.into_iter().filter(|c| !c.is_empty()).collect();
    let k = budget.min(n);

    // Proportional floor allocation, capped by stratum size.
    let mut alloc: Vec<usize> = classes.iter().map(|c| k * c.len() / n).collect();
    let mut assigned: usize = alloc.iter().sum();
    // Largest-remainder distribution of what the floors dropped: order by
    // fractional remainder descending, stratum index ascending on ties.
    let mut order: Vec<usize> = (0..classes.len()).collect();
    order.sort_by_key(|&h| (std::cmp::Reverse(k * classes[h].len() % n), h));
    while assigned < k {
        let before = assigned;
        for &h in &order {
            if assigned == k {
                break;
            }
            if alloc[h] < classes[h].len() {
                alloc[h] += 1;
                assigned += 1;
            }
        }
        if assigned == before {
            break; // every stratum saturated (k == n).
        }
    }
    // Repair pass: every stratum should reach min(2, N_h) draws so its
    // variance is estimable. Donors are the strata with the largest surplus
    // above that minimum; ties break toward the lower stratum index. With a
    // budget too small to cover the minima the estimate simply reports an
    // infinite half-width — gated, never silently wrong.
    for h in 0..classes.len() {
        let target = classes[h].len().min(2);
        while alloc[h] < target {
            let donor = (0..classes.len())
                .filter(|&j| j != h && alloc[j] > classes[j].len().min(2))
                .max_by_key(|&j| (alloc[j] - classes[j].len().min(2), std::cmp::Reverse(j)));
            match donor {
                Some(j) => {
                    alloc[j] -= 1;
                    alloc[h] += 1;
                }
                None => break,
            }
        }
    }

    classes
        .into_iter()
        .zip(alloc)
        .map(|(members, k_h)| {
            let picked = sample_indices(rng, members.len(), k_h);
            SampleStratum {
                population: members.len(),
                members: picked.into_iter().map(|i| members[i as usize]).collect(),
            }
        })
        .collect()
}

/// Plan-specific bookkeeping a draw retains for estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Design {
    /// Uniform node sample, ascending.
    Uniform { nodes: Vec<u32> },
    /// Sampled edges in edge-stream (`csr.edges()`) order.
    EdgeEndpoint { edges: Vec<(u32, u32)> },
    /// Degree strata in ascending class order.
    Stratified { strata: Vec<SampleStratum> },
}

impl Design {
    /// The deduplicated, ascending list of nodes the plan must probe.
    fn probe_nodes(&self) -> Vec<NodeId> {
        match self {
            Design::Uniform { nodes } => nodes.iter().map(|&v| NodeId::new(v as usize)).collect(),
            Design::EdgeEndpoint { edges } => {
                let endpoints: BTreeSet<u32> = edges.iter().flat_map(|&(u, v)| [u, v]).collect();
                endpoints.into_iter().map(|v| NodeId::new(v as usize)).collect()
            }
            Design::Stratified { strata } => {
                let members: BTreeSet<u32> =
                    strata.iter().flat_map(|s| s.members.iter().copied()).collect();
                members.into_iter().map(|v| NodeId::new(v as usize)).collect()
            }
        }
    }
}

/// A drawn sample: the nodes to probe plus the design bookkeeping needed to
/// turn their radii into estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleSet {
    plan: SamplePlan,
    seed: u64,
    population_nodes: usize,
    population_edges: usize,
    nodes: Vec<NodeId>,
    design: Design,
}

impl SampleSet {
    /// The plan that drew this sample.
    #[must_use]
    pub fn plan(&self) -> SamplePlan {
        self.plan
    }

    /// The stream seed the sample was drawn from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The nodes to probe: deduplicated, ascending. Estimation expects the
    /// radius vector positionally aligned with this list.
    #[must_use]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of nodes the plan probes (the spent budget).
    #[must_use]
    pub fn probes(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the sample covers its whole population — full node coverage
    /// for node plans, every edge for the edge plan — in which case the
    /// estimates degenerate to the exact measures with zero half-width.
    #[must_use]
    pub fn is_census(&self) -> bool {
        match &self.design {
            Design::Uniform { .. } | Design::Stratified { .. } => {
                self.nodes.len() == self.population_nodes
            }
            Design::EdgeEndpoint { edges } => edges.len() == self.population_edges,
        }
    }

    /// Radius of a probed node, by binary search over the ascending probe
    /// list. Panics if `node` was not sampled — a design invariant, since
    /// every design only references its own probe set.
    fn radius_of(&self, radii: &[usize], node: u32) -> usize {
        let slot = self
            .nodes
            .binary_search(&NodeId::new(node as usize))
            .expect("sampled designs only reference probed nodes");
        radii[slot]
    }

    /// Turns the probe results into estimates. `radii` must be positionally
    /// aligned with [`SampleSet::nodes`] (as returned by the executor's
    /// index-addressed batch path).
    ///
    /// # Panics
    ///
    /// Panics when `radii.len() != self.nodes().len()` — the caller wired
    /// the wrong result vector.
    #[must_use]
    pub fn estimate(&self, radii: &[usize]) -> SampledMeasureSet {
        assert_eq!(
            radii.len(),
            self.nodes.len(),
            "radius vector must align with the sampled node list"
        );
        let census = self.is_census();
        let mut node_averaged = None;
        let mut edge_averaged = None;
        let mut edge_averaged_mean = None;
        let mut quantiles = None;

        match &self.design {
            Design::Uniform { .. } => {
                let n = self.population_nodes;
                let k = radii.len();
                node_averaged = Some(if census {
                    // The exact integer path MeasureSet::compute uses —
                    // bit-identical at any scale.
                    let total: usize = radii.iter().sum();
                    Estimate {
                        value: if n == 0 { 0.0 } else { total as f64 / n as f64 },
                        half_width_95: 0.0,
                        sampled: k,
                        population: n,
                    }
                } else {
                    let summary = Summary::from_integers(radii);
                    Estimate {
                        value: summary.mean,
                        half_width_95: fpc_half_width_95(&summary, n),
                        sampled: k,
                        population: n,
                    }
                });
                quantiles = Some(QuantileSupport::Exact(RadiusCdf::from_radii(radii)));
            }
            Design::EdgeEndpoint { edges } => {
                let m = self.population_edges;
                let e = edges.len();
                // Accumulate the per-edge statistics in edge-stream order —
                // exactly the fold MeasureSet::compute runs, so a census
                // reproduces it bit for bit.
                let mut max_values = Vec::with_capacity(e);
                let mut mean_values = Vec::with_capacity(e);
                for &(u, v) in edges {
                    let ru = self.radius_of(radii, u);
                    let rv = self.radius_of(radii, v);
                    max_values.push(ru.max(rv) as f64);
                    mean_values.push((ru + rv) as f64 / 2.0);
                }
                let max_summary = Summary::from_values(&max_values);
                let mean_summary = Summary::from_values(&mean_values);
                edge_averaged = Some(Estimate {
                    value: max_summary.mean,
                    half_width_95: fpc_half_width_95(&max_summary, m),
                    sampled: e,
                    population: m,
                });
                edge_averaged_mean = Some(Estimate {
                    value: mean_summary.mean,
                    half_width_95: fpc_half_width_95(&mean_summary, m),
                    sampled: e,
                    population: m,
                });
            }
            Design::Stratified { strata } => {
                let n = self.population_nodes;
                let k = radii.len();
                if census {
                    let total: usize = radii.iter().sum();
                    node_averaged = Some(Estimate {
                        value: if n == 0 { 0.0 } else { total as f64 / n as f64 },
                        half_width_95: 0.0,
                        sampled: k,
                        population: n,
                    });
                    // Every weight is 1: the sampled ECDF *is* the exact one.
                    quantiles = Some(QuantileSupport::Exact(RadiusCdf::from_radii(radii)));
                } else {
                    let stats: Vec<StratumStat> = strata
                        .iter()
                        .map(|s| {
                            let values: Vec<f64> = s
                                .members
                                .iter()
                                .map(|&v| self.radius_of(radii, v) as f64)
                                .collect();
                            StratumStat {
                                population: s.population,
                                summary: Summary::from_values(&values),
                            }
                        })
                        .collect();
                    let combined = stratified_mean_ci(&stats);
                    node_averaged = Some(Estimate {
                        value: combined.mean,
                        half_width_95: combined.half_width_95,
                        sampled: k,
                        population: n,
                    });
                    // Weighted ECDF: each sampled node stands for
                    // N_h / k_h population nodes of its stratum.
                    let mut entries = Vec::with_capacity(k);
                    for s in strata {
                        if s.members.is_empty() {
                            continue;
                        }
                        let weight = s.population as f64 / s.members.len() as f64;
                        for &v in &s.members {
                            entries.push((self.radius_of(radii, v), weight));
                        }
                    }
                    entries.sort_by(|a, b| {
                        a.0.cmp(&b.0).then(a.1.partial_cmp(&b.1).expect("finite weights").reverse())
                    });
                    let total_weight = entries.iter().map(|e| e.1).sum();
                    quantiles = Some(QuantileSupport::Weighted { entries, total_weight });
                }
            }
        }

        SampledMeasureSet {
            plan: self.plan,
            seed: self.seed,
            probes: self.nodes.len(),
            census,
            node_averaged,
            edge_averaged,
            edge_averaged_mean,
            quantiles,
        }
    }

    /// Estimation convenience for validation harnesses that already hold the
    /// **full** population radius vector (indexed by node id): extracts the
    /// probed slots and estimates from them, without re-running anything.
    ///
    /// # Panics
    ///
    /// Panics when `population_radii` is shorter than the graph the sample
    /// was drawn on.
    #[must_use]
    pub fn estimate_against(&self, population_radii: &[usize]) -> SampledMeasureSet {
        let probed: Vec<usize> = self.nodes.iter().map(|v| population_radii[v.index()]).collect();
        self.estimate(&probed)
    }
}

/// One estimated scalar measure with its uncertainty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The point estimate.
    pub value: f64,
    /// Half-width of the 95% confidence interval. `0.0` exactly for a
    /// census; `f64::INFINITY` when the design left the variance
    /// unestimable (gated, never silently zero).
    pub half_width_95: f64,
    /// Number of sampled units (nodes or edges) the estimate used.
    pub sampled: usize,
    /// Size of the population the units were drawn from.
    pub population: usize,
}

impl Estimate {
    /// Whether the 95% interval covers `exact`.
    #[must_use]
    pub fn covers(&self, exact: f64) -> bool {
        (self.value - exact).abs() <= self.half_width_95
    }

    /// `|value − exact| / |exact|`; falls back to the absolute error when
    /// `exact` is zero.
    #[must_use]
    pub fn relative_error(&self, exact: f64) -> f64 {
        let abs = (self.value - exact).abs();
        if exact == 0.0 {
            abs
        } else {
            abs / exact.abs()
        }
    }

    /// Combines per-trial estimates of the same measure into the estimate
    /// of the *trial-averaged* measure: the mean of the values, with the
    /// independent-trials half-width `√(Σ hwᵢ²) / T`. `None` for an empty
    /// slice.
    #[must_use]
    pub fn mean_of(estimates: &[Estimate]) -> Option<Estimate> {
        if estimates.is_empty() {
            return None;
        }
        let t = estimates.len() as f64;
        let value = estimates.iter().map(|e| e.value).sum::<f64>() / t;
        let half_width_95 =
            estimates.iter().map(|e| e.half_width_95 * e.half_width_95).sum::<f64>().sqrt() / t;
        Some(Estimate {
            value,
            half_width_95,
            sampled: estimates.iter().map(|e| e.sampled).sum(),
            population: estimates[0].population,
        })
    }
}

/// Quantile bookkeeping of a sampled estimate.
#[derive(Debug, Clone, PartialEq)]
enum QuantileSupport {
    /// Equal-weight sample: the sampled ECDF, sharing `RadiusCdf`'s exact
    /// nearest-rank arithmetic (bit-identical to the full measure on a
    /// census).
    Exact(RadiusCdf),
    /// Expansion-weighted sample values, ascending by radius.
    Weighted {
        /// `(radius, expansion weight)` pairs sorted by radius.
        entries: Vec<(usize, f64)>,
        /// Σ of the weights (≈ the population size).
        total_weight: f64,
    },
}

impl QuantileSupport {
    fn quantile(&self, per_mille: u16) -> f64 {
        match self {
            QuantileSupport::Exact(cdf) => cdf.quantile(per_mille),
            QuantileSupport::Weighted { entries, total_weight } => {
                if entries.is_empty() {
                    return 0.0;
                }
                let target = f64::from(per_mille.min(1000)) / 1000.0 * total_weight;
                let mut cumulative = 0.0;
                for &(radius, weight) in entries {
                    cumulative += weight;
                    if cumulative >= target {
                        return radius as f64;
                    }
                }
                entries[entries.len() - 1].0 as f64
            }
        }
    }
}

/// The sampled counterpart of [`MeasureSet`](crate::measure::MeasureSet):
/// every measure the plan can estimate, as an [`Estimate`] with its
/// confidence half-width, plus sampled quantiles where the design supports
/// them. Measures a plan cannot estimate unbiasedly are `None`, never a
/// silently biased number — a uniform node sample says nothing about
/// edge-averaged complexity and vice versa.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledMeasureSet {
    /// The plan that produced the estimate.
    pub plan: SamplePlan,
    /// The stream seed the sample was drawn from.
    pub seed: u64,
    /// Number of nodes probed.
    pub probes: usize,
    /// Whether the sample covered the whole population (estimates are then
    /// exact with zero half-width).
    pub census: bool,
    /// Estimated `Σ r(v) / n` (node plans).
    pub node_averaged: Option<Estimate>,
    /// Estimated `Σ_e max(r_u, r_v) / m` (edge-endpoint plan).
    pub edge_averaged: Option<Estimate>,
    /// Estimated `Σ_e (r_u + r_v)/2 / m` (edge-endpoint plan).
    pub edge_averaged_mean: Option<Estimate>,
    quantiles: Option<QuantileSupport>,
}

impl SampledMeasureSet {
    /// The estimated radius quantile at `per_mille` (500 = median), when the
    /// design supports quantiles (node plans). Equal-weight designs use the
    /// exact nearest-rank rule of
    /// [`RadiusCdf::quantile`](crate::cdf::RadiusCdf::quantile); stratified
    /// non-census designs invert the expansion-weighted ECDF.
    #[must_use]
    pub fn quantile(&self, per_mille: u16) -> Option<f64> {
        self.quantiles.as_ref().map(|q| q.quantile(per_mille))
    }

    /// The estimated median radius, when the design supports quantiles.
    #[must_use]
    pub fn median(&self) -> Option<f64> {
        self.quantile(500)
    }
}

/// A sampled estimate of a generation's measures, from one service call.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleReply {
    /// Epoch of the generation the estimate describes — both the draw and
    /// every probe came from this one pinned snapshot.
    pub epoch: u64,
    /// The estimated measures with their confidence half-widths.
    pub measures: SampledMeasureSet,
}

/// Sampled estimation endpoint over a batch-capable
/// [`RadiusQueryService`](avglocal_service::RadiusQueryService): draw the
/// plan's sample from the pinned generation's snapshot, probe exactly that
/// subset through the sharded batch path
/// ([`query_batch_on`](avglocal_service::RadiusQueryService::query_batch_on)),
/// and fold the radii into a [`SampledMeasureSet`] — one admission slot, one
/// shared deadline budget, one epoch for both the draw and the probes.
///
/// Lives in this crate (not `avglocal-service`) for the same reason as
/// [`AggregateQueries`](crate::aggregate::AggregateQueries): the estimator
/// layer sits above the service layer in the dependency order.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use avglocal::prelude::*;
/// use avglocal::service::{QueryOptions, RadiusQueryService, ServiceConfig, TestClock};
/// use avglocal::runtime::examples::NaiveLargestId;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ring = generators::cycle(64)?;
/// IdAssignment::Shuffled { seed: 7 }.apply(&mut ring)?;
/// let service = RadiusQueryService::new(
///     NaiveLargestId,
///     Knowledge::none(),
///     ring.freeze(),
///     Arc::new(TestClock::new()),
///     ServiceConfig::default(),
/// );
/// // A 25%-budget estimate of the node-averaged complexity, with a CI:
/// let plan = SamplePlan::Uniform { budget: 16 };
/// let reply = service.query_sample(plan, plan.seed_for(42, 0), QueryOptions::new())?;
/// let estimate = reply.measures.node_averaged.unwrap();
/// assert_eq!(estimate.sampled, 16);
/// assert!(estimate.half_width_95.is_finite());
/// # Ok(())
/// # }
/// ```
pub trait SampleQueries {
    /// Estimates the pinned generation's measures from the sample `plan`
    /// draws at `seed` (see [`SamplePlan::seed_for`] for deriving seeds that
    /// keep trials and plans on disjoint streams).
    ///
    /// # Errors
    ///
    /// Same as
    /// [`query_batch_on`](avglocal_service::RadiusQueryService::query_batch_on),
    /// plus the typed deadline/probe error of the first incomplete entry
    /// when the shared budget expired mid-batch.
    fn query_sample(
        &self,
        plan: SamplePlan,
        seed: u64,
        options: avglocal_service::QueryOptions,
    ) -> avglocal_service::Result<SampleReply>;
}

impl<A> SampleQueries for avglocal_service::RadiusQueryService<A>
where
    A: avglocal_runtime::BallAlgorithm + Sync,
    A::Output: Send,
{
    fn query_sample(
        &self,
        plan: SamplePlan,
        seed: u64,
        options: avglocal_service::QueryOptions,
    ) -> avglocal_service::Result<SampleReply> {
        let generation = self.pin();
        let sample = plan.draw(generation.session().csr(), seed);
        let request = avglocal_service::QueryRequest::nodes(sample.nodes().to_vec(), options);
        let reply = self.query_batch_on(&generation, &request)?;
        let radii = reply.radii()?;
        Ok(SampleReply { epoch: reply.epoch(), measures: sample.estimate(&radii) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avglocal_graph::generators;

    fn ring(n: usize) -> CsrGraph {
        generators::cycle(n).unwrap().freeze()
    }

    #[test]
    fn plan_seeds_separate_variants_trials_and_budgets() {
        let plans = [
            SamplePlan::Uniform { budget: 8 },
            SamplePlan::EdgeEndpoint { budget: 8 },
            SamplePlan::StratifiedByDegree { budget: 8 },
            SamplePlan::Uniform { budget: 9 },
        ];
        let mut seeds = BTreeSet::new();
        for plan in &plans {
            for trial in 0..4 {
                for base in [0u64, 1, 99] {
                    seeds.insert(plan.seed_for(base, trial));
                }
            }
        }
        assert_eq!(seeds.len(), plans.len() * 4 * 3, "seed streams must not collide");
    }

    #[test]
    fn uniform_draw_is_sorted_unique_and_seed_deterministic() {
        let g = ring(64);
        let plan = SamplePlan::Uniform { budget: 16 };
        let a = plan.draw(&g, 7);
        let b = plan.draw(&g, 7);
        assert_eq!(a, b);
        assert_eq!(a.probes(), 16);
        assert!(!a.is_census());
        let mut sorted = a.nodes().to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted, a.nodes());
        assert_ne!(a.nodes(), plan.draw(&g, 8).nodes(), "different seeds, different draws");
    }

    #[test]
    fn full_budget_is_a_census_of_every_node() {
        let g = ring(12);
        for plan in [
            SamplePlan::Uniform { budget: 12 },
            SamplePlan::StratifiedByDegree { budget: 200 },
            SamplePlan::EdgeEndpoint { budget: 24 },
        ] {
            let s = plan.draw(&g, 3);
            assert!(s.is_census(), "{plan:?}");
            assert_eq!(s.probes(), 12, "{plan:?}");
        }
    }

    #[test]
    fn census_estimates_are_exact_with_zero_half_width() {
        let g = ring(10);
        let radii: Vec<usize> = (0..10).collect(); // arbitrary but fixed
        let exact = crate::measure::MeasureSet::compute(
            &radii,
            g.edges().map(|(u, v)| (u as usize, v as usize)),
        );

        let uniform = SamplePlan::Uniform { budget: 10 }.draw(&g, 1).estimate_against(&radii);
        assert!(uniform.census);
        let node = uniform.node_averaged.unwrap();
        assert_eq!(node.value, exact.node_averaged);
        assert_eq!(node.half_width_95, 0.0);
        assert_eq!(uniform.median().unwrap(), exact.median);

        let strat =
            SamplePlan::StratifiedByDegree { budget: 10 }.draw(&g, 1).estimate_against(&radii);
        assert!(strat.census);
        assert_eq!(strat.node_averaged.unwrap().value, exact.node_averaged);
        assert_eq!(strat.quantile(900).unwrap(), exact.cdf.quantile(900));

        let edge = SamplePlan::EdgeEndpoint { budget: 20 }.draw(&g, 1).estimate_against(&radii);
        assert!(edge.census);
        let e_max = edge.edge_averaged.unwrap();
        let e_mean = edge.edge_averaged_mean.unwrap();
        assert_eq!(e_max.value, exact.edge_averaged);
        assert_eq!(e_mean.value, exact.edge_averaged_mean);
        assert_eq!(e_max.half_width_95, 0.0);
        assert!(edge.node_averaged.is_none(), "edge plans do not estimate node measures");
    }

    #[test]
    fn partial_estimates_have_finite_positive_half_widths() {
        let g = ring(128);
        let radii: Vec<usize> = (0..128).map(|v| (v * 7) % 13).collect();
        let est = SamplePlan::Uniform { budget: 24 }.draw(&g, 5).estimate_against(&radii);
        assert!(!est.census);
        let node = est.node_averaged.unwrap();
        assert!(node.half_width_95.is_finite() && node.half_width_95 > 0.0);
        assert_eq!(node.sampled, 24);
        assert_eq!(node.population, 128);

        let edge = SamplePlan::EdgeEndpoint { budget: 24 }.draw(&g, 5).estimate_against(&radii);
        assert!(!edge.census);
        assert!(edge.edge_averaged.unwrap().half_width_95.is_finite());
        assert_eq!(edge.edge_averaged.unwrap().population, 128); // ring: m = n
    }

    #[test]
    fn stratified_draw_covers_every_degree_class() {
        // A star: one hub of degree n-1, leaves of degree 1 — two classes.
        let mut g = avglocal_graph::Graph::new();
        let ids = g.add_nodes_with_default_ids(64);
        let hub = ids[0];
        for &leaf in &ids[1..] {
            g.add_edge(hub, leaf).unwrap();
        }
        let csr = g.freeze();
        let s = SamplePlan::StratifiedByDegree { budget: 8 }.draw(&csr, 2);
        assert!(
            s.nodes().contains(&hub),
            "the hub is its own degree class and must always be sampled"
        );
        assert_eq!(s.probes(), 8);
    }

    #[test]
    fn estimate_mean_of_combines_trials() {
        let a = Estimate { value: 2.0, half_width_95: 0.6, sampled: 10, population: 100 };
        let b = Estimate { value: 4.0, half_width_95: 0.8, sampled: 10, population: 100 };
        let c = Estimate::mean_of(&[a, b]).unwrap();
        assert_eq!(c.value, 3.0);
        assert!((c.half_width_95 - 0.5).abs() < 1e-12);
        assert_eq!(c.sampled, 20);
        assert!(Estimate::mean_of(&[]).is_none());
    }

    #[test]
    fn weighted_quantiles_reduce_sensibly() {
        let q = QuantileSupport::Weighted {
            entries: vec![(1, 1.0), (2, 1.0), (3, 1.0), (4, 1.0)],
            total_weight: 4.0,
        };
        assert_eq!(q.quantile(0), 1.0);
        assert_eq!(q.quantile(500), 2.0);
        assert_eq!(q.quantile(1000), 4.0);
        // A heavy tail weight pulls the upper quantiles up.
        let heavy =
            QuantileSupport::Weighted { entries: vec![(1, 1.0), (9, 3.0)], total_weight: 4.0 };
        assert_eq!(heavy.quantile(500), 9.0);
    }
}
