//! # avglocal
//!
//! A reproduction of *"Brief Announcement: Average Complexity for the LOCAL
//! Model"* (Laurent Feuilloley, PODC 2015) as a Rust library.
//!
//! The paper proposes measuring a LOCAL algorithm not by the round at which
//! the **last** node outputs (the classical worst case) but by the **average**
//! over the nodes of their output radii, and proves two things on the cycle:
//!
//! 1. the largest-ID problem has worst-case complexity `Θ(n)` but average
//!    complexity `Θ(log n)` — an exponential separation (Section 2);
//! 2. Linial's `Ω(log* n)` lower bound for 3-colouring survives the new
//!    measure (Section 3, Theorem 1).
//!
//! This crate is the top of the stack: it combines the graph substrate
//! (`avglocal-graph`), the LOCAL executors (`avglocal-runtime`), the
//! distributed algorithms (`avglocal-algorithms`) and the exact mathematics
//! (`avglocal-analysis`) into the measurement, experimentation and reporting
//! API used by the benches and examples.
//!
//! ## Quick start
//!
//! ```
//! use avglocal::prelude::*;
//!
//! # fn main() -> Result<(), avglocal::CoreError> {
//! // The paper's separation, on a 256-node ring with random identifiers.
//! let profile = run_on_cycle(Problem::LargestId, 256, &IdAssignment::Shuffled { seed: 1 })?;
//! let pair = MeasurePair::of(&profile);
//! assert_eq!(pair.worst_case, 128.0);          // Θ(n): the winner sees half the ring
//! assert!(pair.average < 10.0);                // Θ(log n) on average
//! assert!(pair.separation() > 12.0);           // the gap the paper is about
//! # Ok(())
//! # }
//! ```
//!
//! ## Crate map
//!
//! * [`Problem`] — algorithm + verifier bundles for every problem studied;
//! * [`RadiusProfile`] / [`Measure`] / [`MeasurePair`] — per-node radii and
//!   the two measures compared by the paper;
//! * [`RadiusCdf`] — the full radius distribution of an experiment (exact,
//!   mergeable ECDF with quantile/mean/tail accessors);
//! * [`experiment`] — size sweeps over any [`graph::Topology`] (cycles,
//!   paths, trees, grids, tori, `G(n, p)`, preferential attachment,
//!   power-law configuration), identifier-assignment policies, and the
//!   random-permutation study of Section 4;
//! * [`adversary`] — exhaustive and hill-climbing searches for worst-case
//!   identifier assignments, plus the Section 3 slice construction;
//! * [`theory`] — the paper's predicted curves (`a(n)`, `log*`, Cole–Vishkin
//!   bounds) for theory-versus-measurement tables;
//! * [`schedule`] — the motivating applications (parallel simulation,
//!   dynamic updates) as measurable quantities;
//! * [`report`] — plain-text/CSV tables used by the benchmark binary;
//! * [`service`] — the resilient long-lived radius-query service layer
//!   (epoch-published snapshots, deadlines, load shedding, batched sharded
//!   queries, crash-safe persistence; re-exported from `avglocal-service`);
//! * [`aggregate`] — distributional endpoints over the service's batched
//!   query path ([`AggregateQueries`]): a whole generation's CDF, quantile
//!   or [`MeasureSet`] as one admitted service call on one pinned epoch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adversary;
pub mod aggregate;
pub mod cdf;
mod error;
pub mod experiment;
pub mod figure;
pub mod measure;
mod problem;
mod profile;
pub mod report;
pub mod sampling;
pub mod schedule;
pub mod theory;

pub use adversary::{
    hub_adversarial_assignment, section3_assignment, top_hub, AdversaryResult, AdversarySearch,
};
pub use aggregate::{AggregateQueries, CdfReply, MeasuresReply, QuantileReply};
pub use cdf::RadiusCdf;
pub use error::{CoreError, Result};
pub use experiment::{
    cycle_with_assignment, random_permutation_study, random_permutation_study_on, run_on_cycle,
    run_on_topology, run_on_topology_per_component, topology_with_assignment, AssignmentPolicy,
    RandomPermutationStudy, SampledRow, Sweep, SweepResult, SweepRow,
};
pub use measure::{ComponentMeasures, EdgeWeight, Measure, MeasurePair, MeasureSet, MEDIAN};
pub use problem::Problem;
pub use profile::RadiusProfile;
pub use sampling::{
    Estimate, SamplePlan, SampleQueries, SampleReply, SampleSet, SampledMeasureSet,
};

// Re-export the lower layers so downstream users need a single dependency.
pub use avglocal_algorithms as algorithms;
pub use avglocal_analysis as analysis;
pub use avglocal_graph as graph;
pub use avglocal_runtime as runtime;
pub use avglocal_service as service;

/// Everything a typical experiment needs, importable in one line.
pub mod prelude {
    pub use crate::adversary::{
        hub_adversarial_assignment, section3_assignment, top_hub, AdversarySearch,
    };
    pub use crate::aggregate::AggregateQueries;
    pub use crate::cdf::RadiusCdf;
    pub use crate::experiment::{
        cycle_with_assignment, random_permutation_study, random_permutation_study_on, run_on_cycle,
        run_on_topology, run_on_topology_per_component, topology_with_assignment, AssignmentPolicy,
        SampledRow, Sweep,
    };
    pub use crate::figure::{AsciiChart, Series};
    pub use crate::measure::{ComponentMeasures, EdgeWeight, Measure, MeasurePair, MeasureSet};
    pub use crate::problem::Problem;
    pub use crate::profile::RadiusProfile;
    pub use crate::report::Table;
    pub use crate::sampling::{Estimate, SamplePlan, SampleQueries, SampledMeasureSet};
    pub use crate::schedule::{expected_invalidated_nodes, schedule_radii};
    pub use crate::theory;
    pub use avglocal_graph::{
        generators, ComponentLabels, ComponentMode, Graph, IdAssignment, Identifier, NodeId,
        Permutation, Topology,
    };
    pub use avglocal_runtime::{BallExecutor, FrozenExecutor, Knowledge, SyncExecutor};
}

#[cfg(test)]
mod proptests {
    use super::prelude::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The average radius never exceeds the worst-case radius, for any
        /// problem, size and identifier assignment.
        #[test]
        fn average_never_exceeds_worst_case(
            n in 4usize..40,
            seed in 0u64..200,
            problem_idx in 0usize..Problem::ALL.len()
        ) {
            let problem = Problem::ALL[problem_idx];
            let profile =
                run_on_cycle(problem, n, &IdAssignment::Shuffled { seed }).unwrap();
            let pair = MeasurePair::of(&profile);
            prop_assert!(pair.average <= pair.worst_case + 1e-9);
            prop_assert!(pair.average >= 0.0);
            prop_assert_eq!(profile.len(), n);
        }

        /// The measured total radius of the largest-ID algorithm never exceeds
        /// the paper's worst-case bound a(n-1) + n/2.
        #[test]
        fn largest_id_total_is_bounded_by_theory(n in 4usize..64, seed in 0u64..300) {
            let profile =
                run_on_cycle(Problem::LargestId, n, &IdAssignment::Shuffled { seed }).unwrap();
            prop_assert!(profile.total() as u64 <= theory::largest_id_worst_total(n));
        }

        /// The Cole–Vishkin measured radii never exceed the theoretical upper
        /// bound for 64-bit identifiers.
        #[test]
        fn coloring_radii_bounded_by_cole_vishkin(n in 4usize..48, seed in 0u64..200) {
            let profile =
                run_on_cycle(Problem::ThreeColoring, n, &IdAssignment::Shuffled { seed }).unwrap();
            prop_assert!(profile.max() <= theory::cole_vishkin_upper_bound(64));
        }
    }
}
