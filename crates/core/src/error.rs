//! Error type of the `avglocal` crate.

use std::error::Error;
use std::fmt;

use avglocal_graph::GraphError;
use avglocal_runtime::RuntimeError;

/// Errors produced by the measurement and experiment layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// An underlying graph operation failed.
    Graph(GraphError),
    /// An execution failed.
    Runtime(RuntimeError),
    /// An algorithm produced an invalid output (caught by the verifier).
    InvalidOutput {
        /// Name of the problem whose output failed validation.
        problem: String,
    },
    /// An experiment was configured with unusable parameters.
    InvalidConfiguration {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Runtime(e) => write!(f, "runtime error: {e}"),
            CoreError::InvalidOutput { problem } => {
                write!(f, "algorithm for problem '{problem}' produced an invalid output")
            }
            CoreError::InvalidConfiguration { reason } => {
                write!(f, "invalid experiment configuration: {reason}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            CoreError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<RuntimeError> for CoreError {
    fn from(e: RuntimeError) -> Self {
        CoreError::Runtime(e)
    }
}

/// Convenience alias for results whose error type is [`CoreError`].
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;
    use avglocal_graph::NodeId;

    #[test]
    fn conversions_and_display() {
        let ge: CoreError = GraphError::SelfLoop { node: NodeId::new(1) }.into();
        assert!(ge.to_string().contains("graph error"));
        assert!(ge.source().is_some());

        let re: CoreError = RuntimeError::NonTerminating { node: NodeId::new(2) }.into();
        assert!(re.to_string().contains("runtime error"));

        let inv = CoreError::InvalidOutput { problem: "largest-id".into() };
        assert!(inv.to_string().contains("largest-id"));
        assert!(inv.source().is_none());

        let cfg = CoreError::InvalidConfiguration { reason: "empty size list".into() };
        assert!(cfg.to_string().contains("empty size list"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<CoreError>();
    }
}
