//! The paper's motivating applications (Section 1), made measurable.
//!
//! Two scenarios are modelled:
//!
//! * **Parallel simulation.** A simulator replays every node's local
//!   computation as a job whose duration is the node's radius `r(v)`; jobs
//!   run on `k` workers. The makespan is governed by `Σ r(v) / k` (i.e. by
//!   the *average* radius) plus the longest single job — so an algorithm that
//!   is better on average finishes earlier even if its worst case is the
//!   same.
//! * **Dynamic updates.** After a change at a random node, only the nodes
//!   whose output depends on the changed node need to recompute; the expected
//!   work is again driven by the radius profile.

use crate::profile::RadiusProfile;

/// Result of scheduling the per-node jobs on a fixed number of workers.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleOutcome {
    /// Number of workers used.
    pub workers: usize,
    /// Completion time of the last job.
    pub makespan: usize,
    /// Sum of all job durations (work).
    pub total_work: usize,
    /// Lower bound `max(⌈work / workers⌉, longest job)`.
    pub lower_bound: usize,
}

impl ScheduleOutcome {
    /// Ratio of the achieved makespan to the trivial lower bound (always
    /// at least 1.0; list scheduling guarantees it is below 2.0).
    #[must_use]
    pub fn approximation_ratio(&self) -> f64 {
        if self.lower_bound == 0 {
            1.0
        } else {
            self.makespan as f64 / self.lower_bound as f64
        }
    }
}

/// Greedy list scheduling (longest processing time first) of the per-node
/// radii on `workers` identical workers.
///
/// # Panics
///
/// Panics if `workers == 0`.
#[must_use]
pub fn schedule_radii(profile: &RadiusProfile, workers: usize) -> ScheduleOutcome {
    assert!(workers > 0, "scheduling requires at least one worker");
    let mut jobs: Vec<usize> = profile.radii().to_vec();
    jobs.sort_unstable_by(|a, b| b.cmp(a));
    let mut loads = vec![0usize; workers];
    for job in &jobs {
        let laziest = loads
            .iter()
            .enumerate()
            .min_by_key(|(_, &l)| l)
            .map(|(i, _)| i)
            .expect("there is at least one worker");
        loads[laziest] += job;
    }
    let total_work: usize = jobs.iter().sum();
    let longest = jobs.first().copied().unwrap_or(0);
    ScheduleOutcome {
        workers,
        makespan: loads.into_iter().max().unwrap_or(0),
        total_work,
        lower_bound: longest.max(total_work.div_ceil(workers)),
    }
}

/// Expected cost of updating the outputs after a change at a uniformly random
/// node.
///
/// When the input of node `u` changes, every node `v` whose ball of radius
/// `r(v)` contains `u` must recompute. On a cycle, node `v`'s ball contains
/// `u` iff `dist(u, v) <= r(v)`, so a uniformly random change invalidates
/// `Σ_v min(2·r(v) + 1, n) / n` nodes in expectation — a quantity controlled
/// by the *average* radius, not the worst case.
#[must_use]
pub fn expected_invalidated_nodes(profile: &RadiusProfile) -> f64 {
    let n = profile.len();
    if n == 0 {
        return 0.0;
    }
    let total: usize = profile.radii().iter().map(|&r| (2 * r + 1).min(n)).sum();
    total as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduling_balances_uniform_jobs() {
        let profile = RadiusProfile::new(vec![2; 8]);
        let outcome = schedule_radii(&profile, 4);
        assert_eq!(outcome.makespan, 4);
        assert_eq!(outcome.total_work, 16);
        assert_eq!(outcome.lower_bound, 4);
        assert_eq!(outcome.approximation_ratio(), 1.0);
    }

    #[test]
    fn scheduling_respects_the_longest_job() {
        let profile = RadiusProfile::new(vec![10, 1, 1, 1, 1]);
        let outcome = schedule_radii(&profile, 4);
        assert_eq!(outcome.makespan, 10);
        assert_eq!(outcome.lower_bound, 10);
    }

    #[test]
    fn single_worker_serialises_everything() {
        let profile = RadiusProfile::new(vec![3, 1, 4]);
        let outcome = schedule_radii(&profile, 1);
        assert_eq!(outcome.makespan, 8);
        assert_eq!(outcome.total_work, 8);
    }

    #[test]
    fn approximation_ratio_is_modest() {
        let profile = RadiusProfile::new((1..50).collect::<Vec<usize>>());
        for workers in [2usize, 3, 7, 16] {
            let outcome = schedule_radii(&profile, workers);
            assert!(outcome.approximation_ratio() < 1.5, "workers = {workers}");
            assert!(outcome.makespan >= outcome.lower_bound);
        }
    }

    #[test]
    fn empty_profile_schedules_trivially() {
        let outcome = schedule_radii(&RadiusProfile::new(vec![]), 3);
        assert_eq!(outcome.makespan, 0);
        assert_eq!(outcome.approximation_ratio(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = schedule_radii(&RadiusProfile::new(vec![1]), 0);
    }

    #[test]
    fn invalidation_counts_ball_sizes() {
        // Radii [0, 0, 0, 1]: balls of size 1, 1, 1, 3 -> expectation 6/4.
        let profile = RadiusProfile::new(vec![0, 0, 0, 1]);
        assert!((expected_invalidated_nodes(&profile) - 1.5).abs() < 1e-12);
        // Saturating: a radius covering the whole cycle counts n, not more.
        let profile = RadiusProfile::new(vec![100, 0, 0, 0]);
        assert!((expected_invalidated_nodes(&profile) - (4 + 3) as f64 / 4.0).abs() < 1e-12);
        assert_eq!(expected_invalidated_nodes(&RadiusProfile::new(vec![])), 0.0);
    }
}
