//! Fitting measured curves against the paper's asymptotic shapes.
//!
//! The brief announcement states asymptotic bounds (`Θ(log n)`, `Θ(n log n)`,
//! `Ω(log* n)`, `Θ(n)`). To "reproduce" them on finite data the experiment
//! harness fits a single scale factor `c` for each candidate growth model and
//! reports which model explains the measurements best. This is deliberately
//! simple — least squares on a one-parameter family — because the goal is to
//! distinguish growth *shapes* (logarithmic vs. linear vs. n·log n), not to
//! estimate constants precisely.

use crate::logstar::log_star;

/// A one-parameter growth model `y ≈ c · f(n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum GrowthModel {
    /// `f(n) = 1`.
    Constant,
    /// `f(n) = log2(n)` (0 for `n <= 1`).
    Logarithmic,
    /// `f(n) = log*(n)`.
    LogStar,
    /// `f(n) = n`.
    Linear,
    /// `f(n) = n·log2(n)`.
    NLogN,
    /// `f(n) = sqrt(n)`.
    Sqrt,
}

impl GrowthModel {
    /// All models the harness considers.
    pub const ALL: [GrowthModel; 6] = [
        GrowthModel::Constant,
        GrowthModel::Logarithmic,
        GrowthModel::LogStar,
        GrowthModel::Sqrt,
        GrowthModel::Linear,
        GrowthModel::NLogN,
    ];

    /// Evaluates the basis function `f(n)`.
    #[must_use]
    pub fn basis(&self, n: f64) -> f64 {
        match self {
            GrowthModel::Constant => 1.0,
            GrowthModel::Logarithmic => {
                if n <= 1.0 {
                    0.0
                } else {
                    n.log2()
                }
            }
            GrowthModel::LogStar => f64::from(log_star(n.max(0.0) as u64)),
            GrowthModel::Linear => n,
            GrowthModel::NLogN => {
                if n <= 1.0 {
                    0.0
                } else {
                    n * n.log2()
                }
            }
            GrowthModel::Sqrt => n.max(0.0).sqrt(),
        }
    }

    /// Human-readable name used in report tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            GrowthModel::Constant => "c",
            GrowthModel::Logarithmic => "c·log n",
            GrowthModel::LogStar => "c·log* n",
            GrowthModel::Linear => "c·n",
            GrowthModel::NLogN => "c·n·log n",
            GrowthModel::Sqrt => "c·sqrt n",
        }
    }
}

/// Result of fitting one [`GrowthModel`] to data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fit {
    /// The model that was fitted.
    pub model: GrowthModel,
    /// The fitted scale factor `c`.
    pub scale: f64,
    /// Root-mean-square error of the fit, in the units of `y`.
    pub rmse: f64,
    /// RMSE divided by the mean of `|y|`; a scale-free quality measure.
    pub relative_error: f64,
}

/// Fits `y ≈ c · f(x)` by least squares for a single model.
///
/// Returns a degenerate fit (scale 0, infinite error) when the inputs are
/// empty, of unequal length, or the basis is identically zero on the data.
#[must_use]
pub fn fit_scale(xs: &[f64], ys: &[f64], model: GrowthModel) -> Fit {
    if xs.is_empty() || xs.len() != ys.len() {
        return Fit { model, scale: 0.0, rmse: f64::INFINITY, relative_error: f64::INFINITY };
    }
    let basis: Vec<f64> = xs.iter().map(|&x| model.basis(x)).collect();
    let denom: f64 = basis.iter().map(|b| b * b).sum();
    let scale = if denom == 0.0 {
        0.0
    } else {
        basis.iter().zip(ys).map(|(b, y)| b * y).sum::<f64>() / denom
    };
    let sq_err: f64 = basis
        .iter()
        .zip(ys)
        .map(|(b, y)| {
            let e = y - scale * b;
            e * e
        })
        .sum();
    let rmse = (sq_err / xs.len() as f64).sqrt();
    let mean_abs_y = ys.iter().map(|y| y.abs()).sum::<f64>() / ys.len() as f64;
    let relative_error = if mean_abs_y == 0.0 { f64::INFINITY } else { rmse / mean_abs_y };
    Fit { model, scale, rmse, relative_error }
}

/// Fits every model in [`GrowthModel::ALL`] and returns the fits sorted by
/// ascending RMSE (best first).
#[must_use]
pub fn rank_models(xs: &[f64], ys: &[f64]) -> Vec<Fit> {
    let mut fits: Vec<Fit> = GrowthModel::ALL.iter().map(|&m| fit_scale(xs, ys, m)).collect();
    fits.sort_by(|a, b| a.rmse.partial_cmp(&b.rmse).expect("rmse is never NaN"));
    fits
}

/// The single best-fitting model for the data.
#[must_use]
pub fn best_model(xs: &[f64], ys: &[f64]) -> GrowthModel {
    rank_models(xs, ys).first().map(|f| f.model).unwrap_or(GrowthModel::Constant)
}

/// Ordinary least squares for the two-parameter line `y ≈ a + b·x`.
///
/// Returns `(a, b)`; both are 0.0 when fewer than two points are given.
#[must_use]
pub fn linear_regression(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    if xs.len() < 2 || xs.len() != ys.len() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mean_x) * (y - mean_y)).sum();
    let var: f64 = xs.iter().map(|x| (x - mean_x).powi(2)).sum();
    if var == 0.0 {
        return (mean_y, 0.0);
    }
    let b = cov / var;
    (mean_y - b * mean_x, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xs() -> Vec<f64> {
        (4..15).map(|k| (1u64 << k) as f64).collect()
    }

    #[test]
    fn recovers_logarithmic_data() {
        let x = xs();
        let y: Vec<f64> = x.iter().map(|v| 1.7 * v.log2()).collect();
        let fit = fit_scale(&x, &y, GrowthModel::Logarithmic);
        assert!((fit.scale - 1.7).abs() < 1e-9);
        assert!(fit.rmse < 1e-9);
        assert_eq!(best_model(&x, &y), GrowthModel::Logarithmic);
    }

    #[test]
    fn recovers_linear_data() {
        let x = xs();
        let y: Vec<f64> = x.iter().map(|v| 0.5 * v).collect();
        assert_eq!(best_model(&x, &y), GrowthModel::Linear);
    }

    #[test]
    fn recovers_nlogn_data() {
        let x = xs();
        let y: Vec<f64> = x.iter().map(|v| 0.5 * v * v.log2()).collect();
        assert_eq!(best_model(&x, &y), GrowthModel::NLogN);
    }

    #[test]
    fn distinguishes_logstar_from_log() {
        let x: Vec<f64> = (2..18).map(|k| (1u64 << k) as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| f64::from(log_star(v as u64))).collect();
        let best = best_model(&x, &y);
        assert!(
            best == GrowthModel::LogStar || best == GrowthModel::Constant,
            "log* data should not look logarithmic or linear, got {best:?}"
        );
        let log_fit = fit_scale(&x, &y, GrowthModel::Logarithmic);
        let star_fit = fit_scale(&x, &y, GrowthModel::LogStar);
        assert!(star_fit.rmse < log_fit.rmse);
    }

    #[test]
    fn degenerate_inputs() {
        let fit = fit_scale(&[], &[], GrowthModel::Linear);
        assert_eq!(fit.scale, 0.0);
        assert!(fit.rmse.is_infinite());
        let fit = fit_scale(&[1.0], &[1.0, 2.0], GrowthModel::Linear);
        assert!(fit.rmse.is_infinite());
        // Basis identically zero: log on n = 1.
        let fit = fit_scale(&[1.0, 1.0], &[3.0, 3.0], GrowthModel::Logarithmic);
        assert_eq!(fit.scale, 0.0);
    }

    #[test]
    fn rank_models_sorted_by_error() {
        let x = xs();
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v).collect();
        let ranked = rank_models(&x, &y);
        assert_eq!(ranked[0].model, GrowthModel::Linear);
        for w in ranked.windows(2) {
            assert!(w[0].rmse <= w[1].rmse);
        }
    }

    #[test]
    fn linear_regression_recovers_line() {
        let x: Vec<f64> = (0..10).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 + 2.0 * v).collect();
        let (a, b) = linear_regression(&x, &y);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn linear_regression_degenerate_cases() {
        assert_eq!(linear_regression(&[], &[]), (0.0, 0.0));
        assert_eq!(linear_regression(&[1.0], &[2.0]), (0.0, 0.0));
        let (a, b) = linear_regression(&[2.0, 2.0], &[1.0, 3.0]);
        assert_eq!(b, 0.0);
        assert_eq!(a, 2.0);
    }

    #[test]
    fn model_names_are_distinct() {
        let mut names: Vec<&str> = GrowthModel::ALL.iter().map(GrowthModel::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), GrowthModel::ALL.len());
    }
}
