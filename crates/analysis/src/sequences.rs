//! Auxiliary sequences: harmonic numbers and expected radii under random
//! identifier assignments.
//!
//! Section 4 of the paper asks what happens when the identifier permutation
//! is drawn uniformly at random instead of adversarially. For the largest-ID
//! algorithm on the cycle this expectation has a clean form: a node still
//! undecided at radius `r-1` is the maximum of the `2r-1` identifiers it has
//! seen, which under a uniform permutation happens with probability
//! `1/(2r-1)`. Summing the tail probabilities gives an
//! `≈ ½·ln n + O(1)` expected radius, the analytic reference curve used by
//! experiment E5.

/// The harmonic number `H_n = Σ_{k=1..n} 1/k` (0.0 for `n = 0`).
#[must_use]
pub fn harmonic(n: u64) -> f64 {
    (1..=n).map(|k| 1.0 / k as f64).sum()
}

/// The odd harmonic number `Σ_{k=1..n} 1/(2k-1)` (0.0 for `n = 0`).
#[must_use]
pub fn odd_harmonic(n: u64) -> f64 {
    (1..=n).map(|k| 1.0 / (2 * k - 1) as f64).sum()
}

/// Expected radius of a fixed node for the ball-growing largest-ID algorithm
/// on an `n`-cycle when the identifier permutation is uniformly random.
///
/// Uses `E[r(v)] = Σ_{r >= 1} P(r(v) >= r)` with
/// `P(r(v) >= r) = 1 / (2r - 1)` while `2r - 1 <= n`, and caps the radius at
/// `⌊n/2⌋` (a node never needs to look further than half of the cycle).
///
/// Returns 0.0 for `n < 3`.
#[must_use]
pub fn expected_random_radius_largest_id(n: u64) -> f64 {
    if n < 3 {
        return 0.0;
    }
    let max_radius = n / 2;
    let mut expectation = 0.0;
    for r in 1..=max_radius {
        let ball = 2 * r - 1;
        let p = if ball <= n { 1.0 / ball as f64 } else { 0.0 };
        expectation += p;
    }
    expectation
}

/// Number of derangement-free fixed points expected in a uniform permutation
/// of `n` elements (always exactly 1.0 for `n >= 1`); exposed because several
/// sanity tests of the random-permutation study use it.
#[must_use]
pub fn expected_fixed_points(n: u64) -> f64 {
    if n == 0 {
        0.0
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_small_values() {
        assert_eq!(harmonic(0), 0.0);
        assert!((harmonic(1) - 1.0).abs() < 1e-12);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn harmonic_grows_like_ln() {
        let n = 100_000u64;
        let h = harmonic(n);
        let ln = (n as f64).ln();
        // H_n = ln n + gamma + o(1), gamma ≈ 0.5772.
        assert!((h - ln - 0.5772).abs() < 0.01);
    }

    #[test]
    fn odd_harmonic_relates_to_harmonic() {
        // Identity: Σ_{k=1..n} 1/(2k-1) = H_{2n-1} − ½·H_{n-1}
        // (remove the even denominators from the full harmonic sum).
        for n in 1..50u64 {
            let direct = odd_harmonic(n);
            let via_harmonic = harmonic(2 * n - 1) - 0.5 * harmonic(n - 1);
            assert!((direct - via_harmonic).abs() < 1e-9, "n = {n}");
        }
        assert_eq!(odd_harmonic(0), 0.0);
    }

    #[test]
    fn expected_radius_is_about_half_log() {
        assert_eq!(expected_random_radius_largest_id(2), 0.0);
        let e16 = expected_random_radius_largest_id(16);
        let e4096 = expected_random_radius_largest_id(4096);
        assert!(e16 < e4096);
        // ½ ln n + c: for n = 4096, ½ ln n ≈ 4.16; allow a generous band.
        assert!(e4096 > 3.5 && e4096 < 5.5, "got {e4096}");
        // Doubling n adds about ½ ln 2 ≈ 0.35.
        let e8192 = expected_random_radius_largest_id(8192);
        assert!((e8192 - e4096 - 0.5 * 2.0f64.ln()).abs() < 0.05);
    }

    #[test]
    fn fixed_points_expectation() {
        assert_eq!(expected_fixed_points(0), 0.0);
        assert_eq!(expected_fixed_points(1), 1.0);
        assert_eq!(expected_fixed_points(1000), 1.0);
    }
}
