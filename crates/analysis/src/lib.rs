//! # avglocal-analysis
//!
//! The mathematical companion of the `avglocal` reproduction of
//! *"Brief Announcement: Average Complexity for the LOCAL Model"*
//! (Feuilloley, PODC 2015): everything the paper proves or cites that can be
//! computed exactly, so simulations can be checked against theory.
//!
//! * [`recurrence`] — the Section 2 recurrence `a(p)` for the worst-case
//!   total radius of the largest-ID algorithm, plus an explicit worst-case
//!   identifier assignment realising it;
//! * [`a000788`] — OEIS A000788 (total 1-bits up to `n`), the closed form of
//!   the same sequence, with its `Θ(n log n)` envelope;
//! * [`logstar`] — the iterated logarithm and power towers behind Linial's
//!   bound and the paper's Theorem 1;
//! * [`sequences`] — harmonic numbers and the expected radius under uniformly
//!   random identifiers (the paper's Section 4 question);
//! * [`stats`] / [`fit`] — summary statistics and growth-model fitting used
//!   by the experiment harness to decide which asymptotic shape measured
//!   curves follow.
//!
//! The crate is dependency-free and purely numeric.
//!
//! # Example
//!
//! ```
//! use avglocal_analysis::{a000788, recurrence};
//!
//! // The paper's recurrence coincides with OEIS A000788.
//! let a = recurrence::segment_worst_totals(64);
//! assert_eq!(a[64], a000788::total_bit_count(64));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod a000788;
pub mod fit;
pub mod logstar;
pub mod recurrence;
pub mod sequences;
pub mod stats;

pub use fit::{best_model, fit_scale, linear_regression, rank_models, Fit, GrowthModel};
pub use logstar::{log2_ceil, log2_floor, log_star, tower};
pub use stats::{
    fpc_half_width_95, histogram, percentile, sample_size_for_half_width, stratified_mean_ci,
    t_critical_95, StratifiedMean, StratumStat, Summary,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The fast A000788 evaluation agrees with the naive sum.
        #[test]
        fn a000788_fast_equals_naive(n in 0u64..5000) {
            prop_assert_eq!(a000788::total_bit_count(n), a000788::total_bit_count_naive(n));
        }

        /// The recurrence value equals A000788 for every length.
        #[test]
        fn recurrence_equals_bit_sums(n in 0usize..300) {
            let a = recurrence::segment_worst_totals(n);
            prop_assert_eq!(a[n], a000788::total_bit_count(n as u64));
        }

        /// log* is monotone and tiny.
        #[test]
        fn log_star_monotone(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(log_star(lo) <= log_star(hi));
            prop_assert!(log_star(hi) <= 5);
        }

        /// The worst-case segment assignment is always a permutation of 0..p.
        #[test]
        fn worst_assignment_is_permutation(p in 0usize..200) {
            let ids = recurrence::worst_case_segment_assignment(p);
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..p as u64).collect::<Vec<_>>());
        }

        /// Summary statistics stay within the sample range.
        #[test]
        fn summary_bounds(values in proptest::collection::vec(0.0f64..1e6, 1..200)) {
            let s = Summary::from_values(&values);
            prop_assert!(s.min <= s.mean && s.mean <= s.max);
            prop_assert!(s.min <= s.median && s.median <= s.max);
            prop_assert!(s.std_dev >= 0.0);
        }

        /// Fitting exact model data recovers the scale factor.
        #[test]
        fn fit_recovers_scale(c in 0.1f64..50.0) {
            let xs: Vec<f64> = (4..16).map(|k| (1u64 << k) as f64).collect();
            let ys: Vec<f64> = xs.iter().map(|x| c * x.log2()).collect();
            let fit = fit_scale(&xs, &ys, GrowthModel::Logarithmic);
            prop_assert!((fit.scale - c).abs() < 1e-6);
            prop_assert!(fit.rmse < 1e-6);
        }
    }
}
