//! The paper's Section 2 recurrence for the worst-case total radius.
//!
//! For the largest-ID algorithm on a segment (path) of `p` vertices, let
//! `a(p)` be the maximum over identifier permutations of the *sum* of the
//! radii. The paper derives
//!
//! ```text
//! a(p) = max_{1 <= k <= ceil(p/2)} { k + a(k-1) + a(p-k) },   a(0)=0, a(1)=1,
//! ```
//!
//! by splitting the segment at the position `k` of the largest identifier
//! (which must reach the nearer endpoint, at cost `k`), and observing that
//! the two remaining sub-segments are independent. The sequence coincides
//! with OEIS A000788 (total number of 1-bits in the binary expansions of
//! `0..=n`) and is `Θ(n log n)`; both facts are checked in the tests.

/// Computes `a(0..=n)` with dynamic programming in `O(n^2)` time.
///
/// The returned vector has length `n + 1`, with `a[p]` the worst-case total
/// radius over a `p`-vertex segment.
///
/// # Examples
///
/// ```
/// use avglocal_analysis::recurrence::segment_worst_totals;
///
/// let a = segment_worst_totals(7);
/// assert_eq!(a, vec![0, 1, 2, 4, 5, 7, 9, 12]);
/// ```
#[must_use]
pub fn segment_worst_totals(n: usize) -> Vec<u64> {
    let mut a = vec![0u64; n + 1];
    if n >= 1 {
        a[1] = 1;
    }
    for p in 2..=n {
        let mut best = 0u64;
        for k in 1..=p.div_ceil(2) {
            let candidate = k as u64 + a[k - 1] + a[p - k];
            best = best.max(candidate);
        }
        a[p] = best;
    }
    a
}

/// Computes the single value `a(p)`.
///
/// Convenience wrapper around [`segment_worst_totals`]; prefer the vector
/// version when several values are needed.
#[must_use]
pub fn segment_worst_total(p: usize) -> u64 {
    *segment_worst_totals(p).last().expect("vector is non-empty")
}

/// For every `p`, a maximising split position `k` of the recurrence (the
/// distance of the segment's largest identifier from the nearer endpoint in a
/// worst-case permutation).
///
/// The returned vector has length `n + 1`; entries 0 and 1 are 0 by
/// convention (no split is needed).
#[must_use]
pub fn worst_split_positions(n: usize) -> Vec<usize> {
    let a = segment_worst_totals(n);
    let mut split = vec![0usize; n + 1];
    for p in 2..=n {
        let mut best_val = 0u64;
        let mut best_k = 1usize;
        for k in 1..=p.div_ceil(2) {
            let candidate = k as u64 + a[k - 1] + a[p - k];
            if candidate > best_val {
                best_val = candidate;
                best_k = k;
            }
        }
        split[p] = best_k;
    }
    split
}

/// Builds an explicit worst-case identifier permutation for a `p`-vertex
/// segment, realising the total radius `a(p)`.
///
/// The construction follows the recurrence: place the largest identifier at
/// the maximising split position `k` (1-based distance from the left
/// endpoint), then recursively fill the left part (of length `k-1`) and the
/// right part (of length `p-k`) with the next identifiers. Identifiers are
/// `0..p`, larger meaning "bigger ID"; the returned vector maps positions to
/// identifiers.
///
/// Note the recurrence is symmetric, so this is *a* worst case, not the only
/// one.
#[must_use]
pub fn worst_case_segment_assignment(p: usize) -> Vec<u64> {
    let mut ids: Vec<u64> = vec![0; p];
    // Identifiers are handed out from the largest (p-1) downwards.
    let mut next_id = p as u64;
    let splits = worst_split_positions(p);
    fill_segment(&mut ids, 0, p, &mut next_id, &splits);
    ids
}

/// The scheduler-adversarial ring arrangement shared by the skewed
/// scheduling bench and the determinism tests: the worst-case segment
/// arrangement (realising `a(p)`, see [`worst_case_segment_assignment`])
/// packed into the first quarter of an `n`-cycle, an ascending filler over
/// the rest, and the global maximum at position `n - 1` (adjacent, around
/// the ring, to the block — so the block's internal peaks survive).
///
/// The block's nodes average `Θ(log n)` largest-ID radius while the filler
/// averages 1, so a static contiguous partition of the node indices hands
/// one thread `Θ(n log n)` work while the others get `Θ(n)` — the clustered
/// skew dynamic chunking removes. (A window of `w` consecutive positions
/// can hold at most `a(w)` total radius plus one giant, so this is within a
/// constant of the worst any assignment can do to a static scheduler on
/// this problem.) Returns the position-to-identifier map, a permutation of
/// `0..n`.
///
/// # Panics
///
/// Panics when `n < 8` (the construction needs a non-trivial block).
#[must_use]
pub fn clustered_adversarial_arrangement(n: usize) -> Vec<u64> {
    assert!(n >= 8, "the clustered construction needs n >= 8");
    let block = n / 4;
    let segment = worst_case_segment_assignment(block);
    let mut ids: Vec<u64> = vec![0; n];
    // Top-`block` identifiers (below the global max) in the worst-case
    // segment arrangement: ids n-1-block ..= n-2, disjoint from the filler.
    let base = (n - 1 - block) as u64;
    for (p, &seg_id) in segment.iter().enumerate() {
        ids[p] = base + seg_id;
    }
    // Ascending filler (ids 0 .. n-1-block): every node's larger neighbour
    // is one step away.
    for (p, id) in ids.iter_mut().enumerate().take(n - 1).skip(block) {
        *id = (p - block) as u64;
    }
    // The global maximum, adjacent (around the ring) to the block.
    ids[n - 1] = (n - 1) as u64;
    ids
}

/// Recursively assigns identifiers to `positions[start..start+len]`.
fn fill_segment(ids: &mut [u64], start: usize, len: usize, next_id: &mut u64, splits: &[usize]) {
    if len == 0 {
        return;
    }
    if len == 1 {
        *next_id -= 1;
        ids[start] = *next_id;
        return;
    }
    let k = splits[len];
    // The largest remaining identifier sits at distance k from the left
    // endpoint (1-based), i.e. index start + k - 1.
    *next_id -= 1;
    ids[start + k - 1] = *next_id;
    // Left part: k-1 vertices, right part: len-k vertices. The order in which
    // the two parts are filled does not matter for the total.
    fill_segment(ids, start, k - 1, next_id, splits);
    fill_segment(ids, start + k, len - k, next_id, splits);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::a000788;

    #[test]
    fn small_values_match_the_paper() {
        assert_eq!(segment_worst_totals(0), vec![0]);
        assert_eq!(segment_worst_totals(1), vec![0, 1]);
        assert_eq!(segment_worst_totals(7), vec![0, 1, 2, 4, 5, 7, 9, 12]);
        assert_eq!(segment_worst_total(7), 12);
    }

    #[test]
    fn recurrence_equals_a000788() {
        let a = segment_worst_totals(512);
        for (p, &value) in a.iter().enumerate() {
            assert_eq!(value, a000788::total_bit_count(p as u64), "p = {p}");
        }
    }

    #[test]
    fn sequence_is_monotone_and_superlinear() {
        let a = segment_worst_totals(1024);
        for p in 1..a.len() {
            assert!(a[p] > a[p - 1], "a must be strictly increasing at {p}");
        }
        // Θ(n log n): check the normalised ratio stays within loose constant
        // bounds (1/2 · n·log2 n is the exact leading term).
        for &p in &[64usize, 256, 1024] {
            let expected = 0.5 * p as f64 * (p as f64).log2();
            let ratio = a[p] as f64 / expected;
            assert!(ratio > 0.8 && ratio < 1.3, "ratio at {p} was {ratio}");
        }
    }

    #[test]
    fn split_positions_are_within_range() {
        let splits = worst_split_positions(128);
        for (p, &k) in splits.iter().enumerate().skip(2) {
            assert!(k >= 1 && k <= p.div_ceil(2), "split {k} out of range for p={p}");
        }
    }

    #[test]
    fn splits_realise_the_maximum() {
        let a = segment_worst_totals(64);
        let splits = worst_split_positions(64);
        for p in 2..=64usize {
            let k = splits[p];
            assert_eq!(a[p], k as u64 + a[k - 1] + a[p - k]);
        }
    }

    #[test]
    fn worst_case_assignment_is_a_permutation() {
        for p in 0..40usize {
            let ids = worst_case_segment_assignment(p);
            assert_eq!(ids.len(), p);
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            let expected: Vec<u64> = (0..p as u64).collect();
            assert_eq!(sorted, expected, "p = {p}");
        }
    }

    #[test]
    fn worst_case_assignment_places_max_at_split() {
        let p = 13usize;
        let ids = worst_case_segment_assignment(p);
        let splits = worst_split_positions(p);
        let max_pos = ids.iter().position(|&x| x == p as u64 - 1).unwrap();
        assert_eq!(max_pos, splits[p] - 1);
    }

    #[test]
    fn clustered_arrangement_is_a_permutation_with_the_documented_shape() {
        for n in [8usize, 33, 64, 1024] {
            let ids = clustered_adversarial_arrangement(n);
            assert_eq!(ids.len(), n);
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            let expected: Vec<u64> = (0..n as u64).collect();
            assert_eq!(sorted, expected, "n = {n}");
            // Global max adjacent to the block, block holds the next ids.
            let block = n / 4;
            assert_eq!(ids[n - 1], n as u64 - 1);
            for (p, &id) in ids.iter().enumerate().take(block) {
                assert!(
                    (n - 1 - block) as u64 <= id && id < n as u64 - 1,
                    "position {p} escaped the block's id range (n = {n})"
                );
            }
            // Ascending filler.
            for p in block + 1..n - 1 {
                assert_eq!(ids[p], ids[p - 1] + 1, "filler not ascending at {p} (n = {n})");
            }
        }
    }
}
