//! Descriptive statistics for radius profiles and repeated measurements.

/// Summary statistics of a sample of real values.
///
/// Produced by [`Summary::from_values`]; all fields are plain data so reports
/// can format them freely.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean (0.0 for the empty sample).
    pub mean: f64,
    /// Unbiased sample variance (0.0 when `count < 2`).
    pub variance: f64,
    /// Standard deviation, `sqrt(variance)`.
    pub std_dev: f64,
    /// Smallest value (0.0 for the empty sample).
    pub min: f64,
    /// Largest value (0.0 for the empty sample).
    pub max: f64,
    /// Median (0.0 for the empty sample).
    pub median: f64,
}

impl Summary {
    /// Computes the summary of `values`.
    #[must_use]
    pub fn from_values(values: &[f64]) -> Self {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                variance: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
            };
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let variance = if count < 2 {
            0.0
        } else {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0)
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
        let median = if count % 2 == 1 {
            sorted[count / 2]
        } else {
            (sorted[count / 2 - 1] + sorted[count / 2]) / 2.0
        };
        Summary {
            count,
            mean,
            variance,
            std_dev: variance.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median,
        }
    }

    /// Computes the summary of integer values (radii).
    #[must_use]
    pub fn from_integers(values: &[usize]) -> Self {
        let as_f64: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        Summary::from_values(&as_f64)
    }

    /// Half-width of the 95% confidence interval of the mean,
    /// `t₀.₉₇₅(n−1) · s / √n`.
    ///
    /// The interval assumes the sample mean is approximately normal (exact
    /// for normal data, asymptotic otherwise by the CLT); the Student-t
    /// critical value ([`t_critical_95`]) widens it for small samples, where
    /// the plug-in standard deviation `s` is itself noisy. With fewer than
    /// two observations there are **zero degrees of freedom** — the variance
    /// is not estimable — so the half-width is `f64::INFINITY`, never a
    /// silent `0.0` claiming perfect precision.
    #[must_use]
    pub fn confidence_95(&self) -> f64 {
        if self.count < 2 {
            f64::INFINITY
        } else {
            t_critical_95(self.count - 1) * self.std_dev / (self.count as f64).sqrt()
        }
    }
}

/// Two-sided 95% Student-t critical value (the 0.975 quantile) for `df`
/// degrees of freedom.
///
/// Exact to three decimals for `df ≤ 30`, then a coarse bracket down to the
/// normal limit `1.96` — enough resolution for confidence intervals whose
/// inputs are Monte-Carlo estimates themselves. `df = 0` has no defined
/// critical value and returns `f64::INFINITY`.
#[must_use]
pub fn t_critical_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[df - 1],
        31..=40 => 2.021,
        41..=60 => 2.000,
        61..=120 => 1.980,
        _ => 1.96,
    }
}

/// Half-width of the 95% CI of a mean estimated from a **without-replacement**
/// sample of `summary.count` draws out of a population of `population` units:
/// `t₀.₉₇₅(k−1) · √((1 − k/N) · s²/k)`.
///
/// The `(1 − k/N)` factor is the finite population correction — a census
/// (`k ≥ N`) has zero sampling error by construction and returns `0.0`
/// exactly. A non-census sample with fewer than two draws has no estimable
/// variance and returns `f64::INFINITY`.
#[must_use]
pub fn fpc_half_width_95(summary: &Summary, population: usize) -> f64 {
    let k = summary.count;
    if k >= population {
        return 0.0;
    }
    if k < 2 {
        return f64::INFINITY;
    }
    let fpc = 1.0 - k as f64 / population as f64;
    t_critical_95(k - 1) * (fpc * summary.variance / k as f64).sqrt()
}

/// One stratum of a stratified without-replacement sample: the stratum's
/// population size and the [`Summary`] of the values sampled from it.
#[derive(Debug, Clone, PartialEq)]
pub struct StratumStat {
    /// Number of population units in the stratum (`N_h`).
    pub population: usize,
    /// Summary of the `k_h` sampled values from this stratum.
    pub summary: Summary,
}

/// A stratified mean estimate with its combined confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StratifiedMean {
    /// The stratified estimator `Σ (N_h/N) · mean_h` of the population mean.
    pub mean: f64,
    /// 95% half-width from the combined stratified variance (see
    /// [`stratified_mean_ci`]).
    pub half_width_95: f64,
}

/// Combines per-stratum sample summaries into the stratified estimate of the
/// population mean and its 95% confidence half-width.
///
/// Estimator: `ŷ = Σ_h W_h · mean_h` with `W_h = N_h / N`. Variance (only
/// within-stratum terms survive — the design removes between-stratum
/// variance): `V̂ = Σ_h W_h² (1 − k_h/N_h) s_h²/k_h`. The critical value is
/// Student-t with the conservative pooled degrees of freedom
/// `Σ_h (k_h − 1)` over strata that contribute variance (fully-sampled
/// strata contribute none). Degenerate designs are gated, not silently
/// zeroed: a non-empty stratum sampled zero times, or sampled once without
/// being a census, makes the half-width `f64::INFINITY`.
///
/// Strata with `population == 0` are ignored. Returns a zero estimate with
/// infinite half-width when every stratum is empty.
#[must_use]
pub fn stratified_mean_ci(strata: &[StratumStat]) -> StratifiedMean {
    let total: usize = strata.iter().map(|s| s.population).sum();
    if total == 0 {
        return StratifiedMean { mean: 0.0, half_width_95: f64::INFINITY };
    }
    let mut mean = 0.0;
    let mut variance = 0.0;
    let mut df = 0usize;
    let mut undefined = false;
    for stratum in strata {
        let n_h = stratum.population;
        if n_h == 0 {
            continue;
        }
        let k_h = stratum.summary.count;
        let w_h = n_h as f64 / total as f64;
        if k_h == 0 {
            undefined = true;
            continue;
        }
        mean += w_h * stratum.summary.mean;
        if k_h >= n_h {
            continue; // census stratum: zero sampling variance, no df needed.
        }
        if k_h < 2 {
            undefined = true;
            continue;
        }
        let fpc = 1.0 - k_h as f64 / n_h as f64;
        variance += w_h * w_h * fpc * stratum.summary.variance / k_h as f64;
        df += k_h - 1;
    }
    let half_width_95 = if undefined {
        f64::INFINITY
    } else if df == 0 {
        0.0 // every stratum was a census.
    } else {
        t_critical_95(df) * variance.sqrt()
    };
    StratifiedMean { mean, half_width_95 }
}

/// Smallest without-replacement sample size whose 95% CI half-width is at
/// most `target_half_width`, for a population of `population` units with
/// (anticipated) standard deviation `std_dev`.
///
/// Solves `1.96 · √((1 − n/N) σ²/n) ≤ h` via the classic two-step: the
/// infinite-population size `n₀ = (1.96 σ / h)²` deflated by the finite
/// population correction, `n = n₀ / (1 + n₀/N)`, rounded up. Clamped to
/// `[2, N]` so the returned size always has estimable variance; a
/// non-positive `target_half_width` demands a census and returns `N`.
#[must_use]
pub fn sample_size_for_half_width(
    std_dev: f64,
    target_half_width: f64,
    population: usize,
) -> usize {
    if population <= 2 {
        return population;
    }
    if target_half_width <= 0.0 {
        return population;
    }
    let n0 = (1.96 * std_dev / target_half_width).powi(2);
    let fpc_adjusted = n0 / (1.0 + n0 / population as f64);
    (fpc_adjusted.ceil() as usize).clamp(2, population)
}

/// The `q`-th percentile (0.0–100.0) of `values`, by linear interpolation
/// between closest ranks. Returns 0.0 for the empty slice.
#[must_use]
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    let q = q.clamp(0.0, 100.0) / 100.0;
    let rank = q * (sorted.len() - 1) as f64;
    let low = rank.floor() as usize;
    let high = rank.ceil() as usize;
    if low == high {
        sorted[low]
    } else {
        let w = rank - low as f64;
        sorted[low] * (1.0 - w) + sorted[high] * w
    }
}

/// Histogram of integer values with unit-width bins from 0 to the maximum.
#[must_use]
pub fn histogram(values: &[usize]) -> Vec<usize> {
    let max = values.iter().copied().max().unwrap_or(0);
    let mut bins = vec![0usize; if values.is_empty() { 0 } else { max + 1 }];
    for &v in values {
        bins[v] += 1;
    }
    bins
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_simple_sample() {
        let s = Summary::from_values(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.variance - 5.0 / 3.0).abs() < 1e-12);
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!(s.confidence_95() > 0.0);
    }

    #[test]
    fn summary_of_odd_sample_has_middle_median() {
        let s = Summary::from_values(&[5.0, 1.0, 3.0]);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn summary_of_empty_and_singleton() {
        // Regression: with zero degrees of freedom the half-width must be
        // infinite — a 0.0 here once let estimators claim perfect precision
        // from a single observation.
        let empty = Summary::from_values(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean, 0.0);
        assert_eq!(empty.confidence_95(), f64::INFINITY);

        let one = Summary::from_values(&[7.0]);
        assert_eq!(one.count, 1);
        assert_eq!(one.mean, 7.0);
        assert_eq!(one.variance, 0.0);
        assert_eq!(one.median, 7.0);
        assert_eq!(one.confidence_95(), f64::INFINITY);
    }

    #[test]
    fn t_critical_widens_small_samples_and_converges_to_normal() {
        assert_eq!(t_critical_95(0), f64::INFINITY);
        assert_eq!(t_critical_95(1), 12.706);
        assert!(t_critical_95(5) > t_critical_95(10));
        assert!(t_critical_95(10) > t_critical_95(30));
        assert_eq!(t_critical_95(200), 1.96);
        // Monotone non-increasing across the whole table.
        for df in 1..130 {
            assert!(t_critical_95(df) >= t_critical_95(df + 1), "df={df}");
        }
    }

    #[test]
    fn fpc_half_width_gates_census_and_degenerate_samples() {
        let s = Summary::from_values(&[1.0, 2.0, 3.0, 4.0]);
        // A census has no sampling error at all.
        assert_eq!(fpc_half_width_95(&s, 4), 0.0);
        // A strict sample shrinks with the correction factor.
        let hw10 = fpc_half_width_95(&s, 10);
        let hw1000 = fpc_half_width_95(&s, 1000);
        assert!(hw10 > 0.0 && hw10 < hw1000);
        // hw → t·s/√k as N → ∞.
        let unadjusted = t_critical_95(3) * s.std_dev / 2.0;
        assert!((hw1000 - unadjusted).abs() / unadjusted < 0.01);
        // One draw from a larger population: variance not estimable.
        let one = Summary::from_values(&[7.0]);
        assert_eq!(fpc_half_width_95(&one, 10), f64::INFINITY);
        assert_eq!(fpc_half_width_95(&one, 1), 0.0);
    }

    #[test]
    fn stratified_mean_matches_weighted_means_and_census_is_exact() {
        let strata = [
            StratumStat { population: 30, summary: Summary::from_values(&[1.0, 3.0]) },
            StratumStat { population: 10, summary: Summary::from_values(&[10.0, 14.0]) },
        ];
        let est = stratified_mean_ci(&strata);
        assert!((est.mean - (0.75 * 2.0 + 0.25 * 12.0)).abs() < 1e-12);
        assert!(est.half_width_95.is_finite() && est.half_width_95 > 0.0);

        // Fully-sampled strata: exact estimate, zero half-width.
        let census = [
            StratumStat { population: 2, summary: Summary::from_values(&[1.0, 3.0]) },
            StratumStat { population: 2, summary: Summary::from_values(&[10.0, 14.0]) },
        ];
        let exact = stratified_mean_ci(&census);
        assert!((exact.mean - 7.0).abs() < 1e-12);
        assert_eq!(exact.half_width_95, 0.0);
    }

    #[test]
    fn stratified_mean_gates_unsampled_and_singleton_strata() {
        // A non-empty stratum with no draws cannot be extrapolated.
        let missing = [
            StratumStat { population: 5, summary: Summary::from_values(&[2.0, 4.0]) },
            StratumStat { population: 5, summary: Summary::from_values(&[]) },
        ];
        assert_eq!(stratified_mean_ci(&missing).half_width_95, f64::INFINITY);
        // One draw from a non-census stratum: zero degrees of freedom.
        let singleton = [
            StratumStat { population: 5, summary: Summary::from_values(&[2.0, 4.0]) },
            StratumStat { population: 5, summary: Summary::from_values(&[9.0]) },
        ];
        assert_eq!(stratified_mean_ci(&singleton).half_width_95, f64::INFINITY);
        // Empty strata are ignored entirely.
        let padded = [
            StratumStat { population: 0, summary: Summary::from_values(&[]) },
            StratumStat { population: 4, summary: Summary::from_values(&[1.0, 2.0, 3.0]) },
        ];
        assert!(stratified_mean_ci(&padded).half_width_95.is_finite());
        assert_eq!(stratified_mean_ci(&[]).half_width_95, f64::INFINITY);
    }

    #[test]
    fn sample_size_solver_hits_the_target_half_width() {
        let sigma = 5.0;
        let n = sample_size_for_half_width(sigma, 0.5, 100_000);
        // Check the solved size actually achieves the target (normal z).
        let achieved = 1.96 * sigma * ((1.0 - n as f64 / 100_000.0) / n as f64).sqrt();
        assert!(achieved <= 0.5, "n={n} achieves {achieved}");
        // And is not wastefully large: one fewer draw misses the target.
        let under = 1.96 * sigma * ((1.0 - (n - 1) as f64 / 100_000.0) / (n - 1) as f64).sqrt();
        assert!(under > 0.5, "n={n} is minimal");
        // The FPC caps the demand at a census.
        assert_eq!(sample_size_for_half_width(sigma, 0.0, 50), 50);
        assert_eq!(sample_size_for_half_width(sigma, 1e-9, 50), 50);
        // Zero variance still returns an estimable size.
        assert_eq!(sample_size_for_half_width(0.0, 1.0, 50), 2);
        assert_eq!(sample_size_for_half_width(1.0, 1.0, 2), 2);
    }

    #[test]
    fn summary_from_integers() {
        let s = Summary::from_integers(&[1, 1, 4]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn percentiles() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert!((percentile(&v, 25.0) - 2.0).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), 0.0);
        // Out-of-range quantiles are clamped.
        assert_eq!(percentile(&v, 150.0), 5.0);
    }

    #[test]
    fn histogram_counts_each_value() {
        let h = histogram(&[0, 1, 1, 3]);
        assert_eq!(h, vec![1, 2, 0, 1]);
        assert!(histogram(&[]).is_empty());
    }
}
