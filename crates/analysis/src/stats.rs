//! Descriptive statistics for radius profiles and repeated measurements.

/// Summary statistics of a sample of real values.
///
/// Produced by [`Summary::from_values`]; all fields are plain data so reports
/// can format them freely.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean (0.0 for the empty sample).
    pub mean: f64,
    /// Unbiased sample variance (0.0 when `count < 2`).
    pub variance: f64,
    /// Standard deviation, `sqrt(variance)`.
    pub std_dev: f64,
    /// Smallest value (0.0 for the empty sample).
    pub min: f64,
    /// Largest value (0.0 for the empty sample).
    pub max: f64,
    /// Median (0.0 for the empty sample).
    pub median: f64,
}

impl Summary {
    /// Computes the summary of `values`.
    #[must_use]
    pub fn from_values(values: &[f64]) -> Self {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                variance: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
            };
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let variance = if count < 2 {
            0.0
        } else {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0)
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
        let median = if count % 2 == 1 {
            sorted[count / 2]
        } else {
            (sorted[count / 2 - 1] + sorted[count / 2]) / 2.0
        };
        Summary {
            count,
            mean,
            variance,
            std_dev: variance.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median,
        }
    }

    /// Computes the summary of integer values (radii).
    #[must_use]
    pub fn from_integers(values: &[usize]) -> Self {
        let as_f64: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        Summary::from_values(&as_f64)
    }

    /// Half-width of the 95% confidence interval of the mean under the normal
    /// approximation (`1.96 · σ / √n`); 0.0 when `count < 2`.
    #[must_use]
    pub fn confidence_95(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.count as f64).sqrt()
        }
    }
}

/// The `q`-th percentile (0.0–100.0) of `values`, by linear interpolation
/// between closest ranks. Returns 0.0 for the empty slice.
#[must_use]
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    let q = q.clamp(0.0, 100.0) / 100.0;
    let rank = q * (sorted.len() - 1) as f64;
    let low = rank.floor() as usize;
    let high = rank.ceil() as usize;
    if low == high {
        sorted[low]
    } else {
        let w = rank - low as f64;
        sorted[low] * (1.0 - w) + sorted[high] * w
    }
}

/// Histogram of integer values with unit-width bins from 0 to the maximum.
#[must_use]
pub fn histogram(values: &[usize]) -> Vec<usize> {
    let max = values.iter().copied().max().unwrap_or(0);
    let mut bins = vec![0usize; if values.is_empty() { 0 } else { max + 1 }];
    for &v in values {
        bins[v] += 1;
    }
    bins
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_simple_sample() {
        let s = Summary::from_values(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.variance - 5.0 / 3.0).abs() < 1e-12);
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!(s.confidence_95() > 0.0);
    }

    #[test]
    fn summary_of_odd_sample_has_middle_median() {
        let s = Summary::from_values(&[5.0, 1.0, 3.0]);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn summary_of_empty_and_singleton() {
        let empty = Summary::from_values(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean, 0.0);
        assert_eq!(empty.confidence_95(), 0.0);

        let one = Summary::from_values(&[7.0]);
        assert_eq!(one.count, 1);
        assert_eq!(one.mean, 7.0);
        assert_eq!(one.variance, 0.0);
        assert_eq!(one.median, 7.0);
        assert_eq!(one.confidence_95(), 0.0);
    }

    #[test]
    fn summary_from_integers() {
        let s = Summary::from_integers(&[1, 1, 4]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn percentiles() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert!((percentile(&v, 25.0) - 2.0).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), 0.0);
        // Out-of-range quantiles are clamped.
        assert_eq!(percentile(&v, 150.0), 5.0);
    }

    #[test]
    fn histogram_counts_each_value() {
        let h = histogram(&[0, 1, 1, 3]);
        assert_eq!(h, vec![1, 2, 0, 1]);
        assert!(histogram(&[]).is_empty());
    }
}
