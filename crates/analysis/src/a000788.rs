//! OEIS A000788: total number of 1-bits in the binary expansions of `0..=n`.
//!
//! The paper identifies the worst-case total radius of the largest-ID
//! algorithm with this sequence and uses its `Θ(n log n)` growth to conclude
//! that the average radius is logarithmic. This module provides the direct
//! definition, the standard divide-and-conquer recurrence, a fast closed-form
//! style evaluation, and the asymptotic envelope.

/// Number of 1-bits of `x`.
#[must_use]
pub fn bit_count(x: u64) -> u64 {
    u64::from(x.count_ones())
}

/// A000788(n): `Σ_{k=0..n} popcount(k)`, computed by summation in `O(n)`.
///
/// Use [`total_bit_count`] for large arguments; this function exists as an
/// obviously-correct reference implementation.
#[must_use]
pub fn total_bit_count_naive(n: u64) -> u64 {
    (0..=n).map(bit_count).sum()
}

/// A000788(n): `Σ_{k=0..n} popcount(k)`, computed digit by digit in
/// `O(log n)` time.
///
/// For every bit position `i`, the count of integers in `[0, n]` with bit `i`
/// set is `(n+1)/2^{i+1} * 2^i + max(0, (n+1) mod 2^{i+1} - 2^i)`.
///
/// # Examples
///
/// ```
/// use avglocal_analysis::a000788::total_bit_count;
///
/// assert_eq!(total_bit_count(7), 12);
/// assert_eq!(total_bit_count(0), 0);
/// ```
#[must_use]
pub fn total_bit_count(n: u64) -> u64 {
    let m = n + 1; // count over [0, n] = [0, m)
    let mut total = 0u64;
    let mut i = 0u32;
    while (1u64 << i) <= n.max(1) && i < 64 {
        let block = 1u64 << (i + 1);
        let full_blocks = m / block;
        let remainder = m % block;
        total += full_blocks * (1u64 << i) + remainder.saturating_sub(1u64 << i);
        if i == 63 {
            break;
        }
        i += 1;
    }
    total
}

/// The first values of A000788, for cross-checking against OEIS.
pub const OEIS_PREFIX: [u64; 20] =
    [0, 1, 2, 4, 5, 7, 9, 12, 13, 15, 17, 20, 22, 25, 28, 32, 33, 35, 37, 40];

/// The leading-order asymptotic `n·log2(n)/2` of A000788.
///
/// Returns 0.0 for `n <= 1`.
#[must_use]
pub fn asymptotic_estimate(n: u64) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let x = n as f64;
    0.5 * x * x.log2()
}

/// Verifies the divide-and-conquer recurrence
/// `A(2n) = A(n) + A(n-1) + n` and `A(2n+1) = 2·A(n) + n + 1`
/// for a single `n >= 1`. Used in tests and exposed for documentation value.
#[must_use]
pub fn recurrence_holds_at(n: u64) -> bool {
    if n == 0 {
        return true;
    }
    let a = total_bit_count;
    a(2 * n) == a(n) + a(n - 1) + n && a(2 * n + 1) == 2 * a(n) + n + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_matches_oeis() {
        for (n, &expected) in OEIS_PREFIX.iter().enumerate() {
            assert_eq!(total_bit_count(n as u64), expected, "n = {n}");
            assert_eq!(total_bit_count_naive(n as u64), expected, "n = {n}");
        }
    }

    #[test]
    fn fast_matches_naive() {
        for n in 0..2048u64 {
            assert_eq!(total_bit_count(n), total_bit_count_naive(n), "n = {n}");
        }
    }

    #[test]
    fn fast_handles_larger_inputs() {
        // Spot checks against the naive sum at moderately large n.
        for n in [10_000u64, 65_535, 65_536, 123_456] {
            assert_eq!(total_bit_count(n), total_bit_count_naive(n), "n = {n}");
        }
    }

    #[test]
    fn divide_and_conquer_recurrence() {
        for n in 1..512u64 {
            assert!(recurrence_holds_at(n), "n = {n}");
        }
        assert!(recurrence_holds_at(0));
    }

    #[test]
    fn asymptotic_envelope_is_tight() {
        for &n in &[1u64 << 10, 1 << 14, 1 << 18] {
            let exact = total_bit_count(n) as f64;
            let estimate = asymptotic_estimate(n);
            let ratio = exact / estimate;
            assert!(ratio > 0.95 && ratio < 1.15, "ratio at n={n} was {ratio}");
        }
        assert_eq!(asymptotic_estimate(0), 0.0);
        assert_eq!(asymptotic_estimate(1), 0.0);
    }

    #[test]
    fn bit_count_basics() {
        assert_eq!(bit_count(0), 0);
        assert_eq!(bit_count(0b1011), 3);
        assert_eq!(bit_count(u64::MAX), 64);
    }
}
