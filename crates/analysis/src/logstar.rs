//! Iterated logarithm `log* n` and power towers.
//!
//! Linial's lower bound — and the paper's Theorem 1 — are stated in terms of
//! `log* n`, the number of times the base-2 logarithm must be applied to `n`
//! before the result drops to at most 1. Cole–Vishkin's upper bound matches
//! it. These functions are used by the experiment harness to plot the
//! theoretical curves next to the measured ones.

/// The iterated logarithm `log*_2(n)`: the number of times `log2` must be
/// applied to `n` until the value is at most 1.
///
/// `log_star(n) = 0` for `n <= 1`, `1` for `n = 2`, `2` for `n ∈ [3, 4]`,
/// `3` for `n ∈ [5, 16]`, `4` for `n ∈ [17, 65536]`, `5` beyond (up to
/// `2^65536`, far past `u64`).
///
/// # Examples
///
/// ```
/// use avglocal_analysis::logstar::log_star;
///
/// assert_eq!(log_star(1), 0);
/// assert_eq!(log_star(16), 3);
/// assert_eq!(log_star(17), 4);
/// assert_eq!(log_star(u64::MAX), 5);
/// ```
#[must_use]
pub fn log_star(n: u64) -> u32 {
    let mut value = n as f64;
    let mut iterations = 0u32;
    while value > 1.0 {
        value = value.log2();
        iterations += 1;
    }
    iterations
}

/// The power tower `2 ↑↑ h` (`tower(0) = 1`, `tower(h) = 2^tower(h-1)`),
/// saturating at `u64::MAX` once the true value no longer fits.
///
/// `tower(h)` is the largest `n` with `log_star(n) = h` (for `h <= 4` within
/// `u64` range), so it is the natural x-axis when sweeping `log*`.
#[must_use]
pub fn tower(h: u32) -> u64 {
    let mut value: u64 = 1;
    for _ in 0..h {
        if value >= 64 {
            return u64::MAX;
        }
        value = 1u64 << value;
    }
    value
}

/// Floor of `log2(n)`, with `log2_floor(0) = 0` by convention.
#[must_use]
pub fn log2_floor(n: u64) -> u32 {
    if n == 0 {
        0
    } else {
        63 - n.leading_zeros()
    }
}

/// Ceiling of `log2(n)`, with `log2_ceil(0) = 0` and `log2_ceil(1) = 0`.
#[must_use]
pub fn log2_ceil(n: u64) -> u32 {
    if n <= 1 {
        0
    } else {
        64 - (n - 1).leading_zeros()
    }
}

/// The paper's lower-bound threshold `½·log*(n/2)` used in the Section 3
/// construction (as a real number, rounded down to an integer radius).
#[must_use]
pub fn linial_threshold(n: u64) -> u32 {
    log_star(n / 2) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_star_breakpoints() {
        assert_eq!(log_star(0), 0);
        assert_eq!(log_star(1), 0);
        assert_eq!(log_star(2), 1);
        assert_eq!(log_star(3), 2);
        assert_eq!(log_star(4), 2);
        assert_eq!(log_star(5), 3);
        assert_eq!(log_star(16), 3);
        assert_eq!(log_star(17), 4);
        assert_eq!(log_star(65_536), 4);
        assert_eq!(log_star(65_537), 5);
        assert_eq!(log_star(u64::MAX), 5);
    }

    #[test]
    fn tower_values() {
        assert_eq!(tower(0), 1);
        assert_eq!(tower(1), 2);
        assert_eq!(tower(2), 4);
        assert_eq!(tower(3), 16);
        assert_eq!(tower(4), 65_536);
        assert_eq!(tower(5), u64::MAX); // saturates: 2^65536 does not fit
        assert_eq!(tower(10), u64::MAX);
    }

    #[test]
    fn tower_and_log_star_are_inverse_at_breakpoints() {
        for h in 0..5u32 {
            assert_eq!(log_star(tower(h)), h, "h = {h}");
            if h >= 1 && tower(h) < u64::MAX {
                assert_eq!(log_star(tower(h) + 1), h + 1);
            }
        }
    }

    #[test]
    fn log2_floor_and_ceil() {
        assert_eq!(log2_floor(0), 0);
        assert_eq!(log2_floor(1), 0);
        assert_eq!(log2_floor(2), 1);
        assert_eq!(log2_floor(3), 1);
        assert_eq!(log2_floor(1024), 10);
        assert_eq!(log2_ceil(0), 0);
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(1024), 10);
        assert_eq!(log2_ceil(1025), 11);
    }

    #[test]
    fn linial_threshold_is_small_and_monotone_in_spirit() {
        assert_eq!(linial_threshold(16), 1); // log*(8) = 3, halved = 1
        assert_eq!(linial_threshold(1 << 20), 2); // log*(2^19) = 5 -> 2
        assert!(linial_threshold(u64::MAX) <= 3);
    }
}
