//! A shared pool of detached grower scratch buffers.
//!
//! The work-stealing executor hands every pool participant one
//! [`GrowerScratch`] (via `map_init`) and the participant reuses it across
//! every chunk it claims, preserving the zero-allocation steady state per
//! probe. Between executor runs the buffers are parked here, so a session
//! ([`crate::FrozenExecutor`]) that runs many sweeps re-warms nothing: the
//! next run's participants check the warmed buffers straight back out.

use std::sync::Mutex;

use avglocal_graph::GrowerScratch;

/// A lock-guarded stack of warmed [`GrowerScratch`] buffers.
///
/// The lock is taken once per participant per run (checkout on first chunk,
/// return on job teardown), never per probe.
#[derive(Debug, Default)]
pub(crate) struct ScratchPool {
    parked: Mutex<Vec<GrowerScratch>>,
}

impl ScratchPool {
    /// Creates an empty pool.
    pub(crate) fn new() -> Self {
        ScratchPool::default()
    }

    /// Checks a scratch out of the pool (a warmed one when available), tied
    /// to the pool by a guard that parks it again on drop.
    pub(crate) fn checkout(&self) -> PooledScratch<'_> {
        let scratch = self.parked.lock().expect("scratch pool poisoned").pop().unwrap_or_default();
        PooledScratch { owner: self, scratch }
    }
}

impl Clone for ScratchPool {
    /// Cloning a pool clones the parked buffers, so a cloned session starts
    /// as warm as the original.
    fn clone(&self) -> Self {
        ScratchPool {
            parked: Mutex::new(self.parked.lock().expect("scratch pool poisoned").clone()),
        }
    }
}

/// A checked-out scratch; parks itself back into its pool on drop.
#[derive(Debug)]
pub(crate) struct PooledScratch<'a> {
    owner: &'a ScratchPool,
    scratch: GrowerScratch,
}

impl PooledScratch<'_> {
    /// Takes the scratch out of the guard (leaving an empty one behind);
    /// pair with [`PooledScratch::put`] around each grower borrow.
    pub(crate) fn take(&mut self) -> GrowerScratch {
        std::mem::take(&mut self.scratch)
    }

    /// Puts a (typically warmed) scratch back into the guard.
    pub(crate) fn put(&mut self, scratch: GrowerScratch) {
        self.scratch = scratch;
    }
}

impl Drop for PooledScratch<'_> {
    fn drop(&mut self) {
        let scratch = std::mem::take(&mut self.scratch);
        self.owner.parked.lock().expect("scratch pool poisoned").push(scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_park_roundtrip_reuses_buffers() {
        let pool = ScratchPool::new();
        {
            let mut guard = pool.checkout();
            let scratch = guard.take();
            guard.put(scratch);
        }
        // The parked buffer is handed out again.
        assert_eq!(pool.parked.lock().unwrap().len(), 1);
        let _a = pool.checkout();
        assert_eq!(pool.parked.lock().unwrap().len(), 0);
    }

    #[test]
    fn clone_carries_the_parked_buffers() {
        let pool = ScratchPool::new();
        drop(pool.checkout());
        drop(pool.checkout());
        let cloned = pool.clone();
        assert_eq!(cloned.parked.lock().unwrap().len(), pool.parked.lock().unwrap().len());
    }
}
