//! Execution traces: per-round bookkeeping of a message-passing run.

/// Statistics of a single round of a message-passing execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStats {
    /// Round number (1-based; round 0 is the pre-communication decision pass).
    pub round: usize,
    /// Messages delivered during this round.
    pub messages: usize,
    /// Nodes that committed to their output during this round.
    pub newly_decided: usize,
    /// Nodes still undecided after this round.
    pub undecided_remaining: usize,
}

/// A trace of an entire execution: one [`RoundStats`] per executed round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    rounds: Vec<RoundStats>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends the statistics of one round.
    pub fn push(&mut self, stats: RoundStats) {
        self.rounds.push(stats);
    }

    /// The recorded rounds, in order.
    #[must_use]
    pub fn rounds(&self) -> &[RoundStats] {
        &self.rounds
    }

    /// Number of recorded rounds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Returns `true` when no round has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Total number of messages delivered over the whole execution.
    #[must_use]
    pub fn total_messages(&self) -> usize {
        self.rounds.iter().map(|r| r.messages).sum()
    }

    /// The first round by which at least `fraction` of the nodes had decided,
    /// if that ever happened. `fraction` is clamped to `[0, 1]`.
    #[must_use]
    pub fn round_when_fraction_decided(&self, total_nodes: usize, fraction: f64) -> Option<usize> {
        let fraction = fraction.clamp(0.0, 1.0);
        let threshold = (total_nodes as f64 * fraction).ceil() as usize;
        let mut decided = 0usize;
        for r in &self.rounds {
            decided += r.newly_decided;
            if decided >= threshold {
                return Some(r.round);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(RoundStats { round: 0, messages: 0, newly_decided: 2, undecided_remaining: 8 });
        t.push(RoundStats { round: 1, messages: 20, newly_decided: 5, undecided_remaining: 3 });
        t.push(RoundStats { round: 2, messages: 20, newly_decided: 3, undecided_remaining: 0 });
        t
    }

    #[test]
    fn totals() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.total_messages(), 40);
        assert_eq!(t.rounds()[1].newly_decided, 5);
    }

    #[test]
    fn fraction_decided() {
        let t = sample();
        assert_eq!(t.round_when_fraction_decided(10, 0.2), Some(0));
        assert_eq!(t.round_when_fraction_decided(10, 0.5), Some(1));
        assert_eq!(t.round_when_fraction_decided(10, 1.0), Some(2));
        // Out-of-range fractions are clamped.
        assert_eq!(t.round_when_fraction_decided(10, 2.0), Some(2));
    }

    #[test]
    fn fraction_never_reached() {
        let mut t = Trace::new();
        t.push(RoundStats { round: 0, messages: 0, newly_decided: 1, undecided_remaining: 9 });
        assert_eq!(t.round_when_fraction_decided(10, 0.5), None);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.total_messages(), 0);
        assert_eq!(t.round_when_fraction_decided(10, 0.0), None);
    }
}
