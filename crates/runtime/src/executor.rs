//! Synchronous round-based executor (the operational view of LOCAL).

use avglocal_graph::{Graph, NodeId, PortNumbering};

use crate::algorithm::{NodeContext, RoundAlgorithm};
use crate::error::{Result, RuntimeError};
use crate::knowledge::Knowledge;
use crate::message::Envelope;
use crate::trace::{RoundStats, Trace};

/// The result of a round-based execution.
///
/// Per-node outputs and decision rounds are the primary payload; the paper's
/// measures are functions of the decision rounds (their maximum is the
/// classical complexity, their average is the paper's new measure).
#[derive(Debug, Clone)]
pub struct Execution<O> {
    outputs: Vec<Option<O>>,
    decision_rounds: Vec<Option<usize>>,
    rounds_executed: usize,
    messages_sent: usize,
    trace: Trace,
}

impl<O: Clone> Execution<O> {
    /// Number of nodes that took part in the execution.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.outputs.len()
    }

    /// Returns `true` when every node committed to an output.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.outputs.iter().all(Option::is_some)
    }

    /// The output committed by `node`, if it decided.
    #[must_use]
    pub fn output(&self, node: NodeId) -> Option<&O> {
        self.outputs.get(node.index()).and_then(Option::as_ref)
    }

    /// The round at which `node` committed, if it decided.
    #[must_use]
    pub fn decision_round(&self, node: NodeId) -> Option<usize> {
        self.decision_rounds.get(node.index()).copied().flatten()
    }

    /// All outputs, in node order.
    ///
    /// # Panics
    ///
    /// Panics if some node never decided; check [`Execution::is_complete`]
    /// first when in doubt.
    #[must_use]
    pub fn outputs(&self) -> Vec<O> {
        self.outputs.iter().map(|o| o.clone().expect("execution is complete")).collect()
    }

    /// All decision rounds, in node order.
    ///
    /// # Panics
    ///
    /// Panics if some node never decided.
    #[must_use]
    pub fn decision_rounds(&self) -> Vec<usize> {
        self.decision_rounds.iter().map(|r| r.expect("execution is complete")).collect()
    }

    /// Number of rounds the executor ran (not counting the round-0 decision
    /// pass).
    #[must_use]
    pub fn rounds_executed(&self) -> usize {
        self.rounds_executed
    }

    /// Total number of messages delivered.
    #[must_use]
    pub fn messages_sent(&self) -> usize {
        self.messages_sent
    }

    /// The per-round trace of the execution.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

/// Synchronous executor for [`RoundAlgorithm`]s.
///
/// # Examples
///
/// ```
/// use avglocal_graph::generators;
/// use avglocal_runtime::{Knowledge, SyncExecutor};
/// use avglocal_runtime::examples::CountNeighbors;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ring = generators::cycle(6)?;
/// let exec = SyncExecutor::new();
/// let run = exec.run(&ring, &CountNeighbors, Knowledge::none())?;
/// assert!(run.is_complete());
/// assert_eq!(run.rounds_executed(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SyncExecutor {
    max_rounds: Option<usize>,
}

impl Default for SyncExecutor {
    fn default() -> Self {
        SyncExecutor::new()
    }
}

impl SyncExecutor {
    /// Creates an executor with the default round limit (`4·n + 64` for a
    /// graph with `n` nodes).
    #[must_use]
    pub fn new() -> Self {
        SyncExecutor { max_rounds: None }
    }

    /// Creates an executor that aborts after `max_rounds` rounds.
    #[must_use]
    pub fn with_max_rounds(max_rounds: usize) -> Self {
        SyncExecutor { max_rounds: Some(max_rounds) }
    }

    fn round_limit(&self, n: usize) -> usize {
        self.max_rounds.unwrap_or(4 * n + 64)
    }

    /// Runs `algorithm` on `graph` with the given global `knowledge`.
    ///
    /// Nodes that commit to an output keep sending and receiving messages, as
    /// the model requires; only their first decision is recorded.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RoundLimitExceeded`] if some node has not
    /// decided when the round limit is reached.
    pub fn run<A: RoundAlgorithm>(
        &self,
        graph: &Graph,
        algorithm: &A,
        knowledge: Knowledge,
    ) -> Result<Execution<A::Output>> {
        let n = graph.node_count();
        let ports = PortNumbering::new(graph);

        let mut contexts: Vec<NodeContext> = graph
            .nodes()
            .map(|v| NodeContext {
                identifier: graph.identifier(v),
                degree: graph.degree(v),
                neighbor_identifiers: graph
                    .neighbors(v)
                    .iter()
                    .map(|&u| graph.identifier(u))
                    .collect(),
                knowledge,
                round: 0,
            })
            .collect();

        let mut states: Vec<A::State> = contexts.iter().map(|c| algorithm.init(c)).collect();
        let mut outputs: Vec<Option<A::Output>> = vec![None; n];
        let mut decision_rounds: Vec<Option<usize>> = vec![None; n];
        let mut trace = Trace::new();
        let mut messages_sent = 0usize;

        // Round 0: decisions that need no communication at all.
        let mut newly_decided = 0usize;
        for v in graph.nodes() {
            let i = v.index();
            if let Some(out) = algorithm.decide_initial(&mut states[i], &contexts[i]) {
                outputs[i] = Some(out);
                decision_rounds[i] = Some(0);
                newly_decided += 1;
            }
        }
        let mut undecided = n - newly_decided;
        trace.push(RoundStats {
            round: 0,
            messages: 0,
            newly_decided,
            undecided_remaining: undecided,
        });

        let limit = self.round_limit(n);
        let mut round = 0usize;
        while undecided > 0 {
            if round >= limit {
                return Err(RuntimeError::RoundLimitExceeded { limit, undecided });
            }
            round += 1;
            for ctx in &mut contexts {
                ctx.round = round;
            }

            // Send phase: collect every node's outgoing envelopes.
            let mut inboxes: Vec<Vec<Envelope<A::Message>>> = (0..n).map(|_| Vec::new()).collect();
            let mut round_messages = 0usize;
            for v in graph.nodes() {
                let i = v.index();
                for env in algorithm.send(&states[i], &contexts[i]) {
                    let Some(target) = ports.neighbor(v, env.port) else {
                        continue; // message addressed to a non-existent port is dropped
                    };
                    let incoming_port = ports
                        .reverse_port(v, env.port)
                        .expect("port numbering is symmetric for undirected graphs");
                    inboxes[target.index()].push(Envelope::new(incoming_port, env.payload));
                    round_messages += 1;
                }
            }
            messages_sent += round_messages;

            // Receive phase.
            let mut newly_decided = 0usize;
            for v in graph.nodes() {
                let i = v.index();
                let decision = algorithm.receive(&mut states[i], &contexts[i], &inboxes[i]);
                if outputs[i].is_none() {
                    if let Some(out) = decision {
                        outputs[i] = Some(out);
                        decision_rounds[i] = Some(round);
                        newly_decided += 1;
                    }
                }
            }
            undecided -= newly_decided;
            trace.push(RoundStats {
                round,
                messages: round_messages,
                newly_decided,
                undecided_remaining: undecided,
            });
        }

        Ok(Execution { outputs, decision_rounds, rounds_executed: round, messages_sent, trace })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{CountNeighbors, FloodMax};
    use avglocal_graph::{generators, IdAssignment, Identifier};

    #[test]
    fn count_neighbors_decides_after_one_round() {
        let g = generators::cycle(8).unwrap();
        let run = SyncExecutor::new().run(&g, &CountNeighbors, Knowledge::none()).unwrap();
        assert!(run.is_complete());
        assert_eq!(run.rounds_executed(), 1);
        assert_eq!(run.node_count(), 8);
        assert!(run.outputs().iter().all(|&d| d == 2));
        assert!(run.decision_rounds().iter().all(|&r| r == 1));
        // 8 nodes broadcast on 2 ports for one round.
        assert_eq!(run.messages_sent(), 16);
        assert_eq!(run.trace().total_messages(), 16);
    }

    #[test]
    fn flood_max_terminates_with_knowledge_of_n() {
        let mut g = generators::cycle(9).unwrap();
        IdAssignment::Shuffled { seed: 3 }.apply(&mut g).unwrap();
        let run = SyncExecutor::new().run(&g, &FloodMax, Knowledge::with_node_count(9)).unwrap();
        assert!(run.is_complete());
        // Every node outputs the global maximum identifier, 8.
        assert!(run.outputs().iter().all(|id| *id == Identifier::new(8)));
        // All nodes decide at round ceil(n/2) = 5 (the diameter is 4 but the
        // algorithm waits the full pessimistic bound).
        assert!(run.decision_rounds().iter().all(|&r| r == 5));
    }

    #[test]
    fn flood_max_without_knowledge_hits_round_limit() {
        let g = generators::cycle(6).unwrap();
        let err =
            SyncExecutor::with_max_rounds(10).run(&g, &FloodMax, Knowledge::none()).unwrap_err();
        assert!(matches!(err, RuntimeError::RoundLimitExceeded { limit: 10, .. }));
    }

    #[test]
    fn decision_round_and_output_accessors() {
        let g = generators::path(4).unwrap();
        let run = SyncExecutor::new().run(&g, &CountNeighbors, Knowledge::none()).unwrap();
        assert_eq!(run.output(NodeId::new(0)), Some(&1));
        assert_eq!(run.output(NodeId::new(1)), Some(&2));
        assert_eq!(run.decision_round(NodeId::new(2)), Some(1));
        assert_eq!(run.output(NodeId::new(99)), None);
        assert_eq!(run.decision_round(NodeId::new(99)), None);
    }

    #[test]
    fn trace_records_round_progress() {
        let g = generators::cycle(5).unwrap();
        let run = SyncExecutor::new().run(&g, &CountNeighbors, Knowledge::none()).unwrap();
        let trace = run.trace();
        assert_eq!(trace.len(), 2); // round 0 pass + round 1
        assert_eq!(trace.rounds()[0].newly_decided, 0);
        assert_eq!(trace.rounds()[1].newly_decided, 5);
        assert_eq!(trace.rounds()[1].undecided_remaining, 0);
    }

    #[test]
    fn default_executor_equals_new() {
        let a = SyncExecutor::default();
        let b = SyncExecutor::new();
        assert_eq!(a.round_limit(10), b.round_limit(10));
    }
}
