//! # avglocal-runtime
//!
//! Execution engine for the LOCAL model, in the two equivalent views used by
//! *"Brief Announcement: Average Complexity for the LOCAL Model"*
//! (Feuilloley, PODC 2015):
//!
//! * the **round-based view** ([`SyncExecutor`] + [`RoundAlgorithm`]):
//!   synchronous message passing where every node may commit to its output at
//!   a different round and keeps relaying messages afterwards;
//! * the **ball view** ([`BallExecutor`] + [`BallAlgorithm`]): every node
//!   grows the radius of the ball it sees until it can output; the radius of
//!   the first decision is the node's cost `r(v)`.
//!
//! [`GatherAdapter`] turns any ball algorithm into a round algorithm by
//! full-information flooding, and the test suite checks that decision rounds
//! and decision radii coincide — the equivalence the paper relies on when it
//! reasons in terms of radii.
//!
//! The measures themselves (worst-case radius, the paper's average radius,
//! adversarial search over identifier assignments) live in the `avglocal`
//! crate; this crate only produces exact per-node radii.
//!
//! The ball executor runs on a frozen CSR snapshot of the graph and grows
//! each node's view **incrementally** (see [`avglocal_graph::BallGrower`]),
//! handing algorithms a lazy [`LocalView`] whose cheap queries never
//! materialise the induced subgraph. Nodes are processed in parallel on a
//! persistent work-stealing pool with **dynamically claimed chunks** — the
//! right scheduling for the paper's skewed per-node costs, where one node
//! pays `Θ(n)` while the rest pay `O(1)` — and results are index-addressed,
//! so outputs, radii and error selection stay bit-identical to a sequential
//! run ([`BallExecutor::run_frozen_sequential`]). The static-partition
//! scheduling ([`Scheduling::StaticChunks`]) and the quadratic from-scratch
//! probing ([`BallExecutor::from_scratch_baseline`]) remain available as
//! measured baselines for benches and equivalence tests.
//!
//! Callers probing many single nodes should use [`FrozenExecutor`], the
//! session counterpart of [`BallExecutor::run_node`]: it freezes the graph
//! once and reuses the grower scratch across probes, so each probe is
//! `Θ(ball(v))` instead of paying an `O(n + m)` freeze per call.
//!
//! # Example
//!
//! ```
//! use avglocal_graph::{generators, IdAssignment};
//! use avglocal_runtime::{BallExecutor, Knowledge};
//! use avglocal_runtime::examples::NaiveLargestId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut ring = generators::cycle(64)?;
//! IdAssignment::Shuffled { seed: 2025 }.apply(&mut ring)?;
//!
//! let run = BallExecutor::new().run(&ring, &NaiveLargestId, Knowledge::none())?;
//! // Worst-case cost is linear in n, but the average is much smaller.
//! assert_eq!(run.max_radius(), 32);
//! assert!(run.average_radius() < 8.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adapter;
mod algorithm;
mod ball_executor;
mod error;
pub mod examples;
mod executor;
mod frozen;
mod knowledge;
mod message;
mod scratch;
mod trace;
mod view;

pub use adapter::{GatherAdapter, GatherState, Record};
pub use algorithm::{BallAlgorithm, NodeContext, RoundAlgorithm};
pub use ball_executor::{BallExecution, BallExecutor, GrowthStrategy, Scheduling};
pub use error::{Result, RuntimeError};
pub use executor::{Execution, SyncExecutor};
pub use frozen::{FrozenExecutor, NodeBatchOptions, ProbeOptions};
pub use knowledge::Knowledge;
pub use message::{broadcast, Envelope};
pub use trace::{RoundStats, Trace};
pub use view::LocalView;

#[cfg(test)]
mod proptests {
    use super::*;
    use avglocal_graph::{generators, IdAssignment};
    use examples::NaiveLargestId;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The ball executor and the message-passing adapter agree on every
        /// node's cost, for random cycle sizes and identifier assignments.
        #[test]
        fn views_agree_on_random_cycles(n in 3usize..40, seed in 0u64..200) {
            let mut g = generators::cycle(n).unwrap();
            IdAssignment::Shuffled { seed }.apply(&mut g).unwrap();
            let ball = BallExecutor::new().run(&g, &NaiveLargestId, Knowledge::none()).unwrap();
            let rounds = SyncExecutor::new()
                .run(&g, &GatherAdapter::new(NaiveLargestId), Knowledge::none())
                .unwrap();
            for v in g.nodes() {
                prop_assert_eq!(rounds.decision_round(v), Some(ball.radius(v)));
                prop_assert_eq!(rounds.output(v), Some(ball.output(v)));
            }
        }

        /// Exactly one node outputs `true` for the largest-ID problem and its
        /// radius is ⌊n/2⌋ (it must see the whole cycle), independent of the
        /// identifier assignment.
        #[test]
        fn largest_id_has_unique_winner(n in 3usize..60, seed in 0u64..200) {
            let mut g = generators::cycle(n).unwrap();
            IdAssignment::Shuffled { seed }.apply(&mut g).unwrap();
            let run = BallExecutor::new().run(&g, &NaiveLargestId, Knowledge::none()).unwrap();
            let winners: Vec<_> = g.nodes().filter(|&v| *run.output(v)).collect();
            prop_assert_eq!(winners.len(), 1);
            prop_assert_eq!(run.radius(winners[0]), n / 2);
            prop_assert_eq!(winners[0], g.max_identifier_node().unwrap());
        }

        /// The average radius never exceeds the maximum radius.
        #[test]
        fn average_bounded_by_max(n in 3usize..50, seed in 0u64..100) {
            let mut g = generators::cycle(n).unwrap();
            IdAssignment::Shuffled { seed }.apply(&mut g).unwrap();
            let run = BallExecutor::new().run(&g, &NaiveLargestId, Knowledge::none()).unwrap();
            prop_assert!(run.average_radius() <= run.max_radius() as f64);
            prop_assert!(run.average_radius() >= 0.0);
        }
    }
}
