//! Message envelopes exchanged between neighbouring nodes.

/// A message together with the port it is sent through (outgoing) or was
/// received on (incoming).
///
/// Ports are local edge indices in `0..deg(v)`; see
/// [`avglocal_graph::PortNumbering`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Port the message travels through, from the point of view of the node
    /// holding the envelope.
    pub port: usize,
    /// The message payload.
    pub payload: M,
}

impl<M> Envelope<M> {
    /// Creates an envelope for `payload` on `port`.
    pub fn new(port: usize, payload: M) -> Self {
        Envelope { port, payload }
    }
}

/// Builds one envelope per port carrying clones of the same payload — the
/// common "broadcast to all neighbours" pattern.
pub fn broadcast<M: Clone>(degree: usize, payload: &M) -> Vec<Envelope<M>> {
    (0..degree).map(|port| Envelope::new(port, payload.clone())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_construction() {
        let e = Envelope::new(2, "hello");
        assert_eq!(e.port, 2);
        assert_eq!(e.payload, "hello");
    }

    #[test]
    fn broadcast_covers_every_port() {
        let out = broadcast(3, &7u32);
        assert_eq!(out.len(), 3);
        for (i, e) in out.iter().enumerate() {
            assert_eq!(e.port, i);
            assert_eq!(e.payload, 7);
        }
    }

    #[test]
    fn broadcast_on_isolated_node_is_empty() {
        let out: Vec<Envelope<u8>> = broadcast(0, &1);
        assert!(out.is_empty());
    }
}
