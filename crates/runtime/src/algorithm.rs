//! The two algorithm interfaces of the LOCAL model.
//!
//! The paper uses two equivalent descriptions of the LOCAL model and this
//! crate implements both:
//!
//! * [`RoundAlgorithm`] — the operational view: synchronous rounds in which
//!   every node sends messages to its neighbours, receives theirs, updates
//!   its state, and may commit to an output while continuing to relay
//!   messages.
//! * [`BallAlgorithm`] — the knowledge view: a node looks at the ball of
//!   radius `r` around itself for growing `r` and outputs a function of the
//!   first ball that suffices.
//!
//! The per-node cost in both cases is the round/radius at which the node
//! commits to its output; the paper's contribution is to average this cost
//! over the nodes instead of taking its maximum.

use avglocal_graph::Identifier;

use crate::knowledge::Knowledge;
use crate::message::Envelope;
use crate::view::LocalView;

/// The information a node starts with in the message-passing view.
///
/// Identifier and neighbourhood are local; anything global must come through
/// [`Knowledge`]. By convention the runtime exposes the identifiers of the
/// direct neighbours from round 0 (a port-labelled variant of the model that
/// differs from the purely port-numbered one by at most one round and keeps
/// the round count aligned with the ball radius).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeContext {
    /// This node's identifier.
    pub identifier: Identifier,
    /// Degree of the node (number of ports).
    pub degree: usize,
    /// Identifiers of the neighbours, indexed by port.
    pub neighbor_identifiers: Vec<Identifier>,
    /// Global knowledge the algorithm may rely on.
    pub knowledge: Knowledge,
    /// Current round (0 before any communication).
    pub round: usize,
}

/// A deterministic distributed algorithm in the synchronous message-passing
/// (round-based) view of the LOCAL model.
///
/// The executor drives the algorithm as follows:
///
/// 1. [`init`](RoundAlgorithm::init) builds the per-node state;
/// 2. [`decide_initial`](RoundAlgorithm::decide_initial) may commit an output
///    already at radius 0;
/// 3. each round, [`send`](RoundAlgorithm::send) produces the outgoing
///    envelopes, then [`receive`](RoundAlgorithm::receive) consumes the
///    incoming ones and may commit an output.
///
/// A node that has committed **keeps participating**: `send` and `receive`
/// are still called so it can relay information, exactly as required by the
/// unknown-`n` variant of the model the paper builds on. Only the first
/// committed output and its round are recorded.
pub trait RoundAlgorithm {
    /// Message payload exchanged between neighbours.
    type Message: Clone;
    /// Output each node eventually commits to.
    type Output: Clone;
    /// Per-node state.
    type State;

    /// Human-readable name used in traces and reports.
    fn name(&self) -> &str {
        "unnamed-round-algorithm"
    }

    /// Builds the initial state of a node.
    fn init(&self, ctx: &NodeContext) -> Self::State;

    /// Gives the node a chance to commit before any communication (radius 0).
    fn decide_initial(&self, _state: &mut Self::State, _ctx: &NodeContext) -> Option<Self::Output> {
        None
    }

    /// Produces the messages to send this round, as `(port, payload)`
    /// envelopes.
    fn send(&self, state: &Self::State, ctx: &NodeContext) -> Vec<Envelope<Self::Message>>;

    /// Consumes the messages received this round and optionally commits an
    /// output. The executor records only the first `Some` returned.
    fn receive(
        &self,
        state: &mut Self::State,
        ctx: &NodeContext,
        inbox: &[Envelope<Self::Message>],
    ) -> Option<Self::Output>;
}

/// A deterministic distributed algorithm in the ball (knowledge) view of the
/// LOCAL model.
///
/// The executor shows the node its [`LocalView`] at radius 0, 1, 2, … and the
/// algorithm returns `Some(output)` on the first radius at which it can
/// decide. The radius of that first decision is the node's cost `r(v)`.
pub trait BallAlgorithm {
    /// Output each node eventually commits to.
    type Output: Clone;

    /// Human-readable name used in traces and reports.
    fn name(&self) -> &str {
        "unnamed-ball-algorithm"
    }

    /// Inspects the view and either commits to an output or asks for a larger
    /// radius by returning `None`.
    fn decide(&self, view: &LocalView, knowledge: &Knowledge) -> Option<Self::Output>;
}

impl<B: BallAlgorithm + ?Sized> BallAlgorithm for &B {
    type Output = B::Output;

    fn name(&self) -> &str {
        (**self).name()
    }

    fn decide(&self, view: &LocalView, knowledge: &Knowledge) -> Option<Self::Output> {
        (**self).decide(view, knowledge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avglocal_graph::{extract_ball, generators, NodeId};

    /// A trivial ball algorithm that outputs its centre identifier at radius 0.
    struct Immediate;

    impl BallAlgorithm for Immediate {
        type Output = u64;
        fn name(&self) -> &str {
            "immediate"
        }
        fn decide(&self, view: &LocalView, _knowledge: &Knowledge) -> Option<u64> {
            Some(view.center_identifier().value())
        }
    }

    #[test]
    fn ball_algorithm_by_reference_delegates() {
        let g = generators::cycle(5).unwrap();
        let view = LocalView::from_ball(&extract_ball(&g, NodeId::new(2), 0));
        let algo = Immediate;
        let by_ref: &dyn Fn() = &|| {};
        let _ = by_ref; // silence unused closure warning trick not needed
        assert_eq!(algo.decide(&view, &Knowledge::none()), Some(2));
        let r = &algo;
        assert_eq!(r.decide(&view, &Knowledge::none()), Some(2));
        assert_eq!(r.name(), "immediate");
    }

    #[test]
    fn node_context_is_plain_data() {
        let ctx = NodeContext {
            identifier: Identifier::new(3),
            degree: 2,
            neighbor_identifiers: vec![Identifier::new(1), Identifier::new(2)],
            knowledge: Knowledge::none(),
            round: 0,
        };
        let clone = ctx.clone();
        assert_eq!(ctx, clone);
        assert_eq!(clone.neighbor_identifiers.len(), 2);
    }
}
