//! Ball-view executor (the knowledge view of LOCAL).
//!
//! Every node independently grows the radius of the ball it sees until the
//! algorithm commits to an output; the radius of the first decision is the
//! node's cost `r(v)`. This is the view in which the paper states all of its
//! results, and it is the executor used by the experiment harness because the
//! radii it reports are exact by construction.
//!
//! # Performance
//!
//! The executor freezes the graph into a [`CsrGraph`] snapshot once, then
//! drives one incremental [`BallGrower`] per pool participant: probing a
//! node at radii `0, 1, …, r(v)` costs `Θ(ball(v))` edges in total instead
//! of the `Θ(r(v)²)` a from-scratch extraction per probe would cost.
//!
//! Nodes are scheduled **dynamically**: the persistent worker pool hands out
//! fine-grained index chunks from an atomic cursor, so on the paper's skewed
//! workloads — one `Θ(n)` node among `n - 1` cheap ones under an adversarial
//! identifier assignment — the expensive node stalls only its own small
//! chunk while the other participants steal the rest. Each participant
//! reuses one scratch buffer across every chunk it claims (no per-probe
//! allocation in the steady state), results are written into index-addressed
//! slots, and the first error in node order wins — outputs, radii and error
//! selection are bit-identical to the sequential reference
//! ([`BallExecutor::run_frozen_sequential`]) no matter how chunks are stolen.
//!
//! The pre-pool behaviours are preserved as measured baselines:
//! [`Scheduling::StaticChunks`] reproduces the static contiguous partition
//! on spawn-per-call scoped threads, and
//! [`BallExecutor::from_scratch_baseline`] the quadratic
//! fresh-[`extract_ball`]-per-probe engine.

use avglocal_graph::{extract_ball, BallGrower, CsrGraph, Graph, GrowerScratch, NodeId};
use rayon::prelude::*;

use crate::algorithm::BallAlgorithm;
use crate::error::{Result, RuntimeError};
use crate::knowledge::Knowledge;
use crate::scratch::ScratchPool;
use crate::view::LocalView;

/// The result of a ball-view execution: per-node outputs and radii.
#[derive(Debug, Clone)]
pub struct BallExecution<O> {
    outputs: Vec<O>,
    radii: Vec<usize>,
}

impl<O> BallExecution<O> {
    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.outputs.len()
    }

    /// Output committed by `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn output(&self, node: NodeId) -> &O {
        &self.outputs[node.index()]
    }

    /// Radius at which `node` committed (the paper's `r(v)`).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn radius(&self, node: NodeId) -> usize {
        self.radii[node.index()]
    }

    /// All outputs, in node order.
    #[must_use]
    pub fn outputs(&self) -> &[O] {
        &self.outputs
    }

    /// All radii, in node order.
    #[must_use]
    pub fn radii(&self) -> &[usize] {
        &self.radii
    }

    /// The classical (worst-case) running time: `max_v r(v)`.
    #[must_use]
    pub fn max_radius(&self) -> usize {
        self.radii.iter().copied().max().unwrap_or(0)
    }

    /// The total cost `Σ_v r(v)` — the quantity the paper's recurrence
    /// `a(p)` bounds.
    #[must_use]
    pub fn total_radius(&self) -> usize {
        self.radii.iter().sum()
    }

    /// The paper's measure: the average radius `Σ_v r(v) / n`.
    ///
    /// Returns 0.0 for the empty execution.
    #[must_use]
    pub fn average_radius(&self) -> f64 {
        if self.radii.is_empty() {
            0.0
        } else {
            self.total_radius() as f64 / self.radii.len() as f64
        }
    }

    /// Consumes the execution and returns `(outputs, radii)`.
    #[must_use]
    pub fn into_parts(self) -> (Vec<O>, Vec<usize>) {
        (self.outputs, self.radii)
    }
}

/// How the executor obtains the view at each probed radius.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GrowthStrategy {
    /// Incremental frontier growth on a CSR snapshot — `Θ(ball(v))` per node.
    #[default]
    Incremental,
    /// A full BFS extraction per probe — `Θ(r(v)²)` per node. Kept as the
    /// measured baseline for benches and equivalence tests.
    FromScratch,
}

/// How the per-node work of a full run is distributed over the threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduling {
    /// Fine-grained dynamic chunks claimed from the persistent worker pool's
    /// atomic cursor — idle participants steal the remaining chunks, so a
    /// single expensive node cannot serialise a large static chunk behind
    /// it. The default.
    #[default]
    WorkStealing,
    /// The pre-pool behaviour: one contiguous, statically chosen batch of
    /// nodes per thread, executed on fresh scoped threads spawned for the
    /// call. (The old engine nominally cut 4 ranges per thread, but the old
    /// shim then handed each spawned thread 4 *consecutive* ranges — one
    /// contiguous `n/threads` span per thread, which is exactly what this
    /// reproduces.) Kept as the measured baseline for the skewed-workload
    /// benches.
    StaticChunks,
}

/// Executor for [`BallAlgorithm`]s.
///
/// # Examples
///
/// ```
/// use avglocal_graph::{generators, IdAssignment};
/// use avglocal_runtime::{BallExecutor, Knowledge};
/// use avglocal_runtime::examples::NaiveLargestId;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ring = generators::cycle(32)?;
/// IdAssignment::Shuffled { seed: 7 }.apply(&mut ring)?;
/// let run = BallExecutor::new().run(&ring, &NaiveLargestId, Knowledge::none())?;
/// // Exactly one node answers `true` and the worst radius is n/2.
/// assert_eq!(run.outputs().iter().filter(|&&b| b).count(), 1);
/// assert_eq!(run.max_radius(), 16);
/// assert!(run.average_radius() < 16.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct BallExecutor {
    max_radius: Option<usize>,
    strategy: GrowthStrategy,
    scheduling: Scheduling,
}

impl BallExecutor {
    /// Creates an executor with the default radius limit (the node count,
    /// which is always enough because views saturate at the component).
    #[must_use]
    pub fn new() -> Self {
        BallExecutor::default()
    }

    /// Creates an executor that refuses to grow balls beyond `max_radius`.
    #[must_use]
    pub fn with_max_radius(max_radius: usize) -> Self {
        BallExecutor { max_radius: Some(max_radius), ..BallExecutor::default() }
    }

    /// Creates an executor that re-extracts every ball from scratch at every
    /// probed radius — the quadratic pre-CSR behaviour, kept as a measured
    /// baseline for benches and equivalence tests.
    #[must_use]
    pub fn from_scratch_baseline() -> Self {
        BallExecutor { strategy: GrowthStrategy::FromScratch, ..BallExecutor::default() }
    }

    /// Sets the growth strategy, keeping the other settings.
    #[must_use]
    pub fn with_strategy(mut self, strategy: GrowthStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The growth strategy this executor uses.
    #[must_use]
    pub fn strategy(&self) -> GrowthStrategy {
        self.strategy
    }

    /// Sets how full runs are distributed over the threads, keeping the
    /// other settings.
    #[must_use]
    pub fn with_scheduling(mut self, scheduling: Scheduling) -> Self {
        self.scheduling = scheduling;
        self
    }

    /// The scheduling policy this executor uses for full runs.
    #[must_use]
    pub fn scheduling(&self) -> Scheduling {
        self.scheduling
    }

    /// Runs `algorithm` on every node of `graph` and collects outputs and
    /// radii.
    ///
    /// Nodes are processed in parallel over index-ordered chunks; outputs,
    /// radii and error selection are identical to a sequential left-to-right
    /// run.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NonTerminating`] if a node still refuses to
    /// decide on a saturated view (it has seen its whole component, so no
    /// larger radius can help), and [`RuntimeError::RoundLimitExceeded`] if a
    /// custom radius limit is hit first.
    pub fn run<A>(
        &self,
        graph: &Graph,
        algorithm: &A,
        knowledge: Knowledge,
    ) -> Result<BallExecution<A::Output>>
    where
        A: BallAlgorithm + Sync,
        A::Output: Send,
    {
        let n = graph.node_count();
        if n == 0 {
            return Ok(BallExecution { outputs: Vec::new(), radii: Vec::new() });
        }
        if self.strategy == GrowthStrategy::FromScratch {
            return self.run_from_scratch(graph, algorithm, knowledge);
        }
        self.run_frozen(&graph.freeze(), algorithm, knowledge)
    }

    /// Runs `algorithm` on every node of a pre-frozen snapshot — same
    /// semantics and determinism as [`BallExecutor::run`] with the
    /// incremental strategy, minus the per-call freeze. This is what
    /// [`crate::FrozenExecutor::run`] delegates to.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BallExecutor::run`].
    pub fn run_frozen<A>(
        &self,
        csr: &CsrGraph,
        algorithm: &A,
        knowledge: Knowledge,
    ) -> Result<BallExecution<A::Output>>
    where
        A: BallAlgorithm + Sync,
        A::Output: Send,
    {
        self.run_frozen_with_pool(csr, algorithm, knowledge, &ScratchPool::new())
    }

    /// [`BallExecutor::run_frozen`] drawing its per-participant grower
    /// scratch from `scratch_pool`, so a session running many sweeps keeps
    /// the buffers warm across runs (see [`crate::FrozenExecutor`]).
    pub(crate) fn run_frozen_with_pool<A>(
        &self,
        csr: &CsrGraph,
        algorithm: &A,
        knowledge: Knowledge,
        scratch_pool: &ScratchPool,
    ) -> Result<BallExecution<A::Output>>
    where
        A: BallAlgorithm + Sync,
        A::Output: Send,
    {
        let n = csr.node_count();
        if n == 0 {
            return Ok(BallExecution { outputs: Vec::new(), radii: Vec::new() });
        }
        let hard_limit = self.max_radius.unwrap_or(n);

        // One `(output, radius)` probe per node. Each participant checks one
        // scratch out of the pool on its first chunk and reuses it for every
        // chunk it claims; results land in index-addressed slots, so outputs
        // are deterministic by position no matter who stole which chunk.
        let probe = |pooled: &mut crate::scratch::PooledScratch<'_>, index: usize| {
            let (result, scratch) = probe_node_on_csr(
                csr,
                pooled.take(),
                NodeId::new(index),
                algorithm,
                &knowledge,
                hard_limit,
            );
            pooled.put(scratch);
            result
        };
        let per_node: Vec<Result<(A::Output, usize)>> = match self.scheduling {
            Scheduling::WorkStealing => {
                (0..n).into_par_iter().map_init(|| scratch_pool.checkout(), probe).collect()
            }
            Scheduling::StaticChunks => rayon::pool::baseline::static_chunked(
                n,
                rayon::current_num_threads(),
                || scratch_pool.checkout(),
                probe,
            ),
        };
        collect_execution(per_node)
    }

    /// The plain sequential reference: one grower, nodes probed left to
    /// right on the calling thread. The parallel schedules are tested to be
    /// bit-identical (outputs, radii and error selection) to this.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BallExecutor::run`].
    pub fn run_frozen_sequential<A>(
        &self,
        csr: &CsrGraph,
        algorithm: &A,
        knowledge: Knowledge,
    ) -> Result<BallExecution<A::Output>>
    where
        A: BallAlgorithm,
    {
        let n = csr.node_count();
        if n == 0 {
            return Ok(BallExecution { outputs: Vec::new(), radii: Vec::new() });
        }
        let hard_limit = self.max_radius.unwrap_or(n);
        let mut grower = BallGrower::new(csr, NodeId::new(0));
        let mut outputs = Vec::with_capacity(n);
        let mut radii = Vec::with_capacity(n);
        for index in 0..n {
            grower.reset(NodeId::new(index));
            let (output, radius) = drive_grower(&mut grower, algorithm, &knowledge, hard_limit)?;
            outputs.push(output);
            radii.push(radius);
        }
        Ok(BallExecution { outputs, radii })
    }

    /// Runs `algorithm` for a single node and returns `(output, radius)`.
    ///
    /// With the incremental strategy this freezes a fresh snapshot and then
    /// probes through the same borrowed-CSR path as
    /// [`crate::FrozenExecutor::run_node`] — callers probing **many** single
    /// nodes should use that session API directly, which freezes once and
    /// keeps the grower scratch warm across probes.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BallExecutor::run`].
    pub fn run_node<A: BallAlgorithm>(
        &self,
        graph: &Graph,
        node: NodeId,
        algorithm: &A,
        knowledge: Knowledge,
    ) -> Result<(A::Output, usize)> {
        let hard_limit = self.max_radius.unwrap_or(graph.node_count());
        match self.strategy {
            GrowthStrategy::Incremental => {
                let csr = graph.freeze();
                let (result, _scratch) = probe_node_on_csr(
                    &csr,
                    GrowerScratch::default(),
                    node,
                    algorithm,
                    &knowledge,
                    hard_limit,
                );
                result
            }
            GrowthStrategy::FromScratch => {
                run_node_from_scratch(graph, node, algorithm, &knowledge, hard_limit)
            }
        }
    }

    /// The sequential, from-scratch reference implementation.
    fn run_from_scratch<A: BallAlgorithm>(
        &self,
        graph: &Graph,
        algorithm: &A,
        knowledge: Knowledge,
    ) -> Result<BallExecution<A::Output>> {
        let hard_limit = self.max_radius.unwrap_or(graph.node_count());
        let mut outputs = Vec::with_capacity(graph.node_count());
        let mut radii = Vec::with_capacity(graph.node_count());
        for v in graph.nodes() {
            let (out, r) = run_node_from_scratch(graph, v, algorithm, &knowledge, hard_limit)?;
            outputs.push(out);
            radii.push(r);
        }
        Ok(BallExecution { outputs, radii })
    }
}

/// Assembles per-node probe results into a [`BallExecution`], surfacing the
/// first error **in node order** — the same error a sequential
/// left-to-right run would report, independent of chunk scheduling.
fn collect_execution<O>(per_node: Vec<Result<(O, usize)>>) -> Result<BallExecution<O>> {
    let mut outputs = Vec::with_capacity(per_node.len());
    let mut radii = Vec::with_capacity(per_node.len());
    for result in per_node {
        let (output, radius) = result?;
        outputs.push(output);
        radii.push(radius);
    }
    Ok(BallExecution { outputs, radii })
}

/// Probes a single node of a frozen snapshot with a borrowed scratch and
/// hands the (now warmed) scratch back — the one freeze-free probe path
/// shared by [`BallExecutor::run_node`], [`crate::FrozenExecutor::run_node`]
/// and the chunk loops of the full runs.
pub(crate) fn probe_node_on_csr<A: BallAlgorithm>(
    csr: &CsrGraph,
    scratch: GrowerScratch,
    node: NodeId,
    algorithm: &A,
    knowledge: &Knowledge,
    hard_limit: usize,
) -> (Result<(A::Output, usize)>, GrowerScratch) {
    probe_node_on_csr_cancellable(csr, scratch, node, algorithm, knowledge, hard_limit, &mut never)
}

/// Like [`probe_node_on_csr`] but polls `cancel` cooperatively — the probe
/// path behind [`crate::FrozenExecutor::run_node_with_cancel`] and the
/// service layer's per-request deadlines.
#[allow(clippy::too_many_arguments)]
pub(crate) fn probe_node_on_csr_cancellable<A: BallAlgorithm>(
    csr: &CsrGraph,
    scratch: GrowerScratch,
    node: NodeId,
    algorithm: &A,
    knowledge: &Knowledge,
    hard_limit: usize,
    cancel: &mut dyn FnMut(usize) -> bool,
) -> (Result<(A::Output, usize)>, GrowerScratch) {
    let mut grower = BallGrower::with_scratch(csr, node, scratch);
    let result = drive_grower_cancellable(&mut grower, algorithm, knowledge, hard_limit, cancel);
    (result, grower.into_scratch())
}

/// The always-false cancellation hook of the uncancellable probe paths.
fn never(_radius: usize) -> bool {
    false
}

/// Probes one node with the incremental grower until the algorithm decides.
pub(crate) fn drive_grower<A: BallAlgorithm>(
    grower: &mut BallGrower<'_>,
    algorithm: &A,
    knowledge: &Knowledge,
    hard_limit: usize,
) -> Result<(A::Output, usize)> {
    drive_grower_cancellable(grower, algorithm, knowledge, hard_limit, &mut never)
}

/// Probes one node, polling `cancel(radius)` once per ball-growth step —
/// before the radius-`r` view is inspected. When the hook returns `true` the
/// probe stops with [`RuntimeError::Cancelled`] without growing further, so
/// an expired deadline costs at most one additional decide call. A hook that
/// never fires leaves the probe bit-identical to [`drive_grower`].
pub(crate) fn drive_grower_cancellable<A: BallAlgorithm>(
    grower: &mut BallGrower<'_>,
    algorithm: &A,
    knowledge: &Knowledge,
    hard_limit: usize,
    cancel: &mut dyn FnMut(usize) -> bool,
) -> Result<(A::Output, usize)> {
    loop {
        if cancel(grower.radius()) {
            return Err(RuntimeError::Cancelled { node: grower.center(), radius: grower.radius() });
        }
        let view = LocalView::from_grower(grower);
        let saturated = view.is_saturated();
        if let Some(out) = algorithm.decide(&view, knowledge) {
            let radius = view.radius();
            return Ok((out, radius));
        }
        if saturated {
            return Err(RuntimeError::NonTerminating { node: grower.center() });
        }
        if grower.radius() >= hard_limit {
            return Err(RuntimeError::RoundLimitExceeded { limit: hard_limit, undecided: 1 });
        }
        grower.grow();
    }
}

/// Probes one node by extracting a fresh ball at every radius.
fn run_node_from_scratch<A: BallAlgorithm>(
    graph: &Graph,
    node: NodeId,
    algorithm: &A,
    knowledge: &Knowledge,
    hard_limit: usize,
) -> Result<(A::Output, usize)> {
    let mut radius = 0usize;
    loop {
        let ball = extract_ball(graph, node, radius);
        let view = LocalView::from_ball(&ball);
        let saturated = view.is_saturated();
        if let Some(out) = algorithm.decide(&view, knowledge) {
            return Ok((out, radius));
        }
        if saturated {
            return Err(RuntimeError::NonTerminating { node });
        }
        if radius >= hard_limit {
            return Err(RuntimeError::RoundLimitExceeded { limit: hard_limit, undecided: 1 });
        }
        radius += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::NaiveLargestId;
    use avglocal_graph::{generators, IdAssignment, Identifier};

    struct NeverDecides;
    impl BallAlgorithm for NeverDecides {
        type Output = ();
        fn decide(&self, _view: &LocalView, _knowledge: &Knowledge) -> Option<()> {
            None
        }
    }

    struct DecideAtRadius(usize);
    impl BallAlgorithm for DecideAtRadius {
        type Output = usize;
        fn decide(&self, view: &LocalView, _knowledge: &Knowledge) -> Option<usize> {
            (view.radius() >= self.0).then_some(view.radius())
        }
    }

    #[test]
    fn largest_id_radii_on_identity_cycle() {
        // With identifiers laid out in increasing order around the cycle,
        // node i (for i < n-1) sees the larger identifier i+1 at radius 1,
        // while node n-1 must see the whole cycle.
        let g = generators::cycle(10).unwrap();
        let run = BallExecutor::new().run(&g, &NaiveLargestId, Knowledge::none()).unwrap();
        assert_eq!(run.node_count(), 10);
        for i in 0..9 {
            assert_eq!(run.radius(NodeId::new(i)), 1);
            assert!(!run.output(NodeId::new(i)));
        }
        assert_eq!(run.radius(NodeId::new(9)), 5);
        assert!(run.output(NodeId::new(9)));
        assert_eq!(run.max_radius(), 5);
        assert_eq!(run.total_radius(), 9 + 5);
        assert!((run.average_radius() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn non_terminating_algorithm_is_detected() {
        let g = generators::cycle(5).unwrap();
        let err = BallExecutor::new().run(&g, &NeverDecides, Knowledge::none()).unwrap_err();
        assert!(matches!(err, RuntimeError::NonTerminating { .. }));
    }

    #[test]
    fn radius_limit_is_enforced() {
        let g = generators::cycle(30).unwrap();
        let err = BallExecutor::with_max_radius(3)
            .run(&g, &DecideAtRadius(10), Knowledge::none())
            .unwrap_err();
        assert!(matches!(err, RuntimeError::RoundLimitExceeded { limit: 3, .. }));
    }

    #[test]
    fn decide_at_radius_reports_that_radius() {
        let g = generators::cycle(12).unwrap();
        let run = BallExecutor::new().run(&g, &DecideAtRadius(4), Knowledge::none()).unwrap();
        assert!(run.radii().iter().all(|&r| r == 4));
        assert_eq!(run.max_radius(), 4);
        assert_eq!(run.average_radius(), 4.0);
    }

    #[test]
    fn run_node_matches_run() {
        let mut g = generators::cycle(9).unwrap();
        IdAssignment::Shuffled { seed: 2 }.apply(&mut g).unwrap();
        let full = BallExecutor::new().run(&g, &NaiveLargestId, Knowledge::none()).unwrap();
        for v in g.nodes() {
            let (out, r) =
                BallExecutor::new().run_node(&g, v, &NaiveLargestId, Knowledge::none()).unwrap();
            assert_eq!(out, *full.output(v));
            assert_eq!(r, full.radius(v));
        }
    }

    #[test]
    fn incremental_matches_from_scratch_baseline() {
        for (n, seed) in [(9usize, 0u64), (16, 1), (33, 5), (64, 9)] {
            let mut g = generators::cycle(n).unwrap();
            IdAssignment::Shuffled { seed }.apply(&mut g).unwrap();
            let fast = BallExecutor::new().run(&g, &NaiveLargestId, Knowledge::none()).unwrap();
            let slow = BallExecutor::from_scratch_baseline()
                .run(&g, &NaiveLargestId, Knowledge::none())
                .unwrap();
            assert_eq!(fast.outputs(), slow.outputs());
            assert_eq!(fast.radii(), slow.radii());
        }
    }

    #[test]
    fn strategies_are_selectable() {
        let exec = BallExecutor::new().with_strategy(GrowthStrategy::FromScratch);
        assert_eq!(exec.strategy(), GrowthStrategy::FromScratch);
        assert_eq!(BallExecutor::new().strategy(), GrowthStrategy::Incremental);
        assert_eq!(BallExecutor::from_scratch_baseline().strategy(), GrowthStrategy::FromScratch);
    }

    #[test]
    fn schedulings_are_selectable() {
        assert_eq!(BallExecutor::new().scheduling(), Scheduling::WorkStealing);
        let exec = BallExecutor::new().with_scheduling(Scheduling::StaticChunks);
        assert_eq!(exec.scheduling(), Scheduling::StaticChunks);
        assert_eq!(exec.strategy(), GrowthStrategy::Incremental);
    }

    #[test]
    fn all_schedules_match_the_sequential_reference() {
        // Adversarial (identity) and random assignments; outputs and radii
        // must be bit-identical across work-stealing, static chunks and the
        // sequential reference.
        for assignment in [IdAssignment::Identity, IdAssignment::Shuffled { seed: 13 }] {
            let mut g = generators::cycle(257).unwrap();
            assignment.apply(&mut g).unwrap();
            let csr = g.freeze();
            let reference = BallExecutor::new()
                .run_frozen_sequential(&csr, &NaiveLargestId, Knowledge::none())
                .unwrap();
            for scheduling in [Scheduling::WorkStealing, Scheduling::StaticChunks] {
                let exec = BallExecutor::new().with_scheduling(scheduling);
                let run = exec.run_frozen(&csr, &NaiveLargestId, Knowledge::none()).unwrap();
                assert_eq!(run.outputs(), reference.outputs(), "{scheduling:?}");
                assert_eq!(run.radii(), reference.radii(), "{scheduling:?}");
            }
        }
    }

    #[test]
    fn error_selection_is_in_node_order_under_stealing() {
        // An algorithm that never decides for a band of node identifiers:
        // every schedule must surface the *first* failing node in node
        // order, exactly like the sequential run.
        struct FailsOnSmallIds;
        impl BallAlgorithm for FailsOnSmallIds {
            type Output = u64;
            fn decide(&self, view: &LocalView, _knowledge: &Knowledge) -> Option<u64> {
                if view.center_identifier().value() % 3 == 1 {
                    None
                } else {
                    Some(view.center_identifier().value())
                }
            }
        }
        let mut g = generators::cycle(200).unwrap();
        IdAssignment::Shuffled { seed: 5 }.apply(&mut g).unwrap();
        let csr = g.freeze();
        let expected = BallExecutor::new()
            .run_frozen_sequential(&csr, &FailsOnSmallIds, Knowledge::none())
            .unwrap_err();
        let RuntimeError::NonTerminating { node: expected_node } = expected else {
            panic!("sequential reference must fail with NonTerminating");
        };
        for scheduling in [Scheduling::WorkStealing, Scheduling::StaticChunks] {
            let err = BallExecutor::new()
                .with_scheduling(scheduling)
                .run_frozen(&csr, &FailsOnSmallIds, Knowledge::none())
                .unwrap_err();
            assert!(
                matches!(err, RuntimeError::NonTerminating { node } if node == expected_node),
                "{scheduling:?} selected a different error node: {err:?}"
            );
        }
    }

    #[test]
    fn into_parts_round_trip() {
        let mut g = generators::cycle(6).unwrap();
        IdAssignment::Reversed.apply(&mut g).unwrap();
        let run = BallExecutor::new().run(&g, &NaiveLargestId, Knowledge::none()).unwrap();
        let (outputs, radii) = run.into_parts();
        assert_eq!(outputs.len(), 6);
        assert_eq!(radii.len(), 6);
        assert_eq!(outputs.iter().filter(|&&b| b).count(), 1);
        // Node 0 carries identifier 5 (the maximum) and needs radius 3.
        assert!(outputs[0]);
        assert_eq!(radii[0], 3);
    }

    #[test]
    fn empty_execution_statistics() {
        let exec: BallExecution<u8> = BallExecution { outputs: vec![], radii: vec![] };
        assert_eq!(exec.average_radius(), 0.0);
        assert_eq!(exec.max_radius(), 0);
        assert_eq!(exec.total_radius(), 0);
        assert_eq!(exec.node_count(), 0);
    }

    #[test]
    fn empty_graph_runs_to_empty_execution() {
        let g = avglocal_graph::Graph::new();
        let run = BallExecutor::new().run(&g, &NaiveLargestId, Knowledge::none()).unwrap();
        assert_eq!(run.node_count(), 0);
    }

    #[test]
    fn clique_winner_needs_radius_one() {
        let mut g = generators::complete(6).unwrap();
        IdAssignment::Shuffled { seed: 4 }.apply(&mut g).unwrap();
        let run = BallExecutor::new().run(&g, &NaiveLargestId, Knowledge::none()).unwrap();
        let winner = g.max_identifier_node().unwrap();
        assert!(*run.output(winner));
        assert_eq!(run.radius(winner), 1);
        assert_eq!(run.max_radius(), 1);
        assert_eq!(g.identifier(winner), Identifier::new(5));
    }
}
