//! Global knowledge available to the nodes.
//!
//! The classic LOCAL model assumes every node knows the number of nodes `n`;
//! the paper (following Korman–Sereni–Viennot and Musto) removes that
//! assumption and lets nodes decide at different rounds. [`Knowledge`]
//! captures which global parameters the algorithm may rely on, so the same
//! algorithm implementation can be run in either regime and the executors can
//! enforce what it may read.

/// The global parameters a node is allowed to know before the computation
/// starts.
///
/// The default is the paper's setting: nothing is known (`Knowledge::none()`).
///
/// # Examples
///
/// ```
/// use avglocal_runtime::Knowledge;
///
/// let nothing = Knowledge::none();
/// assert_eq!(nothing.node_count(), None);
///
/// let classic = Knowledge::with_node_count(128);
/// assert_eq!(classic.node_count(), Some(128));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Knowledge {
    node_count: Option<usize>,
    max_degree: Option<usize>,
    identifier_bound: Option<u64>,
}

impl Knowledge {
    /// No global knowledge at all (the paper's setting).
    #[must_use]
    pub const fn none() -> Self {
        Knowledge { node_count: None, max_degree: None, identifier_bound: None }
    }

    /// The classic LOCAL assumption: every node knows `n`.
    #[must_use]
    pub const fn with_node_count(n: usize) -> Self {
        Knowledge { node_count: Some(n), max_degree: None, identifier_bound: None }
    }

    /// Adds knowledge of the number of nodes.
    #[must_use]
    pub const fn and_node_count(mut self, n: usize) -> Self {
        self.node_count = Some(n);
        self
    }

    /// Adds knowledge of the maximum degree `Δ`.
    #[must_use]
    pub const fn and_max_degree(mut self, delta: usize) -> Self {
        self.max_degree = Some(delta);
        self
    }

    /// Adds knowledge of an upper bound on identifier values (the size of the
    /// identifier space, often polynomial in `n`).
    #[must_use]
    pub const fn and_identifier_bound(mut self, bound: u64) -> Self {
        self.identifier_bound = Some(bound);
        self
    }

    /// Number of nodes, if known.
    #[must_use]
    pub const fn node_count(&self) -> Option<usize> {
        self.node_count
    }

    /// Maximum degree, if known.
    #[must_use]
    pub const fn max_degree(&self) -> Option<usize> {
        self.max_degree
    }

    /// Upper bound on identifier values, if known.
    #[must_use]
    pub const fn identifier_bound(&self) -> Option<u64> {
        self.identifier_bound
    }

    /// Returns `true` when no global parameter is known.
    #[must_use]
    pub const fn is_oblivious(&self) -> bool {
        self.node_count.is_none() && self.max_degree.is_none() && self.identifier_bound.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_knows_nothing() {
        let k = Knowledge::none();
        assert!(k.is_oblivious());
        assert_eq!(k.node_count(), None);
        assert_eq!(k.max_degree(), None);
        assert_eq!(k.identifier_bound(), None);
        assert_eq!(k, Knowledge::default());
    }

    #[test]
    fn builders_accumulate() {
        let k = Knowledge::none().and_node_count(10).and_max_degree(2).and_identifier_bound(1000);
        assert!(!k.is_oblivious());
        assert_eq!(k.node_count(), Some(10));
        assert_eq!(k.max_degree(), Some(2));
        assert_eq!(k.identifier_bound(), Some(1000));
    }

    #[test]
    fn with_node_count_shortcut() {
        assert_eq!(Knowledge::with_node_count(5), Knowledge::none().and_node_count(5));
    }
}
