//! Errors reported by the executors.

use std::error::Error;
use std::fmt;

use avglocal_graph::{GraphError, NodeId};

/// Errors produced while executing a distributed algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The round-based executor reached its round limit with undecided nodes.
    RoundLimitExceeded {
        /// The configured limit.
        limit: usize,
        /// Number of nodes that had not produced an output.
        undecided: usize,
    },
    /// A ball-view algorithm failed to decide even after seeing its entire
    /// connected component.
    NonTerminating {
        /// The node that never decided.
        node: NodeId,
    },
    /// A cooperative cancellation hook stopped the probe before the
    /// algorithm decided (see
    /// [`crate::FrozenExecutor::run_node_with_cancel`]); typically a service
    /// deadline expiring mid-query.
    Cancelled {
        /// The node whose probe was abandoned.
        node: NodeId,
        /// The ball radius the probe had reached when it was cancelled.
        radius: usize,
    },
    /// The algorithm was run on an unsuitable graph (for example a
    /// cycle-specific algorithm on a node of degree 3).
    UnsupportedTopology {
        /// Human-readable description of the requirement that was violated.
        reason: String,
    },
    /// An underlying graph operation failed.
    Graph(GraphError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::RoundLimitExceeded { limit, undecided } => {
                write!(f, "round limit of {limit} reached with {undecided} undecided nodes")
            }
            RuntimeError::NonTerminating { node } => {
                write!(f, "node {node} saw its whole component but never produced an output")
            }
            RuntimeError::Cancelled { node, radius } => {
                write!(f, "probe of node {node} cancelled at ball radius {radius}")
            }
            RuntimeError::UnsupportedTopology { reason } => {
                write!(f, "unsupported topology: {reason}")
            }
            RuntimeError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for RuntimeError {
    fn from(e: GraphError) -> Self {
        RuntimeError::Graph(e)
    }
}

/// Convenience alias for results whose error type is [`RuntimeError`].
pub type Result<T> = std::result::Result<T, RuntimeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RuntimeError::RoundLimitExceeded { limit: 10, undecided: 3 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('3'));

        let e = RuntimeError::NonTerminating { node: NodeId::new(4) };
        assert!(e.to_string().contains("v4"));

        let e = RuntimeError::Cancelled { node: NodeId::new(6), radius: 2 };
        assert!(e.to_string().contains("v6"));
        assert!(e.to_string().contains("radius 2"));

        let e = RuntimeError::UnsupportedTopology { reason: "needs a cycle".into() };
        assert!(e.to_string().contains("needs a cycle"));
    }

    #[test]
    fn graph_errors_convert_and_chain() {
        let ge = GraphError::SelfLoop { node: NodeId::new(1) };
        let re: RuntimeError = ge.clone().into();
        assert_eq!(re, RuntimeError::Graph(ge));
        assert!(re.source().is_some());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<RuntimeError>();
    }
}
