//! Small built-in algorithms used in documentation and tests.
//!
//! These are not part of the paper; the paper's algorithms (largest ID,
//! Cole–Vishkin, …) live in `avglocal-algorithms`. The ones here exist so the
//! runtime crate can be exercised and documented without a dependency cycle.

use avglocal_graph::Identifier;

use crate::algorithm::{BallAlgorithm, NodeContext, RoundAlgorithm};
use crate::knowledge::Knowledge;
use crate::message::{broadcast, Envelope};
use crate::view::LocalView;

/// Round algorithm: each node outputs the number of neighbours it heard from
/// in the first round (its degree).
#[derive(Debug, Clone, Copy, Default)]
pub struct CountNeighbors;

impl RoundAlgorithm for CountNeighbors {
    type Message = ();
    type Output = usize;
    type State = ();

    fn name(&self) -> &str {
        "count-neighbors"
    }

    fn init(&self, _ctx: &NodeContext) -> Self::State {}

    fn send(&self, _state: &Self::State, ctx: &NodeContext) -> Vec<Envelope<Self::Message>> {
        broadcast(ctx.degree, &())
    }

    fn receive(
        &self,
        _state: &mut Self::State,
        _ctx: &NodeContext,
        inbox: &[Envelope<Self::Message>],
    ) -> Option<Self::Output> {
        Some(inbox.len())
    }
}

/// Round algorithm: flood the maximum identifier and output it after
/// `⌈n/2⌉` rounds.
///
/// The stopping rule relies on [`Knowledge::node_count`] and on the diameter
/// being at most `⌈n/2⌉`, which holds on cycles (the topology of the paper)
/// and on cliques. Without knowledge of `n` the algorithm never terminates —
/// precisely the kind of assumption the unknown-`n` model removes.
#[derive(Debug, Clone, Copy, Default)]
pub struct FloodMax;

/// Per-node state of [`FloodMax`]: the largest identifier seen so far.
#[derive(Debug, Clone)]
pub struct FloodMaxState {
    best: Identifier,
}

impl RoundAlgorithm for FloodMax {
    type Message = Identifier;
    type Output = Identifier;
    type State = FloodMaxState;

    fn name(&self) -> &str {
        "flood-max"
    }

    fn init(&self, ctx: &NodeContext) -> Self::State {
        FloodMaxState { best: ctx.identifier }
    }

    fn send(&self, state: &Self::State, ctx: &NodeContext) -> Vec<Envelope<Self::Message>> {
        broadcast(ctx.degree, &state.best)
    }

    fn receive(
        &self,
        state: &mut Self::State,
        ctx: &NodeContext,
        inbox: &[Envelope<Self::Message>],
    ) -> Option<Self::Output> {
        for env in inbox {
            state.best = state.best.max(env.payload);
        }
        let n = ctx.knowledge.node_count()?;
        if ctx.round >= n.div_ceil(2) {
            Some(state.best)
        } else {
            None
        }
    }
}

/// Ball algorithm: output `true` iff the centre holds the largest identifier
/// seen so far, deciding as soon as the ball is saturated or a larger
/// identifier appears.
///
/// This is exactly the paper's Section 2 algorithm; the canonical
/// implementation (with verification helpers and a message-passing twin)
/// lives in `avglocal-algorithms`, this copy exists for runtime-level tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveLargestId;

impl BallAlgorithm for NaiveLargestId {
    type Output = bool;

    fn name(&self) -> &str {
        "naive-largest-id"
    }

    fn decide(&self, view: &LocalView, _knowledge: &Knowledge) -> Option<bool> {
        if !view.center_has_max_identifier() {
            Some(false)
        } else if view.is_saturated() {
            Some(true)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ball_executor::BallExecutor;
    use crate::executor::SyncExecutor;
    use avglocal_graph::{generators, IdAssignment, NodeId};

    #[test]
    fn flood_max_on_clique() {
        let mut g = generators::complete(5).unwrap();
        IdAssignment::Shuffled { seed: 1 }.apply(&mut g).unwrap();
        let run = SyncExecutor::new().run(&g, &FloodMax, Knowledge::with_node_count(5)).unwrap();
        assert!(run.outputs().iter().all(|&id| id == Identifier::new(4)));
    }

    #[test]
    fn naive_largest_id_flags_exactly_the_maximum() {
        let mut g = generators::cycle(11).unwrap();
        IdAssignment::Shuffled { seed: 9 }.apply(&mut g).unwrap();
        let run = BallExecutor::new().run(&g, &NaiveLargestId, Knowledge::none()).unwrap();
        let winners: Vec<NodeId> = g.nodes().filter(|&v| *run.output(v)).collect();
        assert_eq!(winners.len(), 1);
        assert_eq!(g.identifier(winners[0]), Identifier::new(10));
    }

    #[test]
    fn count_neighbors_on_star() {
        let g = generators::star(6).unwrap();
        let run = SyncExecutor::new().run(&g, &CountNeighbors, Knowledge::none()).unwrap();
        assert_eq!(*run.output(NodeId::new(0)).unwrap(), 5);
        assert!((1..6).all(|i| *run.output(NodeId::new(i)).unwrap() == 1));
    }
}
