//! Bridging the two views: running a ball algorithm over message passing.
//!
//! The paper treats the round-based and ball-based descriptions of the LOCAL
//! model as interchangeable. [`GatherAdapter`] makes that concrete: it wraps
//! any [`BallAlgorithm`] into a [`RoundAlgorithm`] that floods neighbourhood
//! records and reconstructs the [`LocalView`] after every round. The
//! integration tests check that the decision *rounds* of the adapter match
//! the decision *radii* of the ball executor exactly — this is the
//! equivalence the paper's "radius" terminology relies on.

use std::collections::BTreeMap;

use avglocal_graph::Identifier;

use crate::algorithm::{BallAlgorithm, NodeContext, RoundAlgorithm};
use crate::message::{broadcast, Envelope};
use crate::view::LocalView;

/// One node's knowledge record: its identifier and the identifiers of its
/// neighbours. Flooding these records is the universal "full information"
/// protocol of the LOCAL model.
pub type Record = (Identifier, Vec<Identifier>);

/// Wraps a [`BallAlgorithm`] into a [`RoundAlgorithm`] by full-information
/// flooding.
///
/// After `r` rounds every node holds the records of exactly the nodes within
/// distance `r`, which determine the radius-`r` ball; the wrapped algorithm
/// is consulted after every round on the reconstructed view.
#[derive(Debug, Clone, Default)]
pub struct GatherAdapter<B> {
    inner: B,
}

impl<B> GatherAdapter<B> {
    /// Wraps `inner`.
    pub fn new(inner: B) -> Self {
        GatherAdapter { inner }
    }

    /// Returns the wrapped algorithm.
    pub fn into_inner(self) -> B {
        self.inner
    }
}

/// Per-node state of the gather adapter.
#[derive(Debug, Clone)]
pub struct GatherState {
    /// Records received so far, keyed by identifier.
    records: BTreeMap<Identifier, Vec<Identifier>>,
    /// Whether the node has already committed (it keeps relaying regardless).
    decided: bool,
}

impl<B: BallAlgorithm> RoundAlgorithm for GatherAdapter<B> {
    type Message = Vec<Record>;
    type Output = B::Output;
    type State = GatherState;

    fn name(&self) -> &str {
        "gather-adapter"
    }

    fn init(&self, ctx: &NodeContext) -> Self::State {
        let mut records = BTreeMap::new();
        records.insert(ctx.identifier, ctx.neighbor_identifiers.clone());
        GatherState { records, decided: false }
    }

    fn decide_initial(&self, state: &mut Self::State, ctx: &NodeContext) -> Option<Self::Output> {
        let view = LocalView::from_records(ctx.identifier, &state.records, 0);
        let decision = self.inner.decide(&view, &ctx.knowledge);
        if decision.is_some() {
            state.decided = true;
        }
        decision
    }

    fn send(&self, state: &Self::State, ctx: &NodeContext) -> Vec<Envelope<Self::Message>> {
        // Full-information flooding: relay everything known, even after
        // deciding, as required by the model.
        let payload: Vec<Record> =
            state.records.iter().map(|(id, nbrs)| (*id, nbrs.clone())).collect();
        broadcast(ctx.degree, &payload)
    }

    fn receive(
        &self,
        state: &mut Self::State,
        ctx: &NodeContext,
        inbox: &[Envelope<Self::Message>],
    ) -> Option<Self::Output> {
        for env in inbox {
            for (id, nbrs) in &env.payload {
                state.records.entry(*id).or_insert_with(|| nbrs.clone());
            }
        }
        if state.decided {
            return None;
        }
        let view = LocalView::from_records(ctx.identifier, &state.records, ctx.round);
        let decision = self.inner.decide(&view, &ctx.knowledge);
        if decision.is_some() {
            state.decided = true;
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ball_executor::BallExecutor;
    use crate::examples::NaiveLargestId;
    use crate::executor::SyncExecutor;
    use crate::knowledge::Knowledge;
    use avglocal_graph::{generators, Graph, IdAssignment};

    fn shuffled_cycle(n: usize, seed: u64) -> Graph {
        let mut g = generators::cycle(n).unwrap();
        IdAssignment::Shuffled { seed }.apply(&mut g).unwrap();
        g
    }

    #[test]
    fn adapter_rounds_equal_ball_radii_on_cycles() {
        for seed in 0..5u64 {
            let g = shuffled_cycle(17, seed);
            let ball_run = BallExecutor::new().run(&g, &NaiveLargestId, Knowledge::none()).unwrap();
            let round_run = SyncExecutor::new()
                .run(&g, &GatherAdapter::new(NaiveLargestId), Knowledge::none())
                .unwrap();
            assert!(round_run.is_complete());
            for v in g.nodes() {
                assert_eq!(round_run.decision_round(v), Some(ball_run.radius(v)), "node {v}");
                assert_eq!(round_run.output(v), Some(ball_run.output(v)), "node {v}");
            }
        }
    }

    #[test]
    fn adapter_rounds_equal_ball_radii_on_trees_and_grids() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut graphs = vec![
            generators::grid(4, 3).unwrap(),
            generators::star(7).unwrap(),
            generators::balanced_tree(2, 3).unwrap(),
        ];
        graphs.push(
            avglocal_graph::generators::random_tree(12, &mut StdRng::seed_from_u64(3)).unwrap(),
        );
        for mut g in graphs {
            IdAssignment::Shuffled { seed: 11 }.apply(&mut g).unwrap();
            let ball_run = BallExecutor::new().run(&g, &NaiveLargestId, Knowledge::none()).unwrap();
            let round_run = SyncExecutor::new()
                .run(&g, &GatherAdapter::new(NaiveLargestId), Knowledge::none())
                .unwrap();
            for v in g.nodes() {
                assert_eq!(round_run.decision_round(v), Some(ball_run.radius(v)));
            }
        }
    }

    #[test]
    fn into_inner_returns_wrapped_algorithm() {
        let adapter = GatherAdapter::new(NaiveLargestId);
        let _inner: NaiveLargestId = adapter.into_inner();
    }

    #[test]
    fn adapter_message_volume_is_positive() {
        let g = shuffled_cycle(9, 1);
        let run = SyncExecutor::new()
            .run(&g, &GatherAdapter::new(NaiveLargestId), Knowledge::none())
            .unwrap();
        assert!(run.messages_sent() > 0);
        assert!(run.rounds_executed() >= 1);
    }
}
