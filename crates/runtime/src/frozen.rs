//! A session executor that freezes the graph once and reuses everything.
//!
//! [`crate::BallExecutor::run_node`] freezes a fresh CSR snapshot and
//! allocates fresh grower buffers on every call, so a caller probing many
//! single nodes pays `O(n + m)` per probe before any ball is grown.
//! [`FrozenExecutor`] is the session counterpart: it owns the [`CsrGraph`]
//! and a pool of detached [`avglocal_graph::GrowerScratch`] buffers, so
//! after the first probe each [`FrozenExecutor::run_node`] costs only
//! `Θ(ball(v))` — the same bound the full-graph executor achieves per node —
//! and repeated [`FrozenExecutor::run`] calls hand the same warmed buffers
//! to the worker pool's participants.
//!
//! Experiment trials vary only the identifier assignment, never the
//! adjacency, so the session also supports swapping the identifier table in
//! `O(n)` via [`FrozenExecutor::set_identifiers`] instead of re-freezing.

use std::fmt;

use avglocal_graph::{CsrGraph, Graph, GraphError, Identifier, NodeId};
use rayon::prelude::*;

use crate::algorithm::BallAlgorithm;
use crate::ball_executor::{
    probe_node_on_csr_cancellable, BallExecution, BallExecutor, Scheduling,
};
use crate::error::{Result, RuntimeError};
use crate::knowledge::Knowledge;
use crate::scratch::ScratchPool;

/// Options of a single-node probe ([`FrozenExecutor::run_node_with`]): the
/// one probe path behind [`FrozenExecutor::run_node`] and
/// [`FrozenExecutor::run_node_with_cancel`], which are thin wrappers that
/// fill these in.
///
/// The default options probe to completion with no cancellation hook —
/// bit-identical to the historical `run_node`.
#[derive(Default)]
pub struct ProbeOptions<'c> {
    cancel: Option<&'c mut dyn FnMut(usize) -> bool>,
}

impl<'c> ProbeOptions<'c> {
    /// Options that probe to completion (no cancellation).
    #[must_use]
    pub fn new() -> Self {
        ProbeOptions::default()
    }

    /// Polls `cancel` cooperatively once per ball-growth step, with the
    /// radius the probe is about to inspect; a `true` return stops the probe
    /// with [`RuntimeError::Cancelled`]. A hook that never fires leaves the
    /// probe bit-identical to the hook-less options.
    #[must_use]
    pub fn with_cancel(mut self, cancel: &'c mut dyn FnMut(usize) -> bool) -> Self {
        self.cancel = Some(cancel);
        self
    }
}

impl fmt::Debug for ProbeOptions<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProbeOptions").field("cancel", &self.cancel.is_some()).finish()
    }
}

/// Options of a sharded multi-node probe ([`FrozenExecutor::run_nodes_with`]):
/// how the requested node set is distributed over the persistent pool, and an
/// optional shared cancellation hook polled by every participant.
#[derive(Clone, Copy)]
pub struct NodeBatchOptions<'c> {
    scheduling: Scheduling,
    shard: usize,
    cancel: Option<&'c (dyn Fn(usize) -> bool + Sync)>,
}

impl Default for NodeBatchOptions<'_> {
    fn default() -> Self {
        NodeBatchOptions { scheduling: Scheduling::default(), shard: 1, cancel: None }
    }
}

impl<'c> NodeBatchOptions<'c> {
    /// Per-node dynamic chunks on the work-stealing pool, no cancellation.
    #[must_use]
    pub fn new() -> Self {
        NodeBatchOptions::default()
    }

    /// How the shards are distributed over the threads (the same knob as
    /// [`BallExecutor::with_scheduling`]).
    #[must_use]
    pub fn with_scheduling(mut self, scheduling: Scheduling) -> Self {
        self.scheduling = scheduling;
        self
    }

    /// Nodes per dynamically claimed shard (minimum 1). Shards are
    /// contiguous runs of the requested node list; the pool's chunk cursor
    /// hands them out dynamically, so a shard with one expensive node stalls
    /// only itself. `1` (the default) is pure per-node scheduling.
    #[must_use]
    pub fn with_shard(mut self, shard: usize) -> Self {
        self.shard = shard.max(1);
        self
    }

    /// A shared cancellation hook, polled cooperatively by **every**
    /// participant once per ball-growth step — the batch-wide deadline seam
    /// of the service layer. Cancelled probes report
    /// [`RuntimeError::Cancelled`] in their result slot; completed slots are
    /// unaffected and stay bit-identical to an uncancelled run.
    #[must_use]
    pub fn with_cancel(mut self, cancel: &'c (dyn Fn(usize) -> bool + Sync)) -> Self {
        self.cancel = Some(cancel);
        self
    }
}

impl fmt::Debug for NodeBatchOptions<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeBatchOptions")
            .field("scheduling", &self.scheduling)
            .field("shard", &self.shard)
            .field("cancel", &self.cancel.is_some())
            .finish()
    }
}

/// A reusable execution session over one frozen graph snapshot.
///
/// # Examples
///
/// ```
/// use avglocal_graph::{generators, IdAssignment, NodeId};
/// use avglocal_runtime::{BallExecutor, FrozenExecutor, Knowledge};
/// use avglocal_runtime::examples::NaiveLargestId;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ring = generators::cycle(32)?;
/// IdAssignment::Shuffled { seed: 7 }.apply(&mut ring)?;
///
/// // Freeze once; every probe after the first is O(ball).
/// let session = FrozenExecutor::new(&ring);
/// for v in ring.nodes() {
///     let (out, r) = session.run_node(v, &NaiveLargestId, Knowledge::none())?;
///     let (expected_out, expected_r) =
///         BallExecutor::new().run_node(&ring, v, &NaiveLargestId, Knowledge::none())?;
///     assert_eq!((out, r), (expected_out, expected_r));
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FrozenExecutor {
    csr: CsrGraph,
    max_radius: Option<usize>,
    /// Warmed grower scratch buffers, shared by the single-node probes and
    /// (one per pool participant) the parallel full runs.
    scratch_pool: ScratchPool,
}

impl FrozenExecutor {
    /// Freezes `graph` and creates a session over the snapshot.
    #[must_use]
    pub fn new(graph: &Graph) -> Self {
        Self::from_csr(graph.freeze())
    }

    /// Creates a session over an already-frozen snapshot.
    #[must_use]
    pub fn from_csr(csr: CsrGraph) -> Self {
        FrozenExecutor { csr, max_radius: None, scratch_pool: ScratchPool::new() }
    }

    /// Refuses to grow balls beyond `max_radius`, like
    /// [`BallExecutor::with_max_radius`].
    #[must_use]
    pub fn with_max_radius(mut self, max_radius: usize) -> Self {
        self.max_radius = Some(max_radius);
        self
    }

    /// Number of nodes in the frozen snapshot.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.csr.node_count()
    }

    /// The frozen snapshot the session runs on.
    #[must_use]
    pub fn csr(&self) -> &CsrGraph {
        &self.csr
    }

    /// Replaces the snapshot's identifier table in `O(n)`, keeping the frozen
    /// adjacency — the per-trial operation of an identifier-assignment sweep.
    ///
    /// # Panics
    ///
    /// Panics when `identifiers` does not provide exactly one identifier per
    /// node. Callers handling untrusted table lengths should use
    /// [`FrozenExecutor::try_set_identifiers`] instead.
    pub fn set_identifiers(&mut self, identifiers: &[Identifier]) {
        self.csr.set_identifiers(identifiers);
    }

    /// Fallible counterpart of [`FrozenExecutor::set_identifiers`] for
    /// untrusted table lengths.
    ///
    /// # Errors
    ///
    /// Returns [`avglocal_graph::GraphError::AssignmentLengthMismatch`]
    /// (wrapped in [`crate::RuntimeError::Graph`], leaving the session
    /// unchanged) when `identifiers` does not provide exactly one identifier
    /// per node.
    pub fn try_set_identifiers(&mut self, identifiers: &[Identifier]) -> Result<()> {
        self.csr.try_set_identifiers(identifiers).map_err(crate::RuntimeError::Graph)
    }

    /// Runs `algorithm` for a single node under `options` and returns
    /// `(output, radius)` — **the** single-node probe path of the session.
    /// Takes `&self`, so concurrent queries can share one session behind an
    /// `Arc`; [`FrozenExecutor::run_node`] and
    /// [`FrozenExecutor::run_node_with_cancel`] are thin wrappers over this.
    ///
    /// Identical, probe for probe, to [`BallExecutor::run_node`], but the
    /// snapshot is frozen once per session and the grower buffers are reused
    /// across calls, so repeated probes cost `Θ(ball(v))` instead of
    /// `O(n + m + ball(v))`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BallExecutor::run_node`], plus
    /// [`crate::RuntimeError::Cancelled`] when the options' cancellation
    /// hook fires.
    pub fn run_node_with<A: BallAlgorithm>(
        &self,
        node: NodeId,
        algorithm: &A,
        knowledge: Knowledge,
        options: ProbeOptions<'_>,
    ) -> Result<(A::Output, usize)> {
        let hard_limit = self.max_radius.unwrap_or_else(|| self.csr.node_count());
        let mut never = |_: usize| false;
        let cancel = options.cancel.unwrap_or(&mut never);
        let mut pooled = self.scratch_pool.checkout();
        let (result, scratch) = probe_node_on_csr_cancellable(
            &self.csr,
            pooled.take(),
            node,
            algorithm,
            &knowledge,
            hard_limit,
            cancel,
        );
        pooled.put(scratch);
        result
    }

    /// [`FrozenExecutor::run_node_with`] with the default options (probe to
    /// completion, no cancellation hook).
    ///
    /// # Errors
    ///
    /// Same conditions as [`BallExecutor::run_node`].
    pub fn run_node<A: BallAlgorithm>(
        &self,
        node: NodeId,
        algorithm: &A,
        knowledge: Knowledge,
    ) -> Result<(A::Output, usize)> {
        self.run_node_with(node, algorithm, knowledge, ProbeOptions::new())
    }

    /// [`FrozenExecutor::run_node_with`] with a cancellation hook, polled
    /// cooperatively once per ball-growth step with the radius the probe is
    /// about to inspect.
    ///
    /// When the hook returns `true` the probe stops immediately with
    /// [`crate::RuntimeError::Cancelled`]; a hook that never fires makes the
    /// call bit-identical to [`FrozenExecutor::run_node`]. This is the
    /// single-query probe entry point of the service layer, which wires
    /// per-request deadline budgets into the hook.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FrozenExecutor::run_node`], plus
    /// [`crate::RuntimeError::Cancelled`] when the hook fires.
    pub fn run_node_with_cancel<A: BallAlgorithm>(
        &self,
        node: NodeId,
        algorithm: &A,
        knowledge: Knowledge,
        cancel: &mut dyn FnMut(usize) -> bool,
    ) -> Result<(A::Output, usize)> {
        self.run_node_with(node, algorithm, knowledge, ProbeOptions::new().with_cancel(cancel))
    }

    /// Probes an arbitrary **set** of nodes on the shared session, sharded
    /// across the persistent worker pool — the batched counterpart of
    /// [`FrozenExecutor::run_node_with`] and the probe engine of the service
    /// layer's `query_batch`.
    ///
    /// The node list is cut into contiguous shards of
    /// [`NodeBatchOptions::with_shard`] nodes; shards are claimed dynamically
    /// from the pool's atomic chunk cursor (or statically partitioned under
    /// [`Scheduling::StaticChunks`]), and each participant reuses one warmed
    /// [`avglocal_graph::GrowerScratch`] across every shard it claims — the
    /// same `run_frozen`-style scheduling and zero-steady-state-allocation
    /// discipline as the full runs.
    ///
    /// Returns one result per requested node, **index-addressed** (slot `i`
    /// answers `nodes[i]`), so results are deterministic by position no
    /// matter how shards are stolen: every completed slot is bit-identical
    /// to a sequential [`FrozenExecutor::run_node`] on the same snapshot.
    /// A shared cancellation hook ([`NodeBatchOptions::with_cancel`]) marks
    /// slots it interrupts with [`RuntimeError::Cancelled`]; out-of-bounds
    /// nodes report [`GraphError::NodeOutOfBounds`] in their slot without
    /// disturbing the others.
    #[must_use]
    pub fn run_nodes_with<A>(
        &self,
        nodes: &[NodeId],
        algorithm: &A,
        knowledge: Knowledge,
        options: &NodeBatchOptions<'_>,
    ) -> Vec<Result<(A::Output, usize)>>
    where
        A: BallAlgorithm + Sync,
        A::Output: Send,
    {
        if nodes.is_empty() {
            return Vec::new();
        }
        let hard_limit = self.max_radius.unwrap_or_else(|| self.csr.node_count());
        let node_count = self.csr.node_count();
        let shard = options.shard.max(1);
        let shards = nodes.len().div_ceil(shard);
        let probe_shard = |pooled: &mut crate::scratch::PooledScratch<'_>, s: usize| {
            let lo = s * shard;
            let hi = (lo + shard).min(nodes.len());
            nodes[lo..hi]
                .iter()
                .map(|&node| {
                    if node.index() >= node_count {
                        return Err(RuntimeError::Graph(GraphError::NodeOutOfBounds {
                            node,
                            node_count,
                        }));
                    }
                    let mut hook = |radius: usize| options.cancel.is_some_and(|c| c(radius));
                    let (result, scratch) = probe_node_on_csr_cancellable(
                        &self.csr,
                        pooled.take(),
                        node,
                        algorithm,
                        &knowledge,
                        hard_limit,
                        &mut hook,
                    );
                    pooled.put(scratch);
                    result
                })
                .collect::<Vec<_>>()
        };
        type ShardResults<O> = Vec<Vec<Result<(O, usize)>>>;
        let per_shard: ShardResults<A::Output> = match options.scheduling {
            Scheduling::WorkStealing => (0..shards)
                .into_par_iter()
                .map_init(|| self.scratch_pool.checkout(), probe_shard)
                .collect(),
            Scheduling::StaticChunks => rayon::pool::baseline::static_chunked(
                shards,
                rayon::current_num_threads(),
                || self.scratch_pool.checkout(),
                probe_shard,
            ),
        };
        // Shard `s` covers the contiguous slice `s*shard..`, so flattening
        // in shard order restores the request's node order exactly.
        per_shard.into_iter().flatten().collect()
    }

    /// Runs `algorithm` on every node of the snapshot, with the same dynamic
    /// scheduling and deterministic results as [`BallExecutor::run`] — minus
    /// the per-call freeze, and with the session's warmed scratch buffers
    /// handed to the pool participants (steady-state runs allocate a bounded
    /// handful of buffers per call, never per probe).
    ///
    /// # Errors
    ///
    /// Same conditions as [`BallExecutor::run`].
    pub fn run<A>(&self, algorithm: &A, knowledge: Knowledge) -> Result<BallExecution<A::Output>>
    where
        A: BallAlgorithm + Sync,
        A::Output: Send,
    {
        let executor = match self.max_radius {
            Some(limit) => BallExecutor::with_max_radius(limit),
            None => BallExecutor::new(),
        };
        executor.run_frozen_with_pool(&self.csr, algorithm, knowledge, &self.scratch_pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::NaiveLargestId;
    use crate::RuntimeError;
    use avglocal_graph::{generators, IdAssignment, Topology};

    #[test]
    fn session_matches_per_call_executor_on_all_topologies() {
        let topologies = [
            Topology::Cycle,
            Topology::Path,
            Topology::CompleteBinaryTree,
            Topology::Grid,
            Topology::Torus,
            Topology::gnp_connected(18, 3),
        ];
        for topology in topologies {
            let mut g = topology.build(18).unwrap();
            IdAssignment::Shuffled { seed: 11 }.apply(&mut g).unwrap();
            let session = FrozenExecutor::new(&g);
            for v in g.nodes() {
                let fresh = BallExecutor::new()
                    .run_node(&g, v, &NaiveLargestId, Knowledge::none())
                    .unwrap();
                let reused = session.run_node(v, &NaiveLargestId, Knowledge::none()).unwrap();
                assert_eq!(fresh, reused, "{topology}, node {v:?}");
            }
        }
    }

    #[test]
    fn session_full_run_matches_ball_executor() {
        let mut g = generators::grid(4, 5).unwrap();
        IdAssignment::Shuffled { seed: 2 }.apply(&mut g).unwrap();
        let session = FrozenExecutor::new(&g);
        let a = session.run(&NaiveLargestId, Knowledge::none()).unwrap();
        let b = BallExecutor::new().run(&g, &NaiveLargestId, Knowledge::none()).unwrap();
        assert_eq!(a.outputs(), b.outputs());
        assert_eq!(a.radii(), b.radii());
    }

    #[test]
    fn set_identifiers_reuses_the_adjacency() {
        let g = generators::cycle(12).unwrap();
        let mut session = FrozenExecutor::new(&g);
        for seed in 0u64..4 {
            let assignment = IdAssignment::Shuffled { seed };
            session.set_identifiers(&assignment.identifiers(12, 0));
            let mut fresh_graph = generators::cycle(12).unwrap();
            assignment.apply(&mut fresh_graph).unwrap();
            let expected =
                BallExecutor::new().run(&fresh_graph, &NaiveLargestId, Knowledge::none()).unwrap();
            let got = session.run(&NaiveLargestId, Knowledge::none()).unwrap();
            assert_eq!(expected.radii(), got.radii(), "seed {seed}");
            for v in fresh_graph.nodes() {
                let (out, r) = session.run_node(v, &NaiveLargestId, Knowledge::none()).unwrap();
                assert_eq!(out, *expected.output(v));
                assert_eq!(r, expected.radius(v));
            }
        }
    }

    #[test]
    fn try_set_identifiers_rejects_wrong_length_without_touching_the_session() {
        let g = generators::cycle(6).unwrap();
        let mut session = FrozenExecutor::new(&g);
        let err = session.try_set_identifiers(&IdAssignment::Identity.identifiers(3, 0));
        assert!(matches!(
            err,
            Err(RuntimeError::Graph(avglocal_graph::GraphError::AssignmentLengthMismatch {
                provided: 3,
                expected: 6,
            }))
        ));
        // The session still runs on its original identifier table.
        let run = session.run(&NaiveLargestId, Knowledge::none()).unwrap();
        assert_eq!(run.outputs().len(), 6);
    }

    #[test]
    fn never_firing_cancel_hook_is_bit_identical_to_run_node() {
        let mut g = generators::grid(4, 4).unwrap();
        IdAssignment::Shuffled { seed: 5 }.apply(&mut g).unwrap();
        let session = FrozenExecutor::new(&g);
        for v in g.nodes() {
            let plain = session.run_node(v, &NaiveLargestId, Knowledge::none()).unwrap();
            let cancellable = session
                .run_node_with_cancel(v, &NaiveLargestId, Knowledge::none(), &mut |_| false)
                .unwrap();
            assert_eq!(plain, cancellable, "node {v:?}");
        }
    }

    #[test]
    fn cancel_hook_sees_each_radius_once_and_stops_the_probe() {
        struct DecideAtRadius(usize);
        impl BallAlgorithm for DecideAtRadius {
            type Output = usize;
            fn decide(&self, view: &crate::LocalView, _knowledge: &Knowledge) -> Option<usize> {
                (view.radius() >= self.0).then_some(view.radius())
            }
        }
        let g = generators::cycle(40).unwrap();
        let session = FrozenExecutor::new(&g);
        let mut seen = Vec::new();
        let err = session
            .run_node_with_cancel(
                NodeId::new(0),
                &DecideAtRadius(10),
                Knowledge::none(),
                &mut |r| {
                    seen.push(r);
                    r >= 3
                },
            )
            .unwrap_err();
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert!(matches!(err, RuntimeError::Cancelled { radius: 3, .. }), "{err}");
    }

    #[test]
    fn immediate_cancellation_costs_no_growth() {
        // A deadline that is already expired on admission cancels at radius 0
        // before any ball is grown.
        let g = generators::cycle(8).unwrap();
        let session = FrozenExecutor::new(&g);
        let err = session
            .run_node_with_cancel(NodeId::new(2), &NaiveLargestId, Knowledge::none(), &mut |_| true)
            .unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::Cancelled { node, radius: 0 } if node == NodeId::new(2)
        ));
    }

    #[test]
    fn cancellable_probes_share_the_session_across_threads() {
        // &self probing: many threads query one session concurrently and each
        // gets the same answer as the sequential reference.
        let mut g = generators::grid(5, 5).unwrap();
        IdAssignment::Shuffled { seed: 9 }.apply(&mut g).unwrap();
        let session = FrozenExecutor::new(&g);
        let reference = session.run(&NaiveLargestId, Knowledge::none()).unwrap();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let session = &session;
                let reference = &reference;
                scope.spawn(move || {
                    for v in (t..25).step_by(4).map(NodeId::new) {
                        let (out, r) = session
                            .run_node_with_cancel(
                                v,
                                &NaiveLargestId,
                                Knowledge::none(),
                                &mut |_| false,
                            )
                            .unwrap();
                        assert_eq!(out, *reference.output(v));
                        assert_eq!(r, reference.radius(v));
                    }
                });
            }
        });
    }

    #[test]
    fn run_nodes_with_matches_single_probes_on_every_scheduling() {
        let mut g = generators::grid(4, 5).unwrap();
        IdAssignment::Shuffled { seed: 3 }.apply(&mut g).unwrap();
        let session = FrozenExecutor::new(&g);
        // An arbitrary, repetitive, out-of-order node set: slots must answer
        // positionally, duplicates included.
        let nodes: Vec<NodeId> = [7usize, 0, 19, 3, 3, 12, 8, 1, 19].map(NodeId::new).to_vec();
        for scheduling in [Scheduling::WorkStealing, Scheduling::StaticChunks] {
            for shard in [1usize, 2, 4, 64] {
                let options = NodeBatchOptions::new().with_scheduling(scheduling).with_shard(shard);
                let batch =
                    session.run_nodes_with(&nodes, &NaiveLargestId, Knowledge::none(), &options);
                assert_eq!(batch.len(), nodes.len());
                for (slot, &node) in batch.iter().zip(&nodes) {
                    let single =
                        session.run_node(node, &NaiveLargestId, Knowledge::none()).unwrap();
                    assert_eq!(
                        slot.as_ref().unwrap(),
                        &single,
                        "{scheduling:?} shard={shard} node {node:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn run_nodes_with_reports_out_of_bounds_per_slot() {
        let g = generators::cycle(6).unwrap();
        let session = FrozenExecutor::new(&g);
        let nodes = [NodeId::new(2), NodeId::new(6), NodeId::new(5)];
        let batch =
            session.run_nodes_with(&nodes, &NaiveLargestId, Knowledge::none(), &Default::default());
        assert!(batch[0].is_ok());
        assert!(matches!(
            batch[1],
            Err(RuntimeError::Graph(avglocal_graph::GraphError::NodeOutOfBounds {
                node_count: 6,
                ..
            }))
        ));
        assert!(batch[2].is_ok(), "a bad slot must not disturb its neighbours");
    }

    #[test]
    fn run_nodes_with_shared_cancel_marks_cancelled_slots_only() {
        let g = generators::cycle(40).unwrap();
        let session = FrozenExecutor::new(&g);
        let nodes: Vec<NodeId> = (0..40).map(NodeId::new).collect();
        // Cancel every probe before it can grow past radius 1: the cycle's
        // largest-ID losers decide at radius 1 and complete; deeper probes
        // are cancelled.
        let cancel = |radius: usize| radius >= 2;
        let options = NodeBatchOptions::new().with_cancel(&cancel);
        let batch = session.run_nodes_with(&nodes, &NaiveLargestId, Knowledge::none(), &options);
        let cancelled = batch
            .iter()
            .filter(|r| matches!(r, Err(RuntimeError::Cancelled { radius: 2, .. })))
            .count();
        let completed = batch.iter().filter(|r| r.is_ok()).count();
        assert_eq!(cancelled + completed, 40);
        assert!(cancelled >= 1, "the winner needs radius 20 and must be cancelled");
        // Completed slots are bit-identical to uncancelled single probes.
        for (slot, &node) in batch.iter().zip(&nodes) {
            if let Ok(got) = slot {
                let want = session.run_node(node, &NaiveLargestId, Knowledge::none()).unwrap();
                assert_eq!(*got, want);
            }
        }
    }

    #[test]
    fn run_nodes_with_empty_request_is_empty() {
        let g = generators::cycle(4).unwrap();
        let session = FrozenExecutor::new(&g);
        let batch: Vec<_> =
            session.run_nodes_with(&[], &NaiveLargestId, Knowledge::none(), &Default::default());
        assert!(batch.is_empty());
    }

    #[test]
    fn run_node_with_is_the_one_probe_path() {
        // The two public wrappers and the merged entry point agree bit for
        // bit, hook or no hook.
        let mut g = generators::cycle(24).unwrap();
        IdAssignment::Shuffled { seed: 8 }.apply(&mut g).unwrap();
        let session = FrozenExecutor::new(&g);
        for v in g.nodes() {
            let merged = session
                .run_node_with(v, &NaiveLargestId, Knowledge::none(), ProbeOptions::new())
                .unwrap();
            let plain = session.run_node(v, &NaiveLargestId, Knowledge::none()).unwrap();
            let mut hook = |_: usize| false;
            let cancellable = session
                .run_node_with_cancel(v, &NaiveLargestId, Knowledge::none(), &mut hook)
                .unwrap();
            assert_eq!(merged, plain);
            assert_eq!(merged, cancellable);
        }
    }

    #[test]
    fn max_radius_is_enforced_in_the_session() {
        struct DecideAtRadius(usize);
        impl BallAlgorithm for DecideAtRadius {
            type Output = usize;
            fn decide(&self, view: &crate::LocalView, _knowledge: &Knowledge) -> Option<usize> {
                (view.radius() >= self.0).then_some(view.radius())
            }
        }
        let g = generators::cycle(30).unwrap();
        let session = FrozenExecutor::new(&g).with_max_radius(3);
        let err =
            session.run_node(NodeId::new(0), &DecideAtRadius(10), Knowledge::none()).unwrap_err();
        assert!(matches!(err, RuntimeError::RoundLimitExceeded { limit: 3, .. }));
        let err = session.run(&DecideAtRadius(10), Knowledge::none()).unwrap_err();
        assert!(matches!(err, RuntimeError::RoundLimitExceeded { limit: 3, .. }));
    }
}
