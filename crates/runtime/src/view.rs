//! The local view an algorithm sees: identifiers only, no global names.
//!
//! [`LocalView`] is the runtime's representation of "the ball of radius `r`
//! around me" from the point of view of the node itself. Unlike
//! [`avglocal_graph::Ball`], which indexes nodes by their simulator-level
//! [`NodeId`]s, a `LocalView` is expressed purely in terms of the identifiers
//! and adjacency the node could actually have learnt through communication —
//! this is what keeps ball-view algorithms honest.
//!
//! The view is **lazy**: when it is backed by the incremental
//! [`BallGrower`], the `O(1)` queries the common algorithms ask at every
//! radius (centre identifier, running maximum, saturation, node count) are
//! answered straight from the grower's state, and the induced subgraph is
//! only materialised if an algorithm actually asks for it
//! ([`LocalView::graph`] and friends). This is what keeps the per-probe cost
//! of the ball executor proportional to the *growth* of the ball instead of
//! its size.

use std::cell::OnceCell;
use std::collections::BTreeMap;

use avglocal_graph::{traversal, Ball, BallGrower, Graph, Identifier, NodeId};

/// Everything a node knows after gathering a ball of some radius.
///
/// A `LocalView` can be produced in three ways that must agree (and are
/// tested to agree):
///
/// * by the ball executor, straight from the incremental grower
///   ([`LocalView::from_grower`]);
/// * from a materialised [`Ball`] extracted from the host graph
///   ([`LocalView::from_ball`]); or
/// * by the message-passing gather adapter, from the records flooded through
///   the network ([`LocalView::from_records`]).
///
/// # Examples
///
/// ```
/// use avglocal_graph::{generators, extract_ball, NodeId};
/// use avglocal_runtime::LocalView;
///
/// # fn main() -> Result<(), avglocal_graph::GraphError> {
/// let ring = generators::cycle(8)?;
/// let ball = extract_ball(&ring, NodeId::new(3), 2);
/// let view = LocalView::from_ball(&ball);
/// assert_eq!(view.radius(), 2);
/// assert_eq!(view.node_count(), 5);
/// assert!(!view.is_saturated());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LocalView<'a> {
    /// Radius the view was gathered at.
    radius: usize,
    /// Whether the view covers the centre's whole connected component.
    saturated: bool,
    backing: Backing<'a>,
}

/// Fully materialised view data: the reconstructed subgraph in local ids.
#[derive(Debug, Clone)]
struct OwnedView {
    /// Reconstructed subgraph; node ids are local to this view.
    graph: Graph,
    /// The centre node in the local graph.
    center: NodeId,
    /// Distance from the centre for every local node.
    distances: Vec<usize>,
}

#[derive(Debug, Clone)]
enum Backing<'a> {
    /// Eagerly materialised (from a [`Ball`] or from flooded records).
    Owned(OwnedView),
    /// Backed by the incremental grower; the subgraph is materialised only on
    /// first demand.
    Grower { grower: &'a BallGrower<'a>, materialized: OnceCell<OwnedView> },
}

impl OwnedView {
    fn from_ball(ball: &Ball) -> Self {
        let graph = ball.to_subgraph();
        let distances = ball
            .members()
            .iter()
            .map(|&v| ball.distance_to(v).expect("members always have a distance"))
            .collect();
        OwnedView { graph, center: NodeId::new(0), distances }
    }
}

impl<'a> LocalView<'a> {
    /// Builds a lazily materialised view of the grower's current ball.
    ///
    /// All `O(1)` queries (radius, saturation, centre identifier, maximum
    /// identifier, node count) are answered from the grower without copying;
    /// the induced subgraph is snapshotted only if asked for.
    #[must_use]
    pub fn from_grower(grower: &'a BallGrower<'a>) -> LocalView<'a> {
        LocalView {
            radius: grower.radius(),
            saturated: grower.is_saturated(),
            backing: Backing::Grower { grower, materialized: OnceCell::new() },
        }
    }

    /// Builds a view from a [`Ball`] extracted from the host graph.
    #[must_use]
    pub fn from_ball(ball: &Ball) -> LocalView<'static> {
        LocalView {
            radius: ball.radius(),
            saturated: ball.is_saturated(),
            backing: Backing::Owned(OwnedView::from_ball(ball)),
        }
    }

    /// Builds a view from flooded *records*.
    ///
    /// `records` maps the identifier of every node within distance `radius`
    /// of the centre to the identifiers of all of that node's neighbours
    /// (which may include identifiers outside the ball). This is exactly the
    /// information a node holds after `radius` rounds of full-information
    /// flooding.
    ///
    /// # Panics
    ///
    /// Panics if `center` is not among the record keys.
    #[must_use]
    pub fn from_records(
        center: Identifier,
        records: &BTreeMap<Identifier, Vec<Identifier>>,
        radius: usize,
    ) -> LocalView<'static> {
        assert!(records.contains_key(&center), "the centre must have a record of itself");
        let mut graph = Graph::with_capacity(records.len());
        let mut local_of: BTreeMap<Identifier, NodeId> = BTreeMap::new();
        for id in records.keys() {
            local_of.insert(*id, graph.add_node(*id));
        }
        // Edges: those with both endpoints inside the ball. Each such edge
        // appears in at least one endpoint's record.
        for (id, neighbors) in records {
            let u = local_of[id];
            for nbr in neighbors {
                if let Some(&v) = local_of.get(nbr) {
                    if !graph.contains_edge(u, v) {
                        graph.add_edge(u, v).expect("records describe a simple graph");
                    }
                }
            }
        }
        // Saturated iff no record mentions an identifier outside the ball.
        let saturated = records.values().all(|nbrs| nbrs.iter().all(|id| records.contains_key(id)));
        let center_local = local_of[&center];
        let bfs = traversal::bfs(&graph, center_local);
        let distances = graph.nodes().map(|v| bfs.distance(v).unwrap_or(usize::MAX)).collect();
        LocalView {
            radius,
            saturated,
            backing: Backing::Owned(OwnedView { graph, center: center_local, distances }),
        }
    }

    /// The materialised view data, built on first demand for grower-backed
    /// views.
    fn owned(&self) -> &OwnedView {
        match &self.backing {
            Backing::Owned(owned) => owned,
            Backing::Grower { grower, materialized } => {
                materialized.get_or_init(|| OwnedView::from_ball(&grower.snapshot_ball()))
            }
        }
    }

    /// The reconstructed subgraph (local node ids, original identifiers).
    ///
    /// For grower-backed views this materialises the induced subgraph on
    /// first call; the cheap queries below never do.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.owned().graph
    }

    /// The centre node, in local ids.
    #[must_use]
    pub fn center(&self) -> NodeId {
        match &self.backing {
            Backing::Owned(owned) => owned.center,
            // Grower snapshots list the centre first.
            Backing::Grower { .. } => NodeId::new(0),
        }
    }

    /// Identifier of the centre node.
    #[must_use]
    pub fn center_identifier(&self) -> Identifier {
        match &self.backing {
            Backing::Owned(owned) => owned.graph.identifier(owned.center),
            Backing::Grower { grower, .. } => grower.center_identifier(),
        }
    }

    /// Degree of the centre node *inside the view*.
    #[must_use]
    pub fn center_degree(&self) -> usize {
        match &self.backing {
            Backing::Owned(owned) => owned.graph.degree(owned.center),
            Backing::Grower { grower, .. } => {
                // At radius 0 the induced subgraph is the lone centre; from
                // radius 1 on, every host neighbour is inside the ball.
                if self.radius == 0 {
                    0
                } else {
                    grower.center_host_degree()
                }
            }
        }
    }

    /// Radius the view was gathered at.
    #[must_use]
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Number of nodes visible in the view.
    #[must_use]
    pub fn node_count(&self) -> usize {
        match &self.backing {
            Backing::Owned(owned) => owned.graph.node_count(),
            Backing::Grower { grower, .. } => grower.node_count(),
        }
    }

    /// Whether the view covers the whole connected component of the centre,
    /// i.e. growing the radius further cannot reveal anything new.
    #[must_use]
    pub fn is_saturated(&self) -> bool {
        self.saturated
    }

    /// Distance from the centre of the local node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a node of the view.
    #[must_use]
    pub fn distance_of(&self, v: NodeId) -> usize {
        match &self.backing {
            Backing::Owned(owned) => owned.distances[v.index()],
            Backing::Grower { grower, .. } => grower.distance_of_index(v.index()),
        }
    }

    /// All identifiers visible in the view, in ascending order.
    #[must_use]
    pub fn sorted_identifiers(&self) -> Vec<Identifier> {
        let mut ids: Vec<Identifier> = match &self.backing {
            Backing::Owned(owned) => owned.graph.identifiers().collect(),
            Backing::Grower { grower, .. } => grower.identifiers().to_vec(),
        };
        ids.sort_unstable();
        ids
    }

    /// The largest identifier visible in the view.
    ///
    /// `O(1)` on grower-backed views — the grower maintains the running
    /// maximum, which is all the largest-ID algorithm ever needs.
    #[must_use]
    pub fn max_identifier(&self) -> Identifier {
        match &self.backing {
            Backing::Owned(owned) => {
                owned.graph.identifiers().max().expect("a view always contains its centre")
            }
            Backing::Grower { grower, .. } => grower.max_identifier(),
        }
    }

    /// Returns `true` when the centre's identifier is the maximum of all
    /// identifiers visible in the view.
    #[must_use]
    pub fn center_has_max_identifier(&self) -> bool {
        self.center_identifier() == self.max_identifier()
    }

    /// Returns `true` when `id` is visible in the view.
    #[must_use]
    pub fn contains_identifier(&self, id: Identifier) -> bool {
        match &self.backing {
            Backing::Owned(owned) => owned.graph.node_by_identifier(id).is_some(),
            Backing::Grower { grower, .. } => grower.identifiers().contains(&id),
        }
    }

    /// Identifiers of the nodes at exactly distance `d` from the centre.
    #[must_use]
    pub fn identifiers_at_distance(&self, d: usize) -> Vec<Identifier> {
        let mut ids: Vec<Identifier> = match &self.backing {
            Backing::Owned(owned) => owned
                .graph
                .nodes()
                .filter(|v| owned.distances[v.index()] == d)
                .map(|v| owned.graph.identifier(v))
                .collect(),
            Backing::Grower { grower, .. } => grower.ring_identifiers(d).to_vec(),
        };
        ids.sort_unstable();
        ids
    }

    /// Walks away from the centre along one of its incident edges without
    /// backtracking and returns the identifiers encountered, in order of
    /// increasing distance.
    ///
    /// `direction` indexes the centre's neighbours in port order. The walk is
    /// only defined when the nodes traversed have degree at most 2 (paths and
    /// cycles), which is the paper's setting; it stops at the edge of the
    /// view, at an endpoint, or when it wraps back to the centre.
    ///
    /// # Panics
    ///
    /// Panics if `direction >= self.center_degree()` or if the walk reaches a
    /// node of degree greater than 2.
    #[must_use]
    pub fn arm_identifiers(&self, direction: usize) -> Vec<Identifier> {
        let owned = self.owned();
        let first = owned.graph.neighbors(owned.center)[direction];
        avglocal_graph::arm(
            &owned.graph,
            owned.center,
            first,
            self.radius.max(owned.graph.node_count()),
        )
        .into_iter()
        .map(|v| owned.graph.identifier(v))
        .collect()
    }

    /// A canonical fingerprint of the view: (centre id, radius, saturation,
    /// sorted identifiers at each distance). Two views with the same
    /// fingerprint are indistinguishable to any deterministic algorithm that
    /// treats the topology up to isomorphism fixing the centre.
    #[must_use]
    pub fn fingerprint(&self) -> (Identifier, usize, bool, Vec<Vec<Identifier>>) {
        let max_d = match &self.backing {
            Backing::Owned(owned) => {
                owned.distances.iter().copied().filter(|&d| d != usize::MAX).max().unwrap_or(0)
            }
            Backing::Grower { grower, .. } => (0..=self.radius)
                .rev()
                .find(|&d| !grower.ring_identifiers(d).is_empty())
                .unwrap_or(0),
        };
        let by_distance = (0..=max_d).map(|d| self.identifiers_at_distance(d)).collect();
        (self.center_identifier(), self.radius, self.saturated, by_distance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avglocal_graph::{extract_ball, generators, IdAssignment};

    fn ring_view(n: usize, center: usize, radius: usize) -> LocalView<'static> {
        let g = generators::cycle(n).unwrap();
        LocalView::from_ball(&extract_ball(&g, NodeId::new(center), radius))
    }

    #[test]
    fn from_ball_basic_properties() {
        let v = ring_view(10, 0, 3);
        assert_eq!(v.radius(), 3);
        assert_eq!(v.node_count(), 7);
        assert_eq!(v.center_identifier(), Identifier::new(0));
        assert_eq!(v.center_degree(), 2);
        assert!(!v.is_saturated());
        assert_eq!(v.distance_of(v.center()), 0);
    }

    #[test]
    fn saturation_when_ball_covers_cycle() {
        let v = ring_view(7, 2, 3);
        assert!(v.is_saturated());
        assert_eq!(v.node_count(), 7);
    }

    #[test]
    fn max_identifier_queries() {
        let mut g = generators::cycle(8).unwrap();
        IdAssignment::Reversed.apply(&mut g).unwrap();
        let view = LocalView::from_ball(&extract_ball(&g, NodeId::new(0), 2));
        // Node 0 carries identifier 7, the global maximum.
        assert!(view.center_has_max_identifier());
        assert_eq!(view.max_identifier(), Identifier::new(7));
        assert!(view.contains_identifier(Identifier::new(6)));
        assert!(!view.contains_identifier(Identifier::new(3)));
    }

    #[test]
    fn identifiers_at_distance_on_ring() {
        let v = ring_view(12, 4, 2);
        assert_eq!(v.identifiers_at_distance(0), vec![Identifier::new(4)]);
        assert_eq!(v.identifiers_at_distance(1), vec![Identifier::new(3), Identifier::new(5)]);
        assert_eq!(v.identifiers_at_distance(2), vec![Identifier::new(2), Identifier::new(6)]);
        assert!(v.identifiers_at_distance(3).is_empty());
    }

    #[test]
    fn arms_walk_both_directions() {
        let v = ring_view(12, 4, 3);
        let a = v.arm_identifiers(0);
        let b = v.arm_identifiers(1);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 3);
        // The two arms are disjoint and together cover every non-centre node.
        let mut all: Vec<Identifier> = a.iter().chain(b.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn from_records_matches_from_ball_fingerprint() {
        let g = generators::cycle(9).unwrap();
        for center in 0..9usize {
            for radius in 0..6usize {
                let ball = extract_ball(&g, NodeId::new(center), radius);
                let via_ball = LocalView::from_ball(&ball);

                // Build the records a node would hold after `radius` rounds of
                // flooding: every member's identifier mapped to its full
                // neighbour identifier list in the host graph.
                let mut records = BTreeMap::new();
                for &m in ball.members() {
                    let nbrs = g.neighbors(m).iter().map(|&u| g.identifier(u)).collect();
                    records.insert(g.identifier(m), nbrs);
                }
                let via_records =
                    LocalView::from_records(g.identifier(NodeId::new(center)), &records, radius);

                assert_eq!(via_ball.fingerprint(), via_records.fingerprint());
                assert_eq!(via_ball.is_saturated(), via_records.is_saturated());
            }
        }
    }

    #[test]
    fn from_grower_matches_from_ball_exactly() {
        let mut g = generators::cycle(10).unwrap();
        IdAssignment::Shuffled { seed: 4 }.apply(&mut g).unwrap();
        let csr = g.freeze();
        for center in 0..10usize {
            let mut grower = avglocal_graph::BallGrower::new(&csr, NodeId::new(center));
            for radius in 0..7usize {
                if radius > 0 {
                    grower.grow();
                }
                let lazy = LocalView::from_grower(&grower);
                let eager = LocalView::from_ball(&extract_ball(&g, NodeId::new(center), radius));
                assert_eq!(lazy.fingerprint(), eager.fingerprint());
                assert_eq!(lazy.node_count(), eager.node_count());
                assert_eq!(lazy.center_degree(), eager.center_degree());
                assert_eq!(lazy.max_identifier(), eager.max_identifier());
                assert_eq!(lazy.center(), eager.center());
                assert_eq!(lazy.sorted_identifiers(), eager.sorted_identifiers());
                // Materialisation on demand agrees too.
                assert_eq!(lazy.graph(), eager.graph());
                for v in lazy.graph().nodes() {
                    assert_eq!(lazy.distance_of(v), eager.distance_of(v));
                }
            }
        }
    }

    #[test]
    fn grower_backed_arm_walks() {
        let g = generators::cycle(9).unwrap();
        let csr = g.freeze();
        let mut grower = avglocal_graph::BallGrower::new(&csr, NodeId::new(4));
        grower.grow();
        grower.grow();
        let lazy = LocalView::from_grower(&grower);
        let eager = LocalView::from_ball(&extract_ball(&g, NodeId::new(4), 2));
        assert_eq!(lazy.arm_identifiers(0), eager.arm_identifiers(0));
        assert_eq!(lazy.arm_identifiers(1), eager.arm_identifiers(1));
    }

    #[test]
    fn from_records_detects_saturation() {
        let g = generators::cycle(5).unwrap();
        let mut records = BTreeMap::new();
        for v in g.nodes() {
            records
                .insert(g.identifier(v), g.neighbors(v).iter().map(|&u| g.identifier(u)).collect());
        }
        let view = LocalView::from_records(Identifier::new(2), &records, 2);
        assert!(view.is_saturated());
        assert_eq!(view.node_count(), 5);
    }

    #[test]
    fn sorted_identifiers_are_sorted() {
        let v = ring_view(10, 5, 2);
        let ids = v.sorted_identifiers();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(ids.len(), 5);
    }

    #[test]
    #[should_panic(expected = "centre must have a record")]
    fn from_records_requires_center_record() {
        let records = BTreeMap::new();
        let _ = LocalView::from_records(Identifier::new(0), &records, 1);
    }
}
