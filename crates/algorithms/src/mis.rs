//! Maximal independent set on the oriented ring, derived from 3-colouring.
//!
//! The standard pipeline: 3-colour the ring with Cole–Vishkin, then let the
//! colour classes join the independent set greedily, one class per round.
//! Every step is local, so the whole algorithm runs in `O(log* n)` rounds —
//! another problem for which the new average measure cannot asymptotically
//! beat the classical one (by the paper's Theorem 1 and the reduction from
//! colouring to MIS on the ring).

use avglocal_runtime::{broadcast, Envelope, NodeContext, RoundAlgorithm};

use crate::cole_vishkin::{cv_iterations_for_knowledge, RingOrientation};
use crate::three_coloring::{ThreeColorRing, ThreeColorState};

/// Messages exchanged by [`MisRing`]: colours during the colouring phase,
/// membership announcements afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MisMessage {
    /// Current Cole–Vishkin colour.
    Color(u64),
    /// Whether the sender has already joined the independent set.
    Joined(bool),
}

/// Per-node state of [`MisRing`].
#[derive(Debug, Clone)]
pub struct MisState {
    coloring: ThreeColorState,
    final_color: Option<u64>,
    joined: Option<bool>,
    neighbor_joined: bool,
}

/// Maximal independent set on an oriented ring via 3-colouring.
///
/// Phase 1 runs the full [`ThreeColorRing`] pipeline; phase 2 spends one
/// round per colour class (0, then 1, then 2): a node of the active class
/// joins the set iff none of its neighbours joined earlier. Nodes therefore
/// decide at slightly different rounds depending on their colour.
#[derive(Debug, Clone)]
pub struct MisRing {
    coloring: ThreeColorRing,
}

impl MisRing {
    /// Creates the algorithm for a ring with the given orientation.
    #[must_use]
    pub fn new(orientation: RingOrientation) -> Self {
        MisRing { coloring: ThreeColorRing::new(orientation) }
    }

    /// Number of rounds of the colouring phase under `knowledge`.
    fn coloring_rounds(knowledge: &avglocal_runtime::Knowledge) -> usize {
        cv_iterations_for_knowledge(knowledge) + 3
    }
}

impl RoundAlgorithm for MisRing {
    type Message = MisMessage;
    type Output = bool;
    type State = MisState;

    fn name(&self) -> &str {
        "mis-ring"
    }

    fn init(&self, ctx: &NodeContext) -> Self::State {
        MisState {
            coloring: self.coloring.init(ctx),
            final_color: None,
            joined: None,
            neighbor_joined: false,
        }
    }

    fn send(&self, state: &Self::State, ctx: &NodeContext) -> Vec<Envelope<Self::Message>> {
        match state.final_color {
            None => self
                .coloring
                .send(&state.coloring, ctx)
                .into_iter()
                .map(|env| Envelope::new(env.port, MisMessage::Color(env.payload)))
                .collect(),
            Some(_) => broadcast(ctx.degree, &MisMessage::Joined(state.joined == Some(true))),
        }
    }

    fn receive(
        &self,
        state: &mut Self::State,
        ctx: &NodeContext,
        inbox: &[Envelope<Self::Message>],
    ) -> Option<Self::Output> {
        let coloring_rounds = Self::coloring_rounds(&ctx.knowledge);
        if ctx.round <= coloring_rounds {
            let color_inbox: Vec<Envelope<u64>> = inbox
                .iter()
                .filter_map(|env| match env.payload {
                    MisMessage::Color(c) => Some(Envelope::new(env.port, c)),
                    MisMessage::Joined(_) => None,
                })
                .collect();
            if let Some(color) = self.coloring.receive(&mut state.coloring, ctx, &color_inbox) {
                state.final_color = Some(color);
            }
            return None;
        }
        // MIS phase: one round per colour class, in order 0, 1, 2.
        for env in inbox {
            if env.payload == MisMessage::Joined(true) {
                state.neighbor_joined = true;
            }
        }
        let active_class = (ctx.round - coloring_rounds - 1) as u64;
        if state.joined.is_none() && state.final_color == Some(active_class) {
            let join = !state.neighbor_joined;
            state.joined = Some(join);
            return Some(join);
        }
        None
    }
}

/// Convenience: runs [`MisRing`] on a cycle graph and returns the membership
/// vector in node order.
///
/// # Errors
///
/// Returns an error when the graph is not a single cycle or the execution
/// fails.
pub fn run_mis(graph: &avglocal_graph::Graph) -> Result<Vec<bool>, avglocal_runtime::RuntimeError> {
    let orientation = RingOrientation::trace(graph)?;
    let algo = MisRing::new(orientation);
    let run = avglocal_runtime::SyncExecutor::new().run(
        graph,
        &algo,
        avglocal_runtime::Knowledge::none(),
    )?;
    Ok(run.outputs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use avglocal_graph::{generators, Graph, IdAssignment};
    use avglocal_runtime::{Knowledge, SyncExecutor};

    fn ring(n: usize, seed: u64) -> Graph {
        let mut g = generators::cycle(n).unwrap();
        IdAssignment::Shuffled { seed }.apply(&mut g).unwrap();
        g
    }

    #[test]
    fn mis_is_valid_on_random_rings() {
        for n in [3usize, 4, 5, 7, 16, 33, 90] {
            for seed in 0..3u64 {
                let g = ring(n, seed);
                let in_set = run_mis(&g).unwrap();
                assert!(
                    verify::is_maximal_independent_set(&g, &in_set),
                    "n={n} seed={seed} set={in_set:?}"
                );
            }
        }
    }

    #[test]
    fn mis_is_valid_on_structured_rings() {
        for assignment in [IdAssignment::Identity, IdAssignment::Reversed] {
            let mut g = generators::cycle(30).unwrap();
            assignment.apply(&mut g).unwrap();
            let in_set = run_mis(&g).unwrap();
            assert!(verify::is_maximal_independent_set(&g, &in_set));
        }
    }

    #[test]
    fn decision_rounds_depend_on_color_class() {
        let g = ring(24, 4);
        let orientation = RingOrientation::trace(&g).unwrap();
        let run =
            SyncExecutor::new().run(&g, &MisRing::new(orientation), Knowledge::none()).unwrap();
        let rounds = run.decision_rounds();
        // Colouring takes 7 rounds; classes decide at rounds 8, 9, 10.
        assert!(rounds.iter().all(|&r| (8..=10).contains(&r)), "{rounds:?}");
        assert!(rounds.contains(&8));
        assert!(verify::is_maximal_independent_set(&g, &run.outputs()));
    }

    #[test]
    fn mis_rejects_non_cycles() {
        let g = generators::star(5).unwrap();
        assert!(run_mis(&g).is_err());
    }

    #[test]
    fn mis_members_are_not_too_sparse() {
        // On a cycle a maximal independent set has at least n/3 members.
        let g = ring(60, 11);
        let in_set = run_mis(&g).unwrap();
        let size = in_set.iter().filter(|&&b| b).count();
        assert!(size >= 20, "MIS of size {size} on C_60");
        assert!(size <= 30);
    }
}
