//! The Section 3 adversarial construction: building an identifier permutation
//! with a large *average* radius out of many hard slices.
//!
//! The paper proves Theorem 1 by repeatedly taking an identifier arrangement
//! in which some vertex needs a large radius, cutting out the ball of radius
//! `½·log*(n/2)` around that vertex, and concatenating the slices into a new
//! permutation `π`. Each slice centre keeps its hard neighbourhood (and hence
//! its large radius), and by the regularity lemma (Lemma 3) the vertices near
//! it cannot be much cheaper, so the *average* radius over `π` stays
//! `Ω(log* n)`.
//!
//! This module implements the constructive part of that argument as an
//! executable procedure driven by a *radius oracle* — any function that, given
//! an identifier arrangement around a cycle, reports every node's radius
//! under the algorithm being attacked.

use avglocal_graph::{generators, Graph, IdAssignment, Identifier};
use avglocal_runtime::{BallAlgorithm, BallExecutor, Knowledge};

/// A function that, given the identifier arrangement of a cycle (position
/// `i` holds identifier `arrangement[i]`), returns the per-node radii of the
/// algorithm under attack.
pub type RadiusOracle<'a> = dyn Fn(&[u64]) -> Vec<usize> + 'a;

/// Builds a radius oracle for a [`BallAlgorithm`] by materialising each
/// candidate arrangement as a cycle graph and running the ball executor.
///
/// The oracle panics if the executor fails (which only happens for algorithms
/// that refuse to terminate on a saturated view).
pub fn ball_radius_oracle<A>(algorithm: A) -> impl Fn(&[u64]) -> Vec<usize>
where
    A: BallAlgorithm + Sync,
    A::Output: Send,
{
    move |arrangement: &[u64]| {
        let graph = cycle_with_arrangement(arrangement);
        BallExecutor::new()
            .run(&graph, &algorithm, Knowledge::none())
            .expect("radius oracle: the algorithm must terminate on every cycle")
            .radii()
            .to_vec()
    }
}

/// Builds the cycle graph whose position `i` carries identifier
/// `arrangement[i]`.
///
/// # Panics
///
/// Panics if the arrangement has fewer than 3 entries or repeats an
/// identifier.
#[must_use]
pub fn cycle_with_arrangement(arrangement: &[u64]) -> Graph {
    let mut graph = generators::cycle(arrangement.len()).expect("cycles need at least 3 nodes");
    let ids: Vec<Identifier> = arrangement.iter().map(|&x| Identifier::new(x)).collect();
    graph.set_all_identifiers(&ids).expect("arrangement must consist of distinct identifiers");
    graph
}

/// Parameters of the Section 3 construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceConstruction {
    /// Ring size `n`.
    pub n: usize,
    /// Slice radius `t` (the paper uses `½·log*(n/2)`): each extracted slice
    /// contains `2t + 1` identifiers.
    pub slice_radius: usize,
}

impl SliceConstruction {
    /// Creates the construction for an `n`-cycle with the given slice radius.
    #[must_use]
    pub fn new(n: usize, slice_radius: usize) -> Self {
        SliceConstruction { n, slice_radius }
    }

    /// Runs the construction and returns the adversarial arrangement: a
    /// permutation of `0..n` laid out around the cycle (position `i` gets
    /// identifier `result[i]`).
    ///
    /// Following the paper:
    ///
    /// 1. start from the natural arrangement of the remaining identifiers;
    /// 2. while at least `n/2` identifiers remain (and a full slice still
    ///    fits), query the oracle, find a vertex of maximum radius, cut out
    ///    the `2t+1` identifiers of its slice and append them to `π`;
    /// 3. append whatever remains.
    ///
    /// The resulting arrangement packs many hard neighbourhoods next to each
    /// other, which is exactly what makes the *average* radius large.
    #[must_use]
    pub fn build(&self, oracle: &RadiusOracle<'_>) -> Vec<u64> {
        let slice_len = 2 * self.slice_radius + 1;
        let mut remaining: Vec<u64> = (0..self.n as u64).collect();
        let mut pi: Vec<u64> = Vec::with_capacity(self.n);
        while remaining.len() >= (self.n / 2).max(3)
            && remaining.len() >= slice_len
            && remaining.len() - slice_len >= 3
        {
            let radii = oracle(&remaining);
            assert_eq!(radii.len(), remaining.len(), "oracle must report one radius per node");
            let center = radii
                .iter()
                .enumerate()
                .max_by_key(|(_, &r)| r)
                .map(|(i, _)| i)
                .expect("remaining arrangement is non-empty");
            let len = remaining.len();
            // Extract the window of slice_len identifiers centred at `center`,
            // wrapping around the cycle.
            let start = (center + len - self.slice_radius) % len;
            let window: Vec<usize> = (0..slice_len).map(|k| (start + k) % len).collect();
            for &idx in &window {
                pi.push(remaining[idx]);
            }
            // Remove the window, preserving the cyclic order of the rest.
            let mut keep: Vec<u64> = Vec::with_capacity(len - slice_len);
            let mut idx = (start + slice_len) % len;
            while idx != start {
                keep.push(remaining[idx]);
                idx = (idx + 1) % len;
            }
            remaining = keep;
        }
        pi.extend(remaining);
        pi
    }

    /// Convenience: runs the construction and wraps the result in an
    /// [`IdAssignment`] ready to be applied to an `n`-cycle.
    ///
    /// # Panics
    ///
    /// Panics if the construction somehow fails to produce a permutation
    /// (which would indicate a bug in the oracle).
    #[must_use]
    pub fn build_assignment(&self, oracle: &RadiusOracle<'_>) -> IdAssignment {
        let arrangement = self.build(oracle);
        IdAssignment::from_vec(arrangement.iter().map(|&x| x as usize).collect())
            .expect("the slice construction always yields a permutation")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LandmarkColoring, LargestId};

    #[test]
    fn cycle_with_arrangement_places_identifiers() {
        let g = cycle_with_arrangement(&[5, 3, 9, 0]);
        assert_eq!(g.node_count(), 4);
        let ids: Vec<u64> = g.identifiers().map(|id| id.value()).collect();
        assert_eq!(ids, vec![5, 3, 9, 0]);
    }

    #[test]
    fn construction_returns_a_permutation() {
        let oracle = ball_radius_oracle(LargestId);
        for n in [12usize, 20, 33] {
            for t in [1usize, 2, 3] {
                let construction = SliceConstruction::new(n, t);
                let pi = construction.build(&oracle);
                let mut sorted = pi.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..n as u64).collect::<Vec<_>>(), "n={n} t={t}");
            }
        }
    }

    #[test]
    fn construction_produces_an_applicable_assignment() {
        let oracle = ball_radius_oracle(LargestId);
        let construction = SliceConstruction::new(16, 2);
        let assignment = construction.build_assignment(&oracle);
        let mut g = generators::cycle(16).unwrap();
        assignment.apply(&mut g).unwrap();
        assert!(g.has_unique_identifiers());
    }

    #[test]
    fn construction_does_not_decrease_average_radius_for_landmark_coloring() {
        // The slice construction packs hard neighbourhoods together; for the
        // landmark colouring its average radius should be at least the
        // random-assignment average.
        let n = 64usize;
        let oracle = ball_radius_oracle(LandmarkColoring);
        let construction = SliceConstruction::new(n, 3);
        let adversarial = construction.build(&oracle);
        let adversarial_radii = oracle(&adversarial);
        let adversarial_avg =
            adversarial_radii.iter().sum::<usize>() as f64 / adversarial_radii.len() as f64;

        let mut random_avgs = Vec::new();
        for seed in 0..5u64 {
            let mut g = generators::cycle(n).unwrap();
            IdAssignment::Shuffled { seed }.apply(&mut g).unwrap();
            let arrangement: Vec<u64> = g.identifiers().map(|id| id.value()).collect();
            let radii = oracle(&arrangement);
            random_avgs.push(radii.iter().sum::<usize>() as f64 / radii.len() as f64);
        }
        let random_mean = random_avgs.iter().sum::<f64>() / random_avgs.len() as f64;
        assert!(
            adversarial_avg >= random_mean * 0.9,
            "adversarial {adversarial_avg} vs random {random_mean}"
        );
    }

    #[test]
    fn slice_radius_zero_still_yields_permutation() {
        let oracle = ball_radius_oracle(LargestId);
        let pi = SliceConstruction::new(10, 0).build(&oracle);
        let mut sorted = pi.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10u64).collect::<Vec<_>>());
    }
}
