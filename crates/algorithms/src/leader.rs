//! Leader election variants built on the largest-ID problem.
//!
//! The paper's Section 2 problem (largest ID) is "a classic way to elect a
//! leader": each node only announces whether *it* is the leader. A strictly
//! harder variant — every node must output *who* the leader is — is also
//! provided, because it is a natural example of a problem where the average
//! radius cannot beat the worst case: no node can name the leader before
//! seeing the entire graph. Together the two variants illustrate the paper's
//! concluding question about which problems admit an average/worst-case gap.

use avglocal_graph::{Graph, Identifier, NodeId};
use avglocal_runtime::{BallAlgorithm, BallExecution, BallExecutor, Knowledge, LocalView, Result};

use crate::largest_id::LargestId;

/// Every node outputs the identifier of the leader (the global maximum).
///
/// A node can only be certain about the global maximum once it has seen its
/// whole connected component, so every node's radius equals the saturation
/// radius — the average equals the worst case, in sharp contrast with
/// [`LargestId`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KnowTheLeader;

impl BallAlgorithm for KnowTheLeader {
    type Output = Identifier;

    fn name(&self) -> &str {
        "know-the-leader"
    }

    fn decide(&self, view: &LocalView, _knowledge: &Knowledge) -> Option<Identifier> {
        view.is_saturated().then(|| view.max_identifier())
    }
}

/// Result of a leader election: the elected node and the execution that
/// produced it.
#[derive(Debug, Clone)]
pub struct Election {
    /// The node elected as leader (the one carrying the maximum identifier).
    pub leader: NodeId,
    /// The underlying largest-ID execution (per-node outputs and radii).
    pub execution: BallExecution<bool>,
}

/// Elects a leader on `graph` by running the largest-ID algorithm.
///
/// # Errors
///
/// Propagates executor errors.
pub fn elect_leader(graph: &Graph) -> Result<Election> {
    let execution = BallExecutor::new().run(graph, &LargestId, Knowledge::none())?;
    let leader = graph
        .nodes()
        .find(|&v| *execution.output(v))
        .expect("largest-ID always elects exactly one leader on a graph with distinct identifiers");
    Ok(Election { leader, execution })
}

#[cfg(test)]
mod tests {
    use super::*;
    use avglocal_graph::{generators, IdAssignment};

    fn ring(n: usize, seed: u64) -> Graph {
        let mut g = generators::cycle(n).unwrap();
        IdAssignment::Shuffled { seed }.apply(&mut g).unwrap();
        g
    }

    #[test]
    fn elected_leader_has_maximum_identifier() {
        let g = ring(15, 3);
        let election = elect_leader(&g).unwrap();
        assert_eq!(Some(election.leader), g.max_identifier_node());
        assert!(*election.execution.output(election.leader));
    }

    #[test]
    fn know_the_leader_agrees_everywhere() {
        let g = ring(12, 8);
        let run = BallExecutor::new().run(&g, &KnowTheLeader, Knowledge::none()).unwrap();
        let expected = g.identifier(g.max_identifier_node().unwrap());
        assert!(run.outputs().iter().all(|&id| id == expected));
    }

    #[test]
    fn know_the_leader_has_no_average_gap() {
        let g = ring(20, 5);
        let run = BallExecutor::new().run(&g, &KnowTheLeader, Knowledge::none()).unwrap();
        // Every node needs the saturation radius, so average == max.
        assert_eq!(run.average_radius(), run.max_radius() as f64);
        assert_eq!(run.max_radius(), 10);
    }

    #[test]
    fn largest_id_has_an_average_gap_on_the_same_instance() {
        let g = ring(20, 5);
        let largest = BallExecutor::new().run(&g, &LargestId, Knowledge::none()).unwrap();
        let naming = BallExecutor::new().run(&g, &KnowTheLeader, Knowledge::none()).unwrap();
        assert!(largest.average_radius() < naming.average_radius());
        assert_eq!(largest.max_radius(), naming.max_radius());
    }

    #[test]
    fn election_works_on_trees() {
        let mut g = generators::balanced_tree(3, 3).unwrap();
        IdAssignment::Shuffled { seed: 21 }.apply(&mut g).unwrap();
        let election = elect_leader(&g).unwrap();
        assert_eq!(Some(election.leader), g.max_identifier_node());
    }
}
