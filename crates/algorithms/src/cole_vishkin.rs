//! Cole–Vishkin deterministic coin tossing on the oriented ring.
//!
//! This is the classic `O(log* n)`-round 3-colouring machinery the paper's
//! Section 3 refers to: starting from the identifiers, every iteration shrinks
//! the colour space from `b` bits to `O(log b)` bits by comparing a node's
//! colour with its successor's colour and encoding the position of the lowest
//! differing bit. After `log* + O(1)` iterations the colours live in
//! `{0, …, 5}`; a final reduction phase (see [`crate::reduce`]) brings them
//! down to `{0, 1, 2}`.
//!
//! The ring must be *oriented*: every node knows which of its two neighbours
//! is its successor. [`RingOrientation`] carries that per-node input,
//! constructed once from the generator's cycle.

use std::collections::HashMap;

use avglocal_graph::{Graph, Identifier, NodeId};
use avglocal_runtime::RuntimeError;

/// A consistent orientation of a cycle: every node's local knowledge of which
/// neighbour is its *successor*.
///
/// The orientation is part of the problem input (the paper's Section 3 and
/// Linial's lower bound are both stated for the oriented ring). Each node
/// only ever reads its own entry — handing the whole map to the algorithm
/// object is just a convenient way to distribute that local input in a
/// simulator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RingOrientation {
    successor: HashMap<Identifier, Identifier>,
}

impl RingOrientation {
    /// Derives the orientation of a cycle by walking it once, starting from
    /// node 0 towards its first neighbour.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnsupportedTopology`] if the graph is not a
    /// single cycle (some node does not have degree 2, or the walk does not
    /// visit every node).
    pub fn trace(graph: &Graph) -> Result<Self, RuntimeError> {
        let n = graph.node_count();
        if n < 3 {
            return Err(RuntimeError::UnsupportedTopology {
                reason: format!("a cycle needs at least 3 nodes, the graph has {n}"),
            });
        }
        if let Some(bad) = graph.nodes().find(|&v| graph.degree(v) != 2) {
            return Err(RuntimeError::UnsupportedTopology {
                reason: format!("node {bad} has degree {}, expected 2", graph.degree(bad)),
            });
        }
        let mut successor = HashMap::with_capacity(n);
        let start = NodeId::new(0);
        let mut prev = start;
        let mut current = graph.neighbors(start)[0];
        successor.insert(graph.identifier(start), graph.identifier(current));
        let mut visited = 1usize;
        while current != start {
            let next = graph
                .neighbors(current)
                .iter()
                .copied()
                .find(|&u| u != prev)
                .expect("degree-2 node always has a way forward");
            successor.insert(graph.identifier(current), graph.identifier(next));
            prev = current;
            current = next;
            visited += 1;
            if visited > n {
                break;
            }
        }
        if visited != n {
            return Err(RuntimeError::UnsupportedTopology {
                reason: "the graph is not a single cycle".to_string(),
            });
        }
        Ok(RingOrientation { successor })
    }

    /// The successor of the node carrying `id`, if `id` belongs to the ring.
    #[must_use]
    pub fn successor(&self, id: Identifier) -> Option<Identifier> {
        self.successor.get(&id).copied()
    }

    /// The predecessor of the node carrying `id`, if `id` belongs to the ring.
    #[must_use]
    pub fn predecessor(&self, id: Identifier) -> Option<Identifier> {
        // A consistent orientation has exactly one match; reducing with
        // `min` keeps the answer independent of the map's iteration order
        // even for malformed maps.
        self.successor.iter().filter_map(|(&from, &to)| (to == id).then_some(from)).min()
    }

    /// Number of nodes covered by the orientation.
    #[must_use]
    pub fn len(&self) -> usize {
        self.successor.len()
    }

    /// Returns `true` when the orientation covers no node.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.successor.is_empty()
    }

    /// Checks internal consistency: the successor map is a single cycle over
    /// exactly the identifiers it mentions.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        // Walk from a deterministic start (the smallest identifier): an
        // arbitrary hash-order start would make the answer depend on the
        // map's iteration order for multi-cycle maps (e.g. cycles of length
        // 2 and 4: six steps from inside the 2-cycle land back on the start,
        // from inside the 4-cycle they do not).
        let Some(start) = self.successor.keys().copied().min() else {
            return true;
        };
        let mut current = start;
        for step in 1..=self.successor.len() {
            match self.successor.get(&current) {
                Some(&next) => current = next,
                None => return false,
            }
            if current == start {
                // Back at the start: consistent iff the cycle covered the
                // whole map (an early return means a shorter sub-cycle).
                return step == self.successor.len();
            }
        }
        false
    }
}

/// One Cole–Vishkin iteration: combines a node's colour with its successor's
/// colour into a new colour of logarithmically fewer bits.
///
/// The new colour encodes `(i, b)` where `i` is the lowest bit position at
/// which the two colours differ and `b` is the node's own bit at that
/// position: `new = 2·i + b`. If the colours are equal (which cannot happen
/// for a proper colouring) the function returns `2·64`, an out-of-range
/// sentinel that will be caught by the validity checks.
#[must_use]
pub fn cv_step(own: u64, successor: u64) -> u64 {
    let diff = own ^ successor;
    if diff == 0 {
        return 128;
    }
    let i = u64::from(diff.trailing_zeros());
    2 * i + ((own >> i) & 1)
}

/// Number of Cole–Vishkin iterations needed to bring colours initialised with
/// `bits`-bit identifiers down to the range `{0, …, 5}`.
///
/// This is the `log*`-type quantity that drives the running time; for 64-bit
/// identifiers it is 4.
#[must_use]
pub fn cv_iterations_for_bits(bits: u32) -> usize {
    let bits = bits.clamp(1, 64);
    // Maximum possible colour value for the given bit budget.
    let mut max_value: u64 = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
    let mut iterations = 0usize;
    while max_value > 5 {
        let b = 64 - max_value.leading_zeros();
        max_value = 2 * u64::from(b - 1) + 1;
        iterations += 1;
    }
    iterations
}

/// Number of iterations derived from a [`avglocal_runtime::Knowledge`]: uses
/// the identifier bound when available and the full 64-bit budget otherwise.
#[must_use]
pub fn cv_iterations_for_knowledge(knowledge: &avglocal_runtime::Knowledge) -> usize {
    match knowledge.identifier_bound() {
        Some(bound) => cv_iterations_for_bits(64 - bound.leading_zeros()),
        None => cv_iterations_for_bits(64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avglocal_graph::{generators, IdAssignment};

    #[test]
    fn orientation_of_generated_cycle() {
        let g = generators::cycle(8).unwrap();
        let o = RingOrientation::trace(&g).unwrap();
        assert_eq!(o.len(), 8);
        assert!(!o.is_empty());
        assert!(o.is_consistent());
        // Following successors 8 times returns to the start.
        let mut current = Identifier::new(0);
        for _ in 0..8 {
            current = o.successor(current).unwrap();
        }
        assert_eq!(current, Identifier::new(0));
    }

    #[test]
    fn predecessor_inverts_successor() {
        let mut g = generators::cycle(9).unwrap();
        IdAssignment::Shuffled { seed: 6 }.apply(&mut g).unwrap();
        let o = RingOrientation::trace(&g).unwrap();
        for v in g.nodes() {
            let id = g.identifier(v);
            let succ = o.successor(id).unwrap();
            assert_eq!(o.predecessor(succ), Some(id));
        }
        assert_eq!(o.successor(Identifier::new(999)), None);
        assert_eq!(o.predecessor(Identifier::new(999)), None);
    }

    #[test]
    fn orientation_rejects_non_cycles() {
        assert!(RingOrientation::trace(&generators::path(5).unwrap()).is_err());
        assert!(RingOrientation::trace(&generators::star(4).unwrap()).is_err());
        assert!(RingOrientation::trace(&generators::complete(5).unwrap()).is_err());
        let mut two = Graph::new();
        two.add_nodes_with_default_ids(2);
        assert!(RingOrientation::trace(&two).is_err());
    }

    #[test]
    fn default_orientation_is_empty_and_consistent() {
        let o = RingOrientation::default();
        assert!(o.is_empty());
        assert!(o.is_consistent());
    }

    #[test]
    fn cv_step_produces_distinct_colours_for_distinct_pairs() {
        // Proper-colouring preservation: for any chain a - b - c with a != b
        // and b != c, the new colours of a and b differ.
        for a in 0..32u64 {
            for b in 0..32u64 {
                for c in 0..32u64 {
                    if a != b && b != c {
                        assert_ne!(cv_step(a, b), cv_step(b, c), "a={a} b={b} c={c}");
                    }
                }
            }
        }
    }

    #[test]
    fn cv_step_examples() {
        // own = 0b0110, succ = 0b0100: lowest differing bit is 1, own bit is 1.
        assert_eq!(cv_step(0b0110, 0b0100), 3); // 2 * index 1 + bit 1
                                                // own = 0b1000, succ = 0b1001: lowest differing bit is 0, own bit is 0.
        assert_eq!(cv_step(0b1000, 0b1001), 0);
        // Equal colours yield the sentinel.
        assert_eq!(cv_step(7, 7), 128);
    }

    #[test]
    fn cv_step_shrinks_colour_range() {
        // Starting from values below 2^b, one step lands below 2b.
        for own in 0..256u64 {
            for succ in 0..256u64 {
                if own != succ {
                    assert!(cv_step(own, succ) < 16);
                }
            }
        }
    }

    #[test]
    fn iteration_counts() {
        assert_eq!(cv_iterations_for_bits(64), 4);
        assert_eq!(cv_iterations_for_bits(32), 4);
        assert_eq!(cv_iterations_for_bits(16), 4);
        assert_eq!(cv_iterations_for_bits(8), 3);
        assert_eq!(cv_iterations_for_bits(4), 2);
        assert_eq!(cv_iterations_for_bits(3), 1);
        assert_eq!(cv_iterations_for_bits(2), 0); // values <= 3 <= 5 already
        assert_eq!(cv_iterations_for_bits(1), 0);
        // Out-of-range bit counts are clamped.
        assert_eq!(cv_iterations_for_bits(0), 0);
        assert_eq!(cv_iterations_for_bits(100), 4);
    }

    #[test]
    fn iterations_from_knowledge() {
        use avglocal_runtime::Knowledge;
        assert_eq!(cv_iterations_for_knowledge(&Knowledge::none()), 4);
        let k = Knowledge::none().and_identifier_bound(255);
        assert_eq!(cv_iterations_for_knowledge(&k), 3);
        let k = Knowledge::none().and_identifier_bound(15);
        assert_eq!(cv_iterations_for_knowledge(&k), 2);
    }
}
