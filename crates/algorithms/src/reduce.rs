//! Colour reduction: shrinking a proper colouring one class at a time.
//!
//! On graphs of maximum degree `Δ`, any proper `k`-colouring with `k > Δ + 1`
//! can be reduced to a `(Δ+1)`-colouring by removing one colour class per
//! round: all nodes of the highest colour simultaneously re-colour themselves
//! with a free colour from `{0, …, Δ}` (their neighbours all have other
//! colours and there are at most `Δ` of them). On the ring (`Δ = 2`) this is
//! the standard 6 → 3 step that follows Cole–Vishkin.

/// The smallest colour in `0..palette_size` that does not appear among
/// `neighbor_colors`, or `None` if every colour is taken (which cannot happen
/// when `palette_size > neighbor_colors.len()`).
#[must_use]
pub fn free_color(neighbor_colors: &[u64], palette_size: u64) -> Option<u64> {
    (0..palette_size).find(|c| !neighbor_colors.contains(c))
}

/// One synchronous reduction step on an explicit colouring: every node whose
/// colour equals `class` re-colours itself with the smallest colour in
/// `0..palette_size` unused by its neighbours.
///
/// `adjacency[i]` lists the indices of node `i`'s neighbours. The input
/// colouring must be proper; the output colouring is proper again and no node
/// keeps the colour `class` (provided `palette_size` exceeds every degree).
#[must_use]
pub fn reduce_class(
    colors: &[u64],
    adjacency: &[Vec<usize>],
    class: u64,
    palette_size: u64,
) -> Vec<u64> {
    let mut next = colors.to_vec();
    for (i, &c) in colors.iter().enumerate() {
        if c == class {
            let neighbor_colors: Vec<u64> = adjacency[i].iter().map(|&j| colors[j]).collect();
            if let Some(free) = free_color(&neighbor_colors, palette_size) {
                next[i] = free;
            }
        }
    }
    next
}

/// Iteratively removes the colour classes `target..initial` (from the highest
/// downwards), producing a proper colouring with colours `0..target`.
///
/// This is the centralized reference implementation of the distributed
/// reduction phase; the distributed version lives in the Cole–Vishkin
/// pipeline ([`crate::ThreeColorRing`]) and is tested against this one.
#[must_use]
pub fn reduce_to(colors: &[u64], adjacency: &[Vec<usize>], initial: u64, target: u64) -> Vec<u64> {
    let mut current = colors.to_vec();
    for class in (target..=initial).rev() {
        current = reduce_class(&current, adjacency, class, target);
    }
    current
}

/// Checks that `colors` is a proper colouring of the graph described by
/// `adjacency` using at most `palette_size` colours.
#[must_use]
pub fn is_proper_coloring(colors: &[u64], adjacency: &[Vec<usize>], palette_size: u64) -> bool {
    if colors.len() != adjacency.len() {
        return false;
    }
    if colors.iter().any(|&c| c >= palette_size) {
        return false;
    }
    adjacency.iter().enumerate().all(|(i, nbrs)| nbrs.iter().all(|&j| colors[i] != colors[j]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Adjacency of a cycle of length `n` over indices.
    fn cycle_adjacency(n: usize) -> Vec<Vec<usize>> {
        (0..n).map(|i| vec![(i + n - 1) % n, (i + 1) % n]).collect()
    }

    #[test]
    fn free_color_picks_smallest_unused() {
        assert_eq!(free_color(&[0, 2], 3), Some(1));
        assert_eq!(free_color(&[1, 2], 3), Some(0));
        assert_eq!(free_color(&[], 3), Some(0));
        assert_eq!(free_color(&[0, 1, 2], 3), None);
    }

    #[test]
    fn reduce_class_removes_the_class() {
        let adjacency = cycle_adjacency(6);
        let colors = vec![0, 5, 1, 5, 2, 5];
        assert!(is_proper_coloring(&colors, &adjacency, 6));
        let reduced = reduce_class(&colors, &adjacency, 5, 3);
        assert!(!reduced.contains(&5));
        assert!(is_proper_coloring(&reduced, &adjacency, 3));
    }

    #[test]
    fn reduce_to_three_from_six_on_cycles() {
        // A valid 6-colouring of an even cycle, deliberately wasteful.
        let adjacency = cycle_adjacency(12);
        let colors: Vec<u64> = (0..12).map(|i| (i % 6) as u64).collect();
        assert!(is_proper_coloring(&colors, &adjacency, 6));
        let reduced = reduce_to(&colors, &adjacency, 5, 3);
        assert!(is_proper_coloring(&reduced, &adjacency, 3), "got {reduced:?}");
        assert!(reduced.iter().all(|&c| c < 3));
    }

    #[test]
    fn reduce_is_a_no_op_when_already_small() {
        let adjacency = cycle_adjacency(4);
        let colors = vec![0, 1, 0, 1];
        let reduced = reduce_to(&colors, &adjacency, 5, 3);
        assert_eq!(reduced, colors);
    }

    #[test]
    fn proper_coloring_checks() {
        let adjacency = cycle_adjacency(5);
        assert!(is_proper_coloring(&[0, 1, 0, 1, 2], &adjacency, 3));
        assert!(!is_proper_coloring(&[0, 0, 1, 2, 1], &adjacency, 3)); // adjacent equal
        assert!(!is_proper_coloring(&[0, 1, 0, 1, 3], &adjacency, 3)); // colour out of range
        assert!(!is_proper_coloring(&[0, 1], &adjacency, 3)); // wrong length
    }
}
