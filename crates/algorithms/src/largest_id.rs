//! The largest-ID problem and the paper's Section 2 algorithm.
//!
//! Every node must output `true` iff it carries the largest identifier of the
//! whole graph — the classic way to elect a leader. On the cycle the problem
//! has worst-case complexity `Θ(n)` (the winner must see everything), but the
//! natural algorithm below has *average* radius `Θ(log n)`, which is the
//! paper's headline separation.

use avglocal_graph::Graph;
use avglocal_runtime::{BallAlgorithm, BallExecution, BallExecutor, Knowledge, LocalView, Result};

/// The paper's algorithm for the largest-ID problem.
///
/// Each node grows the radius of its ball until it either discovers an
/// identifier larger than its own (output `false`) or has seen the entire
/// graph while still being the maximum (output `true`).
///
/// The algorithm needs no knowledge of `n` and works on any connected graph,
/// not only cycles.
///
/// # Examples
///
/// ```
/// use avglocal_algorithms::LargestId;
/// use avglocal_graph::{generators, IdAssignment};
/// use avglocal_runtime::{BallExecutor, Knowledge};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ring = generators::cycle(128)?;
/// IdAssignment::Shuffled { seed: 5 }.apply(&mut ring)?;
/// let run = BallExecutor::new().run(&ring, &LargestId, Knowledge::none())?;
/// assert_eq!(run.outputs().iter().filter(|&&b| b).count(), 1);
/// assert_eq!(run.max_radius(), 64);       // worst case is n/2
/// assert!(run.average_radius() < 10.0);   // average is logarithmic
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LargestId;

impl BallAlgorithm for LargestId {
    type Output = bool;

    fn name(&self) -> &str {
        "largest-id"
    }

    fn decide(&self, view: &LocalView, _knowledge: &Knowledge) -> Option<bool> {
        if !view.center_has_max_identifier() {
            // Someone with a larger identifier is visible: certainly not the
            // global maximum.
            Some(false)
        } else if view.is_saturated() {
            // The whole component is visible and nobody beats the centre.
            Some(true)
        } else {
            None
        }
    }
}

/// Runs the largest-ID algorithm on `graph` and returns the execution
/// (outputs and per-node radii).
///
/// # Errors
///
/// Propagates executor errors; with [`LargestId`] these can only occur on
/// graphs with non-distinct identifiers.
pub fn run_largest_id(graph: &Graph) -> Result<BallExecution<bool>> {
    BallExecutor::new().run(graph, &LargestId, Knowledge::none())
}

/// Checks that the outputs of a largest-ID execution are correct for `graph`:
/// exactly the node with the maximum identifier answered `true`.
#[must_use]
pub fn verify_largest_id(graph: &Graph, outputs: &[bool]) -> bool {
    if outputs.len() != graph.node_count() {
        return false;
    }
    let Some(winner) = graph.max_identifier_node() else {
        return outputs.is_empty();
    };
    graph.nodes().all(|v| outputs[v.index()] == (v == winner))
}

/// The exact radius the paper predicts for each node of a **cycle**, given
/// the identifier arrangement: the distance to the nearest node with a larger
/// identifier, or `⌊n/2⌋` for the maximum (it must see the whole cycle).
///
/// This is the combinatorial ground truth the executor is tested against.
///
/// # Panics
///
/// Panics if `graph` is not a cycle (some node does not have degree 2).
#[must_use]
pub fn predicted_cycle_radii(graph: &Graph) -> Vec<usize> {
    let n = graph.node_count();
    assert!(graph.nodes().all(|v| graph.degree(v) == 2), "predicted_cycle_radii expects a cycle");
    let winner = graph.max_identifier_node().expect("cycle is non-empty");
    graph
        .nodes()
        .map(|v| {
            if v == winner {
                return n / 2;
            }
            let own = graph.identifier(v);
            // Walk both directions simultaneously; the first larger identifier
            // determines the radius.
            let mut best = n / 2;
            for (dir, first) in graph.neighbors(v).iter().copied().enumerate() {
                let _ = dir;
                let walk = avglocal_graph::arm(graph, v, first, n);
                for (steps, u) in walk.iter().enumerate() {
                    if graph.identifier(*u) > own {
                        best = best.min(steps + 1);
                        break;
                    }
                }
            }
            best
        })
        .collect()
}

/// Sum of the predicted radii over a cycle — the quantity the paper's
/// recurrence `a(p)` (plus the `n/2` of the winner) upper-bounds.
#[must_use]
pub fn predicted_cycle_total(graph: &Graph) -> usize {
    predicted_cycle_radii(graph).iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use avglocal_graph::{generators, IdAssignment, Identifier, NodeId};

    fn ring(n: usize, assignment: IdAssignment) -> Graph {
        let mut g = generators::cycle(n).unwrap();
        assignment.apply(&mut g).unwrap();
        g
    }

    #[test]
    fn exactly_one_winner() {
        let g = ring(21, IdAssignment::Shuffled { seed: 77 });
        let run = run_largest_id(&g).unwrap();
        assert!(verify_largest_id(&g, run.outputs()));
        assert_eq!(run.outputs().iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn winner_needs_half_the_cycle() {
        let g = ring(30, IdAssignment::Shuffled { seed: 1 });
        let run = run_largest_id(&g).unwrap();
        let winner = g.max_identifier_node().unwrap();
        assert_eq!(run.radius(winner), 15);
        assert_eq!(run.max_radius(), 15);
    }

    #[test]
    fn executor_matches_combinatorial_prediction() {
        for seed in 0..10u64 {
            let g = ring(25, IdAssignment::Shuffled { seed });
            let run = run_largest_id(&g).unwrap();
            assert_eq!(run.radii(), predicted_cycle_radii(&g).as_slice(), "seed {seed}");
        }
    }

    #[test]
    fn identity_assignment_radii() {
        // Identifiers increase around the cycle: every non-maximum node sees a
        // larger identifier at radius 1; the maximum needs ⌊n/2⌋.
        let g = ring(16, IdAssignment::Identity);
        let run = run_largest_id(&g).unwrap();
        let radii = run.radii();
        assert_eq!(radii[15], 8);
        assert!(radii[..15].iter().all(|&r| r == 1));
        assert_eq!(predicted_cycle_total(&g), 8 + 15);
    }

    #[test]
    fn works_on_paths_and_trees_too() {
        let mut g = generators::path(10).unwrap();
        IdAssignment::Shuffled { seed: 4 }.apply(&mut g).unwrap();
        let run = run_largest_id(&g).unwrap();
        assert!(verify_largest_id(&g, run.outputs()));

        let mut t = generators::balanced_tree(2, 4).unwrap();
        IdAssignment::Shuffled { seed: 8 }.apply(&mut t).unwrap();
        let run = run_largest_id(&t).unwrap();
        assert!(verify_largest_id(&t, run.outputs()));
    }

    #[test]
    fn verify_rejects_wrong_outputs() {
        let g = ring(9, IdAssignment::Identity);
        let mut outputs = vec![false; 9];
        assert!(!verify_largest_id(&g, &outputs)); // nobody claims leadership
        outputs[0] = true;
        assert!(!verify_largest_id(&g, &outputs)); // wrong node
        let mut correct = vec![false; 9];
        correct[8] = true;
        assert!(verify_largest_id(&g, &correct));
        assert!(!verify_largest_id(&g, &correct[..5])); // wrong length
    }

    #[test]
    fn average_is_much_smaller_than_max_on_large_rings() {
        let g = ring(1024, IdAssignment::Shuffled { seed: 3 });
        let run = run_largest_id(&g).unwrap();
        assert_eq!(run.max_radius(), 512);
        // ln(1024) ≈ 6.9; allow a generous constant.
        assert!(run.average_radius() < 20.0, "average was {}", run.average_radius());
    }

    #[test]
    fn reversed_assignment_mirrors_identity() {
        let g = ring(12, IdAssignment::Reversed);
        let run = run_largest_id(&g).unwrap();
        assert!(*run.output(NodeId::new(0)));
        assert_eq!(run.radius(NodeId::new(0)), 6);
        assert_eq!(g.identifier(NodeId::new(0)), Identifier::new(11));
    }

    #[test]
    #[should_panic(expected = "expects a cycle")]
    fn predicted_radii_reject_non_cycles() {
        let g = generators::star(5).unwrap();
        let _ = predicted_cycle_radii(&g);
    }
}
