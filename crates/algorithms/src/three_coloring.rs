//! 3-colouring the oriented ring: the Cole–Vishkin pipeline, and a
//! variable-radius colouring in the spirit of the paper's Lemma 2.

use avglocal_graph::{Graph, Identifier, NodeId};
use avglocal_runtime::{
    broadcast, BallAlgorithm, Envelope, Knowledge, LocalView, NodeContext, RoundAlgorithm,
};

use crate::cole_vishkin::{cv_iterations_for_knowledge, cv_step, RingOrientation};
use crate::reduce::free_color;

/// The complete Cole–Vishkin 3-colouring pipeline on an oriented ring, as a
/// message-passing [`RoundAlgorithm`].
///
/// Phases:
///
/// 1. **Cole–Vishkin iterations** (a `log*`-type number of rounds, 4 for
///    64-bit identifiers): every node repeatedly combines its colour with its
///    successor's colour, shrinking the palette to `{0, …, 5}`.
/// 2. **Reduction** (3 rounds): the colour classes 5, 4, 3 are removed one
///    per round, every affected node picking a free colour among `{0, 1, 2}`.
///
/// Every node outputs at round `iterations + 3`, so the per-node radius is
/// `O(log* n)` — the matching upper bound for the paper's Theorem 1. The
/// algorithm needs no knowledge of `n`; it only uses the identifier-space
/// bound (via [`Knowledge::identifier_bound`], defaulting to 64-bit).
///
/// # Examples
///
/// ```
/// use avglocal_algorithms::{verify, ThreeColorRing};
/// use avglocal_algorithms::cole_vishkin::RingOrientation;
/// use avglocal_graph::{generators, IdAssignment};
/// use avglocal_runtime::{Knowledge, SyncExecutor};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ring = generators::cycle(64)?;
/// IdAssignment::Shuffled { seed: 11 }.apply(&mut ring)?;
/// let algo = ThreeColorRing::new(RingOrientation::trace(&ring)?);
/// let run = SyncExecutor::new().run(&ring, &algo, Knowledge::none())?;
/// assert!(verify::is_proper_coloring(&ring, &run.outputs(), 3));
/// assert_eq!(run.decision_rounds().iter().max(), Some(&7)); // 4 CV + 3 reduction
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ThreeColorRing {
    orientation: RingOrientation,
}

impl ThreeColorRing {
    /// Creates the pipeline for a ring with the given orientation.
    #[must_use]
    pub fn new(orientation: RingOrientation) -> Self {
        ThreeColorRing { orientation }
    }

    /// The orientation the pipeline was built with.
    #[must_use]
    pub fn orientation(&self) -> &RingOrientation {
        &self.orientation
    }
}

/// Per-node state of [`ThreeColorRing`].
#[derive(Debug, Clone)]
pub struct ThreeColorState {
    color: u64,
    /// Port through which the successor is reached.
    successor_port: usize,
}

impl RoundAlgorithm for ThreeColorRing {
    type Message = u64;
    type Output = u64;
    type State = ThreeColorState;

    fn name(&self) -> &str {
        "cole-vishkin-3-coloring"
    }

    fn init(&self, ctx: &NodeContext) -> Self::State {
        let successor_id = self
            .orientation
            .successor(ctx.identifier)
            .expect("the orientation must cover every node of the ring");
        let successor_port = ctx
            .neighbor_identifiers
            .iter()
            .position(|&id| id == successor_id)
            .expect("the successor must be one of the two neighbours");
        ThreeColorState { color: ctx.identifier.value(), successor_port }
    }

    fn send(&self, state: &Self::State, ctx: &NodeContext) -> Vec<Envelope<Self::Message>> {
        broadcast(ctx.degree, &state.color)
    }

    fn receive(
        &self,
        state: &mut Self::State,
        ctx: &NodeContext,
        inbox: &[Envelope<Self::Message>],
    ) -> Option<Self::Output> {
        let iterations = cv_iterations_for_knowledge(&ctx.knowledge);
        if ctx.round <= iterations {
            // Cole–Vishkin phase: combine with the successor's colour.
            let successor_color = inbox
                .iter()
                .find(|env| env.port == state.successor_port)
                .map(|env| env.payload)
                .expect("the successor sends every round");
            state.color = cv_step(state.color, successor_color);
            None
        } else {
            // Reduction phase: remove classes 5, 4, 3 in successive rounds.
            let class = 5 - (ctx.round - iterations - 1) as u64;
            if state.color == class {
                let neighbor_colors: Vec<u64> = inbox.iter().map(|env| env.payload).collect();
                state.color = free_color(&neighbor_colors, 3)
                    .expect("a ring node has at most 2 neighbours, so a free colour exists");
            }
            (class == 3).then_some(state.color)
        }
    }
}

/// A variable-radius proper 4-colouring of the ring, in the spirit of the
/// paper's Lemma 2 construction.
///
/// *Landmarks* are the nodes whose identifier is a local maximum (larger than
/// both neighbours' identifiers); no two landmarks are adjacent. Every node
/// grows its ball until it can certify its distance `d` to the nearest
/// landmark (and its neighbours' distances), then outputs
///
/// * colour 2 if it is a landmark (`d = 0`),
/// * colour 3 if it ties with a neighbour (`d` equal) and has the larger
///   identifier of the tied pair,
/// * colour `d mod 2` otherwise.
///
/// The interesting property for the paper is the *radius profile*: a node's
/// radius is essentially its distance to the nearest landmark, which is small
/// on average for random identifiers but can be `Θ(n)` for adversarial ones
/// (a monotone identifier sequence has a single landmark). This gives the
/// experiment harness a colouring algorithm whose average and worst-case
/// radii genuinely differ, complementing the constant-radius Cole–Vishkin
/// pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LandmarkColoring;

impl LandmarkColoring {
    /// Computes the final colour of `node` (given by local id) assuming the
    /// view contains enough certified information around it.
    fn color_of(view: &LocalView, node: NodeId) -> Option<u64> {
        let g = view.graph();
        let d = Self::distance_to_landmark(view, node)?;
        if d == 0 {
            return Some(2);
        }
        // Tie detection: a neighbour at the same distance from its own nearest
        // landmark.
        let my_id = g.identifier(node);
        let mut tie_with_smaller = false;
        let mut tie_with_larger = false;
        for &u in g.neighbors(node) {
            let du = Self::distance_to_landmark(view, u)?;
            if du == d {
                if g.identifier(u) < my_id {
                    tie_with_smaller = true;
                } else {
                    tie_with_larger = true;
                }
            }
        }
        if tie_with_smaller && !tie_with_larger {
            Some(3)
        } else {
            Some((d % 2) as u64)
        }
    }

    /// Distance from `node` to its nearest landmark, certified within the
    /// view, or `None` when the view cannot certify it.
    fn distance_to_landmark(view: &LocalView, node: NodeId) -> Option<usize> {
        let g = view.graph();
        // BFS from `node` inside the view graph, looking for certified
        // landmarks; the search is also bounded by the view, so a landmark
        // only counts when every closer node is certified non-landmark.
        let bfs = avglocal_graph::traversal::bfs(g, node);
        let mut candidates: Vec<(usize, NodeId)> =
            g.nodes().filter_map(|v| bfs.distance(v).map(|d| (d, v))).collect();
        candidates.sort_unstable();
        for (d, v) in candidates {
            if g.degree(v) != 2 {
                // Reached the frontier before certifying a landmark: the true
                // nearest landmark might be just outside the view.
                return None;
            }
            let id = g.identifier(v);
            if g.neighbors(v).iter().all(|&u| g.identifier(u) < id) {
                return Some(d);
            }
        }
        None
    }
}

impl BallAlgorithm for LandmarkColoring {
    type Output = u64;

    fn name(&self) -> &str {
        "landmark-4-coloring"
    }

    fn decide(&self, view: &LocalView, _knowledge: &Knowledge) -> Option<u64> {
        if view.is_saturated() {
            // Whole ring visible: everything is certified.
            return Self::color_of(view, view.center());
        }
        if view.center_degree() != 2 {
            // Not a ring; refuse to colour rather than produce garbage.
            return None;
        }
        Self::color_of(view, view.center())
    }
}

/// Runs the Cole–Vishkin pipeline on `graph` (which must be a cycle) and
/// returns `(colors, decision_rounds)` in node order.
///
/// # Errors
///
/// Returns an error when the graph is not a single cycle or the execution
/// fails.
pub fn run_three_coloring(
    graph: &Graph,
) -> Result<(Vec<u64>, Vec<usize>), avglocal_runtime::RuntimeError> {
    let orientation = RingOrientation::trace(graph)?;
    let algo = ThreeColorRing::new(orientation);
    let run = avglocal_runtime::SyncExecutor::new().run(graph, &algo, Knowledge::none())?;
    Ok((run.outputs(), run.decision_rounds()))
}

/// Identifiers of the local-maximum landmarks of a graph, mostly useful for
/// tests and reports about [`LandmarkColoring`].
#[must_use]
pub fn landmarks(graph: &Graph) -> Vec<Identifier> {
    graph
        .nodes()
        .filter(|&v| {
            let id = graph.identifier(v);
            !graph.neighbors(v).is_empty()
                && graph.neighbors(v).iter().all(|&u| graph.identifier(u) < id)
        })
        .map(|v| graph.identifier(v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use avglocal_graph::{generators, IdAssignment};
    use avglocal_runtime::{BallExecutor, SyncExecutor};

    fn ring(n: usize, seed: u64) -> Graph {
        let mut g = generators::cycle(n).unwrap();
        IdAssignment::Shuffled { seed }.apply(&mut g).unwrap();
        g
    }

    #[test]
    fn cole_vishkin_produces_proper_three_coloring() {
        for n in [3usize, 4, 5, 8, 16, 33, 100] {
            for seed in 0..3u64 {
                let g = ring(n, seed);
                let (colors, rounds) = run_three_coloring(&g).unwrap();
                assert!(
                    verify::is_proper_coloring(&g, &colors, 3),
                    "n={n} seed={seed} colors={colors:?}"
                );
                // Every node decides at exactly 4 + 3 rounds (64-bit budget).
                assert!(rounds.iter().all(|&r| r == 7), "n={n} rounds={rounds:?}");
            }
        }
    }

    #[test]
    fn cole_vishkin_with_identifier_bound_is_faster() {
        let g = ring(32, 5);
        let orientation = RingOrientation::trace(&g).unwrap();
        let algo = ThreeColorRing::new(orientation);
        let knowledge = Knowledge::none().and_identifier_bound(31);
        let run = SyncExecutor::new().run(&g, &algo, knowledge).unwrap();
        assert!(verify::is_proper_coloring(&g, &run.outputs(), 3));
        // 5-bit identifiers need 3 CV iterations instead of 4.
        assert!(run.decision_rounds().iter().all(|&r| r == 6));
    }

    #[test]
    fn cole_vishkin_on_identity_and_reversed_rings() {
        for assignment in [IdAssignment::Identity, IdAssignment::Reversed] {
            let mut g = generators::cycle(40).unwrap();
            assignment.apply(&mut g).unwrap();
            let (colors, _) = run_three_coloring(&g).unwrap();
            assert!(verify::is_proper_coloring(&g, &colors, 3));
        }
    }

    #[test]
    fn landmark_coloring_is_proper_on_random_rings() {
        for n in [4usize, 5, 9, 16, 40, 101] {
            for seed in 0..4u64 {
                let g = ring(n, seed);
                let run =
                    BallExecutor::new().run(&g, &LandmarkColoring, Knowledge::none()).unwrap();
                assert!(
                    verify::is_proper_coloring(&g, run.outputs(), 4),
                    "n={n} seed={seed} colors={:?}",
                    run.outputs()
                );
            }
        }
    }

    #[test]
    fn landmark_coloring_handles_monotone_identifiers() {
        // Identity assignment has a single landmark (node n-1), the hardest
        // case: some radii become linear but the colouring stays proper.
        let g = {
            let mut g = generators::cycle(24).unwrap();
            IdAssignment::Identity.apply(&mut g).unwrap();
            g
        };
        let run = BallExecutor::new().run(&g, &LandmarkColoring, Knowledge::none()).unwrap();
        assert!(verify::is_proper_coloring(&g, run.outputs(), 4));
        assert_eq!(landmarks(&g).len(), 1);
        assert!(run.max_radius() >= 6);
    }

    #[test]
    fn landmark_radius_profile_varies() {
        let g = ring(200, 9);
        let run = BallExecutor::new().run(&g, &LandmarkColoring, Knowledge::none()).unwrap();
        assert!(run.max_radius() > 2);
        assert!(run.average_radius() < run.max_radius() as f64);
    }

    #[test]
    fn landmarks_are_never_adjacent() {
        for seed in 0..5u64 {
            let g = ring(50, seed);
            let marks = landmarks(&g);
            for v in g.nodes() {
                if marks.contains(&g.identifier(v)) {
                    for &u in g.neighbors(v) {
                        assert!(!marks.contains(&g.identifier(u)));
                    }
                }
            }
        }
    }

    #[test]
    fn three_coloring_rejects_non_cycles() {
        let g = generators::path(6).unwrap();
        assert!(run_three_coloring(&g).is_err());
    }
}
