//! Baselines: full-information distributed algorithms and centralized
//! references.
//!
//! The paper's point is that clever local algorithms beat the "gather
//! everything, then decide" strategy on the *average* measure. These
//! baselines make the comparison concrete: they are correct but maximally
//! lazy, so their average radius equals their worst-case radius.

use avglocal_graph::{Graph, NodeId};
use avglocal_runtime::{BallAlgorithm, Knowledge, LocalView};

/// Full-information 3-colouring baseline: wait until the whole component is
/// visible, then output a canonical greedy colouring.
///
/// All nodes compute the same colouring (greedy in increasing identifier
/// order over the same saturated view), so the result is proper; but every
/// node pays the saturation radius, `⌊n/2⌋` on the cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FullInfoColoring;

impl BallAlgorithm for FullInfoColoring {
    type Output = u64;

    fn name(&self) -> &str {
        "full-info-coloring"
    }

    fn decide(&self, view: &LocalView, _knowledge: &Knowledge) -> Option<u64> {
        if !view.is_saturated() {
            return None;
        }
        let colors = greedy_coloring(view.graph());
        Some(colors[view.center().index()])
    }
}

/// Full-information largest-ID baseline: refuse to answer before seeing the
/// whole component, even for nodes that could answer `false` early.
///
/// Contrasting this with [`crate::LargestId`] isolates exactly the effect the
/// paper studies: the outputs are identical, only the stopping rule differs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FullInfoLargestId;

impl BallAlgorithm for FullInfoLargestId {
    type Output = bool;

    fn name(&self) -> &str {
        "full-info-largest-id"
    }

    fn decide(&self, view: &LocalView, _knowledge: &Knowledge) -> Option<bool> {
        view.is_saturated().then(|| view.center_has_max_identifier())
    }
}

/// Centralized greedy colouring: processes nodes in increasing identifier
/// order and gives each the smallest colour unused by its already-coloured
/// neighbours. Uses at most `Δ + 1` colours.
#[must_use]
pub fn greedy_coloring(graph: &Graph) -> Vec<u64> {
    let mut order: Vec<NodeId> = graph.nodes().collect();
    order.sort_by_key(|&v| graph.identifier(v));
    let mut colors: Vec<Option<u64>> = vec![None; graph.node_count()];
    for v in order {
        let used: Vec<u64> = graph.neighbors(v).iter().filter_map(|&u| colors[u.index()]).collect();
        let color = (0..).find(|c| !used.contains(c)).expect("an unused colour always exists");
        colors[v.index()] = Some(color);
    }
    colors.into_iter().map(|c| c.expect("every node was coloured")).collect()
}

/// Centralized greedy maximal independent set: processes nodes in increasing
/// identifier order, adding a node whenever none of its neighbours is already
/// in the set.
#[must_use]
pub fn greedy_mis(graph: &Graph) -> Vec<bool> {
    let mut order: Vec<NodeId> = graph.nodes().collect();
    order.sort_by_key(|&v| graph.identifier(v));
    let mut in_set = vec![false; graph.node_count()];
    for v in order {
        if graph.neighbors(v).iter().all(|&u| !in_set[u.index()]) {
            in_set[v.index()] = true;
        }
    }
    in_set
}

/// Centralized greedy maximal matching: processes edges in a canonical order
/// and matches both endpoints whenever both are still free. Returns, for each
/// node, the index of its partner (or `None`).
#[must_use]
pub fn greedy_maximal_matching(graph: &Graph) -> Vec<Option<usize>> {
    let mut matched: Vec<Option<usize>> = vec![None; graph.node_count()];
    let mut edges: Vec<(NodeId, NodeId)> = graph.edges().collect();
    edges
        .sort_by_key(|&(u, v)| (graph.identifier(u).min(graph.identifier(v)), graph.identifier(u)));
    for (u, v) in edges {
        if matched[u.index()].is_none() && matched[v.index()].is_none() {
            matched[u.index()] = Some(v.index());
            matched[v.index()] = Some(u.index());
        }
    }
    matched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use crate::LargestId;
    use avglocal_graph::{generators, IdAssignment};
    use avglocal_runtime::BallExecutor;

    fn ring(n: usize, seed: u64) -> Graph {
        let mut g = generators::cycle(n).unwrap();
        IdAssignment::Shuffled { seed }.apply(&mut g).unwrap();
        g
    }

    #[test]
    fn greedy_coloring_is_proper_and_small() {
        for seed in 0..5u64 {
            let g = ring(31, seed);
            let colors = greedy_coloring(&g);
            assert!(verify::is_proper_coloring(&g, &colors, 3));
        }
        let grid = generators::grid(4, 4).unwrap();
        let colors = greedy_coloring(&grid);
        assert!(verify::is_proper_coloring(&grid, &colors, 5));
    }

    #[test]
    fn greedy_mis_is_maximal() {
        for seed in 0..5u64 {
            let g = ring(27, seed);
            assert!(verify::is_maximal_independent_set(&g, &greedy_mis(&g)));
        }
        let star = generators::star(8).unwrap();
        assert!(verify::is_maximal_independent_set(&star, &greedy_mis(&star)));
    }

    #[test]
    fn greedy_matching_is_maximal() {
        for seed in 0..5u64 {
            let g = ring(26, seed);
            assert!(verify::is_maximal_matching(&g, &greedy_maximal_matching(&g)));
        }
        let p = generators::path(9).unwrap();
        assert!(verify::is_maximal_matching(&p, &greedy_maximal_matching(&p)));
    }

    #[test]
    fn full_info_coloring_pays_the_saturation_radius() {
        let g = ring(18, 2);
        let run = BallExecutor::new().run(&g, &FullInfoColoring, Knowledge::none()).unwrap();
        assert!(verify::is_proper_coloring(&g, run.outputs(), 3));
        assert_eq!(run.max_radius(), 9);
        assert_eq!(run.average_radius(), 9.0);
    }

    #[test]
    fn full_info_largest_id_matches_outputs_but_not_radii() {
        let g = ring(22, 6);
        let smart = BallExecutor::new().run(&g, &LargestId, Knowledge::none()).unwrap();
        let lazy = BallExecutor::new().run(&g, &FullInfoLargestId, Knowledge::none()).unwrap();
        assert_eq!(smart.outputs(), lazy.outputs());
        assert_eq!(lazy.average_radius(), lazy.max_radius() as f64);
        assert!(smart.average_radius() < lazy.average_radius());
    }
}
