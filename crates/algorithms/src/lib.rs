//! # avglocal-algorithms
//!
//! Distributed algorithms for the LOCAL model used in the reproduction of
//! *"Brief Announcement: Average Complexity for the LOCAL Model"*
//! (Feuilloley, PODC 2015).
//!
//! * [`LargestId`] — the paper's Section 2 algorithm: grow the ball until a
//!   larger identifier (output `false`) or the whole graph (output `true`) is
//!   seen. Worst case `Θ(n)`, average `Θ(log n)` on the cycle.
//! * [`cole_vishkin`] / [`ThreeColorRing`] — the Cole–Vishkin pipeline that
//!   3-colours the oriented ring in `O(log* n)` rounds without knowledge of
//!   `n`, matching the paper's Theorem 1 lower bound.
//! * [`LandmarkColoring`] — a variable-radius 4-colouring in the spirit of
//!   the paper's Lemma 2 construction, whose radius profile genuinely varies
//!   from node to node.
//! * [`MisRing`] — maximal independent set on the ring, derived from the
//!   3-colouring.
//! * [`KnowTheLeader`] / [`baselines`] — problems and baselines whose average
//!   radius *cannot* beat the worst case, for contrast.
//! * [`adversary`] — the Section 3 slice construction that assembles an
//!   identifier permutation with a large average radius.
//! * [`verify`] — centralized validity checkers for every output produced
//!   here.
//!
//! # Example
//!
//! ```
//! use avglocal_algorithms::{LargestId, verify};
//! use avglocal_graph::{generators, IdAssignment};
//! use avglocal_runtime::{BallExecutor, Knowledge};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut ring = generators::cycle(256)?;
//! IdAssignment::Shuffled { seed: 42 }.apply(&mut ring)?;
//! let run = BallExecutor::new().run(&ring, &LargestId, Knowledge::none())?;
//! assert!(verify::is_correct_largest_id(&ring, run.outputs()));
//! assert_eq!(run.max_radius(), 128);      // the winner sees half the ring
//! assert!(run.average_radius() < 10.0);   // everyone else stops early
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adversary;
pub mod baselines;
pub mod cole_vishkin;
mod largest_id;
mod leader;
mod matching;
mod mis;
pub mod reduce;
mod three_coloring;
pub mod verify;

pub use adversary::{ball_radius_oracle, cycle_with_arrangement, SliceConstruction};
pub use baselines::{FullInfoColoring, FullInfoLargestId};
pub use cole_vishkin::RingOrientation;
pub use largest_id::{
    predicted_cycle_radii, predicted_cycle_total, run_largest_id, verify_largest_id, LargestId,
};
pub use leader::{elect_leader, Election, KnowTheLeader};
pub use matching::{run_matching, MatchingMessage, MatchingRing, MatchingState};
pub use mis::{run_mis, MisMessage, MisRing, MisState};
pub use three_coloring::{
    landmarks, run_three_coloring, LandmarkColoring, ThreeColorRing, ThreeColorState,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use avglocal_graph::{generators, IdAssignment};
    use avglocal_runtime::{BallExecutor, Knowledge};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Largest-ID outputs are always correct and the measured radii match
        /// the combinatorial prediction on cycles.
        #[test]
        fn largest_id_correct_on_random_rings(n in 3usize..80, seed in 0u64..500) {
            let mut g = generators::cycle(n).unwrap();
            IdAssignment::Shuffled { seed }.apply(&mut g).unwrap();
            let run = run_largest_id(&g).unwrap();
            prop_assert!(verify_largest_id(&g, run.outputs()));
            let predicted = predicted_cycle_radii(&g);
            prop_assert_eq!(run.radii(), predicted.as_slice());
        }

        /// The Cole–Vishkin pipeline always produces a proper 3-colouring with
        /// constant radius, regardless of the identifier assignment.
        #[test]
        fn cole_vishkin_proper_on_random_rings(n in 3usize..64, seed in 0u64..500) {
            let mut g = generators::cycle(n).unwrap();
            IdAssignment::Shuffled { seed }.apply(&mut g).unwrap();
            let (colors, rounds) = run_three_coloring(&g).unwrap();
            prop_assert!(verify::is_proper_coloring(&g, &colors, 3));
            prop_assert!(rounds.iter().all(|&r| r == 7));
        }

        /// The landmark colouring is always proper (with 4 colours).
        #[test]
        fn landmark_coloring_proper_on_random_rings(n in 3usize..64, seed in 0u64..500) {
            let mut g = generators::cycle(n).unwrap();
            IdAssignment::Shuffled { seed }.apply(&mut g).unwrap();
            let run = BallExecutor::new().run(&g, &LandmarkColoring, Knowledge::none()).unwrap();
            prop_assert!(verify::is_proper_coloring(&g, run.outputs(), 4));
        }

        /// The MIS pipeline always produces a maximal independent set.
        #[test]
        fn mis_valid_on_random_rings(n in 3usize..48, seed in 0u64..300) {
            let mut g = generators::cycle(n).unwrap();
            IdAssignment::Shuffled { seed }.apply(&mut g).unwrap();
            let in_set = run_mis(&g).unwrap();
            prop_assert!(verify::is_maximal_independent_set(&g, &in_set));
        }

        /// The matching pipeline always produces a maximal matching.
        #[test]
        fn matching_valid_on_random_rings(n in 3usize..48, seed in 0u64..300) {
            let mut g = generators::cycle(n).unwrap();
            IdAssignment::Shuffled { seed }.apply(&mut g).unwrap();
            let matched = run_matching(&g).unwrap();
            prop_assert!(verify::is_maximal_matching(&g, &matched));
        }

        /// The Section 3 slice construction always yields a permutation.
        #[test]
        fn slice_construction_is_permutation(n in 8usize..48, t in 0usize..4) {
            let oracle = ball_radius_oracle(LargestId);
            let pi = SliceConstruction::new(n, t).build(&oracle);
            let mut sorted = pi.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..n as u64).collect::<Vec<_>>());
        }
    }
}
