//! Maximal matching on the oriented ring, derived from 3-colouring.
//!
//! Every node *owns* the edge to its successor. After the Cole–Vishkin
//! 3-colouring, the colour classes act in turn: a node of the active class
//! claims its successor edge iff neither endpoint is already covered. Because
//! adjacent nodes have different colours, no two conflicting edges are ever
//! claimed in the same round, and because coverage only grows, an uncovered
//! edge would have been claimed at its owner's turn — so the result is a
//! maximal matching. One final round propagates the last claims, after which
//! every node knows its partner (or that it has none).
//!
//! The decision rounds are `O(log* n)` and differ slightly between nodes
//! (claimers decide one round before the nodes they claim), giving yet
//! another radius profile for the average-measure experiments.

use avglocal_graph::{Graph, Identifier, NodeId};
use avglocal_runtime::{broadcast, Envelope, Knowledge, NodeContext, RoundAlgorithm};

use crate::cole_vishkin::{cv_iterations_for_knowledge, RingOrientation};
use crate::three_coloring::{ThreeColorRing, ThreeColorState};

/// Messages exchanged by [`MatchingRing`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchingMessage {
    /// Current Cole–Vishkin colour (colouring phase).
    Color(u64),
    /// Matching-phase status: whether the sender is already covered, and the
    /// identifier of the neighbour whose edge it has claimed, if any.
    Status {
        /// The sender is an endpoint of an already-claimed edge.
        covered: bool,
        /// The neighbour the sender claimed (its successor), if any.
        claimed: Option<Identifier>,
    },
}

/// Per-node state of [`MatchingRing`].
#[derive(Debug, Clone)]
pub struct MatchingState {
    coloring: ThreeColorState,
    final_color: Option<u64>,
    covered: bool,
    partner: Option<Identifier>,
    decided: bool,
}

/// Maximal matching on an oriented ring via 3-colouring and successor-edge
/// claims.
#[derive(Debug, Clone)]
pub struct MatchingRing {
    coloring: ThreeColorRing,
}

impl MatchingRing {
    /// Creates the algorithm for a ring with the given orientation.
    #[must_use]
    pub fn new(orientation: RingOrientation) -> Self {
        MatchingRing { coloring: ThreeColorRing::new(orientation) }
    }

    fn coloring_rounds(knowledge: &Knowledge) -> usize {
        cv_iterations_for_knowledge(knowledge) + 3
    }

    fn successor_of(&self, ctx: &NodeContext) -> Identifier {
        self.coloring
            .orientation()
            .successor(ctx.identifier)
            .expect("the orientation must cover every node of the ring")
    }
}

impl RoundAlgorithm for MatchingRing {
    type Message = MatchingMessage;
    type Output = Option<Identifier>;
    type State = MatchingState;

    fn name(&self) -> &str {
        "matching-ring"
    }

    fn init(&self, ctx: &NodeContext) -> Self::State {
        MatchingState {
            coloring: self.coloring.init(ctx),
            final_color: None,
            covered: false,
            partner: None,
            decided: false,
        }
    }

    fn send(&self, state: &Self::State, ctx: &NodeContext) -> Vec<Envelope<Self::Message>> {
        match state.final_color {
            None => self
                .coloring
                .send(&state.coloring, ctx)
                .into_iter()
                .map(|env| Envelope::new(env.port, MatchingMessage::Color(env.payload)))
                .collect(),
            Some(_) => broadcast(
                ctx.degree,
                &MatchingMessage::Status { covered: state.covered, claimed: state.partner },
            ),
        }
    }

    fn receive(
        &self,
        state: &mut Self::State,
        ctx: &NodeContext,
        inbox: &[Envelope<Self::Message>],
    ) -> Option<Self::Output> {
        let coloring_rounds = Self::coloring_rounds(&ctx.knowledge);
        if ctx.round <= coloring_rounds {
            let color_inbox: Vec<Envelope<u64>> = inbox
                .iter()
                .filter_map(|env| match env.payload {
                    MatchingMessage::Color(c) => Some(Envelope::new(env.port, c)),
                    MatchingMessage::Status { .. } => None,
                })
                .collect();
            if let Some(color) = self.coloring.receive(&mut state.coloring, ctx, &color_inbox) {
                state.final_color = Some(color);
            }
            return None;
        }

        // Matching phase. First absorb incoming claims: a claim naming this
        // node means the predecessor has matched the edge (pred, self).
        let successor = self.successor_of(ctx);
        let mut successor_covered = false;
        for env in inbox {
            if let MatchingMessage::Status { covered, claimed } = env.payload {
                if claimed == Some(ctx.identifier) && !state.decided {
                    let sender = ctx.neighbor_identifiers[env.port];
                    state.covered = true;
                    state.partner = Some(sender);
                    state.decided = true;
                    return Some(Some(sender));
                }
                if ctx.neighbor_identifiers[env.port] == successor {
                    successor_covered = covered;
                }
            }
        }

        let phase_round = ctx.round - coloring_rounds;
        if phase_round <= 3 {
            let active_class = (phase_round - 1) as u64;
            if state.final_color == Some(active_class) && !state.covered && !successor_covered {
                // Claim the successor edge.
                state.covered = true;
                state.partner = Some(successor);
                state.decided = true;
                return Some(Some(successor));
            }
            None
        } else {
            // Final propagation round: anyone still uncovered stays unmatched.
            if state.decided {
                None
            } else {
                state.decided = true;
                Some(state.partner)
            }
        }
    }
}

/// Runs [`MatchingRing`] on a cycle and returns, for each node (in node
/// order), the index of its matching partner.
///
/// # Errors
///
/// Returns an error when the graph is not a single cycle or the execution
/// fails.
pub fn run_matching(graph: &Graph) -> Result<Vec<Option<usize>>, avglocal_runtime::RuntimeError> {
    let orientation = RingOrientation::trace(graph)?;
    let algo = MatchingRing::new(orientation);
    let run = avglocal_runtime::SyncExecutor::new().run(graph, &algo, Knowledge::none())?;
    let outputs = run.outputs();
    Ok(outputs
        .into_iter()
        .map(|partner| {
            partner.map(|id| {
                graph
                    .node_by_identifier(id)
                    .map(NodeId::index)
                    .expect("partners are identifiers of ring nodes")
            })
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use avglocal_graph::{generators, IdAssignment};
    use avglocal_runtime::SyncExecutor;

    fn ring(n: usize, seed: u64) -> Graph {
        let mut g = generators::cycle(n).unwrap();
        IdAssignment::Shuffled { seed }.apply(&mut g).unwrap();
        g
    }

    #[test]
    fn matching_is_maximal_on_random_rings() {
        for n in [3usize, 4, 5, 6, 9, 16, 33, 80] {
            for seed in 0..4u64 {
                let g = ring(n, seed);
                let matched = run_matching(&g).unwrap();
                assert!(
                    verify::is_maximal_matching(&g, &matched),
                    "n={n} seed={seed} matching={matched:?}"
                );
            }
        }
    }

    #[test]
    fn matching_is_maximal_on_structured_rings() {
        for assignment in [IdAssignment::Identity, IdAssignment::Reversed] {
            for n in [8usize, 15, 30] {
                let mut g = generators::cycle(n).unwrap();
                assignment.apply(&mut g).unwrap();
                let matched = run_matching(&g).unwrap();
                assert!(verify::is_maximal_matching(&g, &matched), "n={n} {assignment:?}");
            }
        }
    }

    #[test]
    fn matching_size_is_large_on_even_rings() {
        // A maximal matching on C_n has at least n/3 edges, i.e. covers at
        // least 2n/3 nodes.
        let g = ring(60, 7);
        let matched = run_matching(&g).unwrap();
        let covered = matched.iter().filter(|m| m.is_some()).count();
        assert!(covered >= 40, "only {covered} covered nodes");
    }

    #[test]
    fn decision_rounds_are_constant_and_small() {
        let g = ring(48, 2);
        let orientation = RingOrientation::trace(&g).unwrap();
        let run = SyncExecutor::new()
            .run(&g, &MatchingRing::new(orientation), Knowledge::none())
            .unwrap();
        let rounds = run.decision_rounds();
        // Colouring takes 7 rounds; claims happen at rounds 8-10, claimed
        // partners learn one round later, stragglers at round 11.
        assert!(rounds.iter().all(|&r| (8..=11).contains(&r)), "{rounds:?}");
        assert!(verify::is_maximal_matching(
            &g,
            &run.outputs()
                .into_iter()
                .map(|p| p.map(|id| g.node_by_identifier(id).unwrap().index()))
                .collect::<Vec<_>>()
        ));
    }

    #[test]
    fn matching_rejects_non_cycles() {
        let g = generators::path(6).unwrap();
        assert!(run_matching(&g).is_err());
    }
}
